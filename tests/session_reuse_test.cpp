// Descriptor-pool conformance: the properties the allocation-free
// execution tier promises. Every backend recipe must (a) reuse its
// pooled hot-tier descriptor in place across commit/abort, (b) recycle
// portability-tier descriptors through the per-thread free list, (c) keep
// TxId sequencing intact across reuse, and (d) produce identical stats
// whether a workload runs through the virtual tier or the session tier.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/tm.hpp"
#include "tm_conformance.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"
#include "workload/visit.hpp"

namespace oftm {
namespace {

using core::TxnPtr;
using core::TxStatus;

constexpr std::uint64_t kCounterMask = (std::uint64_t{1} << 48) - 1;

class SessionReuseTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::size_t kNumTVars = 64;

  void SetUp() override { tm_ = workload::make_tm(GetParam(), kNumTVars); }

  std::unique_ptr<core::TransactionalMemory> tm_;
};

TEST_P(SessionReuseTest, HotTierReusesOneDescriptorInPlace) {
  core::TmSession& session = tm_->session(0);

  core::Transaction& t1 = tm_->begin(session);
  const core::Transaction* pooled = &t1;
  EXPECT_EQ(t1.status(), TxStatus::kActive);
  ASSERT_TRUE(tm_->write(t1, 1, 11));
  ASSERT_TRUE(tm_->try_commit(t1));

  // After a commit, begin() on the same session must hand back the very
  // same descriptor, re-armed.
  core::Transaction& t2 = tm_->begin(session);
  EXPECT_EQ(&t2, pooled);
  EXPECT_EQ(t2.status(), TxStatus::kActive);
  tm_->try_abort(t2);
  EXPECT_EQ(t2.status(), TxStatus::kAborted);

  // ... and after an abort too.
  core::Transaction& t3 = tm_->begin(session);
  EXPECT_EQ(&t3, pooled);
  EXPECT_EQ(t3.status(), TxStatus::kActive);
  EXPECT_EQ(tm_->read(t3, 1).value(), 11u);
  ASSERT_TRUE(tm_->try_commit(t3));
}

TEST_P(SessionReuseTest, VirtualTierRecyclesDescriptors) {
  const core::Transaction* first = nullptr;
  {
    TxnPtr txn = tm_->begin();
    first = txn.get();
    ASSERT_TRUE(tm_->write(*txn, 2, 22));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  {
    // The released descriptor must come back from the free list, not a
    // fresh heap allocation.
    TxnPtr txn = tm_->begin();
    EXPECT_EQ(txn.get(), first);
    tm_->try_abort(*txn);
  }
  {
    TxnPtr txn = tm_->begin();
    EXPECT_EQ(txn.get(), first);
    EXPECT_EQ(tm_->read(*txn, 2).value(), 22u);
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
}

TEST_P(SessionReuseTest, InterleavedHandlesGetDistinctDescriptors) {
  if (GetParam() == "coarse") {
    GTEST_SKIP() << "coarse serializes transactions at begin()";
  }
  TxnPtr a = tm_->begin();
  TxnPtr b = tm_->begin();
  // Two live handles on one thread must not share a pooled descriptor.
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a->id(), b->id());
  ASSERT_TRUE(tm_->write(*a, 3, 33));
  tm_->try_abort(*b);
  ASSERT_TRUE(tm_->try_commit(*a));
}

TEST_P(SessionReuseTest, TxIdSequencingSurvivesReuse) {
  // Footnote 3 id discipline: thread slot in the high bits, a per-thread
  // counter in the low bits. Reuse must keep the counter advancing — a
  // recycled descriptor with a stale id would alias transactions in
  // recorded histories.
  core::TxId prev = 0;
  for (int i = 0; i < 6; ++i) {
    TxnPtr txn = tm_->begin();
    const core::TxId id = txn->id();
    if (i > 0) {
      EXPECT_EQ(core::tx_id_thread(id), core::tx_id_thread(prev));
      EXPECT_EQ(id & kCounterMask, (prev & kCounterMask) + 1);
    }
    prev = id;
    if (i % 2 == 0) {
      ASSERT_TRUE(tm_->write(*txn, 4, static_cast<core::Value>(i + 1)));
      ASSERT_TRUE(tm_->try_commit(*txn));
    } else {
      tm_->try_abort(*txn);
    }
  }
}

TEST_P(SessionReuseTest, StatsIdenticalAcrossTiers) {
  // The same single-threaded operation sequence must produce bit-identical
  // statistics whether it runs through TxnPtr handles or pooled sessions —
  // the two tiers are the same machine, not two implementations.
  const auto drive = [](core::TransactionalMemory& tm, bool session_tier) {
    core::TmSession& session = tm.this_thread_session();
    for (int i = 0; i < 12; ++i) {
      core::Transaction* txn = nullptr;
      TxnPtr handle;
      if (session_tier) {
        txn = &tm.begin(session);
      } else {
        handle = tm.begin();
        txn = handle.get();
      }
      const core::TVarId x = static_cast<core::TVarId>(i % 8);
      EXPECT_TRUE(tm.read(*txn, x).has_value());
      EXPECT_TRUE(tm.write(*txn, x, static_cast<core::Value>(i + 100)));
      if (i % 3 == 2) {
        tm.try_abort(*txn);
      } else {
        EXPECT_TRUE(tm.try_commit(*txn));
      }
    }
    return tm.stats();
  };

  auto virtual_tm = workload::make_tm(GetParam(), kNumTVars);
  auto session_tm = workload::make_tm(GetParam(), kNumTVars);
  const auto v = drive(*virtual_tm, /*session_tier=*/false);
  const auto s = drive(*session_tm, /*session_tier=*/true);
  EXPECT_EQ(v.commits, s.commits);
  EXPECT_EQ(v.aborts, s.aborts);
  EXPECT_EQ(v.forced_aborts, s.forced_aborts);
  EXPECT_EQ(v.reads, s.reads);
  EXPECT_EQ(v.writes, s.writes);
  EXPECT_EQ(v.victim_kills, s.victim_kills);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SessionReuseTest,
                         ::testing::ValuesIn(workload::all_backends()),
                         conformance::backend_param_name);

// visit_tm and make_tm share one recipe grammar; a recipe constructible by
// one must be constructible by the other and name the same backend, or
// benches would measure something the conformance suite never certified.
TEST(VisitTm, AgreesWithMakeTmOnEveryRecipe) {
  for (const std::string& recipe : workload::all_backends()) {
    auto erased = workload::make_tm(recipe, 8);
    const std::string visited_name = workload::visit_tm(
        recipe, 8, [](auto& tm) { return tm.name(); });
    EXPECT_EQ(visited_name, erased->name()) << recipe;
  }
}

TEST(VisitTm, RejectsWhatMakeTmRejects) {
  const auto reject = [](const std::string& recipe) {
    EXPECT_THROW(workload::visit_tm(recipe, 8, [](auto&) {}),
                 std::invalid_argument)
        << recipe;
  };
  reject("no-such-backend");
  reject("");
  reject("tl:karma");
  reject("norec:polite");
}

// The concrete-type driver overload must agree with the type-erased one.
TEST(VisitTm, ConcreteDriverMatchesVirtualDriver) {
  workload::WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 200;
  config.ops_per_tx = 4;
  config.seed = 11;
  config.pin_threads = false;

  auto erased = workload::make_tm("norec", 64);
  const auto rv = workload::run_workload(*erased, config);
  const auto rc = workload::visit_tm("norec", 64, [&](auto& tm) {
    return workload::run_workload(tm, config);
  });
  EXPECT_EQ(rv.committed, rc.committed);
  EXPECT_EQ(rc.committed, 400u);
}

}  // namespace
}  // namespace oftm
