// NOrec concurrency stress (labelled `stress`; also run under TSan via
// `ctest --preset tsan-stress`): the single global sequence lock and the
// invisible-read/value-revalidation protocol are exactly the kind of
// synchronization where a missed ordering shows up only under load.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/barrier.hpp"
#include "runtime/xorshift.hpp"
#include "tm_conformance.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

class NorecStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NorecStressTest, BankInvariantHolds) {
  auto tm = workload::make_tm(GetParam(), 128);
  bool invariant_ok = false;
  const auto result = workload::run_bank_workload(
      *tm, /*threads=*/8, /*tx_per_thread=*/3000, /*accounts=*/32,
      /*initial_balance=*/1000, /*seed=*/17, &invariant_ok);
  EXPECT_TRUE(invariant_ok) << GetParam();
  EXPECT_GT(result.committed, 0u);
}

TEST_P(NorecStressTest, HighContentionHistoryIsOpaque) {
  // Few t-variables, many writers: the sequence lock is hammered and
  // almost every read triggers revalidation. The recorded history must
  // still pass the full opacity check (real-time order + consistent
  // aborted readers) — NOrec's safety claim.
  auto tm = workload::make_tm(GetParam(), 12);
  history::Recorder recorder;
  history::RecordingTm recorded(*tm, recorder);

  workload::WorkloadConfig config;
  config.threads = 6;
  config.tx_per_thread = 150;
  config.ops_per_tx = 4;
  config.write_fraction = 0.6;
  config.seed = 4321;
  (void)workload::run_workload(recorded, config);

  EXPECT_EQ(recorder.check_well_formed(), "");
  history::MvsgOptions opacity;
  opacity.respect_real_time = true;
  opacity.include_aborted_readers = true;
  const auto check = history::check_mvsg(recorder.transactions(), opacity);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
}

TEST_P(NorecStressTest, ConcurrentIncrementsAllComplete) {
  // Livelock bound at scale: every failed commit CAS means somebody else
  // committed, so total work is bounded and all increments land. A
  // livelock (or a lost write-back) shows up as a wrong sum or a timeout.
  auto tm = workload::make_tm(GetParam(), 4);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  runtime::SpinBarrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      runtime::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        const auto x = static_cast<core::TVarId>(rng.next_range(4));
        for (;;) {
          core::TxnPtr txn = tm->begin();
          const auto v = tm->read(*txn, x);
          if (!v) continue;
          if (!tm->write(*txn, x, *v + 1)) continue;
          if (tm->try_commit(*txn)) break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  core::Value sum = 0;
  for (core::TVarId x = 0; x < 4; ++x) sum += tm->read_quiescent(x);
  EXPECT_EQ(sum, static_cast<core::Value>(kThreads) * kIncrements);
}

TEST_P(NorecStressTest, ReadersNeverSeeTornCommits) {
  // Writers move value mass between a pair of t-variables while read-only
  // transactions (which never take the sequence lock) continuously assert
  // the conservation invariant — the cheapest detector for a reader
  // slipping through a concurrent write-back.
  auto tm = workload::make_tm(GetParam(), 8);
  constexpr core::Value kTotal = 10000;
  {
    core::TxnPtr txn = tm->begin();
    ASSERT_TRUE(tm->write(*txn, 0, kTotal));
    ASSERT_TRUE(tm->try_commit(*txn));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        core::TxnPtr txn = tm->begin();
        const auto a = tm->read(*txn, 0);
        if (!a) continue;
        const auto b = tm->read(*txn, 1);
        if (!b) continue;
        if (!tm->try_commit(*txn)) continue;
        if (*a + *b != kTotal) torn.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      runtime::Xoshiro256 rng(static_cast<std::uint64_t>(w) + 7);
      for (int i = 0; i < 20000; ++i) {
        for (;;) {
          core::TxnPtr txn = tm->begin();
          const auto a = tm->read(*txn, 0);
          if (!a) continue;
          const auto b = tm->read(*txn, 1);
          if (!b) continue;
          const core::Value amount = rng.next_range(*a + 1);
          if (!tm->write(*txn, 0, *a - amount)) continue;
          if (!tm->write(*txn, 1, *b + amount)) continue;
          if (tm->try_commit(*txn)) break;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(tm->read_quiescent(0) + tm->read_quiescent(1), kTotal);
}

INSTANTIATE_TEST_SUITE_P(NorecRecipes, NorecStressTest,
                         ::testing::Values("norec", "norec-bloom"),
                         conformance::backend_param_name);

}  // namespace
}  // namespace oftm
