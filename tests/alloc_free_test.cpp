// Instrumented-allocator proof of the allocation-free execution tier:
// after warm-up, a transaction on the pooled-session hot path performs
// ZERO heap allocations on the progressive lock-based backends the
// headline comparison is anchored against (NOrec and TL2) — descriptor,
// read set, write set and commit scratch are all reused in place. This is
// the property that keeps harness overhead out of the measured backend
// deltas (the methodological trap the cost-of-obstruction-freedom
// comparison must avoid).
//
// This test overrides the global allocation functions for its own binary
// only (one executable per test source — see tests/CMakeLists.txt); the
// counter is armed exclusively around the measured loops, so gtest's own
// allocations never pollute the count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "core/region_tm.hpp"
#include "core/tm.hpp"
#include "ds/tlist.hpp"
#include "lock/tl2.hpp"
#include "lock/tl2_region.hpp"
#include "norec/norec.hpp"
#include "norec/norec_region.hpp"
#include "runtime/stats.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void count_alloc() noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_alloc(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return checked_alloc(n); }
void* operator new[](std::size_t n) { return checked_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) {
  return checked_alloc(n);
}
void* operator new[](std::size_t n, std::align_val_t) {
  return checked_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace oftm {
namespace {

constexpr std::size_t kNumTVars = 1024;
constexpr int kOpsPerTx = 16;

// Mirrors the B1 driver's per-transaction loop (bench_throughput →
// run_workload): begin on the pooled session, read-modify-write a cycling
// window of t-variables, commit, record into the per-worker histogram.
template <typename Tm>
std::uint64_t run_txns(Tm& tm, core::TmSession& session, int count,
                       runtime::Log2Histogram& latency) {
  std::uint64_t committed = 0;
  for (int i = 0; i < count; ++i) {
    core::Transaction& txn = tm.begin(session);
    bool ok = true;
    for (int k = 0; k < kOpsPerTx && ok; ++k) {
      const auto x =
          static_cast<core::TVarId>((i * kOpsPerTx + k) % kNumTVars);
      const auto v = tm.read(txn, x);
      ok = v.has_value() && tm.write(txn, x, *v + 1);
    }
    if (ok && tm.try_commit(txn)) {
      ++committed;
      latency.record(static_cast<std::uint64_t>(i));
    }
  }
  return committed;
}

template <typename Tm>
void expect_zero_alloc_hot_path(Tm& tm) {
  core::TmSession& session = tm.this_thread_session();
  runtime::Log2Histogram latency;

  // Warm-up: descriptor pools materialize, read/write sets and commit
  // scratch grow to steady-state capacity.
  ASSERT_EQ(run_txns(tm, session, 200, latency), 200u);

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const std::uint64_t committed = run_txns(tm, session, 1000, latency);
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_EQ(committed, 1000u);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "per-transaction heap allocations survived the descriptor pool";
}

TEST(AllocFree, NorecHotPathAllocatesNothingAfterWarmup) {
  norec::HwNorec tm(kNumTVars);
  expect_zero_alloc_hot_path(tm);
}

TEST(AllocFree, NorecBloomHotPathAllocatesNothingAfterWarmup) {
  norec::NorecOptions options;
  options.bloom_reads = true;
  norec::HwNorec tm(kNumTVars, options);
  expect_zero_alloc_hot_path(tm);
}

TEST(AllocFree, Tl2HotPathAllocatesNothingAfterWarmup) {
  lock::HwTl2 tm(kNumTVars);
  expect_zero_alloc_hot_path(tm);
}

// The region tier inherits the property: word-granular transactions over
// the raw-memory heap reuse the descriptor's read set, redo log, commit
// scratch and epoch pin in place — the RegionHeap itself is only touched
// by tx_alloc/tx_free, which this steady state does not issue.
TEST(AllocFree, Tl2RegionHotPathAllocatesNothingAfterWarmup) {
  core::RegionWordTm<lock::Tl2Region> tm(kNumTVars);
  expect_zero_alloc_hot_path(tm);
}

TEST(AllocFree, NorecRegionHotPathAllocatesNothingAfterWarmup) {
  core::RegionWordTm<norec::NorecRegion> tm(kNumTVars);
  expect_zero_alloc_hot_path(tm);
}

// Transactional alloc/free churn in steady state: blocks recycle through
// the region's size-class free lists and the epoch retire ring, none of
// which touches the process heap once warmed up.
TEST(AllocFree, RegionAllocFreeChurnSteadyStateAllocatesNothing) {
  core::RegionOptions options;
  options.capacity_bytes = 1 << 20;
  lock::Tl2Region region{options};
  auto* slot = static_cast<core::Value*>(region.heap().alloc(8));
  ASSERT_NE(slot, nullptr);
  lock::Tl2Region::Session session(0);

  const auto churn = [&](int count) {
    for (int i = 0; i < count; ++i) {
      auto& tx = session.hot();
      region.prepare(tx);
      const auto cur = region.read(tx, slot);
      ASSERT_TRUE(cur.has_value());
      if (*cur != 0) {
        auto* old = reinterpret_cast<core::Value*>(
            static_cast<std::uintptr_t>(*cur));
        ASSERT_TRUE(region.tx_free(tx, old));
      }
      void* p = region.tx_alloc(tx, 64);
      ASSERT_NE(p, nullptr);
      ASSERT_TRUE(region.write(tx, static_cast<core::Value*>(p), 1));
      ASSERT_TRUE(region.write(tx, slot,
                               static_cast<core::Value>(
                                   reinterpret_cast<std::uintptr_t>(p))));
      ASSERT_TRUE(region.try_commit(tx));
    }
  };
  churn(600);  // warm-up: free lists, retire ring, descriptor logs

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  churn(1000);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "transactional alloc/free leaked onto the process heap";
}

// The same property one layer up: a region-instantiated container whose
// insert/erase churn routes every node through tx_alloc/tx_free. Steady
// state recycles nodes via the size-class free lists and the epoch retire
// ring without ever reaching the process heap.
TEST(AllocFree, RegionContainerChurnSteadyStateAllocatesNothing) {
  constexpr std::uint32_t kCap = 64;
  core::RegionOptions options;
  options.capacity_bytes = 1 << 20;
  core::RegionWordTm<lock::Tl2Region> tm(
      ds::TListSetT<core::RegionMemory>::tvars_needed(kCap), options);
  ds::TListSetT<core::RegionMemory> set(tm, 0, kCap);
  set.init();

  const auto churn = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const std::uint64_t key = static_cast<std::uint64_t>(i % 32) + 1;
      core::atomically(tm, [&](core::TxView& tx) {
        if (!set.erase(tx, key)) set.insert(tx, key);
      });
    }
  };
  churn(600);  // warm-up: node free lists, retire ring, descriptor logs

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  churn(1000);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "region container churn leaked onto the process heap";
  EXPECT_TRUE(set.audit_quiescent());
}

TEST(AllocFree, AtomicallyRetryLoopAllocatesNothingAfterWarmup) {
  // The convenience layer on top of the same tier: TxView + the no-throw
  // retry loop must not reintroduce per-transaction allocations.
  norec::HwNorec tm(kNumTVars);
  const auto transfer = [&](int i) {
    return core::atomically(tm, [i](core::TxView& tx) {
      const auto a = static_cast<core::TVarId>(i % kNumTVars);
      const auto b = static_cast<core::TVarId>((i + 7) % kNumTVars);
      const core::Value va = tx.read(a);
      tx.write(a, va + 1);
      tx.write(b, tx.read(b) + 1);
      return va;
    });
  };
  for (int i = 0; i < 200; ++i) transfer(i);

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) transfer(i);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u);
}

// The portability tier recycles descriptors through the session free
// list, so its steady state is allocation-free as well — only the virtual
// dispatch differs between the tiers.
TEST(AllocFree, VirtualTierSteadyStateAllocatesNothing) {
  norec::HwNorec tm(kNumTVars);
  core::TransactionalMemory& erased = tm;
  const auto run = [&](int count) {
    for (int i = 0; i < count; ++i) {
      core::TxnPtr txn = erased.begin();
      const auto x = static_cast<core::TVarId>(i % kNumTVars);
      const auto v = erased.read(*txn, x);
      ASSERT_TRUE(v.has_value());
      ASSERT_TRUE(erased.write(*txn, x, *v + 1));
      ASSERT_TRUE(erased.try_commit(*txn));
    }
  };
  run(100);

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  run(500);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace oftm
