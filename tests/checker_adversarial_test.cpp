// Adversarial calibration of the version-indexed MVSG checker: randomized
// synthetic histories (history/synth.hpp) are seeded with each opacity
// violation class the checker claims to catch — dirty read, lost update
// (version-chain fork), duplicate version (unique-writes violation), and
// real-time inversion — and the checker must reject each one *with the
// expected machine-readable witness*, while accepting the un-mutated
// history under every option set. Parameterized over seeds so each run
// mutates a different history shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "history/checker.hpp"
#include "history/synth.hpp"

namespace oftm::history {
namespace {

MvsgOptions strict_options() {
  MvsgOptions o;
  o.respect_real_time = true;
  o.include_aborted_readers = true;
  return o;
}

bool witness_has_kind(const CheckResult& r, WitnessEdge::Kind kind) {
  return std::any_of(r.witness.begin(), r.witness.end(),
                     [kind](const WitnessEdge& e) { return e.kind == kind; });
}

struct ReadRef {
  std::size_t txn;
  std::size_t op;
};

// First *pure* external read: a read of a t-var its transaction never
// writes. Poisoning a read whose transaction also writes the var would
// corrupt that writer's RMW read-value and trip the version-chain chase
// ("version chain gap") instead of the dirty-read path under test.
ReadRef first_pure_external_read(const std::vector<TxRecord>& txns) {
  for (std::size_t t = 0; t < txns.size(); ++t) {
    for (std::size_t o = 0; o < txns[t].ops.size(); ++o) {
      const TxOp& op = txns[t].ops[o];
      if (op.op != OpType::kRead) continue;
      bool writes_var = false;
      for (const TxOp& other : txns[t].ops) {
        if (other.op == OpType::kWrite && other.tvar == op.tvar) {
          writes_var = true;
        }
      }
      if (!writes_var) return {t, o};
    }
  }
  return {txns.size(), 0};
}

class CheckerAdversarialTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<TxRecord> generate(double hot_fraction = 0.0) {
    synth::SynthOptions opts;
    opts.transactions = 400;
    opts.num_tvars = 16;
    opts.ops_per_tx = 4;
    opts.write_fraction = 0.5;
    opts.hot_fraction = hot_fraction;
    opts.seed = GetParam();
    return synth::make_history(opts);
  }
};

TEST_P(CheckerAdversarialTest, UnmutatedHistoryIsAccepted) {
  const auto txns = generate();
  EXPECT_TRUE(check_mvsg(txns).ok);
  const auto r = check_mvsg(txns, strict_options());
  EXPECT_TRUE(r.ok) << r.error << "\nwitness: " << r.witness_str();
  EXPECT_TRUE(r.witness.empty());

  const auto hot = generate(/*hot_fraction=*/1.0);
  const auto rh = check_mvsg(hot, strict_options());
  EXPECT_TRUE(rh.ok) << rh.error;
}

TEST_P(CheckerAdversarialTest, DirtyReadIsRejectedWithLocalWitness) {
  auto txns = generate();
  const ReadRef ref = first_pure_external_read(txns);
  ASSERT_LT(ref.txn, txns.size());
  const TxOp& op = txns[ref.txn].ops[ref.op];
  // Poison every external read of this (txn, tvar) pair with a value
  // nobody ever wrote — poisoning just one would trip the
  // intra-transaction "two external reads disagree" digest error instead
  // of the dirty-read path under test.
  synth::poison_external_reads(txns[ref.txn], op.tvar,
                               0xDEADBEEFCAFEBABEull);

  const auto r = check_mvsg(txns, strict_options());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no committed transaction wrote"),
            std::string::npos)
      << r.error;
  ASSERT_EQ(r.witness.size(), 1u) << r.witness_str();
  EXPECT_EQ(r.witness[0].kind, WitnessEdge::Kind::kLocal);
  EXPECT_EQ(r.witness[0].from, txns[ref.txn].id);
  EXPECT_EQ(r.witness[0].tvar, op.tvar);
}

TEST_P(CheckerAdversarialTest, LostUpdateIsRejectedAsVersionChainFork) {
  // Hot-key history so t-var 0 has a long chain with many writers; the
  // shared builder makes the later of the first two writers read the same
  // version the earlier one read — both applied their update on top of
  // the same snapshot.
  auto txns = generate(/*hot_fraction=*/1.0);
  core::TxId w1 = 0, w2 = 0;
  ASSERT_TRUE(synth::seed_lost_update(txns, 0, &w1, &w2))
      << "history has fewer than two writers of x0";

  const auto r = check_mvsg(txns, strict_options());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("version chain fork"), std::string::npos)
      << r.error;
  ASSERT_EQ(r.witness.size(), 1u) << r.witness_str();
  EXPECT_EQ(r.witness[0].kind, WitnessEdge::Kind::kLocal);
  EXPECT_EQ(r.witness[0].tvar, 0u);
  // The witness names exactly the two forked writers.
  const core::TxId a = r.witness[0].from;
  const core::TxId b = r.witness[0].to;
  EXPECT_NE(a, b);
  EXPECT_TRUE((a == w1 && b == w2) || (a == w2 && b == w1))
      << r.witness_str();
}

TEST_P(CheckerAdversarialTest, DuplicateVersionIsRejectedWithBothWriters) {
  auto txns = generate();
  // Append a fresh committed RMW transaction on x0 whose written value
  // duplicates an existing committed write of x0 (unique-writes breach) —
  // the shared builder picks the first chain version as the duplicate.
  constexpr core::TxId kDupId = 0xD0D0;
  core::TxId dup_writer = 0;
  ASSERT_TRUE(synth::append_duplicate_writer(txns, 0, kDupId, &dup_writer))
      << "history has no writer of x0";

  const auto r = check_mvsg(txns, strict_options());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unique-writes discipline violated"),
            std::string::npos)
      << r.error;
  ASSERT_EQ(r.witness.size(), 1u) << r.witness_str();
  EXPECT_EQ(r.witness[0].kind, WitnessEdge::Kind::kLocal);
  EXPECT_EQ(r.witness[0].tvar, 0u);
  const core::TxId a = r.witness[0].from;
  const core::TxId b = r.witness[0].to;
  EXPECT_TRUE((a == dup_writer && b == kDupId) ||
              (a == kDupId && b == dup_writer))
      << r.witness_str();
}

TEST_P(CheckerAdversarialTest, RealTimeInversionYieldsRtCycleWitness) {
  auto txns = generate(/*hot_fraction=*/1.0);
  // Append a read-only transaction that starts after everything completed
  // yet observes the long-superseded first version of x0: plain
  // serializability can order it early, strict real-time order cannot.
  constexpr core::TxId kStaleId = 0x57A1E;
  ASSERT_TRUE(synth::append_stale_reader(txns, 0, kStaleId))
      << "history has fewer than two writers of x0";

  EXPECT_TRUE(check_mvsg(txns).ok);  // no real-time edges: still legal
  const auto r = check_mvsg(txns, strict_options());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("serialization graph has a cycle"),
            std::string::npos)
      << r.error;
  ASSERT_FALSE(r.witness.empty());
  // The witness is a closed cycle through the stale reader, mixing its
  // anti-dependency with a real-time edge.
  for (std::size_t i = 0; i < r.witness.size(); ++i) {
    EXPECT_EQ(r.witness[i].to,
              r.witness[(i + 1) % r.witness.size()].from)
        << "witness is not a closed cycle: " << r.witness_str();
  }
  EXPECT_TRUE(witness_has_kind(r, WitnessEdge::Kind::kRealTime))
      << r.witness_str();
  EXPECT_TRUE(witness_has_kind(r, WitnessEdge::Kind::kAntiDependency))
      << r.witness_str();
  const bool names_reader =
      std::any_of(r.witness.begin(), r.witness.end(),
                  [&](const WitnessEdge& e) {
                    return e.from == kStaleId || e.to == kStaleId;
                  });
  EXPECT_TRUE(names_reader) << r.witness_str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAdversarialTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace oftm::history
