// NOrec-specific semantics (src/norec/norec.hpp), beyond what the shared
// conformance suite already certifies:
//   * value-based validation admits the write-then-restore (ABA) history
//     that version-clock TMs (TL2) must reject;
//   * progressiveness — a transaction force-aborts only when a conflicting
//     write *committed* since its snapshot;
//   * livelock-freedom witness — a failed commit CAS implies another
//     transaction committed, and the loser still commits after
//     revalidation when the conflict is disjoint;
//   * write-set growth / write-back completeness and the Bloom ablation;
//   * stats plumbing for the NOrec event vocabulary.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/tm.hpp"
#include "norec/norec.hpp"
#include "tm_conformance.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

using core::TxnPtr;
using core::TxStatus;

class NorecTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::size_t kNumTVars = 512;

  void SetUp() override { tm_ = workload::make_tm(GetParam(), kNumTVars); }

  // One committed write outside the transaction under test.
  void commit_write(core::TVarId x, core::Value v) {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->write(*txn, x, v));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }

  std::unique_ptr<core::TransactionalMemory> tm_;
};

TEST_P(NorecTest, NameReflectsRecipe) {
  EXPECT_EQ(tm_->name(), GetParam() == "norec" ? "norec" : "norec+bloom");
}

TEST_P(NorecTest, SoloTransactionsNeverForceAbort) {
  // Progressiveness, solo case: with no concurrency there is no conflicting
  // commit, so no operation may ever return the abort event.
  tm_->reset_stats();
  for (int i = 0; i < 100; ++i) {
    TxnPtr txn = tm_->begin();
    for (core::TVarId x = 0; x < 8; ++x) {
      const auto v = tm_->read(*txn, x);
      ASSERT_TRUE(v.has_value());
      ASSERT_TRUE(tm_->write(*txn, x, *v + 1));
    }
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  EXPECT_EQ(tm_->stats().forced_aborts, 0u);
  EXPECT_EQ(tm_->read_quiescent(0), 100u);
}

TEST_P(NorecTest, ValueValidationAdmitsWriteThenRestore) {
  // The ABA case: reader sees x == 0; concurrent commits take x to 5 and
  // back to 0 before the reader validates again. The *values* the reader
  // saw still describe a consistent snapshot, so NOrec must keep going —
  // this is exactly where value-based validation is strictly more
  // permissive than a version clock.
  tm_->reset_stats();
  TxnPtr reader = tm_->begin();
  ASSERT_EQ(tm_->read(*reader, 0).value(), 0u);

  commit_write(0, 5);  // clock moves, value changes
  commit_write(0, 0);  // clock moves again, value restored

  // This read observes a moved clock and triggers full revalidation; the
  // restored value must pass it.
  ASSERT_TRUE(tm_->read(*reader, 1).has_value());
  ASSERT_TRUE(tm_->write(*reader, 1, 7));
  EXPECT_TRUE(tm_->try_commit(*reader));
  EXPECT_EQ(reader->status(), TxStatus::kCommitted);
  EXPECT_EQ(tm_->stats().forced_aborts, 0u);
  EXPECT_EQ(tm_->read_quiescent(1), 7u);
}

TEST_P(NorecTest, ConflictingCommitForcesReaderAbort) {
  // Progressiveness, conflict case: the only way NOrec force-aborts is a
  // conflicting commit since the snapshot — and then it must.
  tm_->reset_stats();
  TxnPtr reader = tm_->begin();
  ASSERT_EQ(tm_->read(*reader, 0).value(), 0u);

  commit_write(0, 9);  // conflicting: changes a value the reader saw

  EXPECT_FALSE(tm_->read(*reader, 1).has_value());
  EXPECT_EQ(reader->status(), TxStatus::kAborted);
  const auto s = tm_->stats();
  EXPECT_EQ(s.forced_aborts, 1u);
  EXPECT_EQ(s.aborts, 1u);
}

TEST_P(NorecTest, FailedCommitCasStillCommitsOnDisjointConflict) {
  // Livelock-freedom shape: writer W1 snapshots, then W2 commits a
  // *disjoint* write. W1's commit CAS fails (the global lock moved), but
  // revalidation succeeds and W1 must commit on retry, not abort — the
  // global sequence lock is a progress bottleneck, never a correctness
  // one for disjoint write sets.
  tm_->reset_stats();
  TxnPtr w1 = tm_->begin();
  ASSERT_EQ(tm_->read(*w1, 10).value(), 0u);
  ASSERT_TRUE(tm_->write(*w1, 10, 1));

  commit_write(20, 2);  // disjoint from w1's footprint

  EXPECT_TRUE(tm_->try_commit(*w1));
  const auto s = tm_->stats();
  EXPECT_EQ(s.commits, 2u);
  EXPECT_EQ(s.forced_aborts, 0u);
  EXPECT_GE(s.cm_backoffs, 1u);  // the failed CAS was counted
  EXPECT_EQ(tm_->read_quiescent(10), 1u);
  EXPECT_EQ(tm_->read_quiescent(20), 2u);
}

TEST_P(NorecTest, WriteSetGrowsAndWritesBackEverything) {
  // 300 distinct t-variables force several open-addressed table doublings;
  // read-your-own-writes must hold throughout and write-back must publish
  // every entry exactly once.
  constexpr core::TVarId kVars = 300;
  TxnPtr txn = tm_->begin();
  for (core::TVarId x = 0; x < kVars; ++x) {
    ASSERT_TRUE(tm_->write(*txn, x, x + 1000));
  }
  for (core::TVarId x = 0; x < kVars; ++x) {
    ASSERT_EQ(tm_->read(*txn, x).value(), x + 1000);
    ASSERT_TRUE(tm_->write(*txn, x, x + 2000));
    ASSERT_EQ(tm_->read(*txn, x).value(), x + 2000);
  }
  ASSERT_TRUE(tm_->try_commit(*txn));
  for (core::TVarId x = 0; x < kVars; ++x) {
    EXPECT_EQ(tm_->read_quiescent(x), x + 2000u);
  }
}

TEST_P(NorecTest, ReadOnlyTransactionsDoNotInvalidatePeers) {
  // Read-only commits take the fast path and never move the global clock:
  // a concurrent reader's later operations must not observe clock motion
  // (observable here as zero forced aborts and zero commit-CAS retries).
  tm_->reset_stats();
  TxnPtr peer = tm_->begin();
  ASSERT_EQ(tm_->read(*peer, 0).value(), 0u);
  for (int i = 0; i < 10; ++i) {
    TxnPtr ro = tm_->begin();
    ASSERT_TRUE(tm_->read(*ro, 1).has_value());
    ASSERT_TRUE(tm_->try_commit(*ro));
  }
  ASSERT_TRUE(tm_->write(*peer, 2, 1));
  EXPECT_TRUE(tm_->try_commit(*peer));
  const auto s = tm_->stats();
  EXPECT_EQ(s.forced_aborts, 0u);
  EXPECT_EQ(s.cm_backoffs, 0u);
}

INSTANTIATE_TEST_SUITE_P(NorecRecipes, NorecTest,
                         ::testing::Values("norec", "norec-bloom"),
                         conformance::backend_param_name);

// The same ABA history on TL2 for contrast: the version clock cannot tell
// "restored" from "changed", so the reader must be force-aborted at commit.
// Pinning both sides documents the value-vs-version validation distinction
// the NOrec backend exists to exhibit.
TEST(NorecVsTl2, Tl2RejectsTheWriteThenRestoreHistory) {
  auto tl2 = workload::make_tm("tl2", 16);
  TxnPtr reader = tl2->begin();
  ASSERT_EQ(tl2->read(*reader, 0).value(), 0u);
  {
    TxnPtr t = tl2->begin();
    ASSERT_TRUE(tl2->write(*t, 0, 5));
    ASSERT_TRUE(tl2->try_commit(*t));
  }
  {
    TxnPtr t = tl2->begin();
    ASSERT_TRUE(tl2->write(*t, 0, 0));
    ASSERT_TRUE(tl2->try_commit(*t));
  }
  // Var 1's own version is still 0 <= rv, so this read may succeed; the
  // stale var-0 version must surface at commit (write forces validation).
  (void)tl2->read(*reader, 1);
  (void)tl2->write(*reader, 1, 7);
  EXPECT_FALSE(tl2->try_commit(*reader));
  EXPECT_EQ(reader->status(), TxStatus::kAborted);
  EXPECT_GE(tl2->stats().forced_aborts, 1u);
}

// Direct (non-factory) coverage of the open-addressed write set: collision
// chains, overwrite-in-place, growth rehashing.
TEST(NorecWriteSet, PutFindGrowForEach) {
  norec::WriteSet ws;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(3), nullptr);

  for (core::TVarId x = 0; x < 100; ++x) ws.put(x, x * 10);
  EXPECT_EQ(ws.size(), 100u);
  for (core::TVarId x = 0; x < 100; ++x) {
    const core::Value* v = ws.find(x);
    ASSERT_NE(v, nullptr) << x;
    EXPECT_EQ(*v, x * 10u);
  }
  EXPECT_EQ(ws.find(100), nullptr);

  ws.put(7, 777);  // overwrite must not create a second entry
  EXPECT_EQ(ws.size(), 100u);
  EXPECT_EQ(*ws.find(7), 777u);

  std::size_t seen = 0;
  core::Value sum = 0;
  ws.for_each([&](core::TVarId, core::Value v) {
    ++seen;
    sum += v;
  });
  EXPECT_EQ(seen, 100u);
  core::Value expect_sum = 0;
  for (core::TVarId x = 0; x < 100; ++x) expect_sum += x * 10;
  EXPECT_EQ(sum, expect_sum - 70 + 777);
}

}  // namespace
}  // namespace oftm
