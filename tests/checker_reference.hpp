// Test-only retained reference implementation of the MVSG checker: the
// pre-index, map-based check_mvsg exactly as it shipped before the
// version-indexed rework (hash-map version-placement loop, per-var value
// lookup maps, multiset-based real-time tracking). Kept verbatim so
// tests/checker_equivalence_test.cpp can pit the production index path
// against it on every history the conformance/stress generators produce:
// the verdicts must agree (error strings and witnesses are allowed to
// differ — the reference produces none).
//
// Do not "fix" or optimize this file; its value is being the old checker.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "history/checker.hpp"
#include "history/event.hpp"

namespace oftm::history::reference {
namespace detail {

inline std::string tx_name(core::TxId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "T%" PRIx64, id);
  return buf;
}

// Per-transaction digest: external reads (first value observed per t-var
// before any own write) and final writes (last written value per t-var).
struct Digest {
  const TxRecord* rec = nullptr;
  std::map<core::TVarId, core::Value> external_reads;
  std::map<core::TVarId, core::Value> final_writes;
};

inline bool digest_tx(const TxRecord& rec, Digest& out, std::string& err) {
  out.rec = &rec;
  std::map<core::TVarId, core::Value> own;  // latest own write per var
  for (const TxOp& op : rec.ops) {
    if (op.aborted) continue;  // the abort response carries no value
    if (op.op == OpType::kRead) {
      auto ow = own.find(op.tvar);
      if (ow != own.end()) {
        if (op.result != ow->second) {
          err = tx_name(rec.id) + ": read of x" + std::to_string(op.tvar) +
                " after own write returned a foreign value";
          return false;
        }
        continue;  // internal read
      }
      auto [it, inserted] = out.external_reads.emplace(op.tvar, op.result);
      if (!inserted && it->second != op.result) {
        err = tx_name(rec.id) + ": two external reads of x" +
              std::to_string(op.tvar) + " disagree";
        return false;
      }
    } else if (op.op == OpType::kWrite) {
      own[op.tvar] = op.arg;
      out.final_writes[op.tvar] = op.arg;
    }
  }
  return true;
}

}  // namespace detail

inline CheckResult check_mvsg_reference(const std::vector<TxRecord>& txns,
                                        const MvsgOptions& options = {}) {
  using detail::Digest;
  using detail::tx_name;

  // Node 0 is the virtual initializing transaction T0.
  struct Node {
    Digest digest;
    bool committed = false;
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    core::TxId id = 0;
  };
  std::vector<Node> nodes(1);
  nodes[0].committed = true;  // T0 precedes everything

  for (const TxRecord& rec : txns) {
    const bool committed =
        rec.committed() ||
        (rec.commit_pending && options.commit_pending_as_committed);
    if (!committed && !options.include_aborted_readers) continue;
    Node n;
    std::string err;
    if (!detail::digest_tx(rec, n.digest, err)) {
      return CheckResult::failure(err);
    }
    n.committed = committed;
    n.first_seq = rec.first_seq;
    n.last_seq = rec.last_seq;
    n.id = rec.id;
    nodes.push_back(std::move(n));
  }
  const std::size_t n = nodes.size();

  // Version chains: per t-var, the order in which committed writers'
  // values superseded each other (value-chase under the RMW discipline,
  // completion-time fallback for blind writes).
  struct Version {
    core::Value value;
    std::size_t writer;  // node index
  };
  std::map<core::TVarId, std::vector<Version>> chains;
  {
    std::map<core::TVarId, std::vector<std::size_t>> writers_of;
    for (std::size_t i = 1; i < n; ++i) {
      if (!nodes[i].committed) continue;
      for (const auto& [x, v] : nodes[i].digest.final_writes) {
        writers_of[x].push_back(i);
      }
    }
    for (auto& [x, writers] : writers_of) {
      bool all_rmw = true;
      for (std::size_t i : writers) {
        if (nodes[i].digest.external_reads.find(x) ==
            nodes[i].digest.external_reads.end()) {
          all_rmw = false;
          break;
        }
      }
      auto& chain = chains[x];
      if (all_rmw) {
        // Chase the chain from the initial value.
        std::unordered_map<core::Value, std::vector<std::size_t>> by_read;
        for (std::size_t i : writers) {
          by_read[nodes[i].digest.external_reads.at(x)].push_back(i);
        }
        core::Value cur = options.initial_value;
        std::size_t placed = 0;
        while (placed < writers.size()) {
          auto it = by_read.find(cur);
          if (it == by_read.end() || it->second.empty()) {
            return CheckResult::failure(
                "version chain gap on x" + std::to_string(x) + ": " +
                std::to_string(writers.size() - placed) +
                " committed writer(s) read a superseded value");
          }
          if (it->second.size() > 1) {
            return CheckResult::failure(
                "version chain fork on x" + std::to_string(x) +
                ": two committed writers read the same version");
          }
          const std::size_t w = it->second.front();
          it->second.clear();
          chain.push_back(Version{nodes[w].digest.final_writes.at(x), w});
          cur = chain.back().value;
          ++placed;
        }
      } else {
        std::sort(writers.begin(), writers.end(),
                  [&](std::size_t a, std::size_t b) {
                    return nodes[a].last_seq < nodes[b].last_seq;
                  });
        for (std::size_t i : writers) {
          chain.push_back(Version{nodes[i].digest.final_writes.at(x), i});
        }
      }
    }
  }

  // Reads-from resolution: (var, value) -> version index in chain.
  std::map<core::TVarId, std::unordered_map<core::Value, std::size_t>> lookup;
  for (auto& [x, chain] : chains) {
    auto& m = lookup[x];
    for (std::size_t vi = 0; vi < chain.size(); ++vi) {
      auto [it, inserted] = m.emplace(chain[vi].value, vi);
      if (!inserted) {
        return CheckResult::failure(
            "unique-writes discipline violated on x" + std::to_string(x) +
            " (two committed writers wrote the same value)");
      }
    }
  }

  // Build edges: version order, reads-from, anti-dependency.
  std::vector<std::vector<std::size_t>> adj(n);
  std::vector<std::size_t> indeg(n, 0);
  auto add_edge = [&](std::size_t a, std::size_t b) {
    if (a == b) return;
    adj[a].push_back(b);
    ++indeg[b];
  };

  for (const auto& [x, chain] : chains) {
    for (std::size_t vi = 0; vi + 1 < chain.size(); ++vi) {
      add_edge(chain[vi].writer, chain[vi + 1].writer);
    }
  }

  for (std::size_t i = 1; i < n; ++i) {
    for (const auto& [x, v] : nodes[i].digest.external_reads) {
      const auto chain_it = chains.find(x);
      std::size_t version = static_cast<std::size_t>(-1);  // -1 == initial
      if (v != options.initial_value) {
        if (chain_it == chains.end()) {
          return CheckResult::failure(
              tx_name(nodes[i].id) + " read a value of x" + std::to_string(x) +
              " that no committed transaction wrote");
        }
        const auto& m = lookup[x];
        auto it = m.find(v);
        if (it == m.end()) {
          return CheckResult::failure(
              tx_name(nodes[i].id) + " read value " + std::to_string(v) +
              " of x" + std::to_string(x) +
              " that no committed transaction wrote (dirty or lost read)");
        }
        version = it->second;
        add_edge(chain_it->second[version].writer, i);  // rf
      } else {
        add_edge(0, i);  // rf from T0
      }
      // Anti-dependency: the reader precedes the next version's writer.
      if (chain_it != chains.end()) {
        const std::size_t next = version + 1;  // works for -1 too (0)
        if (next < chain_it->second.size()) {
          add_edge(i, chain_it->second[next].writer);
        }
      }
    }
  }

  // Acyclicity via Kahn's algorithm; real-time edges handled implicitly.
  std::multiset<std::uint64_t> unfinished_last;
  if (options.respect_real_time) {
    for (std::size_t i = 1; i < n; ++i) {
      unfinished_last.insert(nodes[i].last_seq);
    }
  }

  auto rt_ready = [&](std::size_t i) {
    if (!options.respect_real_time || i == 0) return true;
    auto it = unfinished_last.begin();
    if (it == unfinished_last.end()) return true;
    std::uint64_t min_last = *it;
    if (min_last == nodes[i].last_seq) {
      auto second = std::next(it);
      min_last =
          (second == unfinished_last.end()) ? ~std::uint64_t{0} : *second;
    }
    return min_last >= nodes[i].first_seq;
  };

  std::vector<std::size_t> ready;
  std::multimap<std::uint64_t, std::size_t> rt_blocked;
  auto enqueue = [&](std::size_t i) {
    if (rt_ready(i)) {
      ready.push_back(i);
    } else {
      rt_blocked.emplace(nodes[i].first_seq, i);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) enqueue(i);
  }

  std::vector<char> emitted(n, 0);
  std::size_t emitted_count = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    emitted[i] = 1;
    ++emitted_count;
    if (options.respect_real_time && i != 0) {
      unfinished_last.erase(unfinished_last.find(nodes[i].last_seq));
    }
    for (std::size_t t : adj[i]) {
      if (--indeg[t] == 0) enqueue(t);
    }
    while (!rt_blocked.empty() && rt_ready(rt_blocked.begin()->second)) {
      ready.push_back(rt_blocked.begin()->second);
      rt_blocked.erase(rt_blocked.begin());
    }
  }

  if (emitted_count != n) {
    std::string stuck;
    int shown = 0;
    for (std::size_t i = 0; i < n && shown < 6; ++i) {
      if (!emitted[i]) {
        stuck += " " + tx_name(nodes[i].id);
        ++shown;
      }
    }
    return CheckResult::failure(
        std::string("serialization graph has a cycle") +
        (options.respect_real_time ? " (with real-time edges)" : "") +
        "; stuck transactions:" + stuck);
  }
  return CheckResult{};
}

}  // namespace oftm::history::reference
