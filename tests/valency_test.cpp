// Theorem 9 / Corollary 11 experiments: exhaustive state-space analysis of
// the canonical retry-consensus protocol over abstract fo-consensus, under
// the two abort semantics described in sim/valency.hpp.
//
// Reproduced claims (see EXPERIMENTS.md, E-T9 and E-C11):
//   * 3 processes, overlap-abort semantics (the exact adversary power used
//     by the paper's proof): a livelock cycle exists — wait-free consensus
//     is NOT achieved; moreover every bivalent state has a bivalent
//     successor, which is Claim 10's engine on this concrete protocol.
//   * 2 processes, fail-only semantics: every execution decides — the
//     possibility side of consensus number 2.
//   * Boundary finding: under the *unrestricted overlap* semantics even two
//     processes can be livelocked by paired aborts; the positive direction
//     of Corollary 11 (from [6]) therefore rests on abort semantics
//     strictly stronger than what fo-obstruction-freedom alone grants the
//     adversary. The repo documents this precisely instead of hand-waving.
#include <gtest/gtest.h>

#include "sim/valency.hpp"

namespace oftm::sim::valency {
namespace {

AnalysisOptions options_for(int n, AbortSemantics sem) {
  AnalysisOptions o;
  o.nprocs = n;
  o.semantics = sem;
  return o;
}

TEST(Valency, SafetyHoldsInEveryExploredState) {
  for (int n : {2, 3}) {
    for (auto sem : {AbortSemantics::kUnrestrictedOverlap,
                     AbortSemantics::kFailOnly}) {
      const Analysis a = analyze_retry_protocol(options_for(n, sem));
      ASSERT_TRUE(a.complete);
      EXPECT_FALSE(a.agreement_violated)
          << n << " procs, " << to_string(sem);
      EXPECT_FALSE(a.validity_violated) << n << " procs, " << to_string(sem);
    }
  }
}

// E-T9: the paper's impossibility, mechanized. Three processes, adversary
// may abort overlapping proposes (the proof's bracket move): livelock.
TEST(Valency, ThreeProcessesLivelockUnderOverlapAborts) {
  const Analysis a = analyze_retry_protocol(
      options_for(3, AbortSemantics::kUnrestrictedOverlap));
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(a.livelock_cycle_found);
  EXPECT_FALSE(a.always_decides);
  EXPECT_FALSE(a.livelock_witness.empty());
  // Claim 10's engine: bivalence can always be extended.
  EXPECT_GT(a.bivalent_states, 0u);
  EXPECT_TRUE(a.bivalence_always_extendable);
}

// Boundary finding: two processes are *also* livelockable under the
// unrestricted semantics (paired aborts forever) — the possibility half of
// Corollary 11 needs the stronger fail-only object.
TEST(Valency, TwoProcessesAlsoLivelockUnderOverlapAborts) {
  const Analysis a = analyze_retry_protocol(
      options_for(2, AbortSemantics::kUnrestrictedOverlap));
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(a.livelock_cycle_found);
}

// E-C11 (possibility): with fail-only aborts, two processes always decide,
// against every schedule and every legal abort choice.
TEST(Valency, TwoProcessesAlwaysDecideUnderFailOnly) {
  const Analysis a =
      analyze_retry_protocol(options_for(2, AbortSemantics::kFailOnly));
  ASSERT_TRUE(a.complete);
  EXPECT_FALSE(a.livelock_cycle_found);
  EXPECT_TRUE(a.always_decides);
}

// Control experiment: fail-only is in fact *stronger* than the paper's
// object — it admits wait-free consensus for three (and four) processes
// too, so it cannot be the object Theorem 9 is about. This pins the
// abstract object's power from both sides.
TEST(Valency, FailOnlyIsStrongerThanThePapersObject) {
  for (int n : {3, 4}) {
    const Analysis a =
        analyze_retry_protocol(options_for(n, AbortSemantics::kFailOnly));
    ASSERT_TRUE(a.complete);
    EXPECT_FALSE(a.livelock_cycle_found) << n;
    EXPECT_TRUE(a.always_decides) << n;
  }
}

TEST(Valency, FourProcessesLivelockUnderOverlapAborts) {
  const Analysis a = analyze_retry_protocol(
      options_for(4, AbortSemantics::kUnrestrictedOverlap));
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(a.livelock_cycle_found);
}

TEST(Valency, WitnessMentionsAbortMoves) {
  // The livelock witness must actually exercise the adversary's abort move
  // (a cycle with no aborts is impossible: phases only regress on abort).
  const Analysis a = analyze_retry_protocol(
      options_for(3, AbortSemantics::kUnrestrictedOverlap));
  bool has_abort = false;
  for (const std::string& move : a.livelock_witness) {
    if (move.find("abort") != std::string::npos) has_abort = true;
  }
  EXPECT_TRUE(has_abort);
}

// Protocol robustness: the adopt-the-minimum-announcement "helping"
// strategy does not defeat the Theorem-9 adversary either — the
// impossibility is about the object, not one retry shape.
TEST(Valency, AdoptMinProtocolAlsoLivelocksUnderOverlapAborts) {
  for (int n : {2, 3}) {
    AnalysisOptions o = options_for(n, AbortSemantics::kUnrestrictedOverlap);
    o.protocol = Protocol::kAdoptMin;
    const Analysis a = analyze_retry_protocol(o);
    ASSERT_TRUE(a.complete) << n;
    EXPECT_FALSE(a.agreement_violated) << n;
    EXPECT_FALSE(a.validity_violated) << n;
    EXPECT_TRUE(a.livelock_cycle_found) << n;
  }
}

TEST(Valency, AdoptMinProtocolDecidesUnderFailOnly) {
  for (int n : {2, 3}) {
    AnalysisOptions o = options_for(n, AbortSemantics::kFailOnly);
    o.protocol = Protocol::kAdoptMin;
    const Analysis a = analyze_retry_protocol(o);
    ASSERT_TRUE(a.complete) << n;
    EXPECT_FALSE(a.agreement_violated) << n;
    EXPECT_TRUE(a.always_decides) << n;
  }
}

TEST(Valency, StateSpaceIsModest) {
  // Regression guard for the encoding: the 3-process graph must stay small
  // enough for exhaustive analysis in CI.
  const Analysis a = analyze_retry_protocol(
      options_for(3, AbortSemantics::kUnrestrictedOverlap));
  EXPECT_LT(a.states, 200'000u);
  EXPECT_GT(a.states, 50u);
}

}  // namespace
}  // namespace oftm::sim::valency
