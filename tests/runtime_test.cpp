// Unit tests for the runtime substrate: thread registry, epoch reclamation,
// striped counters, histograms, PRNG, spin locks and barriers.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/backoff.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/epoch.hpp"
#include "runtime/spin_lock.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_registry.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::runtime {
namespace {

TEST(ThreadRegistry, AssignsStableIdPerThread) {
  const int a = ThreadRegistry::current_id();
  const int b = ThreadRegistry::current_id();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_TRUE(ThreadRegistry::is_registered());
}

TEST(ThreadRegistry, DistinctIdsAcrossLiveThreads) {
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  std::vector<int> ids(kThreads, -1);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[static_cast<std::size_t>(i)] = ThreadRegistry::current_id();
      ready.fetch_add(1);
      while (!go.load()) cpu_pause();  // hold the slot until all registered
    });
  }
  while (ready.load() != kThreads) cpu_pause();
  go.store(true);
  for (auto& t : threads) t.join();
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, SlotsAreRecycledAfterThreadExit) {
  const int before = ThreadRegistry::live_threads();
  std::thread([] { ThreadRegistry::current_id(); }).join();
  std::thread([] { ThreadRegistry::current_id(); }).join();
  EXPECT_EQ(ThreadRegistry::live_threads(), before);
}

// --- Epoch reclamation ----------------------------------------------------

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(Epoch, RetiredObjectsAreEventuallyFreed) {
  EpochManager mgr;
  for (int i = 0; i < 1000; ++i) mgr.retire(new Tracked);
  // No readers: repeated reclaim passes must advance the epoch and drain.
  for (int i = 0; i < 10 && Tracked::live.load() != 0; ++i) mgr.reclaim();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, PinnedReaderBlocksReclamationOfCurrentEpoch) {
  EpochManager mgr;
  auto* obj = new Tracked;
  {
    EpochManager::Guard guard(mgr);
    mgr.retire(obj);
    // While we are pinned at the retire epoch, the object cannot be freed.
    mgr.reclaim();
    mgr.reclaim();
    EXPECT_EQ(Tracked::live.load(), 1);
  }
  for (int i = 0; i < 10 && Tracked::live.load() != 0; ++i) mgr.reclaim();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, GuardIsReentrant) {
  EpochManager mgr;
  EpochManager::Guard outer(mgr);
  {
    EpochManager::Guard inner(mgr);
  }
  // Still pinned: a retire from another thread at a later epoch must not be
  // freed yet. Indirect check: epoch cannot advance past our pin by 2.
  const std::uint64_t pinned_at = mgr.epoch();
  std::thread([&] {
    for (int i = 0; i < 5; ++i) {
      mgr.retire(new Tracked);
      mgr.reclaim();
    }
  }).join();
  EXPECT_LE(mgr.epoch(), pinned_at + 1);
}

TEST(Epoch, ConcurrentRetireAndReclaimIsLeakFree) {
  {
    EpochManager mgr;
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          EpochManager::Guard guard(mgr);
          mgr.retire(new Tracked);
        }
      });
    }
    for (auto& t : threads) t.join();
    // Manager destructor frees the stragglers.
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

// --- Stats -----------------------------------------------------------------

TEST(StripedCounter, SumsAcrossThreads) {
  StripedCounter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.read(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Log2Histogram, QuantilesBracketRecordedValues) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1024u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_GE(h.quantile(0.5), 511u);  // bucket upper bounds
  EXPECT_GE(h.quantile(1.0), 1023u);
  EXPECT_NEAR(h.mean(), 512.5, 1.0);
}

// Regression: record() used to compute bucket 64 - clz(v) == 64 for any
// value with bit 63 set and write one past buckets_[63]. Run under ASan
// (cmake --preset asan) to certify the fix.
TEST(Log2Histogram, TopBucketValuesStayInBounds) {
  constexpr std::uint64_t kTop = std::uint64_t{1} << 63;
  EXPECT_EQ(Log2Histogram::bucket_of(~0ull), Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(kTop), Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(kTop - 1), Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);

  Log2Histogram h;
  h.record(~0ull);
  h.record(kTop);
  h.record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~0ull);
  // quantile() must agree with the clamp: the top bucket's nominal upper
  // bound (2^64 - 1 via 1 << 64) would be UB, so it answers with the
  // observed maximum.
  EXPECT_EQ(h.quantile(1.0), ~0ull);
  EXPECT_EQ(h.quantile(0.9), ~0ull);
  EXPECT_EQ(h.quantile(0.1), 1u);

  Log2Histogram other;
  other.record(~0ull);
  h += other;
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.quantile(1.0), ~0ull);
}

// --- PRNG -------------------------------------------------------------------

TEST(Xoshiro, RangeIsRespected) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_range(77), 77u);
  }
}

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, RoughUniformity) {
  Xoshiro256 rng(7);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_range(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.15);
  }
}

// --- SpinLock / Barrier ------------------------------------------------------

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  std::uint64_t shared = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        std::scoped_lock guard(lock);
        ++shared;  // data race iff the lock is broken
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SpinBarrier, AlignsPhases) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        in_phase.fetch_add(1);
        barrier.arrive_and_wait();
        if (in_phase.load() < kThreads) failed.store(true);
        barrier.arrive_and_wait();
        in_phase.fetch_sub(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(CacheAligned, IsolatesLines) {
  CacheAligned<std::atomic<int>> a, b;
  const auto pa = reinterpret_cast<std::uintptr_t>(&a);
  const auto pb = reinterpret_cast<std::uintptr_t>(&b);
  EXPECT_EQ(pa % kCacheLineSize, 0u);
  EXPECT_EQ(pb % kCacheLineSize, 0u);
}

TEST(Backoff, LimitGrowsAndResets) {
  ExponentialBackoff bo(4, 64);
  const auto initial = bo.current_limit();
  for (int i = 0; i < 10; ++i) bo.pause();
  EXPECT_GT(bo.current_limit(), initial);
  EXPECT_LE(bo.current_limit(), 64u);
  bo.reset();
  EXPECT_EQ(bo.current_limit(), initial);
}

// Regression: the doubling used to stop *below* max_spins, so a
// non-power-of-two bound overshot by up to 2x (min 3 doubled past 100
// landed on 192). The limit must now saturate at exactly max_spins.
TEST(Backoff, DoublingClampsExactlyToMaxSpins) {
  ExponentialBackoff bo(3, 100);
  for (int i = 0; i < 16; ++i) {
    bo.pause();
    EXPECT_LE(bo.current_limit(), 100u);
  }
  EXPECT_EQ(bo.current_limit(), 100u);
}

// Regression: min_spins == 0 left the randomization drawing from an empty
// range forever (limit 0 doubles to 0). Bounds are normalized so the
// working limit is always >= 1 and max is never below min.
TEST(Backoff, ZeroAndInvertedBoundsAreNormalized) {
  ExponentialBackoff zero(0, 0);
  EXPECT_EQ(zero.current_limit(), 1u);
  zero.pause();
  EXPECT_EQ(zero.current_limit(), 1u);  // max normalized up to min

  ExponentialBackoff inverted(64, 8);  // max below min: clamp to min
  inverted.pause();
  EXPECT_EQ(inverted.current_limit(), 64u);
}

// Regression for the from_thread() seeding bug: it used to hash the
// *address* of a thread_local, so two threads (or two calls, or a recycled
// thread slot) could share one jitter stream and back off in lock-step —
// exactly the convoy randomization exists to break. Every from_thread()
// stream must now be distinct.
TEST(Xoshiro, FromThreadStreamsAreDistinctPerCall) {
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < 32; ++i) {
    firsts.insert(Xoshiro256::from_thread().next());
  }
  EXPECT_EQ(firsts.size(), 32u);
}

TEST(Xoshiro, FromThreadStreamsAreDistinctAcrossThreads) {
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> firsts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { firsts[t] = Xoshiro256::from_thread().next(); });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint64_t> unique(firsts.begin(), firsts.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

// The explicitly-seeded constructor pins the jitter stream for replayable
// schedules: equal seeds must behave identically (observable through the
// deterministic limit trajectory plus the shared Xoshiro determinism pin
// in Xoshiro.DeterministicForEqualSeeds).
TEST(Backoff, ExplicitSeedConstructorIsWellFormed) {
  ExponentialBackoff a(4, 64, /*seed=*/99);
  ExponentialBackoff b(4, 64, /*seed=*/99);
  for (int i = 0; i < 6; ++i) {
    a.pause();
    b.pause();
    EXPECT_EQ(a.current_limit(), b.current_limit());
  }
}

}  // namespace
}  // namespace oftm::runtime
