// Checked-stress run of the sharded KV service: the full mixed OLTP
// workload (point ops, cross-shard 2PC transfers, range scans, index
// churn) with every shard's TM wrapped in a history::RecordingTm, then
// each per-shard history opacity-certified with check_mvsg and the global
// cross-shard conservation audit asserted on top.
//
// The checker's unique-writes discipline does not hold for raw container
// traffic (two puts can write the same balance; the meta word writes
// running sums), so the shard hook injects recorded scratch t-var
// operations into EVERY service transaction — a read of a neighbour
// thread's scratch var, a read of the thread's own, and a unique-valued
// write of its own — and the checked history is the projection onto the
// scratch vars (container/meta reads and writes dropped; begin/tryC/tryA
// events kept, so transaction boundaries and outcomes survive). The
// projection of a well-formed history is well-formed — responses carry
// the invocation's tvar, so matched pairs are dropped together — and if a
// backend ever served the service a non-opaque schedule, the scratch
// projection riding inside those same transactions could not stay opaque
// either. Transactions whose abort response landed on a dropped container
// op digest as active; include_aborted_readers folds their surviving
// scratch reads into the check as reader-only nodes.
//
// Region recipes need the same projection for a different reason: their
// container traffic is word-granular and unrecorded, but the meta word is
// a real recorded t-var with non-unique values.
//
// Suite label: checked-stress (own CI job; excluded from sanitizer
// presets — see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/memory_model.hpp"
#include "core/tm.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/thread_registry.hpp"
#include "svc/service.hpp"

namespace oftm::svc {
namespace {

ServiceConfig checked_config(const std::string& backend,
                             std::uint64_t ops_per_client) {
  ServiceConfig cfg;
  cfg.backend = backend;
  cfg.num_shards = 4;
  cfg.clients = 4;
  cfg.keys = 512;
  cfg.ops_per_client = ops_per_client;
  // Transfer-heavy to stress the 2PC paths; scans kept rare because on
  // boxed recipes every balance scan records a full-table read into the
  // history (the projection drops them, but they are still logged).
  cfg.put_fraction = 0.15;
  cfg.transfer_fraction = 0.30;
  cfg.scan_fraction = 0.01;
  cfg.churn_fraction = 0.04;
  cfg.scan_span = 32;
  // Scratch t-vars the hook writes through, one per registry slot.
  cfg.extra_tvars = runtime::ThreadRegistry::kMaxThreads;
  return cfg;
}

// Scratch projection: drop container/meta t-var traffic, keep the scratch
// ops and every transaction-control event.
std::vector<history::Event> project_scratch(
    const std::vector<history::Event>& events, core::TVarId scratch_base) {
  std::vector<history::Event> kept;
  kept.reserve(events.size());
  for (const history::Event& e : events) {
    if ((e.op == history::OpType::kRead ||
         e.op == history::OpType::kWrite) &&
        e.tvar < scratch_base) {
      continue;
    }
    kept.push_back(e);
  }
  return kept;
}

// Run the service on `backend` with recorded shards; certify opacity of
// each shard's scratch projection and the cross-shard conservation audit.
template <typename Model>
void run_checked(const std::string& backend, std::uint64_t ops_per_client) {
  const ServiceConfig cfg = checked_config(backend, ops_per_client);
  const auto scratch_base = static_cast<core::TVarId>(shard_tvar_words(cfg));
  // Boxed recipes record container traffic; region container words forward
  // unrecorded (only the scratch projection lands in the history).
  const std::size_t reserve_per_shard = estimated_shard_history_events(
      cfg, /*records_container_ops=*/std::is_same_v<Model, core::BoxedMemory>);

  auto inner = make_service_tms(cfg);
  std::vector<std::unique_ptr<history::Recorder>> recorders;
  std::vector<std::unique_ptr<history::RecordingTm>> recorded;
  std::vector<core::TransactionalMemory*> raw;
  for (auto& tm : inner) {
    recorders.push_back(std::make_unique<history::Recorder>());
    recorders.back()->reserve(reserve_per_shard);
    recorded.push_back(
        std::make_unique<history::RecordingTm>(*tm, *recorders.back()));
    raw.push_back(recorded.back().get());
  }

  KvServiceT<Model> service(cfg, raw);
  for (int i = 0; i < cfg.num_shards; ++i) {
    service.shard(i).set_tx_hook([scratch_base](core::TxView& tx) {
      // Unique value per ATTEMPT: a retried attempt is a distinct recorded
      // transaction and must not duplicate a written value. The counter is
      // thread-local and the thread id is baked into the high bits, so
      // values are unique across every shard's history at once.
      static thread_local std::uint64_t attempt_seq = 0;
      const int id = runtime::ThreadRegistry::current_id();
      const core::Value unique =
          (static_cast<core::Value>(id + 1) << 40) | ++attempt_seq;
      const auto neighbour = static_cast<core::TVarId>(
          (id + 1) % runtime::ThreadRegistry::kMaxThreads);
      (void)tx.read(scratch_base + neighbour);
      (void)tx.read(scratch_base + static_cast<core::TVarId>(id));
      tx.write(scratch_base + static_cast<core::TVarId>(id), unique);
    });
  }

  service.init_and_seed();
  const SvcRunResult result = service.run_clients();

  // The run must have exercised what it claims to certify.
  EXPECT_GT(result.ops, 0u);
  EXPECT_GT(result.coord.committed_two_phase, 0u)
      << "no cross-shard transfer committed; the 2PC paths went untested";
  EXPECT_GT(result.transfers_committed, 0u);

  std::string why;
  EXPECT_TRUE(service.audit(&why)) << why;

  for (int i = 0; i < cfg.num_shards; ++i) {
    history::Recorder& recorder = *recorders[static_cast<std::size_t>(i)];
    const auto events = recorder.events();
    // Pre-sizing drift guard: the estimator must cover what the shard
    // actually recorded, or recording paid regrowth stalls mid-run.
    EXPECT_LE(events.size(), recorder.reserved())
        << "shard " << i
        << " outgrew its reserve: estimated_shard_history_events "
           "underestimates this configuration";
    const auto projected = project_scratch(events, scratch_base);
    ASSERT_EQ(history::Recorder::check_well_formed(projected, /*threads=*/0),
              "")
        << "shard " << i;
    const auto txns =
        history::Recorder::transactions(projected, /*threads=*/0);
    EXPECT_GT(txns.size(), 1000u) << "shard " << i << " saw too few txns";
    history::MvsgOptions opts;
    opts.respect_real_time = true;
    opts.include_aborted_readers = true;
    opts.threads = 0;  // parallel check; bit-identical to sequential
    const auto check = history::check_mvsg(txns, opts);
    EXPECT_TRUE(check.ok) << "shard " << i << ": " << check.error;
  }
}

// Boxed recipe: container traffic IS recorded (and projected away); the
// per-shard event logs are large, so the op count stays moderate.
TEST(SvcCheckedStress, MixedOltpOpacityOnTl2) {
  run_checked<core::BoxedMemory>("tl2", 6'250);
}

// Region recipes: container words are unrecorded, histories are compact —
// scale the op count up instead.
TEST(SvcCheckedStress, MixedOltpOpacityOnTl2Region) {
  run_checked<core::RegionMemory>("tl2-region", 12'500);
}

TEST(SvcCheckedStress, MixedOltpOpacityOnNorecRegion) {
  run_checked<core::RegionMemory>("norec-region", 12'500);
}

}  // namespace
}  // namespace oftm::svc
