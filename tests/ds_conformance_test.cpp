// Dual-tier, dual-layout conformance for the write-once ds:: containers:
// the SAME linearizable op-sequence oracle runs over every container ×
// both memory models (boxed TVarId arenas and the word-granular region
// heap) × both execution tiers (portability and pooled-session — the
// "@session" parameters). The layout is not chosen by the test: it is
// dispatched from the backend's capability, exactly as applications do.
//
// Also hosts the satellite regressions of PR 8:
//   * THashMap probe-length stability under delete/insert churn (the
//     erase-time tombstone trimming + insert-time tombstone reuse pair);
//   * TQueue monotone-position edge cases: wraparound past capacity,
//     full/empty boundary, and dequeue-on-empty composing with the
//     dead-view poison discipline.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "ds/tqueue.hpp"
#include "runtime/xorshift.hpp"
#include "tm_conformance.hpp"

namespace oftm::ds {
namespace {

// Backends the container suite sweeps: both lock-based baselines, an
// obstruction-free backend, the coarse control, and both region recipes.
// foctm is excluded for the usual reason (Algorithm 2 read-acquires every
// node on a walk and livelocks on hot shared structures).
const std::vector<std::string>& ds_backends() {
  static const std::vector<std::string> names = {
      "tl2", "norec", "dstm", "coarse", "tl2-region", "norec-region"};
  return names;
}

std::vector<std::string> ds_backends_session_tier() {
  std::vector<std::string> v;
  for (const auto& name : ds_backends()) {
    v.push_back(name + std::string(conformance::kSessionTierSuffix));
  }
  return v;
}

class DsConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  // `words` is the boxed-layout footprint — the larger of the two models,
  // so the same budget fits either layout the dispatch picks.
  std::unique_ptr<core::TransactionalMemory> make(std::size_t words) {
    return conformance::make_conformance_tm(GetParam(), words);
  }
};

// ---------------------------------------------------------------------------
// Linearizable op-sequence oracles: every container op runs as its own
// committed transaction and must agree with a sequential reference
// structure op for op — on any backend, layout and tier.

template <typename Model>
void run_list_oracle(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 64;
  TListSetT<Model> set(tm, 0, kCap);
  set.init();
  std::set<std::uint64_t> ref;
  runtime::Xoshiro256 rng(4242);
  for (int i = 0; i < 1200; ++i) {
    const std::uint64_t key = rng.next_range(48) + 1;
    switch (rng.next_range(3)) {
      case 0: {
        const bool inserted = core::atomically(
            tm, [&](core::TxView& tx) { return set.insert(tx, key); });
        ASSERT_EQ(inserted, ref.insert(key).second) << "key " << key;
        break;
      }
      case 1: {
        const bool erased = core::atomically(
            tm, [&](core::TxView& tx) { return set.erase(tx, key); });
        ASSERT_EQ(erased, ref.erase(key) == 1) << "key " << key;
        break;
      }
      default: {
        const bool present = core::atomically(
            tm, [&](core::TxView& tx) { return set.contains(tx, key); });
        ASSERT_EQ(present, ref.count(key) == 1) << "key " << key;
        break;
      }
    }
    if (i % 101 == 0) {
      const std::uint64_t n = core::atomically(
          tm, [&](core::TxView& tx) { return set.size(tx); });
      ASSERT_EQ(n, ref.size());
    }
  }
  EXPECT_TRUE(set.audit_quiescent());
}

template <typename Model>
void run_map_oracle(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 64;
  THashMapT<Model> map(tm, 0, kCap);
  map.init();
  std::unordered_map<std::uint64_t, core::Value> ref;
  runtime::Xoshiro256 rng(999);
  for (int i = 0; i < 1200; ++i) {
    const std::uint64_t key = rng.next_range(48);
    switch (rng.next_range(3)) {
      case 0: {
        const core::Value v = rng.next();
        const bool fresh = core::atomically(
            tm, [&](core::TxView& tx) { return map.put(tx, key, v); });
        ASSERT_EQ(fresh, ref.find(key) == ref.end()) << "key " << key;
        ref[key] = v;
        break;
      }
      case 1: {
        const bool erased = core::atomically(
            tm, [&](core::TxView& tx) { return map.erase(tx, key); });
        ASSERT_EQ(erased, ref.erase(key) == 1) << "key " << key;
        break;
      }
      default: {
        const auto got = core::atomically(
            tm, [&](core::TxView& tx) { return map.get(tx, key); });
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end()) << "key " << key;
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(map.size_quiescent(), ref.size());
}

template <typename Model>
void run_queue_oracle(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 8;
  TQueueT<Model> queue(tm, 0, kCap);
  queue.init();
  std::deque<core::Value> ref;
  runtime::Xoshiro256 rng(77);
  core::Value next = 1;
  for (int i = 0; i < 1200; ++i) {
    if (rng.next_bool(0.55)) {
      const core::Value v = next++;
      const bool queued = core::atomically(
          tm, [&](core::TxView& tx) { return queue.enqueue(tx, v); });
      ASSERT_EQ(queued, ref.size() < kCap);
      if (queued) ref.push_back(v);
    } else {
      const auto got = core::atomically(
          tm, [&](core::TxView& tx) { return queue.dequeue(tx); });
      ASSERT_EQ(got.has_value(), !ref.empty());
      if (got.has_value()) {
        ASSERT_EQ(*got, ref.front());
        ref.pop_front();
      }
    }
  }
  EXPECT_EQ(queue.size_quiescent(), ref.size());
}

TEST_P(DsConformanceTest, ListMatchesSequentialOracle) {
  auto tm = make(TListSet::tvars_needed(64));
  core::with_memory_model(*tm, [&](auto tag) {
    run_list_oracle<typename decltype(tag)::type>(*tm);
  });
}

TEST_P(DsConformanceTest, MapMatchesSequentialOracle) {
  auto tm = make(THashMap::tvars_needed(64));
  core::with_memory_model(*tm, [&](auto tag) {
    run_map_oracle<typename decltype(tag)::type>(*tm);
  });
}

TEST_P(DsConformanceTest, QueueMatchesSequentialOracle) {
  auto tm = make(TQueue::tvars_needed(8));
  core::with_memory_model(*tm, [&](auto tag) {
    run_queue_oracle<typename decltype(tag)::type>(*tm);
  });
}

// Composition across containers stays atomic on every layout: the
// queue -> map transfer transaction from the examples, oracle-checked.
template <typename Model>
void run_transfer_oracle(core::TransactionalMemory& tm) {
  using Map = THashMapT<Model>;
  using Queue = TQueueT<Model>;
  Queue queue(tm, 0, 8);
  Map map(tm, static_cast<core::TVarId>(Queue::tvars_needed(8)), 16);
  queue.init();
  map.init();
  core::atomically(tm, [&](core::TxView& tx) {
    for (core::Value v = 1; v <= 5; ++v) ASSERT_TRUE(queue.enqueue(tx, v));
  });
  for (int i = 0; i < 5; ++i) {
    core::atomically(tm, [&](core::TxView& tx) {
      const auto v = queue.dequeue(tx);
      ASSERT_TRUE(v.has_value());
      map.put(tx, *v, *v * 10);
    });
  }
  core::atomically(tm, [&](core::TxView& tx) {
    EXPECT_EQ(queue.size(tx), 0u);
    for (core::Value v = 1; v <= 5; ++v) {
      EXPECT_EQ(map.get(tx, v).value(), v * 10);
    }
  });
}

TEST_P(DsConformanceTest, ComposedTransferAcrossLayouts) {
  auto tm = make(TQueue::tvars_needed(8) + THashMap::tvars_needed(16));
  core::with_memory_model(*tm, [&](auto tag) {
    run_transfer_oracle<typename decltype(tag)::type>(*tm);
  });
}

// ---------------------------------------------------------------------------
// Satellite: THashMap tombstone hygiene. A put/erase cycle of a key that
// leaves the table empty again must leave the table *clean* again —
// erase-time trimming reverts the tombstone because its physical successor
// is empty. Before the fix every churned hash slot stayed a tombstone
// forever and absent-key lookups degraded toward full-table scans.

template <typename Model>
void run_probe_churn(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 16;
  THashMapT<Model> map(tm, 0, kCap);
  map.init();
  for (std::uint64_t round = 0; round < 3 * kCap; ++round) {
    const std::uint64_t key = 1000 + round;
    core::atomically(tm, [&](core::TxView& tx) {
      EXPECT_TRUE(map.put(tx, key, round));
    });
    core::atomically(tm,
                     [&](core::TxView& tx) { EXPECT_TRUE(map.erase(tx, key)); });
  }
  EXPECT_EQ(map.size_quiescent(), 0u);
  // As clean as freshly initialized: every lookup terminates on probe 1.
  for (std::uint64_t k = 0; k < 2 * kCap; ++k) {
    EXPECT_EQ(map.probe_length_quiescent(2000 + k), 1u) << "key " << 2000 + k;
  }
}

// Steady live population with fresh keys churning through: probe lengths
// must stay bounded away from a full-table scan instead of degrading
// monotonically. Deterministic (fixed keys, fixed hash).
template <typename Model>
void run_probe_churn_with_live_keys(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 16;
  THashMapT<Model> map(tm, 0, kCap);
  map.init();
  std::deque<std::uint64_t> live;
  std::uint64_t next_key = 1;
  for (int i = 0; i < 4; ++i) {
    core::atomically(tm, [&](core::TxView& tx) {
      EXPECT_TRUE(map.put(tx, next_key, next_key));
    });
    live.push_back(next_key++);
  }
  for (int round = 0; round < 200; ++round) {
    core::atomically(tm, [&](core::TxView& tx) {
      EXPECT_TRUE(map.put(tx, next_key, next_key));
    });
    live.push_back(next_key++);
    const std::uint64_t victim = live.front();
    live.pop_front();
    core::atomically(
        tm, [&](core::TxView& tx) { EXPECT_TRUE(map.erase(tx, victim)); });
  }
  EXPECT_EQ(map.size_quiescent(), 4u);
  for (const std::uint64_t k : live) {
    EXPECT_LT(map.probe_length_quiescent(k), kCap) << "live key " << k;
  }
  // An absent key must terminate before scanning the whole table.
  EXPECT_LT(map.probe_length_quiescent(~std::uint64_t{0} - 7), kCap);
}

TEST_P(DsConformanceTest, HashMapProbeLengthStableUnderChurn) {
  auto tm = make(THashMap::tvars_needed(16));
  core::with_memory_model(*tm, [&](auto tag) {
    run_probe_churn<typename decltype(tag)::type>(*tm);
  });
}

TEST_P(DsConformanceTest, HashMapProbeLengthBoundedWithLivePopulation) {
  auto tm = make(THashMap::tvars_needed(16));
  core::with_memory_model(*tm, [&](auto tag) {
    run_probe_churn_with_live_keys<typename decltype(tag)::type>(*tm);
  });
}

// ---------------------------------------------------------------------------
// Satellite: TQueue monotone-position edge cases.

// Positions keep increasing past capacity; the ring indexing (pos mod
// capacity) must preserve FIFO across many wraparounds.
template <typename Model>
void run_queue_wraparound(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 4;
  TQueueT<Model> queue(tm, 0, kCap);
  queue.init();
  std::vector<core::Value> out;
  core::Value next = 1;
  for (int round = 0; round < 12; ++round) {  // 24 positions = 6 full wraps
    core::atomically(tm, [&](core::TxView& tx) {
      ASSERT_TRUE(queue.enqueue(tx, next));
      ASSERT_TRUE(queue.enqueue(tx, next + 1));
    });
    next += 2;
    core::atomically(tm, [&](core::TxView& tx) {
      const auto a = queue.dequeue(tx);
      const auto b = queue.dequeue(tx);
      ASSERT_TRUE(a.has_value() && b.has_value());
      out.push_back(*a);
      out.push_back(*b);
    });
  }
  ASSERT_EQ(out.size(), 24u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<core::Value>(i + 1));  // strict FIFO
  }
  EXPECT_EQ(queue.size_quiescent(), 0u);
}

template <typename Model>
void run_queue_full_empty_boundary(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 4;
  TQueueT<Model> queue(tm, 0, kCap);
  queue.init();
  core::atomically(tm, [&](core::TxView& tx) {
    EXPECT_FALSE(queue.dequeue(tx).has_value());  // empty at start
    for (core::Value v = 1; v <= kCap; ++v) EXPECT_TRUE(queue.enqueue(tx, v));
    EXPECT_FALSE(queue.enqueue(tx, 99));  // full
    EXPECT_EQ(queue.size(tx), std::uint64_t{kCap});
  });
  core::atomically(tm, [&](core::TxView& tx) {
    for (core::Value v = 1; v <= kCap; ++v) {
      EXPECT_EQ(queue.dequeue(tx).value(), v);
    }
    EXPECT_FALSE(queue.dequeue(tx).has_value());  // empty again
    // The boundary is reusable: a second full fill right after the drain.
    for (core::Value v = 10; v < 10 + kCap; ++v) {
      EXPECT_TRUE(queue.enqueue(tx, v));
    }
    EXPECT_FALSE(queue.enqueue(tx, 99));
  });
  EXPECT_EQ(queue.size_quiescent(), std::uint64_t{kCap});
}

// Dead-view composition: on a forcefully aborted transaction every
// container read poisons to 0, so dequeue must resolve to "empty"
// (nullopt), enqueue to false, and ok() to false — never garbage values —
// and none of it may perturb committed state.
template <typename Model>
void run_queue_poison_composition(core::TransactionalMemory& tm) {
  constexpr std::uint32_t kCap = 4;
  TQueueT<Model> queue(tm, 0, kCap);
  queue.init();
  core::atomically(tm, [&](core::TxView& tx) {
    ASSERT_TRUE(queue.enqueue(tx, 41));
    ASSERT_TRUE(queue.enqueue(tx, 42));
  });

  core::TxnPtr txn = tm.begin();
  core::TxView tx(tm, *txn);
  tm.try_abort(*txn);  // the view is now doomed: every read poisons
  EXPECT_FALSE(queue.dequeue(tx).has_value());
  EXPECT_FALSE(tx.ok());
  EXPECT_FALSE(queue.enqueue(tx, 99));
  EXPECT_EQ(queue.size(tx), 0u);  // poison positions, not a snapshot

  // Committed state is untouched by the doomed attempt.
  EXPECT_EQ(queue.size_quiescent(), 2u);
  core::atomically(tm, [&](core::TxView& fresh) {
    EXPECT_EQ(queue.dequeue(fresh).value(), 41u);
    EXPECT_EQ(queue.dequeue(fresh).value(), 42u);
  });
}

TEST_P(DsConformanceTest, QueueWraparoundPastCapacity) {
  auto tm = make(TQueue::tvars_needed(4));
  core::with_memory_model(*tm, [&](auto tag) {
    run_queue_wraparound<typename decltype(tag)::type>(*tm);
  });
}

TEST_P(DsConformanceTest, QueueFullEmptyBoundary) {
  auto tm = make(TQueue::tvars_needed(4));
  core::with_memory_model(*tm, [&](auto tag) {
    run_queue_full_empty_boundary<typename decltype(tag)::type>(*tm);
  });
}

TEST_P(DsConformanceTest, QueueDequeueOnEmptyComposesWithPoison) {
  auto tm = make(TQueue::tvars_needed(4));
  core::with_memory_model(*tm, [&](auto tag) {
    run_queue_poison_composition<typename decltype(tag)::type>(*tm);
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, DsConformanceTest,
                         ::testing::ValuesIn(ds_backends()),
                         conformance::backend_param_name);
INSTANTIATE_TEST_SUITE_P(LayoutsSessionTier, DsConformanceTest,
                         ::testing::ValuesIn(ds_backends_session_tier()),
                         conformance::backend_param_name);

}  // namespace
}  // namespace oftm::ds
