// Range scans over the ds:: containers, both layouts: sequential oracle
// checks, interaction with the hash map's tombstone-run trimming, and
// atomic-snapshot tests under concurrent erase — a scan transaction must
// see an invariant-preserving state even while writers insert and erase
// around it (the service's scan ops lean on exactly this).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "runtime/xorshift.hpp"
#include "workload/factory.hpp"

namespace oftm::ds {
namespace {

// Backends giving one boxed and one region instantiation of each scan.
const char* kBoxedBackend = "tl2";
const char* kRegionBackend = "tl2-region";

template <typename Model>
void map_scan_oracle(const std::string& backend) {
  constexpr std::uint32_t kCap = 256;
  auto tm = workload::make_tm_for_containers(
      backend, THashMapT<core::BoxedMemory>::tvars_needed(kCap));
  THashMapT<Model> map(*tm, 0, kCap);
  map.init();

  std::map<std::uint64_t, core::Value> oracle;
  runtime::Xoshiro256 rng(42);
  core::atomically(*tm, [&](core::TxView& tx) {
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t k = rng.next_range(500);
      const core::Value v = k * 3 + 1;
      map.put(tx, k, v);
      oracle[k] = v;
    }
  });

  // for_each visits exactly the live entries.
  std::map<std::uint64_t, core::Value> seen;
  core::atomically(*tm, [&](core::TxView& tx) {
    seen.clear();
    map.for_each(tx, [&](std::uint64_t k, core::Value v) {
      seen[k] = v;
      return true;
    });
  });
  EXPECT_EQ(seen, oracle);

  // range_sum matches the oracle on several windows, boundaries included.
  for (const auto [lo, hi] : {std::pair<std::uint64_t, std::uint64_t>{0, 500},
                              {100, 200},
                              {250, 251},
                              {499, 500},
                              {7, 7}}) {
    core::Value expected = 0;
    for (const auto& [k, v] : oracle) {
      if (k >= lo && k < hi) expected += v;
    }
    const core::Value got = core::atomically(
        *tm, [&](core::TxView& tx) { return map.range_sum(tx, lo, hi); });
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << ")";
  }

  // Erase-heavy churn drives the tombstone-run trimming (PR-8 hygiene);
  // scans must stay oracle-exact through it.
  for (int round = 0; round < 50; ++round) {
    core::atomically(*tm, [&](core::TxView& tx) {
      for (int i = 0; i < 8; ++i) {
        const std::uint64_t k = rng.next_range(500);
        if (rng.next_bool(0.7)) {
          map.erase(tx, k);
          oracle.erase(k);
        } else {
          map.put(tx, k, k + 1000 * static_cast<std::uint64_t>(round));
          oracle[k] = k + 1000 * static_cast<std::uint64_t>(round);
        }
      }
    });
  }
  core::atomically(*tm, [&](core::TxView& tx) {
    seen.clear();
    map.for_each(tx, [&](std::uint64_t k, core::Value v) {
      seen[k] = v;
      return true;
    });
  });
  EXPECT_EQ(seen, oracle);
}

template <typename Model>
void list_scan_oracle(const std::string& backend) {
  constexpr std::uint32_t kCap = 256;
  auto tm = workload::make_tm_for_containers(
      backend, TListSetT<core::BoxedMemory>::tvars_needed(kCap));
  TListSetT<Model> set(*tm, 0, kCap);
  set.init();

  std::vector<std::uint64_t> keys = {3, 7, 11, 40, 41, 42, 90, 300, 301};
  core::atomically(*tm, [&](core::TxView& tx) {
    for (std::uint64_t k : keys) set.insert(tx, k);
  });

  // Ordered, bounded, and count-exact.
  std::vector<std::uint64_t> visited;
  const std::uint64_t n = core::atomically(*tm, [&](core::TxView& tx) {
    visited.clear();
    return set.scan_range(tx, 7, 300,
                          [&](std::uint64_t k) { visited.push_back(k); });
  });
  const std::vector<std::uint64_t> expected = {7, 11, 40, 41, 42, 90};
  EXPECT_EQ(visited, expected);
  EXPECT_EQ(n, expected.size());

  // Empty window and full window.
  EXPECT_EQ(core::atomically(*tm,
                             [&](core::TxView& tx) {
                               return set.scan_range(tx, 100, 300,
                                                     [](std::uint64_t) {});
                             }),
            0u);
  EXPECT_EQ(core::atomically(*tm,
                             [&](core::TxView& tx) {
                               return set.scan_range(tx, 0, ~std::uint64_t{0},
                                                     [](std::uint64_t) {});
                             }),
            keys.size());
}

// Concurrent-erase snapshot test: writers atomically toggle PAIRS of keys
// (both present or both absent), scanners count pair members inside one
// transaction — an odd count would mean the scan saw a half-applied
// toggle, i.e. a torn snapshot.
template <typename Model>
void map_scan_under_concurrent_erase(const std::string& backend) {
  constexpr std::uint32_t kCap = 256;
  constexpr std::uint64_t kPairs = 32;
  constexpr std::uint64_t kPartner = 1000;  // key k pairs with k + kPartner
  auto tm = workload::make_tm_for_containers(
      backend, THashMapT<core::BoxedMemory>::tvars_needed(kCap));
  THashMapT<Model> map(*tm, 0, kCap);
  map.init();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    runtime::Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = rng.next_range(kPairs);
      core::atomically(*tm, [&](core::TxView& tx) {
        // Toggle the pair as one atomic unit. Erase drives tombstone
        // creation and run trimming under the scanner's feet.
        if (map.erase(tx, k)) {
          map.erase(tx, k + kPartner);
        } else if (tx.ok()) {
          map.put(tx, k, 1);
          map.put(tx, k + kPartner, 1);
        }
      });
    }
  });

  for (int i = 0; i < 300; ++i) {
    const std::uint64_t members = core::atomically(
        *tm, [&](core::TxView& tx) {
          std::uint64_t count = 0;
          map.for_each(tx, [&](std::uint64_t, core::Value) {
            ++count;
            return true;
          });
          return count;
        });
    EXPECT_EQ(members % 2, 0u) << "scan observed a torn pair toggle";
  }
  stop.store(true);
  writer.join();
}

template <typename Model>
void list_scan_under_concurrent_erase(const std::string& backend) {
  constexpr std::uint32_t kCap = 256;
  constexpr std::uint64_t kPairs = 32;
  auto tm = workload::make_tm_for_containers(
      backend, TListSetT<core::BoxedMemory>::tvars_needed(kCap));
  TListSetT<Model> set(*tm, 0, kCap);
  set.init();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    runtime::Xoshiro256 rng(11);
    while (!stop.load(std::memory_order_relaxed)) {
      // Pair (2k+1, 2k+2): adjacent in scan order, toggled atomically.
      const std::uint64_t k = rng.next_range(kPairs);
      core::atomically(*tm, [&](core::TxView& tx) {
        if (set.erase(tx, 2 * k + 1)) {
          set.erase(tx, 2 * k + 2);
        } else if (tx.ok()) {
          set.insert(tx, 2 * k + 1);
          set.insert(tx, 2 * k + 2);
        }
      });
    }
  });

  for (int i = 0; i < 300; ++i) {
    const std::uint64_t members = core::atomically(
        *tm, [&](core::TxView& tx) {
          return set.scan_range(tx, 0, 2 * kPairs + 2, [](std::uint64_t) {});
        });
    EXPECT_EQ(members % 2, 0u) << "scan observed a torn pair toggle";
  }
  stop.store(true);
  writer.join();
  EXPECT_TRUE(set.audit_quiescent());
}

TEST(DsScan, MapOracleBoxed) {
  map_scan_oracle<core::BoxedMemory>(kBoxedBackend);
}
TEST(DsScan, MapOracleRegion) {
  map_scan_oracle<core::RegionMemory>(kRegionBackend);
}
TEST(DsScan, ListOracleBoxed) {
  list_scan_oracle<core::BoxedMemory>(kBoxedBackend);
}
TEST(DsScan, ListOracleRegion) {
  list_scan_oracle<core::RegionMemory>(kRegionBackend);
}
TEST(DsScan, MapSnapshotUnderConcurrentEraseBoxed) {
  map_scan_under_concurrent_erase<core::BoxedMemory>(kBoxedBackend);
}
TEST(DsScan, MapSnapshotUnderConcurrentEraseRegion) {
  map_scan_under_concurrent_erase<core::RegionMemory>(kRegionBackend);
}
TEST(DsScan, ListSnapshotUnderConcurrentEraseBoxed) {
  list_scan_under_concurrent_erase<core::BoxedMemory>(kBoxedBackend);
}
TEST(DsScan, ListSnapshotUnderConcurrentEraseRegion) {
  list_scan_under_concurrent_erase<core::RegionMemory>(kRegionBackend);
}

}  // namespace
}  // namespace oftm::ds
