// Model checking the STM backends: exhaustively explore (preemption-bounded)
// schedules of small transactional scenarios on the simulator and check
// every resulting history against Definition 1 (serializability) with the
// assumption-free exhaustive checker.
#include <gtest/gtest.h>

#include <memory>

#include "cm/managers.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "sim/explorer.hpp"
#include "sim/platform.hpp"

namespace oftm {
namespace {

using SimDstm = dstm::Dstm<sim::SimPlatform>;
using SimFoctmStrict =
    foctm::Foctm<sim::SimPlatform, foc::StrictFocPolicy<sim::SimPlatform>>;
using SimFoctmCas =
    foctm::Foctm<sim::SimPlatform, foc::CasFocPolicy<sim::SimPlatform>>;

// Each process runs one transaction: read one t-var, write another, commit.
// Any interleaving must produce a serializable history.
template <typename Tm>
sim::SetupFn crossing_transactions_setup() {
  return [](sim::Env& env) {
    struct State {
      std::unique_ptr<Tm> tm;
      history::Recorder recorder;
      std::unique_ptr<history::RecordingTm> rec_tm;
      State() {
        if constexpr (std::is_same_v<Tm, SimDstm>) {
          tm = std::make_unique<Tm>(4, cm::make_manager("aggressive"));
        } else {
          tm = std::make_unique<Tm>(4);
        }
        rec_tm = std::make_unique<history::RecordingTm>(*tm, recorder);
      }
    };
    auto st = std::make_shared<State>();

    auto txn_body = [st](core::TVarId read_var, core::TVarId write_var,
                         core::Value value) {
      auto& tm = *st->rec_tm;
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, read_var).has_value()) return;
      if (!tm.write(*txn, write_var, value)) return;
      tm.try_commit(*txn);
    };
    env.set_body(0, [txn_body] { txn_body(0, 1, 101); });
    env.set_body(1, [txn_body] { txn_body(1, 0, 202); });

    return [st]() -> std::string {
      const auto wf = st->recorder.check_well_formed();
      if (!wf.empty()) return wf;
      const auto r =
          history::check_exhaustive_serializability(st->recorder.transactions());
      return r.ok ? "" : r.error;
    };
  };
}

TEST(ModelCheck, DstmCrossingTransactionsAreSerializable) {
  sim::ExplorerOptions options;
  options.preemption_bound = 3;
  options.max_executions = 20000;
  const auto r = sim::explore(2, crossing_transactions_setup<SimDstm>(),
                              options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_GT(r.executions, 10u);
}

TEST(ModelCheck, FoctmStrictCrossingTransactionsAreSerializable) {
  sim::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_executions = 20000;
  const auto r = sim::explore(
      2, crossing_transactions_setup<SimFoctmStrict>(), options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_GT(r.executions, 10u);
}

TEST(ModelCheck, FoctmCasCrossingTransactionsAreSerializable) {
  sim::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_executions = 20000;
  const auto r =
      sim::explore(2, crossing_transactions_setup<SimFoctmCas>(), options);
  EXPECT_FALSE(r.violation_found) << r.violation;
}

// Three processes hammering the same t-variable with read-modify-write
// transactions; retries until commit. Checks both serializability and the
// final-sum witness.
TEST(ModelCheck, DstmThreeWayCounterIsLinearizable) {
  auto setup = [](sim::Env& env) {
    struct State {
      std::unique_ptr<SimDstm> tm =
          std::make_unique<SimDstm>(1, cm::make_manager("aggressive"));
    };
    auto st = std::make_shared<State>();
    auto increment = [st] {
      auto& tm = *st->tm;
      for (int attempt = 0; attempt < 50; ++attempt) {
        core::TxnPtr txn = tm.begin();
        const auto v = tm.read(*txn, 0);
        if (!v) continue;
        if (!tm.write(*txn, 0, *v + 1)) continue;
        if (tm.try_commit(*txn)) return;
      }
    };
    for (int p = 0; p < 3; ++p) env.set_body(p, increment);
    return [st]() -> std::string {
      const auto v = st->tm->read_quiescent(0);
      return v == 3 ? "" : "lost increment: final=" + std::to_string(v);
    };
  };
  sim::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_executions = 30000;
  const auto r = sim::explore(3, setup, options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_GT(r.executions, 50u);
}

// Write-skew scenario: T0 reads x writes y; T1 reads y writes x. Under any
// schedule at most one of them may observe the other's write as absent
// while its own is observed — the exhaustive checker verifies every
// history; additionally the "both-read-zero-and-commit" outcome must be
// impossible... which for *serializable* TMs means: if both commit having
// read 0, that IS the write-skew anomaly and the checker flags it.
TEST(ModelCheck, DstmForbidsWriteSkew) {
  auto setup = [](sim::Env& env) {
    struct State {
      std::unique_ptr<SimDstm> tm =
          std::make_unique<SimDstm>(2, cm::make_manager("aggressive"));
      core::Value seen0 = 99, seen1 = 99;
      bool committed0 = false, committed1 = false;
    };
    auto st = std::make_shared<State>();
    env.set_body(0, [st] {
      auto& tm = *st->tm;
      core::TxnPtr txn = tm.begin();
      const auto v = tm.read(*txn, 0);
      if (!v) return;
      if (!tm.write(*txn, 1, 11)) return;
      st->seen0 = *v;
      st->committed0 = tm.try_commit(*txn);
    });
    env.set_body(1, [st] {
      auto& tm = *st->tm;
      core::TxnPtr txn = tm.begin();
      const auto v = tm.read(*txn, 1);
      if (!v) return;
      if (!tm.write(*txn, 0, 22)) return;
      st->seen1 = *v;
      st->committed1 = tm.try_commit(*txn);
    });
    return [st]() -> std::string {
      // Registers version: both committing while both read the initial 0 is
      // non-serializable (each must precede the other).
      if (st->committed0 && st->committed1 && st->seen0 == 0 &&
          st->seen1 == 0) {
        return "write skew: both committed having read 0";
      }
      return "";
    };
  };
  sim::ExplorerOptions options;
  options.preemption_bound = 3;
  options.max_executions = 30000;
  const auto r = sim::explore(2, setup, options);
  EXPECT_FALSE(r.violation_found) << r.violation;
}

}  // namespace
}  // namespace oftm
