// Randomized-schedule simulation sweeps (property style, parameterized by
// seed): run small transactional scenarios on the simulator under random
// schedules *with random crash injection*, then check every recorded
// history with the assumption-free exhaustive checker (Definition 1) plus
// the Definition 2 obstruction-freedom oracle.
//
// This complements the bounded-exhaustive explorer: the explorer covers all
// schedules of tiny scenarios; these sweeps cover bigger scenarios (more
// processes, more transactions, crashes) on a random sample of schedules.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cm/managers.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/xorshift.hpp"
#include "sim/env.hpp"
#include "sim/platform.hpp"

namespace oftm {
namespace {

using SimDstm = dstm::Dstm<sim::SimPlatform>;
using SimFoctm =
    foctm::Foctm<sim::SimPlatform, foc::StrictFocPolicy<sim::SimPlatform>>;

struct Scenario {
  static constexpr int kProcs = 4;
  static constexpr int kVars = 3;
  static constexpr int kTxPerProc = 2;  // 8 committed txns: the exhaustive
                                        // checker is factorial in this
};

// Each process runs kTxPerProc read-modify-write transactions over random
// vars (process-seeded, schedule-independent choices).
template <typename Tm>
void run_scenario(Tm& /*tm*/, history::RecordingTm& rec, std::uint64_t seed,
                  bool inject_crashes) {
  sim::Env env(Scenario::kProcs);
  for (int pid = 0; pid < Scenario::kProcs; ++pid) {
    env.set_body(pid, [&rec, pid, seed] {
      runtime::Xoshiro256 rng(runtime::mix64(seed * 131 + pid));
      for (int i = 0; i < Scenario::kTxPerProc; ++i) {
        for (int attempt = 0; attempt < 60; ++attempt) {
          core::TxnPtr txn = rec.begin();
          const auto a = static_cast<core::TVarId>(
              rng.next_range(Scenario::kVars));
          const auto b = static_cast<core::TVarId>(
              rng.next_range(Scenario::kVars));
          const auto v = rec.read(*txn, a);
          if (!v.has_value()) continue;
          // Unique value per (pid, i, attempt).
          const core::Value fresh =
              (static_cast<core::Value>(pid + 1) << 32) |
              (static_cast<core::Value>(i) << 16) |
              static_cast<core::Value>(attempt + 1);
          if (!rec.write(*txn, b, fresh)) continue;
          if (rec.try_commit(*txn)) break;
        }
      }
    });
  }
  env.start();
  runtime::Xoshiro256 sched(seed);
  std::uint64_t steps = 0;
  while (steps < 300000) {
    const auto runnable = env.runnable_pids();
    if (runnable.empty()) break;
    const int pid = runnable[sched.next_range(runnable.size())];
    if (inject_crashes && sched.next_bool(0.0005)) {
      env.crash(pid);
      continue;
    }
    if (env.step(pid)) ++steps;
  }
  ASSERT_LT(steps, 300000u) << "scenario did not terminate";
}

class SimRandomStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimRandomStress, DstmHistoriesSerializable) {
  auto tm = std::make_unique<SimDstm>(Scenario::kVars,
                                      cm::make_manager("polite"));
  history::Recorder recorder;
  history::RecordingTm rec(*tm, recorder);
  run_scenario(*tm, rec, GetParam(), /*inject_crashes=*/false);
  ASSERT_EQ(recorder.check_well_formed(), "");
  const auto r =
      history::check_exhaustive_serializability(recorder.transactions(),
                                                {.max_transactions = 64});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(SimRandomStress, DstmHistoriesSerializableUnderCrashes) {
  auto tm = std::make_unique<SimDstm>(Scenario::kVars,
                                      cm::make_manager("aggressive"));
  history::Recorder recorder;
  history::RecordingTm rec(*tm, recorder);
  run_scenario(*tm, rec, GetParam(), /*inject_crashes=*/true);
  // Crashed processes leave pending operations; history may contain live
  // transactions — exactly what commit-completions are for.
  const auto r =
      history::check_exhaustive_serializability(recorder.transactions(),
                                                {.max_transactions = 64});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(SimRandomStress, FoctmHistoriesSerializable) {
  auto tm = std::make_unique<SimFoctm>(Scenario::kVars);
  history::Recorder recorder;
  history::RecordingTm rec(*tm, recorder);
  run_scenario(*tm, rec, GetParam(), /*inject_crashes=*/false);
  const auto r =
      history::check_exhaustive_serializability(recorder.transactions(),
                                                {.max_transactions = 64});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(SimRandomStress, FoctmHistoriesSerializableUnderCrashes) {
  auto tm = std::make_unique<SimFoctm>(Scenario::kVars);
  history::Recorder recorder;
  history::RecordingTm rec(*tm, recorder);
  run_scenario(*tm, rec, GetParam(), /*inject_crashes=*/true);
  const auto r =
      history::check_exhaustive_serializability(recorder.transactions(),
                                                {.max_transactions = 64});
  EXPECT_TRUE(r.ok) << r.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimRandomStress,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace oftm
