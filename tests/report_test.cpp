// Tests for the shared structured-report layer (workload/report.hpp): JSON
// escaping and shape, RunResult serialization, and the $OFTM_REPORT_FILE
// sink every bench funnels through.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "workload/driver.hpp"
#include "workload/factory.hpp"
#include "workload/report.hpp"

namespace oftm::workload::report {
namespace {

// Minimal structural validation: balanced braces/brackets outside strings,
// no trailing garbage. Not a full parser, but catches the emitter bugs that
// matter (unescaped quotes, dropped commas leave imbalance downstream).
bool balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(Json, FieldsAreOrderedAndTyped) {
  const std::string s = Json()
                            .field("name", "tl2")
                            .field("threads", 8)
                            .field("ratio", 0.25)
                            .field("ok", true)
                            .field_raw("nested", "{\"a\":1}")
                            .str();
  EXPECT_EQ(s,
            "{\"name\":\"tl2\",\"threads\":8,\"ratio\":0.25,\"ok\":true,"
            "\"nested\":{\"a\":1}}");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  const std::string s =
      Json().field("k", "a\"b\\c\nd\te\x01").str();
  EXPECT_EQ(s, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_TRUE(balanced_json(s));
}

// Regression: a hostile scenario/backend name (quotes, backslashes,
// newlines, control bytes) must never produce an unparseable report line —
// every identity string a bench passes through flows through escape().
TEST(Json, HostileScenarioNameStaysOneParsableLine) {
  const std::string evil = "zipf\"s=0.99\\hot\nset\r\x02";
  const std::string s = Json()
                            .field("bench", "B1")
                            .field("scenario", evil)
                            .field("backend", "tl2\"region")
                            .str();
  EXPECT_TRUE(balanced_json(s));
  EXPECT_EQ(s.find('\n'), std::string::npos) << "raw newline breaks JSONL";
  EXPECT_EQ(s.find('\r'), std::string::npos);
  EXPECT_NE(s.find("\\\"s=0.99\\\\hot\\nset\\r\\u0002"), std::string::npos)
      << s;
}

// Non-finite metrics degrade to null, not to bare inf/nan words.
TEST(Json, NonFiniteDoublesDegradeToNull) {
  const std::string s =
      Json()
          .field("inf", std::numeric_limits<double>::infinity())
          .field("ninf", -std::numeric_limits<double>::infinity())
          .field("nan", std::numeric_limits<double>::quiet_NaN())
          .field("ok", 1.5)
          .str();
  EXPECT_EQ(s, "{\"inf\":null,\"ninf\":null,\"nan\":null,\"ok\":1.5}");
  EXPECT_TRUE(balanced_json(s));
}

TEST(Report, HistogramJsonHasQuantiles) {
  runtime::Log2Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const std::string s = to_json(h);
  EXPECT_TRUE(balanced_json(s));
  EXPECT_NE(s.find("\"count\":100"), std::string::npos);
  EXPECT_NE(s.find("\"p50\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
  // The tail fields the service bench reports: p999 sits between p99 and
  // max (pinned as a substring so a reordering of the schema is caught).
  EXPECT_NE(s.find("\"p999\""), std::string::npos);
  EXPECT_LT(s.find("\"p99\""), s.find("\"p999\""));
  EXPECT_LT(s.find("\"p999\""), s.find("\"max\""));
  EXPECT_NE(s.find("\"max\":100"), std::string::npos);
}

TEST(Report, RunResultJsonCarriesTheStructuredReport) {
  auto tm = make_tm("tl2", 32);
  WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 200;
  const RunResult r = run_workload(*tm, config);
  const std::string s = to_json(r);
  EXPECT_TRUE(balanced_json(s));
  // Latency quantiles, abort breakdown, per-thread skew: the three report
  // sections the measurement layer promises.
  EXPECT_NE(s.find("\"commit_latency_ns\""), std::string::npos);
  EXPECT_NE(s.find("\"retries_per_commit\""), std::string::npos);
  EXPECT_NE(s.find("\"aborted_attempts\""), std::string::npos);
  EXPECT_NE(s.find("\"gave_up\""), std::string::npos);
  EXPECT_NE(s.find("\"per_thread\""), std::string::npos);
  EXPECT_NE(s.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(s.find("\"tm_stats\""), std::string::npos);
  EXPECT_NE(s.find("\"committed\":400"), std::string::npos);
  // The obs-shaped schema is present in both gate modes (zeros when off).
  EXPECT_NE(s.find("\"forced_abort_ratio\""), std::string::npos);
  EXPECT_NE(s.find("\"abort_reasons\""), std::string::npos);
  EXPECT_NE(s.find("\"read_validation\""), std::string::npos);
  EXPECT_NE(s.find("\"phases\""), std::string::npos);
  EXPECT_NE(s.find("\"commit_lock\""), std::string::npos);
  EXPECT_NE(s.find("\"hot_vars\""), std::string::npos);
}

TEST(Report, EmitAppendsJsonLinesToReportFile) {
  // The sink is latched on first use, so this test sets the environment
  // before any emit in this process — keep it the only emitting test in
  // this binary.
  char path[] = "/tmp/oftm_report_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(setenv("OFTM_REPORT_FILE", path, 1), 0);

  auto tm = make_tm("norec", 32);
  WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 100;
  const RunResult r = run_workload(*tm, config);
  emit_run("T1", "unit", "norec", config, r, /*num_tvars=*/32);
  emit(Json().field("bench", "T1").field("row", 2));

  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_TRUE(balanced_json(line1));
  EXPECT_NE(line1.find("\"bench\":\"T1\""), std::string::npos);
  EXPECT_NE(line1.find("\"backend\":\"norec\""), std::string::npos);
  EXPECT_NE(line1.find("\"read_only_fraction\""), std::string::npos);
  EXPECT_NE(line1.find("\"num_tvars\":32"), std::string::npos);
  EXPECT_NE(line1.find("\"commit_latency_ns\""), std::string::npos);
  EXPECT_EQ(line2, "{\"bench\":\"T1\",\"row\":2}");

  close(fd);
  std::remove(path);
  unsetenv("OFTM_REPORT_FILE");
}

}  // namespace
}  // namespace oftm::workload::report
