// Transactional data-structure tests: sequential semantics, composed
// multi-container transactions, concurrent stress with structural audits —
// parameterized across backends.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/atomically.hpp"
#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "ds/tqueue.hpp"
#include "runtime/xorshift.hpp"
#include "workload/factory.hpp"

namespace oftm::ds {
namespace {

class DsTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<core::TransactionalMemory> make(std::size_t tvars) {
    return workload::make_tm(GetParam(), tvars);
  }
};

TEST_P(DsTest, ListSetSequentialSemantics) {
  auto tm = make(TListSet::tvars_needed(16));
  TListSet set(*tm, 0, 16);
  set.init();
  core::atomically(*tm, [&](core::TxView& tx) {
    EXPECT_TRUE(set.insert(tx, 5));
    EXPECT_TRUE(set.insert(tx, 3));
    EXPECT_TRUE(set.insert(tx, 9));
    EXPECT_FALSE(set.insert(tx, 5));  // duplicate
    EXPECT_TRUE(set.contains(tx, 3));
    EXPECT_FALSE(set.contains(tx, 4));
    EXPECT_EQ(set.size(tx), 3u);
    EXPECT_TRUE(set.erase(tx, 3));
    EXPECT_FALSE(set.erase(tx, 3));
    EXPECT_EQ(set.size(tx), 2u);
  });
  EXPECT_TRUE(set.audit_quiescent());
}

TEST_P(DsTest, ListSetNodeRecycling) {
  auto tm = make(TListSet::tvars_needed(4));
  TListSet set(*tm, 0, 4);
  set.init();
  // Fill to capacity, drain, refill — exercises the free list fully.
  for (int round = 0; round < 3; ++round) {
    core::atomically(*tm, [&](core::TxView& tx) {
      for (std::uint64_t k = 1; k <= 4; ++k) {
        EXPECT_TRUE(set.insert(tx, k * 10 + static_cast<std::uint64_t>(round)));
      }
    });
    core::atomically(*tm, [&](core::TxView& tx) {
      for (std::uint64_t k = 1; k <= 4; ++k) {
        EXPECT_TRUE(set.erase(tx, k * 10 + static_cast<std::uint64_t>(round)));
      }
    });
    EXPECT_TRUE(set.audit_quiescent());
  }
}

TEST_P(DsTest, ListSetAbortRollsBackStructure) {
  auto tm = make(TListSet::tvars_needed(8));
  TListSet set(*tm, 0, 8);
  set.init();
  core::atomically(*tm, [&](core::TxView& tx) { set.insert(tx, 1); });
  try {
    core::atomically(*tm, [&](core::TxView& tx) {
      set.insert(tx, 2);
      set.insert(tx, 3);
      tx.cancel();  // user abort: nothing of this transaction survives
    });
  } catch (const core::TxCancelled&) {
  }
  core::atomically(*tm, [&](core::TxView& tx) {
    EXPECT_TRUE(set.contains(tx, 1));
    EXPECT_FALSE(set.contains(tx, 2));
    EXPECT_FALSE(set.contains(tx, 3));
    EXPECT_EQ(set.size(tx), 1u);
  });
  EXPECT_TRUE(set.audit_quiescent());
}

TEST_P(DsTest, HashMapSequentialSemantics) {
  auto tm = make(THashMap::tvars_needed(16));
  THashMap map(*tm, 0, 16);
  map.init();
  core::atomically(*tm, [&](core::TxView& tx) {
    EXPECT_TRUE(map.put(tx, 1, 100));
    EXPECT_TRUE(map.put(tx, 2, 200));
    EXPECT_FALSE(map.put(tx, 1, 101));  // overwrite, not insert
    EXPECT_EQ(map.get(tx, 1).value(), 101u);
    EXPECT_EQ(map.get(tx, 2).value(), 200u);
    EXPECT_FALSE(map.get(tx, 3).has_value());
    EXPECT_EQ(map.size(tx), 2u);
    EXPECT_TRUE(map.erase(tx, 1));
    EXPECT_FALSE(map.erase(tx, 1));
    EXPECT_FALSE(map.get(tx, 1).has_value());
  });
}

TEST_P(DsTest, HashMapTombstoneReuseAndCollisions) {
  auto tm = make(THashMap::tvars_needed(8));
  THashMap map(*tm, 0, 8);
  map.init();
  // Insert through collisions up to near capacity, delete, reinsert.
  core::atomically(*tm, [&](core::TxView& tx) {
    for (std::uint64_t k = 0; k < 6; ++k) EXPECT_TRUE(map.put(tx, k, k));
  });
  core::atomically(*tm, [&](core::TxView& tx) {
    for (std::uint64_t k = 0; k < 6; k += 2) EXPECT_TRUE(map.erase(tx, k));
  });
  core::atomically(*tm, [&](core::TxView& tx) {
    for (std::uint64_t k = 10; k < 13; ++k) EXPECT_TRUE(map.put(tx, k, k));
    for (std::uint64_t k = 1; k < 6; k += 2) {
      EXPECT_EQ(map.get(tx, k).value(), k);
    }
    for (std::uint64_t k = 10; k < 13; ++k) {
      EXPECT_EQ(map.get(tx, k).value(), k);
    }
  });
}

TEST_P(DsTest, QueueFifoAndBounds) {
  auto tm = make(TQueue::tvars_needed(4));
  TQueue queue(*tm, 0, 4);
  queue.init();
  core::atomically(*tm, [&](core::TxView& tx) {
    EXPECT_FALSE(queue.dequeue(tx).has_value());
    for (core::Value v = 1; v <= 4; ++v) EXPECT_TRUE(queue.enqueue(tx, v));
    EXPECT_FALSE(queue.enqueue(tx, 5));  // full
    EXPECT_EQ(queue.size(tx), 4u);
  });
  core::atomically(*tm, [&](core::TxView& tx) {
    for (core::Value v = 1; v <= 4; ++v) {
      EXPECT_EQ(queue.dequeue(tx).value(), v);  // FIFO
    }
    EXPECT_FALSE(queue.dequeue(tx).has_value());
  });
}

TEST_P(DsTest, ComposedTransferBetweenContainers) {
  // Atomic move queue -> map: either both effects or neither.
  auto tm = make(TQueue::tvars_needed(8) + THashMap::tvars_needed(16));
  TQueue queue(*tm, 0, 8);
  THashMap map(*tm, static_cast<core::TVarId>(TQueue::tvars_needed(8)), 16);
  queue.init();
  map.init();
  core::atomically(*tm, [&](core::TxView& tx) {
    queue.enqueue(tx, 42);
    queue.enqueue(tx, 43);
  });
  core::atomically(*tm, [&](core::TxView& tx) {
    const auto v = queue.dequeue(tx);
    ASSERT_TRUE(v.has_value());
    map.put(tx, *v, 1);
  });
  core::atomically(*tm, [&](core::TxView& tx) {
    EXPECT_TRUE(map.get(tx, 42).has_value());
    EXPECT_FALSE(map.get(tx, 43).has_value());
    EXPECT_EQ(queue.size(tx), 1u);
  });
}

// FOCTM (Algorithm 2) is excluded from the walk-heavy *concurrent* stress
// tests: it has no contention manager and acquires exclusive revocable
// ownership even for reads (line 2 = acquire), so concurrent list walkers
// revoke each other indefinitely — the liveness face of the paper's own
// "rather impractical" verdict (footnote 6). Its sequential semantics are
// fully covered above; its concurrency is exercised by the low-sharing
// workloads in stm_stress_test.
bool walk_heavy_concurrency_unsuitable(const std::string& backend) {
  return backend.rfind("foctm", 0) == 0;
}

TEST_P(DsTest, ConcurrentListStressKeepsStructure) {
  if (walk_heavy_concurrency_unsuitable(GetParam())) {
    GTEST_SKIP() << "Algorithm 2 livelocks on hot shared structures";
  }
  constexpr std::uint32_t kCapacity = 64;
  auto tm = make(TListSet::tvars_needed(kCapacity));
  TListSet set(*tm, 0, kCapacity);
  set.init();
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      runtime::Xoshiro256 rng(33 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = rng.next_range(40) + 1;
        if (rng.next_bool(0.5)) {
          core::atomically(*tm,
                           [&](core::TxView& tx) { set.insert(tx, key); });
        } else {
          core::atomically(*tm,
                           [&](core::TxView& tx) { set.erase(tx, key); });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(set.audit_quiescent());
}

TEST_P(DsTest, ConcurrentQueueConservesItems) {
  if (walk_heavy_concurrency_unsuitable(GetParam())) {
    GTEST_SKIP() << "Algorithm 2 livelocks on hot shared structures";
  }
  auto tm = make(TQueue::tvars_needed(32));
  TQueue queue(*tm, 0, 32);
  queue.init();
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kItemsPerProducer = 2000;
  std::atomic<std::uint64_t> produced_sum{0};
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 1; i <= kItemsPerProducer; ++i) {
        const core::Value v = (static_cast<core::Value>(p) << 32) | i;
        for (;;) {
          if (core::atomically(*tm, [&](core::TxView& tx) {
                return queue.enqueue(tx, v);
              })) {
            produced_sum.fetch_add(v);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed_count.load() < kProducers * kItemsPerProducer) {
        const auto v = core::atomically(
            *tm, [&](core::TxView& tx) { return queue.dequeue(tx); });
        if (v.has_value()) {
          consumed_sum.fetch_add(*v);
          consumed_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed_count.load(), kProducers * kItemsPerProducer);
  EXPECT_EQ(consumed_sum.load(), produced_sum.load());
  EXPECT_EQ(queue.size_quiescent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DsTest,
    ::testing::Values("dstm", "dstm:karma", "foctm-hinted", "tl", "tl2",
                      "coarse"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace oftm::ds
