// FOCTM-specific tests: version-chain mechanics across segment boundaries,
// ownership revocation through State fo-consensus votes, the Aborted[]
// fast-fail register, tryA semantics (lines 34-35), and
// faithful-vs-hinted mode equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "core/platform.hpp"
#include "foctm/foctm.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::foctm {
namespace {

using Hw = core::HwPlatform;
using StrictFoctm = Foctm<Hw, foc::StrictFocPolicy<Hw>>;
using CasFoctm = Foctm<Hw, foc::CasFocPolicy<Hw>>;

TEST(Foctm, VersionChainsCrossSegmentBoundaries) {
  // kSegSize is 16; 50 committed writers of one t-variable force three
  // segment extensions and a 50-deep faithful walk.
  CasFoctm tm(2, FoctmOptions{/*use_hints=*/false});
  for (int i = 1; i <= 50; ++i) {
    auto txn = tm.begin();
    ASSERT_TRUE(tm.write(*txn, 0, static_cast<core::Value>(i)));
    ASSERT_TRUE(tm.try_commit(*txn));
  }
  EXPECT_EQ(tm.read_quiescent(0), 50u);
  auto txn = tm.begin();
  EXPECT_EQ(tm.read(*txn, 0).value(), 50u);
  EXPECT_TRUE(tm.try_commit(*txn));
}

TEST(Foctm, AcquireRevokesLiveOwnerViaStateVote) {
  // Two interleaved transactions driven from one thread (two logical
  // processes): T1 owns x; T2's acquire proposes `aborted` to State[T1];
  // T1's later commit must fail (its State already decided aborted).
  StrictFoctm tm(4);
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 11));
  auto t2 = tm.begin();
  ASSERT_TRUE(tm.write(*t2, 0, 22));       // revokes T1's ownership
  EXPECT_FALSE(tm.try_commit(*t1));        // aborted by T2's vote
  EXPECT_EQ(t1->status(), core::TxStatus::kAborted);
  EXPECT_TRUE(tm.try_commit(*t2));
  EXPECT_EQ(tm.read_quiescent(0), 22u);
}

TEST(Foctm, AbortedRegisterFailsLoserFast) {
  // T1 owns x and then loses it; T1's next acquire (of a *different*
  // t-variable) must return A_k via the Aborted[T1] register (line 28) —
  // "Tk completes as soon as possible after Tk loses an ownership".
  StrictFoctm tm(4);
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 11));
  auto t2 = tm.begin();
  ASSERT_TRUE(tm.write(*t2, 0, 22));
  EXPECT_FALSE(tm.read(*t1, 1).has_value());  // line 28 fast-fail
  EXPECT_TRUE(tm.try_commit(*t2));
}

TEST(Foctm, CommittedOwnerValueFlowsToNextAcquirer) {
  StrictFoctm tm(4);
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 77));
  ASSERT_TRUE(tm.try_commit(*t1));
  auto t2 = tm.begin();
  EXPECT_EQ(tm.read(*t2, 0).value(), 77u);  // via TVar[x, T1], line 19
  ASSERT_TRUE(tm.write(*t2, 0, 78));
  ASSERT_TRUE(tm.try_commit(*t2));
  EXPECT_EQ(tm.read_quiescent(0), 78u);
}

TEST(Foctm, TryAbortLeavesStateForOthersToResolve) {
  // Lines 34-35: tryA just returns A_k; the next acquirer of x resolves the
  // abandoned owner's State to aborted and must see the pre-T1 value.
  StrictFoctm tm(4);
  {
    auto setup = tm.begin();
    ASSERT_TRUE(tm.write(*setup, 0, 5));
    ASSERT_TRUE(tm.try_commit(*setup));
  }
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 99));
  tm.try_abort(*t1);
  EXPECT_EQ(t1->status(), core::TxStatus::kAborted);
  auto t2 = tm.begin();
  EXPECT_EQ(tm.read(*t2, 0).value(), 5u);  // 99 never visible
  EXPECT_TRUE(tm.try_commit(*t2));
}

TEST(Foctm, ReadOnlyTransactionsAcquireOwnershipToo) {
  // Algorithm 2 treats reads like writes (exclusive revocable ownership):
  // a reader invalidates a live writer. This is the protocol's documented
  // behaviour, not a bug — readers go through acquire() as well (line 2).
  StrictFoctm tm(4);
  auto writer = tm.begin();
  ASSERT_TRUE(tm.write(*writer, 0, 1));
  auto reader = tm.begin();
  EXPECT_EQ(tm.read(*reader, 0).value(), 0u);  // pre-writer value
  EXPECT_FALSE(tm.try_commit(*writer));        // revoked by the reader
  EXPECT_TRUE(tm.try_commit(*reader));
}

TEST(Foctm, HintedAndFaithfulProduceIdenticalResults) {
  // Deterministic single-threaded op sequence replayed against both modes:
  // committed state must match exactly (the hint is a pure optimization).
  const auto run = [](bool hints) {
    CasFoctm tm(8, FoctmOptions{hints});
    runtime::Xoshiro256 rng(2024);
    std::vector<core::Value> finals;
    for (int i = 0; i < 300; ++i) {
      auto txn = tm.begin();
      bool ok = true;
      for (int k = 0; k < 3 && ok; ++k) {
        const auto x = static_cast<core::TVarId>(rng.next_range(8));
        if (rng.next_bool(0.5)) {
          ok = tm.write(*txn, x, static_cast<core::Value>(i * 10 + k + 1));
        } else {
          ok = tm.read(*txn, x).has_value();
        }
      }
      if (ok && rng.next_bool(0.1)) {
        tm.try_abort(*txn);
      } else if (ok) {
        EXPECT_TRUE(tm.try_commit(*txn));
      }
    }
    for (core::TVarId x = 0; x < 8; ++x) {
      finals.push_back(tm.read_quiescent(x));
    }
    return finals;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Foctm, HintSkipsResolvedPrefix) {
  // After many committed versions, a hinted TM's next acquire should not
  // livelock or misread; correctness spot-check at depth > 3 segments.
  CasFoctm tm(1, FoctmOptions{/*use_hints=*/true});
  for (int i = 1; i <= 100; ++i) {
    auto txn = tm.begin();
    ASSERT_TRUE(tm.write(*txn, 0, static_cast<core::Value>(i)));
    ASSERT_TRUE(tm.try_commit(*txn));
  }
  auto txn = tm.begin();
  EXPECT_EQ(tm.read(*txn, 0).value(), 100u);
  ASSERT_TRUE(tm.write(*txn, 0, 101));
  ASSERT_TRUE(tm.try_commit(*txn));
  EXPECT_EQ(tm.read_quiescent(0), 101u);
}

TEST(Foctm, WriteThenReadOwnValueAcrossWset) {
  // Second access of x takes the wset fast path (line 27).
  StrictFoctm tm(4);
  auto txn = tm.begin();
  ASSERT_TRUE(tm.write(*txn, 2, 42));
  EXPECT_EQ(tm.read(*txn, 2).value(), 42u);
  ASSERT_TRUE(tm.write(*txn, 2, 43));
  EXPECT_EQ(tm.read(*txn, 2).value(), 43u);
  ASSERT_TRUE(tm.try_commit(*txn));
}

TEST(Foctm, StrictPolicySoloNeverAborts) {
  // Obstruction-freedom sanity over the strict (abortable) fo-consensus:
  // solo transactions see no step contention anywhere, so nothing aborts.
  StrictFoctm tm(16);
  for (int i = 0; i < 200; ++i) {
    auto txn = tm.begin();
    ASSERT_TRUE(tm.read(*txn, static_cast<core::TVarId>(i % 16)).has_value());
    ASSERT_TRUE(tm.write(*txn, static_cast<core::TVarId>((i + 5) % 16),
                         static_cast<core::Value>(i + 1)));
    ASSERT_TRUE(tm.try_commit(*txn));
  }
  EXPECT_EQ(tm.stats().forced_aborts, 0u);
}

}  // namespace
}  // namespace oftm::foctm
