// Lock-family specifics: TL's encounter-time two-phase locking, TL2's
// global-clock validation and read-only fast path, Coarse's undo rollback —
// the behaviours that make them the paper's comparison class.
#include <gtest/gtest.h>

#include <memory>

#include "lock/coarse.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "lock/versioned_lock.hpp"

namespace oftm::lock {
namespace {

TEST(LockWord, PackUnpackRoundTrip) {
  for (std::uint64_t version : {0ull, 1ull, 12345ull, (1ull << 62) - 1}) {
    for (bool locked : {false, true}) {
      const std::uint64_t w = LockWord::pack(version, locked);
      EXPECT_EQ(LockWord::version(w), version);
      EXPECT_EQ(LockWord::locked(w), locked);
    }
  }
}

TEST(Tl, EncounterLockBlocksSecondWriter) {
  HwTl tm(8, TlOptions{/*patience=*/4});
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 11));  // t1 holds the encounter lock on 0

  auto t2 = tm.begin();
  // t2 spins out its patience and self-aborts: 2PL locks are irrevocable.
  EXPECT_FALSE(tm.write(*t2, 0, 22));
  EXPECT_EQ(t2->status(), core::TxStatus::kAborted);

  ASSERT_TRUE(tm.try_commit(*t1));
  EXPECT_EQ(tm.read_quiescent(0), 11u);

  auto t3 = tm.begin();
  ASSERT_TRUE(tm.write(*t3, 0, 33));  // lock released by t1's commit
  ASSERT_TRUE(tm.try_commit(*t3));
}

TEST(Tl, AbortReleasesEncounterLocks) {
  HwTl tm(8, TlOptions{4});
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 0, 11));
  tm.try_abort(*t1);
  auto t2 = tm.begin();
  ASSERT_TRUE(tm.write(*t2, 0, 22));  // lock free again, value rolled back
  ASSERT_TRUE(tm.try_commit(*t2));
  EXPECT_EQ(tm.read_quiescent(0), 22u);
}

TEST(Tl, AbandonedHandleReleasesLocks) {
  HwTl tm(8, TlOptions{4});
  {
    auto t1 = tm.begin();
    ASSERT_TRUE(tm.write(*t1, 0, 11));
    // dropped: destructor must roll back and unlock
  }
  auto t2 = tm.begin();
  ASSERT_TRUE(tm.write(*t2, 0, 22));
  ASSERT_TRUE(tm.try_commit(*t2));
}

TEST(Tl, ReaderSeesNoLockedIntermediateState) {
  HwTl tm(8, TlOptions{2});
  auto writer = tm.begin();
  ASSERT_TRUE(tm.write(*writer, 0, 50));  // locked, value NOT yet published
  auto reader = tm.begin();
  // Write-back design: the reader cannot read x while locked (self-aborts
  // after patience) — but it can never see the unpublished 50.
  const auto v = tm.read(*reader, 0);
  EXPECT_FALSE(v.has_value());
  ASSERT_TRUE(tm.try_commit(*writer));
  auto reader2 = tm.begin();
  EXPECT_EQ(tm.read(*reader2, 0).value(), 50u);
}

TEST(Tl, VersionBumpInvalidatesConcurrentReader) {
  HwTl tm(8, TlOptions{4});
  auto reader = tm.begin();
  EXPECT_EQ(tm.read(*reader, 0).value(), 0u);
  {
    auto writer = tm.begin();
    ASSERT_TRUE(tm.write(*writer, 0, 9));
    ASSERT_TRUE(tm.try_commit(*writer));
  }
  EXPECT_FALSE(tm.read(*reader, 1).has_value());  // revalidation fails
}

TEST(Tl2, ReadOnlyFastPathCommitsWithoutLocks) {
  HwTl2 tm(8);
  {
    auto w = tm.begin();
    ASSERT_TRUE(tm.write(*w, 0, 1));
    ASSERT_TRUE(tm.try_commit(*w));
  }
  auto r = tm.begin();
  EXPECT_EQ(tm.read(*r, 0).value(), 1u);
  EXPECT_EQ(tm.read(*r, 1).value(), 0u);
  EXPECT_TRUE(tm.try_commit(*r));
  // No writes: the commit must not have bumped any version.
  auto r2 = tm.begin();
  EXPECT_EQ(tm.read(*r2, 0).value(), 1u);
  EXPECT_TRUE(tm.try_commit(*r2));
}

TEST(Tl2, StaleReadVersionAborts) {
  HwTl2 tm(8);
  auto old_txn = tm.begin();  // rv captured now
  {
    auto w = tm.begin();
    ASSERT_TRUE(tm.write(*w, 0, 42));
    ASSERT_TRUE(tm.try_commit(*w));  // version of x now exceeds old rv
  }
  EXPECT_FALSE(tm.read(*old_txn, 0).has_value());
  EXPECT_EQ(old_txn->status(), core::TxStatus::kAborted);
}

TEST(Tl2, WriteSetLockedInCanonicalOrder) {
  // Two transactions with reversed write orders must not deadlock (commit
  // locks sort by t-variable id); sequential here, stress covers the
  // concurrent case.
  HwTl2 tm(8);
  auto t1 = tm.begin();
  ASSERT_TRUE(tm.write(*t1, 3, 1));
  ASSERT_TRUE(tm.write(*t1, 1, 2));
  ASSERT_TRUE(tm.try_commit(*t1));
  auto t2 = tm.begin();
  ASSERT_TRUE(tm.write(*t2, 1, 3));
  ASSERT_TRUE(tm.write(*t2, 3, 4));
  ASSERT_TRUE(tm.try_commit(*t2));
  EXPECT_EQ(tm.read_quiescent(1), 3u);
  EXPECT_EQ(tm.read_quiescent(3), 4u);
}

TEST(Tl2, CommitValidatesReadSet) {
  HwTl2 tm(8);
  auto txn = tm.begin();
  EXPECT_EQ(tm.read(*txn, 0).value(), 0u);
  ASSERT_TRUE(tm.write(*txn, 1, 5));
  {
    auto w = tm.begin();
    ASSERT_TRUE(tm.write(*w, 0, 7));
    ASSERT_TRUE(tm.try_commit(*w));
  }
  EXPECT_FALSE(tm.try_commit(*txn));  // read of x is stale
  EXPECT_EQ(tm.read_quiescent(1), 0u);
}

TEST(Tl2, RvExtensionRescuesStaleReader) {
  Tl2Options options;
  options.rv_extension = true;
  HwTl2 tm(8, options);
  EXPECT_EQ(tm.name(), "tl2+ext");
  auto old_txn = tm.begin();  // rv captured now
  EXPECT_EQ(tm.read(*old_txn, 1).value(), 0u);  // touch an unrelated var
  {
    auto w = tm.begin();
    ASSERT_TRUE(tm.write(*w, 0, 42));
    ASSERT_TRUE(tm.try_commit(*w));  // clock moves past old rv
  }
  // Base TL2 would abort here (version of x exceeds rv); with extension the
  // read set (just x1, untouched) revalidates and rv advances.
  EXPECT_EQ(tm.read(*old_txn, 0).value(), 42u);
  EXPECT_TRUE(tm.try_commit(*old_txn));
}

TEST(Tl2, RvExtensionRefusesInvalidSnapshot) {
  Tl2Options options;
  options.rv_extension = true;
  HwTl2 tm(8, options);
  auto old_txn = tm.begin();
  EXPECT_EQ(tm.read(*old_txn, 0).value(), 0u);  // will be overwritten
  {
    auto w = tm.begin();
    ASSERT_TRUE(tm.write(*w, 0, 7));
    ASSERT_TRUE(tm.write(*w, 1, 8));
    ASSERT_TRUE(tm.try_commit(*w));
  }
  // Extension must fail: x0 itself changed, the snapshot is genuinely
  // stale, and reading x1 = 8 next to x0 = 0 would be inconsistent.
  EXPECT_FALSE(tm.read(*old_txn, 1).has_value());
  EXPECT_EQ(old_txn->status(), core::TxStatus::kAborted);
}

TEST(Coarse, UndoLogRollsBackInPlaceWrites) {
  HwCoarse tm(8);
  {
    auto setup = tm.begin();
    ASSERT_TRUE(tm.write(*setup, 0, 1));
    ASSERT_TRUE(tm.write(*setup, 1, 2));
    ASSERT_TRUE(tm.try_commit(*setup));
  }
  auto txn = tm.begin();
  ASSERT_TRUE(tm.write(*txn, 0, 100));
  ASSERT_TRUE(tm.write(*txn, 1, 200));
  ASSERT_TRUE(tm.write(*txn, 0, 300));  // double write: undo in order
  tm.try_abort(*txn);
  EXPECT_EQ(tm.read_quiescent(0), 1u);
  EXPECT_EQ(tm.read_quiescent(1), 2u);
}

TEST(Coarse, AbandonedHandleReleasesGlobalLock) {
  HwCoarse tm(8);
  {
    auto txn = tm.begin();
    ASSERT_TRUE(tm.write(*txn, 0, 5));
    // dropped while holding the global lock
  }
  auto txn = tm.begin();  // would deadlock if the lock leaked
  EXPECT_TRUE(tm.try_commit(*txn));
}

}  // namespace
}  // namespace oftm::lock
