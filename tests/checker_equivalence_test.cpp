// Old-vs-new checker equivalence: the version-indexed check_mvsg (the
// production path) and the retained map-based reference implementation
// (tests/checker_reference.hpp, the pre-rework checker verbatim) must
// return the same verdict on every history the conformance/stress
// generators produce — genuinely concurrent recorded runs across backend
// families, synthetic histories at both skew extremes, and mutated
// (violating) variants of each. Error strings and witnesses may differ;
// the accept/reject verdict may not.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker_reference.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "history/synth.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm::history {
namespace {

void expect_same_verdict(const std::vector<TxRecord>& txns,
                         const std::string& what) {
  for (const bool strict : {false, true}) {
    MvsgOptions opts;
    opts.respect_real_time = strict;
    opts.include_aborted_readers = strict;
    const CheckResult fresh = check_mvsg(txns, opts);
    const CheckResult ref = reference::check_mvsg_reference(txns, opts);
    EXPECT_EQ(fresh.ok, ref.ok)
        << what << (strict ? " [strict]" : " [plain]")
        << "\n  indexed : " << (fresh.ok ? "ok" : fresh.error)
        << "\n  reference: " << (ref.ok ? "ok" : ref.error);
  }
}

std::vector<TxRecord> record_workload(const std::string& backend,
                                      std::uint64_t seed) {
  auto tm = workload::make_tm(backend, 32);
  Recorder recorder;
  RecordingTm recorded(*tm, recorder);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 80;
  config.ops_per_tx = 5;
  config.write_fraction = 0.5;
  config.seed = seed;
  (void)workload::run_workload(recorded, config);
  EXPECT_EQ(recorder.check_well_formed(), "");
  return recorder.transactions();
}

// The conformance-suite shape: recorded runs of real backends (one per
// backend family — coarse lock, encounter locking, commit-time locking,
// sequence lock, obstruction-free), several interleavings each.
class CheckerEquivalenceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(CheckerEquivalenceTest, RecordedHistoriesAgree) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto txns = record_workload(GetParam(), seed);
    expect_same_verdict(txns, GetParam() + " seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendFamilies, CheckerEquivalenceTest,
    ::testing::Values("coarse", "tl", "tl2", "norec", "dstm"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The stress-suite shape: synthetic histories at both skew extremes, clean
// and mutated. All four of the adversarial suite's violation classes
// (dirty read, lost update, duplicate version, real-time inversion) run
// through the same shared mutation builders; both checkers must reject
// them identically.
TEST(CheckerEquivalence, SyntheticHistoriesAgreeCleanAndMutated) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const double hot : {0.0, 1.0}) {
      synth::SynthOptions opts;
      opts.transactions = 300;
      opts.num_tvars = 16;
      opts.seed = seed;
      opts.hot_fraction = hot;
      const auto clean = synth::make_history(opts);
      expect_same_verdict(clean, "synthetic clean");

      // Dirty read: poison every external read of the first read op's var
      // (shared mutation builder — same violation class the adversarial
      // suite seeds).
      auto dirty = clean;
      for (TxRecord& rec : dirty) {
        if (rec.ops.empty() || rec.ops[0].op != OpType::kRead) continue;
        synth::poison_external_reads(rec, rec.ops[0].tvar,
                                     0xBAD00000000ull + seed);
        break;
      }
      expect_same_verdict(dirty, "synthetic dirty read");

      // Lost update: two writers of x0 forked off the same version.
      auto forked = clean;
      core::TxId fork_a = 0, fork_b = 0;
      if (synth::seed_lost_update(forked, 0, &fork_a, &fork_b)) {
        expect_same_verdict(forked, "synthetic lost update");
      }

      // Duplicate version: a late writer re-writes x0's first version.
      auto dup = clean;
      core::TxId dup_writer = 0;
      if (synth::append_duplicate_writer(dup, 0, 0xDDDD, &dup_writer)) {
        expect_same_verdict(dup, "synthetic duplicate version");
      }

      // Real-time inversion: a late reader of a superseded version.
      auto stale = clean;
      if (synth::append_stale_reader(stale, 0, 0xEEEE)) {
        expect_same_verdict(stale, "synthetic real-time inversion");
      }
    }
  }
}

}  // namespace
}  // namespace oftm::history
