// Old-vs-new checker equivalence: the version-indexed check_mvsg (the
// production path) and the retained map-based reference implementation
// (tests/checker_reference.hpp, the pre-rework checker verbatim) must
// return the same verdict on every history the conformance/stress
// generators produce — genuinely concurrent recorded runs across backend
// families, synthetic histories at both skew extremes, and mutated
// (violating) variants of each. Error strings and witnesses may differ;
// the accept/reject verdict may not.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker_reference.hpp"
#include "history/checker.hpp"
#include "history/interchange.hpp"
#include "history/recorder.hpp"
#include "history/synth.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm::history {
namespace {

// Sequential-vs-parallel is a stronger contract than old-vs-new: not just
// the verdict but the error string and the full typed witness must be
// bit-identical at every thread count (MvsgOptions::threads documents
// this determinism guarantee; CI runs would be undiagnosable otherwise).
void expect_parallel_identical(const std::vector<TxRecord>& txns,
                               const std::string& what) {
  for (const bool strict : {false, true}) {
    MvsgOptions opts;
    opts.respect_real_time = strict;
    opts.include_aborted_readers = strict;
    const CheckResult seq = check_mvsg(txns, opts);
    for (const int threads : {2, 8}) {
      MvsgOptions par_opts = opts;
      par_opts.threads = threads;
      const CheckResult par = check_mvsg(txns, par_opts);
      const std::string label = what + (strict ? " [strict]" : " [plain]") +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(seq.ok, par.ok) << label;
      EXPECT_EQ(seq.error, par.error) << label;
      EXPECT_EQ(seq.witness_str(), par.witness_str()) << label;
      EXPECT_EQ(seq.capacity_exceeded, par.capacity_exceeded) << label;
    }
  }
}

// Export→import→check must preserve the verdict and the witness for both
// interchange dialects (the embedded first_seq/last_seq and the sorted-by-
// first-seq import convention make node numbering line up exactly).
void expect_roundtrip_identical(const std::vector<TxRecord>& txns,
                                const std::string& what) {
  const MvsgOptions opts{.respect_real_time = true};
  const CheckResult direct = check_mvsg(txns, opts);
  for (const auto format :
       {interchange::Format::kDbcop, interchange::Format::kElle}) {
    interchange::ExportOptions eo;
    eo.format = format;
    const auto imported =
        interchange::import_history(interchange::export_history(txns, eo));
    const std::string label =
        what + (format == interchange::Format::kDbcop ? " [dbcop]"
                                                      : " [elle]");
    ASSERT_TRUE(imported.ok) << label << ": " << imported.error;
    EXPECT_TRUE(imported.has_real_time) << label;
    // dbcop carries only committed transactions, so compare against the
    // committed projection for that dialect.
    std::vector<TxRecord> expect_txns;
    if (format == interchange::Format::kDbcop) {
      for (const TxRecord& rec : txns) {
        if (rec.committed()) expect_txns.push_back(rec);
      }
    } else {
      expect_txns = txns;
    }
    const CheckResult want = format == interchange::Format::kDbcop
                                 ? check_mvsg(expect_txns, opts)
                                 : direct;
    const CheckResult got = check_mvsg(imported.txns, opts);
    EXPECT_EQ(want.ok, got.ok) << label;
    EXPECT_EQ(want.error, got.error) << label;
    EXPECT_EQ(want.witness_str(), got.witness_str()) << label;
  }
}

void expect_same_verdict(const std::vector<TxRecord>& txns,
                         const std::string& what) {
  for (const bool strict : {false, true}) {
    MvsgOptions opts;
    opts.respect_real_time = strict;
    opts.include_aborted_readers = strict;
    const CheckResult fresh = check_mvsg(txns, opts);
    const CheckResult ref = reference::check_mvsg_reference(txns, opts);
    EXPECT_EQ(fresh.ok, ref.ok)
        << what << (strict ? " [strict]" : " [plain]")
        << "\n  indexed : " << (fresh.ok ? "ok" : fresh.error)
        << "\n  reference: " << (ref.ok ? "ok" : ref.error);
  }
}

std::vector<TxRecord> record_workload(const std::string& backend,
                                      std::uint64_t seed) {
  auto tm = workload::make_tm(backend, 32);
  Recorder recorder;
  RecordingTm recorded(*tm, recorder);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 80;
  config.ops_per_tx = 5;
  config.write_fraction = 0.5;
  config.seed = seed;
  (void)workload::run_workload(recorded, config);
  EXPECT_EQ(recorder.check_well_formed(), "");
  return recorder.transactions();
}

// The conformance-suite shape: recorded runs of real backends (one per
// backend family — coarse lock, encounter locking, commit-time locking,
// sequence lock, obstruction-free), several interleavings each.
class CheckerEquivalenceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(CheckerEquivalenceTest, RecordedHistoriesAgree) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto txns = record_workload(GetParam(), seed);
    expect_same_verdict(txns, GetParam() + " seed " + std::to_string(seed));
  }
}

TEST_P(CheckerEquivalenceTest, ParallelCheckerMatchesSequential) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto txns = record_workload(GetParam(), seed);
    expect_parallel_identical(txns,
                              GetParam() + " seed " + std::to_string(seed));
  }
}

TEST_P(CheckerEquivalenceTest, InterchangeRoundTripMatches) {
  const auto txns = record_workload(GetParam(), /*seed=*/1);
  expect_roundtrip_identical(txns, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    BackendFamilies, CheckerEquivalenceTest,
    ::testing::Values("coarse", "tl", "tl2", "norec", "dstm"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The stress-suite shape: synthetic histories at both skew extremes, clean
// and mutated. All four of the adversarial suite's violation classes
// (dirty read, lost update, duplicate version, real-time inversion) run
// through the same shared mutation builders; both checkers must reject
// them identically.
TEST(CheckerEquivalence, SyntheticHistoriesAgreeCleanAndMutated) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const double hot : {0.0, 1.0}) {
      synth::SynthOptions opts;
      opts.transactions = 300;
      opts.num_tvars = 16;
      opts.seed = seed;
      opts.hot_fraction = hot;
      const auto clean = synth::make_history(opts);
      expect_same_verdict(clean, "synthetic clean");

      // Dirty read: poison every external read of the first read op's var
      // (shared mutation builder — same violation class the adversarial
      // suite seeds).
      auto dirty = clean;
      for (TxRecord& rec : dirty) {
        if (rec.ops.empty() || rec.ops[0].op != OpType::kRead) continue;
        synth::poison_external_reads(rec, rec.ops[0].tvar,
                                     0xBAD00000000ull + seed);
        break;
      }
      expect_same_verdict(dirty, "synthetic dirty read");

      // Lost update: two writers of x0 forked off the same version.
      auto forked = clean;
      core::TxId fork_a = 0, fork_b = 0;
      if (synth::seed_lost_update(forked, 0, &fork_a, &fork_b)) {
        expect_same_verdict(forked, "synthetic lost update");
      }

      // Duplicate version: a late writer re-writes x0's first version.
      auto dup = clean;
      core::TxId dup_writer = 0;
      if (synth::append_duplicate_writer(dup, 0, 0xDDDD, &dup_writer)) {
        expect_same_verdict(dup, "synthetic duplicate version");
      }

      // Real-time inversion: a late reader of a superseded version.
      auto stale = clean;
      if (synth::append_stale_reader(stale, 0, 0xEEEE)) {
        expect_same_verdict(stale, "synthetic real-time inversion");
      }
    }
  }
}

// The parallel path's bit-identical contract on synthetic histories: clean
// and all four mutation classes, both skew extremes. Failing histories are
// the interesting half — the parallel first-failure reduction and the
// witness extraction must pick the same cycle the sequential scan finds.
TEST(CheckerEquivalence, ParallelMatchesSequentialOnSyntheticHistories) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const double hot : {0.0, 1.0}) {
      synth::SynthOptions opts;
      opts.transactions = 300;
      opts.num_tvars = 16;
      opts.seed = seed;
      opts.hot_fraction = hot;
      const auto clean = synth::make_history(opts);
      expect_parallel_identical(clean, "synthetic clean");

      auto dirty = clean;
      for (TxRecord& rec : dirty) {
        if (rec.ops.empty() || rec.ops[0].op != OpType::kRead) continue;
        synth::poison_external_reads(rec, rec.ops[0].tvar,
                                     0xBAD00000000ull + seed);
        break;
      }
      expect_parallel_identical(dirty, "synthetic dirty read");

      auto forked = clean;
      core::TxId fork_a = 0, fork_b = 0;
      if (synth::seed_lost_update(forked, 0, &fork_a, &fork_b)) {
        expect_parallel_identical(forked, "synthetic lost update");
      }

      auto dup = clean;
      core::TxId dup_writer = 0;
      if (synth::append_duplicate_writer(dup, 0, 0xDDDD, &dup_writer)) {
        expect_parallel_identical(dup, "synthetic duplicate version");
      }

      auto stale = clean;
      if (synth::append_stale_reader(stale, 0, 0xEEEE)) {
        expect_parallel_identical(stale, "synthetic real-time inversion");
      }
    }
  }
}

TEST(CheckerEquivalence, InterchangeRoundTripOnSyntheticHistories) {
  for (const double hot : {0.0, 1.0}) {
    synth::SynthOptions opts;
    opts.transactions = 300;
    opts.num_tvars = 16;
    opts.hot_fraction = hot;
    const auto clean = synth::make_history(opts);
    expect_roundtrip_identical(clean, "synthetic clean");

    // A violating history must still be rejected — with the same witness —
    // after travelling through either dialect.
    auto forked = clean;
    core::TxId fork_a = 0, fork_b = 0;
    if (synth::seed_lost_update(forked, 0, &fork_a, &fork_b)) {
      expect_roundtrip_identical(forked, "synthetic lost update");
    }
  }
}

// Regression for the silent uint32_t truncation: index construction used
// to wrap past 2^32 entries and misattribute accesses. Now any history
// over the (injectable) capacity reports a structured error instead of a
// bogus verdict.
TEST(CheckerEquivalence, IndexCapacityGuardReportsStructuredError) {
  synth::SynthOptions opts;
  opts.transactions = 100;
  opts.num_tvars = 8;
  const auto txns = synth::make_history(opts);

  MvsgOptions ok_opts;
  ok_opts.index_capacity = 1u << 20;
  const CheckResult fits = check_mvsg(txns, ok_opts);
  EXPECT_TRUE(fits.ok);
  EXPECT_FALSE(fits.capacity_exceeded);

  for (const int threads : {1, 2, 8}) {
    MvsgOptions small;
    small.index_capacity = 50;  // fewer than the 100 transactions
    small.threads = threads;
    const CheckResult over = check_mvsg(txns, small);
    EXPECT_FALSE(over.ok) << "threads=" << threads;
    EXPECT_TRUE(over.capacity_exceeded) << "threads=" << threads;
    EXPECT_NE(over.error.find("exceeds checker index space"),
              std::string::npos)
        << over.error;
    EXPECT_TRUE(over.witness.empty());
  }

  // The guard also trips on access counts, not just transaction counts:
  // 100 txns fit under a cap of 150 but their reads/writes do not.
  MvsgOptions mid;
  mid.index_capacity = 150;
  const CheckResult over_ops = check_mvsg(txns, mid);
  EXPECT_FALSE(over_ops.ok);
  EXPECT_TRUE(over_ops.capacity_exceeded);
}

}  // namespace
}  // namespace oftm::history
