// fo-consensus tests (Section 4): object properties (fo-validity,
// agreement, fo-obstruction-freedom), Algorithm 1 (fo-consensus from an
// OFTM, over both DSTM and FOCTM — closing the equivalence circle of
// Lemmas 7 and 8), Algorithm 3 (fo-consensus from an eventual ic-OFTM),
// and 2-process consensus from fo-consensus (Corollary 11's positive half).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cm/managers.hpp"
#include "core/platform.hpp"
#include "dstm/dstm.hpp"
#include "foc/fo_consensus.hpp"
#include "foc/foc_from_eventual.hpp"
#include "foc/foc_from_tm.hpp"
#include "foc/two_process_consensus.hpp"
#include "foctm/foctm.hpp"
#include "runtime/barrier.hpp"
#include "sim/env.hpp"
#include "sim/platform.hpp"

namespace oftm::foc {
namespace {

using Hw = core::HwPlatform;

TEST(CasFoc, SoloProposeDecidesOwnValue) {
  CasFoConsensus<Hw, std::uint64_t, 0> c;
  EXPECT_FALSE(c.decided());
  EXPECT_EQ(c.propose(42).value(), 42u);
  EXPECT_TRUE(c.decided());
  EXPECT_EQ(c.propose(43).value(), 42u);  // losers adopt
  EXPECT_EQ(c.peek(), 42u);
}

TEST(StrictFoc, SoloProposeNeverAborts) {
  // fo-obstruction-freedom: step-contention-free proposes must not abort.
  for (int i = 0; i < 100; ++i) {
    StrictFoConsensus<Hw, std::uint64_t, 0> c;
    const auto r = c.propose(static_cast<std::uint64_t>(i + 1));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, static_cast<std::uint64_t>(i + 1));
  }
}

// Agreement + fo-validity under hardware contention, for both objects.
template <typename Foc>
void stress_agreement() {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    Foc c;
    runtime::SpinBarrier barrier(kThreads);
    std::vector<std::optional<std::uint64_t>> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        results[static_cast<std::size_t>(t)] =
            c.propose(static_cast<std::uint64_t>(t + 1));
      });
    }
    for (auto& th : threads) th.join();

    std::uint64_t decided = 0;
    for (int t = 0; t < kThreads; ++t) {
      const auto& r = results[static_cast<std::size_t>(t)];
      if (!r.has_value()) continue;  // aborted propose: took no effect
      if (decided == 0) decided = *r;
      EXPECT_EQ(*r, decided) << "agreement violated";
    }
    if (decided != 0) {
      // fo-validity: the decided value's proposer did not abort — it must
      // itself have received the decided value (its own input).
      const int winner = static_cast<int>(decided) - 1;
      ASSERT_TRUE(results[static_cast<std::size_t>(winner)].has_value());
      EXPECT_EQ(*results[static_cast<std::size_t>(winner)], decided);
    }
  }
}

TEST(CasFoc, AgreementUnderContention) {
  stress_agreement<CasFoConsensus<Hw, std::uint64_t, 0>>();
}

TEST(StrictFoc, AgreementUnderContention) {
  stress_agreement<StrictFoConsensus<Hw, std::uint64_t, 0>>();
}

TEST(StrictFoc, AbortsExactlyUnderObservedStepContention) {
  // Deterministic schedule on the simulator: p1's entry lands inside p0's
  // window, so p0 must abort; p1 then runs alone and registers.
  auto c = std::make_unique<
      StrictFoConsensus<sim::SimPlatform, std::uint64_t, 0>>();
  sim::Env env(2);
  std::optional<std::uint64_t> r0, r1;
  env.set_body(0, [&] { r0 = c->propose(10); });
  env.set_body(1, [&] { r1 = c->propose(20); });
  env.start();
  // StrictFoc propose = faa(entries), load(cell), load(entries), cas.
  env.step(0);  // p0 faa
  env.step(1);  // p1 faa  -> inside p0's window
  env.step(0);  // p0 load cell (empty)
  env.step(0);  // p0 load entries: changed => abort
  env.run_round_robin();
  EXPECT_FALSE(r0.has_value());  // aborted, with genuine step contention
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, 20u);  // p1 registered its own value
  EXPECT_EQ(c->peek(), 20u);
}

// --- Algorithm 1 -------------------------------------------------------------

template <typename MakeTm>
void algorithm1_agreement(MakeTm make_tm) {
  constexpr int kThreads = 6;
  for (int round = 0; round < 30; ++round) {
    auto tm = make_tm();
    FocFromTm foc(*tm, /*v_var=*/0);
    runtime::SpinBarrier barrier(kThreads);
    std::vector<std::uint64_t> decided(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        // Retry aborted proposes, as the fo-consensus consumer contract
        // allows ("may retry the operation many times").
        for (;;) {
          const auto r = foc.propose(static_cast<std::uint64_t>(t + 1));
          if (r.has_value()) {
            decided[static_cast<std::size_t>(t)] = *r;
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(decided[static_cast<std::size_t>(t)], decided[0]);
    }
    EXPECT_GE(decided[0], 1u);
    EXPECT_LE(decided[0], static_cast<std::uint64_t>(kThreads));
  }
}

TEST(Algorithm1, FoConsensusFromDstm) {
  algorithm1_agreement([] {
    return std::make_unique<dstm::HwDstm>(4, cm::make_manager("polite"));
  });
}

TEST(Algorithm1, FoConsensusFromFoctm) {
  // fo-consensus from an OFTM that is itself built from fo-consensus:
  // Lemma 7 over Lemma 8.
  algorithm1_agreement([] {
    return std::make_unique<
        foctm::Foctm<Hw, StrictFocPolicy<Hw>>>(4,
                                               foctm::FoctmOptions{true});
  });
}

TEST(Algorithm1, SoloProposeNeverAborts) {
  auto tm = std::make_unique<dstm::HwDstm>(4, cm::make_manager("polite"));
  FocFromTm foc(*tm, 0);
  const auto r = foc.propose(9);  // step-contention-free
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 9u);
  EXPECT_EQ(foc.propose(10).value(), 9u);
}

// --- Algorithm 3 -------------------------------------------------------------

TEST(Algorithm3, SoloProposeNeverAborts) {
  auto tm = std::make_unique<dstm::HwDstm>(4, cm::make_manager("polite"));
  FocFromEventualTm<Hw> foc(*tm, 0, /*nprocs=*/4);
  const auto r = foc.propose(0, 123);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 123u);
}

TEST(Algorithm3, AgreementWithRetriesUnderContention) {
  constexpr int kThreads = 4;
  for (int round = 0; round < 30; ++round) {
    auto tm = std::make_unique<dstm::HwDstm>(4, cm::make_manager("polite"));
    FocFromEventualTm<Hw> foc(*tm, 0, kThreads);
    runtime::SpinBarrier barrier(kThreads);
    std::vector<std::uint64_t> decided(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        for (;;) {
          const auto r = foc.propose(t, static_cast<std::uint64_t>(t + 1));
          if (r.has_value()) {
            decided[static_cast<std::size_t>(t)] = *r;
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(decided[static_cast<std::size_t>(t)], decided[0]);
    }
  }
}

// --- 2-process consensus (Corollary 11) --------------------------------------

template <typename Policy>
void two_proc_consensus_stress() {
  for (int round = 0; round < 500; ++round) {
    FocConsensus<Hw, Policy> consensus;
    runtime::SpinBarrier barrier(2);
    std::uint64_t out[2] = {};
    std::thread a([&] {
      barrier.arrive_and_wait();
      out[0] = consensus.propose(0, 100 + static_cast<std::uint64_t>(round));
    });
    std::thread b([&] {
      barrier.arrive_and_wait();
      out[1] = consensus.propose(1, 200 + static_cast<std::uint64_t>(round));
    });
    a.join();
    b.join();
    EXPECT_EQ(out[0], out[1]) << "agreement";
    EXPECT_TRUE(out[0] == 100 + static_cast<std::uint64_t>(round) ||
                out[0] == 200 + static_cast<std::uint64_t>(round))
        << "validity";
  }
}

TEST(TwoProcessConsensus, AgreementAndValidityCas) {
  two_proc_consensus_stress<CasFocPolicy<Hw>>();
}

TEST(TwoProcessConsensus, AgreementAndValidityStrict) {
  two_proc_consensus_stress<StrictFocPolicy<Hw>>();
}

TEST(TwoProcessConsensus, SoloDecidesImmediately) {
  FocConsensus<Hw, StrictFocPolicy<Hw>> consensus;
  EXPECT_EQ(consensus.propose(0, 5), 5u);
  EXPECT_EQ(consensus.propose(1, 6), 5u);  // late process adopts
  EXPECT_EQ(consensus.decision(), 5u);
}

TEST(TwoProcessConsensus, CrashAfterRegistrationStillResolves) {
  // Simulator: p0 registers in F but crashes before writing D; p1 running
  // alone afterwards must still decide p0's value (it re-proposes on the
  // decided object and adopts).
  auto consensus = std::make_unique<
      FocConsensus<sim::SimPlatform, StrictFocPolicy<sim::SimPlatform>>>();
  sim::Env env(2);
  std::uint64_t out1 = 0;
  env.set_body(0, [&] { (void)consensus->propose(0, 111); });
  env.set_body(1, [&] { out1 = consensus->propose(1, 222); });
  env.start();
  // p0: announce(1) + D load(1) + strict propose faa/load/load/cas(4) = 6
  // steps puts it past registration, before the D store.
  for (int i = 0; i < 6; ++i) env.step(0);
  env.crash(0);
  env.run_solo(1, 100000);
  EXPECT_TRUE(env.done(1));
  EXPECT_EQ(out1, 111u);  // p1 adopted the crashed winner's value
}

}  // namespace
}  // namespace oftm::foc
