// Contention-manager tests, including the obstruction-freedom contract:
// every manager must stop answering kWait within a bounded number of
// consultations for a fixed conflict (the paper: "eventually Tk must be
// able to abort Ti ... without any interaction with Ti").
#include <gtest/gtest.h>

#include "cm/managers.hpp"

namespace oftm::cm {
namespace {

Conflict make_conflict(int self = 0, int victim = 1, int attempt = 0) {
  Conflict c;
  c.self_tid = self;
  c.victim_tid = victim;
  c.self_tx = core::make_tx_id(self, 1);
  c.victim_tx = core::make_tx_id(victim, 1);
  c.attempt = attempt;
  return c;
}

TEST(Aggressive, AlwaysKills) {
  Aggressive cm;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, i)),
              Decision::kAbortVictim);
  }
}

TEST(Suicide, AlwaysSelfAborts) {
  Suicide cm;
  EXPECT_EQ(cm.on_conflict(make_conflict()), Decision::kAbortSelf);
}

TEST(Polite, WaitsThenKills) {
  Polite cm(/*max_attempts=*/3);
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 0)), Decision::kWait);
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 2)), Decision::kWait);
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 3)), Decision::kAbortVictim);
}

TEST(Karma, HigherKarmaWins) {
  Karma cm;
  for (int i = 0; i < 10; ++i) cm.on_open(1);  // victim accumulates karma
  // Fresh self (karma 0) vs victim karma 10: patience must build up.
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 0)), Decision::kWait);
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 10)), Decision::kAbortVictim);
  // Rich self kills immediately.
  for (int i = 0; i < 20; ++i) cm.on_open(0);
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 0)), Decision::kAbortVictim);
}

TEST(Karma, CommitResetsKarma) {
  Karma cm;
  for (int i = 0; i < 10; ++i) cm.on_open(2);
  cm.on_commit(2);
  // Victim 2 now has zero karma: fresh requester kills at once.
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 2, 0)), Decision::kAbortVictim);
}

TEST(Timestamp, ElderWinsImmediately) {
  Timestamp cm(/*patience=*/4);
  cm.on_tx_begin(0, core::make_tx_id(0, 1));  // older
  cm.on_tx_begin(1, core::make_tx_id(1, 1));  // younger
  EXPECT_EQ(cm.on_conflict(make_conflict(0, 1, 0)), Decision::kAbortVictim);
  // Younger defers to the elder, then kills after patience.
  EXPECT_EQ(cm.on_conflict(make_conflict(1, 0, 0)), Decision::kWait);
  EXPECT_EQ(cm.on_conflict(make_conflict(1, 0, 4)), Decision::kAbortVictim);
}

TEST(Factory, BuildsEveryKnownManager) {
  for (const std::string& name : manager_names()) {
    auto cm = make_manager(name);
    ASSERT_NE(cm, nullptr) << name;
    EXPECT_EQ(cm->name(), name);
  }
  EXPECT_THROW(make_manager("bogus"), std::invalid_argument);
}

// Property: obstruction-freedom contract. For any fixed conflict, every
// manager resolves (non-kWait) within a bounded number of consultations
// with increasing attempt counts.
class CmContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CmContractTest, EventuallyStopsWaiting) {
  auto cm = make_manager(GetParam());
  cm->on_tx_begin(0, core::make_tx_id(0, 1));
  cm->on_tx_begin(1, core::make_tx_id(1, 1));
  // Give the victim a large priority so the requester is maximally tempted
  // to wait.
  for (int i = 0; i < 1000; ++i) cm->on_open(1);
  bool resolved = false;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    const Decision d = cm->on_conflict(make_conflict(0, 1, attempt));
    if (d != Decision::kWait) {
      resolved = true;
      break;
    }
  }
  EXPECT_TRUE(resolved) << GetParam() << " waited forever";
}

INSTANTIATE_TEST_SUITE_P(AllManagers, CmContractTest,
                         ::testing::ValuesIn(manager_names()));

}  // namespace
}  // namespace oftm::cm
