// Backend-agnostic unit tests, run against every TM in the repo via the
// factory (parameterized suite): the TM-as-shared-object semantics of
// Section 2.2 that any backend must satisfy. The fixture and backend list
// are shared with the conformance suite (tests/tm_conformance.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/atomically.hpp"
#include "core/tvar.hpp"
#include "tm_conformance.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

using core::TxnPtr;

using StmUnitTest = conformance::TmConformanceTest;

TEST_P(StmUnitTest, InitialValuesAreZero) {
  TxnPtr txn = tm_->begin();
  for (core::TVarId x : {0u, 1u, 255u}) {
    const auto v = tm_->read(*txn, x);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0u);
  }
  EXPECT_TRUE(tm_->try_commit(*txn));
}

TEST_P(StmUnitTest, CommitPublishesWrites) {
  {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->write(*txn, 3, 33));
    ASSERT_TRUE(tm_->write(*txn, 4, 44));
    ASSERT_TRUE(tm_->try_commit(*txn));
    EXPECT_EQ(txn->status(), core::TxStatus::kCommitted);
  }
  EXPECT_EQ(tm_->read_quiescent(3), 33u);
  EXPECT_EQ(tm_->read_quiescent(4), 44u);
  TxnPtr txn = tm_->begin();
  EXPECT_EQ(tm_->read(*txn, 3).value(), 33u);
  EXPECT_TRUE(tm_->try_commit(*txn));
}

TEST_P(StmUnitTest, RequestedAbortRollsBack) {
  TxnPtr txn = tm_->begin();
  ASSERT_TRUE(tm_->write(*txn, 5, 55));
  tm_->try_abort(*txn);
  EXPECT_EQ(txn->status(), core::TxStatus::kAborted);
  EXPECT_EQ(tm_->read_quiescent(5), 0u);
  // The transaction is completed: further operations are rejected.
  EXPECT_FALSE(tm_->read(*txn, 5).has_value());
  EXPECT_FALSE(tm_->write(*txn, 5, 56));
  EXPECT_FALSE(tm_->try_commit(*txn));
}

TEST_P(StmUnitTest, ReadOwnWrite) {
  TxnPtr txn = tm_->begin();
  ASSERT_TRUE(tm_->write(*txn, 7, 70));
  EXPECT_EQ(tm_->read(*txn, 7).value(), 70u);
  ASSERT_TRUE(tm_->write(*txn, 7, 71));
  EXPECT_EQ(tm_->read(*txn, 7).value(), 71u);  // last own write wins
  ASSERT_TRUE(tm_->try_commit(*txn));
  EXPECT_EQ(tm_->read_quiescent(7), 71u);
}

TEST_P(StmUnitTest, ReadThenWriteThenReadSameVar) {
  {
    TxnPtr setup = tm_->begin();
    ASSERT_TRUE(tm_->write(*setup, 9, 90));
    ASSERT_TRUE(tm_->try_commit(*setup));
  }
  TxnPtr txn = tm_->begin();
  EXPECT_EQ(tm_->read(*txn, 9).value(), 90u);
  ASSERT_TRUE(tm_->write(*txn, 9, 91));
  EXPECT_EQ(tm_->read(*txn, 9).value(), 91u);
  ASSERT_TRUE(tm_->try_commit(*txn));
  EXPECT_EQ(tm_->read_quiescent(9), 91u);
}

TEST_P(StmUnitTest, RepeatedReadsAreConsistent) {
  TxnPtr txn = tm_->begin();
  const auto a = tm_->read(*txn, 11);
  const auto b = tm_->read(*txn, 11);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(tm_->try_commit(*txn));
}

TEST_P(StmUnitTest, SequentialTransactionsChainValues) {
  core::Value prev = 0;
  for (int i = 1; i <= 10; ++i) {
    TxnPtr txn = tm_->begin();
    EXPECT_EQ(tm_->read(*txn, 13).value(), prev);
    prev = static_cast<core::Value>(i * 100);
    ASSERT_TRUE(tm_->write(*txn, 13, prev));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  EXPECT_EQ(tm_->read_quiescent(13), 1000u);
}

TEST_P(StmUnitTest, SoloTransactionIsNeverForcefullyAborted) {
  // Obstruction-freedom sanity at the unit level: with no concurrency at
  // all, every transaction must commit (Definition 2: forceful aborts
  // require step contention).
  for (int i = 0; i < 100; ++i) {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->read(*txn, static_cast<core::TVarId>(i % 256))
                    .has_value());
    ASSERT_TRUE(
        tm_->write(*txn, static_cast<core::TVarId>((i + 1) % 256), i + 1));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  EXPECT_EQ(tm_->stats().forced_aborts, 0u);
}

TEST_P(StmUnitTest, StatsCountCommitsAndAborts) {
  tm_->reset_stats();
  {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->write(*txn, 1, 1));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->write(*txn, 1, 2));
    tm_->try_abort(*txn);
  }
  const auto s = tm_->stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.forced_aborts, 0u);  // tryA is not forceful
  EXPECT_GE(s.writes, 2u);
}

TEST_P(StmUnitTest, AtomicallyRetriesAndReturnsValue) {
  const auto result = core::atomically(*tm_, [](core::TxView& tx) {
    const core::Value v = tx.read(20);
    tx.write(20, v + 5);
    return v + 5;
  });
  EXPECT_EQ(result, 5u);
  EXPECT_EQ(tm_->read_quiescent(20), 5u);
}

TEST_P(StmUnitTest, AtomicallyCancelPropagates) {
  EXPECT_THROW(core::atomically(*tm_, [](core::TxView& tx) {
    tx.write(21, 1);
    tx.cancel();
  }),
               core::TxCancelled);
  EXPECT_EQ(tm_->read_quiescent(21), 0u);
}

TEST_P(StmUnitTest, ForeignExceptionFinishesTheTransaction) {
  // A non-TM exception unwinding out of a body must not leak backend
  // resources (coarse's global lock, TL's encounter-time locks): the
  // attempt loop aborts the pooled transaction before propagating.
  struct Boom {};
  EXPECT_THROW(core::atomically(*tm_,
                                [](core::TxView& tx) {
                                  tx.write(25, 1);
                                  throw Boom{};
                                }),
               Boom);
  // Progress and isolation after the unwind: a fresh transaction runs to
  // commit (this deadlocks on coarse if the lock leaked) and must not see
  // the aborted write.
  const auto v =
      core::atomically(*tm_, [](core::TxView& tx) { return tx.read(25); });
  EXPECT_EQ(v, 0u);
}

TEST_P(StmUnitTest, TypedTVarRoundTrip) {
  const core::TVar<double> pi(30);
  const core::TVar<int> counter(31);
  core::atomically(*tm_, [&](core::TxView& tx) {
    pi.set(tx, 3.25);
    counter.set(tx, -17);
  });
  core::atomically(*tm_, [&](core::TxView& tx) {
    EXPECT_DOUBLE_EQ(pi.get(tx), 3.25);
    EXPECT_EQ(counter.get(tx), -17);
  });
}

TEST_P(StmUnitTest, LargeWriteSet) {
  TxnPtr txn = tm_->begin();
  for (core::TVarId x = 0; x < 64; ++x) {
    ASSERT_TRUE(tm_->write(*txn, x, x + 1000));
  }
  ASSERT_TRUE(tm_->try_commit(*txn));
  for (core::TVarId x = 0; x < 64; ++x) {
    EXPECT_EQ(tm_->read_quiescent(x), x + 1000);
  }
}

TEST_P(StmUnitTest, WriteOnlyAndReadOnlyTransactions) {
  {
    TxnPtr w = tm_->begin();
    ASSERT_TRUE(tm_->write(*w, 40, 1));
    ASSERT_TRUE(tm_->try_commit(*w));
  }
  {
    TxnPtr r = tm_->begin();
    EXPECT_EQ(tm_->read(*r, 40).value(), 1u);
    EXPECT_EQ(tm_->read(*r, 41).value(), 0u);
    ASSERT_TRUE(tm_->try_commit(*r));
  }
}

OFTM_INSTANTIATE_FOR_ALL_BACKENDS(StmUnitTest);

}  // namespace
}  // namespace oftm
