// Concurrency stress tests for every backend:
//   * bank-transfer invariant preservation (atomicity under contention);
//   * recorded histories checked for serializability — and for the
//     obstruction-free backends, opacity (real-time order + consistent
//     aborted readers), the property Appendix B proves for Algorithm 2;
//   * progress accounting sanity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/barrier.hpp"
#include "runtime/xorshift.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

class StmStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StmStressTest, BankInvariantHolds) {
  auto tm = workload::make_tm(GetParam(), 128);
  bool invariant_ok = false;
  const auto result = workload::run_bank_workload(
      *tm, /*threads=*/8, /*tx_per_thread=*/3000, /*accounts=*/32,
      /*initial_balance=*/1000, /*seed=*/7, &invariant_ok);
  EXPECT_TRUE(invariant_ok) << GetParam();
  EXPECT_GT(result.committed, 0u);
}

TEST_P(StmStressTest, UniformMixIsSerializable) {
  auto tm = workload::make_tm(GetParam(), 64);
  history::Recorder recorder;
  history::RecordingTm recorded(*tm, recorder);

  workload::WorkloadConfig config;
  config.threads = 6;
  config.tx_per_thread = 400;
  config.ops_per_tx = 6;
  config.write_fraction = 0.4;
  config.pattern = workload::AccessPattern::kUniform;
  config.seed = 99;
  const auto result = workload::run_workload(recorded, config);
  EXPECT_EQ(result.committed, 6u * 400u);

  EXPECT_EQ(recorder.check_well_formed(), "");
  const auto txns = recorder.transactions();
  const auto check = history::check_mvsg(txns);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
}

TEST_P(StmStressTest, HighContentionHistoryIsOpaque) {
  // Few t-variables, many writers: maximal conflicts. All backends in this
  // repo implement opacity-strength safety (DSTM/FOCTM by construction,
  // TL/TL2 via encounter validation/global clock, coarse trivially), so the
  // full opacity check must pass on the recorded history.
  auto tm = workload::make_tm(GetParam(), 12);
  history::Recorder recorder;
  history::RecordingTm recorded(*tm, recorder);

  workload::WorkloadConfig config;
  config.threads = 6;
  config.tx_per_thread = 150;
  config.ops_per_tx = 4;
  config.write_fraction = 0.6;
  config.seed = 1234;
  (void)workload::run_workload(recorded, config);

  history::MvsgOptions opacity;
  opacity.respect_real_time = true;
  opacity.include_aborted_readers = true;
  const auto check = history::check_mvsg(recorder.transactions(), opacity);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
}

TEST_P(StmStressTest, DisjointPartitionsNeverConflict) {
  auto tm = workload::make_tm(GetParam(), 256);
  workload::WorkloadConfig config;
  config.threads = 8;
  config.tx_per_thread = 2000;
  config.ops_per_tx = 4;
  config.write_fraction = 1.0;
  config.pattern = workload::AccessPattern::kPartitioned;
  const auto result = workload::run_workload(*tm, config);
  EXPECT_EQ(result.committed, 8u * 2000u);
  // Disjoint t-variable partitions: transactional conflicts are impossible,
  // so (coarse aside, which serializes everything) abort counts should be
  // zero for every backend whose conflicts are per-t-variable.
  if (GetParam() != "coarse") {
    EXPECT_EQ(result.aborted_attempts, 0u) << GetParam();
  }
}

TEST_P(StmStressTest, ConcurrentCountersSumUp) {
  auto tm = workload::make_tm(GetParam(), 4);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  runtime::SpinBarrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      runtime::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        const auto x = static_cast<core::TVarId>(rng.next_range(4));
        for (;;) {
          core::TxnPtr txn = tm->begin();
          const auto v = tm->read(*txn, x);
          if (!v) continue;
          if (!tm->write(*txn, x, *v + 1)) continue;
          if (tm->try_commit(*txn)) break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  core::Value sum = 0;
  for (core::TVarId x = 0; x < 4; ++x) sum += tm->read_quiescent(x);
  EXPECT_EQ(sum, static_cast<core::Value>(kThreads) * kIncrements);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StmStressTest,
    ::testing::Values("dstm", "dstm:aggressive", "dstm:karma",
                      "dstm-collapse", "dstm-visible", "foctm-hinted",
                      "foctm-strict", "tl", "tl2", "tl2-ext", "coarse",
                      "norec", "norec-bloom"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

// The faithful (restart-at-version-1) FOCTM is quadratic by design; give it
// a smaller stress so the suite stays fast, but do exercise it concurrently.
TEST(FoctmFaithfulStress, BankInvariantHolds) {
  auto tm = workload::make_tm("foctm", 64);
  bool invariant_ok = false;
  const auto result = workload::run_bank_workload(
      *tm, /*threads=*/4, /*tx_per_thread=*/300, /*accounts=*/16,
      /*initial_balance=*/100, /*seed=*/3, &invariant_ok);
  EXPECT_TRUE(invariant_ok);
  EXPECT_GT(result.committed, 0u);
}

}  // namespace
}  // namespace oftm
