// Strict disjoint-access-parallelism experiments (Definition 12 /
// Theorem 13), including the full Figure 2 scenario:
//
//   T1 writes x and y, then its process suspends; T2 reads x and writes w;
//   T3 reads y and writes z. T2 and T3 touch disjoint t-variable sets, yet
//   on DSTM both must visit T1's transaction descriptor — a base-object
//   conflict between unrelated transactions, which is exactly the paper's
//   impossibility made visible. TL (per-t-variable metadata only) shows no
//   such conflict; TL2 shows one, but on its global clock.
#include <gtest/gtest.h>

#include <memory>

#include "cm/managers.hpp"
#include "dap/conflicts.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "sim/env.hpp"
#include "sim/platform.hpp"

namespace oftm::dap {
namespace {

using SimDstm = dstm::Dstm<sim::SimPlatform>;
using SimTl = lock::Tl<sim::SimPlatform>;
using SimTl2 = lock::Tl2<sim::SimPlatform>;
using SimFoctm =
    foctm::Foctm<sim::SimPlatform, foc::StrictFocPolicy<sim::SimPlatform>>;

// --- analyze() unit tests ---------------------------------------------------

TEST(ConflictAnalysis, DetectsModifyingOverlap) {
  int obj_a = 0, obj_b = 0;
  std::vector<sim::Step> trace;
  auto step = [&](int pid, std::uint64_t label, const void* obj,
                  sim::Step::Kind kind) {
    sim::Step s;
    s.pid = pid;
    s.label = label;
    s.obj = obj;
    s.kind = kind;
    trace.push_back(s);
  };
  step(0, 1, &obj_a, sim::Step::Kind::kStore);
  step(1, 2, &obj_a, sim::Step::Kind::kLoad);   // conflict with tx 1
  step(0, 1, &obj_b, sim::Step::Kind::kLoad);
  step(1, 2, &obj_b, sim::Step::Kind::kLoad);   // read/read: no conflict

  Footprints fp;
  fp[1] = {0};
  fp[2] = {1};
  const ConflictReport report = analyze(trace, fp);
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].object, &obj_a);
  EXPECT_TRUE(report.pairs[0].disjoint_tvars);
  EXPECT_EQ(report.violations, 1u);
}

TEST(ConflictAnalysis, FailedCasIsReadOnly) {
  int obj = 0;
  std::vector<sim::Step> trace;
  sim::Step s;
  s.pid = 0;
  s.label = 1;
  s.obj = &obj;
  s.kind = sim::Step::Kind::kCas;
  s.result = 0;  // failed CAS does not modify
  trace.push_back(s);
  s.pid = 1;
  s.label = 2;
  trace.push_back(s);
  const ConflictReport report = analyze(trace, {});
  EXPECT_TRUE(report.pairs.empty());
}

TEST(ConflictAnalysis, SharedTVarConflictsAreBenign) {
  int obj = 0;
  std::vector<sim::Step> trace;
  sim::Step s;
  s.obj = &obj;
  s.kind = sim::Step::Kind::kStore;
  s.pid = 0;
  s.label = 1;
  trace.push_back(s);
  s.pid = 1;
  s.label = 2;
  trace.push_back(s);
  Footprints fp;
  fp[1] = {0, 1};
  fp[2] = {1, 2};  // share t-var 1
  const ConflictReport report = analyze(trace, fp);
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_FALSE(report.pairs[0].disjoint_tvars);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.benign_conflicts, 1u);
}

TEST(ConflictAnalysis, WitnessCarriesFootprintsAndStableOrdinals) {
  // Two conflicting objects; obj_b appears first in the trace, so it gets
  // ordinal 0 regardless of where the objects happen to live in memory —
  // that is what keeps summarize() output diffable across runs.
  int obj_a = 0, obj_b = 0;
  std::vector<sim::Step> trace;
  auto step = [&](int pid, std::uint64_t label, const void* obj) {
    sim::Step s;
    s.pid = pid;
    s.label = label;
    s.obj = obj;
    s.kind = sim::Step::Kind::kStore;
    trace.push_back(s);
  };
  step(0, 1, &obj_b);
  step(0, 1, &obj_a);
  step(1, 2, &obj_b);
  step(1, 2, &obj_a);

  Footprints fp;
  fp[1] = {0, 2};
  fp[2] = {1, 3};
  const ConflictReport report = analyze(trace, fp);
  ASSERT_EQ(report.pairs.size(), 2u);
  // Sorted by first-appearance ordinal: obj_b (ord 0) before obj_a (ord 1).
  EXPECT_EQ(report.pairs[0].object, &obj_b);
  EXPECT_EQ(report.pairs[0].object_ord, 0u);
  EXPECT_EQ(report.pairs[1].object, &obj_a);
  EXPECT_EQ(report.pairs[1].object_ord, 1u);
  // Every pair carries the full witness: both TxIds and both footprints.
  for (const ConflictPair& p : report.pairs) {
    EXPECT_TRUE(p.disjoint_tvars);
    EXPECT_EQ(p.tvars_a, (std::vector<core::TVarId>{0, 2}));
    EXPECT_EQ(p.tvars_b, (std::vector<core::TVarId>{1, 3}));
  }

  // Unnamed objects render as their stable ordinal, named ones by name;
  // violating pairs print both footprints.
  const std::string out = report.summarize({{&obj_a, "clock"}});
  EXPECT_NE(out.find("T1 <-> T2 on obj#0"), std::string::npos) << out;
  EXPECT_NE(out.find("T1 <-> T2 on clock"), std::string::npos) << out;
  EXPECT_NE(out.find("T1 t-vars: {x0, x2}"), std::string::npos) << out;
  EXPECT_NE(out.find("T2 t-vars: {x1, x3}"), std::string::npos) << out;
}

// --- Figure 2 ---------------------------------------------------------------

// T-variables: x=0, y=1, w=2, z=3 (as in the paper).
struct Fig2Result {
  ConflictReport report;
  bool t2_committed = false;
  bool t3_committed = false;
};

template <typename Tm>
Fig2Result run_figure2(Tm& tm) {
  sim::Env env(3);
  auto result = std::make_shared<Fig2Result>();

  env.set_body(0, [&tm] {
    sim::Env::current()->set_label(1);  // T1
    core::TxnPtr txn = tm.begin();
    (void)tm.read(*txn, 2);             // R(w): 0
    (void)tm.read(*txn, 3);             // R(z): 0
    (void)tm.write(*txn, 0, 1);         // W(x, 1)
    (void)tm.write(*txn, 1, 1);         // W(y, 1)
    sim::Env::current()->marker("t1_acquired");
    (void)tm.try_commit(*txn);          // never reached: suspended before
  });
  env.set_body(1, [&tm, result] {
    sim::Env::current()->set_label(2);  // T2
    for (int i = 0; i < 50 && !result->t2_committed; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 0).has_value()) continue;  // R(x)
      if (!tm.write(*txn, 2, 1)) continue;          // W(w, 1)
      result->t2_committed = tm.try_commit(*txn);
    }
  });
  env.set_body(2, [&tm, result] {
    sim::Env::current()->set_label(3);  // T3
    for (int i = 0; i < 50 && !result->t3_committed; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 1).has_value()) continue;  // R(y)
      if (!tm.write(*txn, 3, 1)) continue;          // W(z, 1)
      result->t3_committed = tm.try_commit(*txn);
    }
  });

  env.start();
  // T1 runs up to (and including) acquiring x and y — signalled by its
  // marker — then suspends forever, the paper's "got suspended for a long
  // time". It never reaches its tryC invocation.
  auto t1_acquired = [&env] {
    for (const sim::Step& s : env.trace()) {
      if (s.kind == sim::Step::Kind::kMarker && s.note != nullptr &&
          std::string(s.note) == "t1_acquired") {
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < 400 && !t1_acquired(); ++i) env.step(0);
  // T2 executes and completes, then T3 — exactly the E_{p·2·s·3} shape.
  env.run_solo(1, 500000);
  env.run_solo(2, 500000);

  Footprints fp;
  fp[1] = {0, 1, 2, 3};  // T1 touches w, z, x, y
  fp[2] = {0, 2};        // T2: x, w
  fp[3] = {1, 3};        // T3: y, z
  result->report = analyze(env.trace(), fp);
  return *result;
}

TEST(Figure2, DstmViolatesStrictDap) {
  SimDstm tm(4, cm::make_manager("aggressive"));
  const Fig2Result r = run_figure2(tm);
  // Obstruction-freedom: both unrelated transactions commit despite T1.
  EXPECT_TRUE(r.t2_committed);
  EXPECT_TRUE(r.t3_committed);
  // ...but T2 and T3 conflicted on a common base object (T1's descriptor):
  // a strict-DAP violation between t-variable-disjoint transactions.
  bool t2_t3_violation = false;
  for (const ConflictPair& p : r.report.pairs) {
    if (p.tx_a == 2 && p.tx_b == 3 && p.disjoint_tvars) {
      t2_t3_violation = true;
    }
  }
  EXPECT_TRUE(t2_t3_violation) << r.report.summarize();
}

TEST(Figure2, FoctmViolatesStrictDapViaStateObjects) {
  // Algorithm 2 hits the same wall (Theorem 13 is about *every* OFTM): T2
  // and T3 both propose `aborted` to State[T1].
  SimFoctm tm(4);
  const Fig2Result r = run_figure2(tm);
  EXPECT_TRUE(r.t2_committed);
  EXPECT_TRUE(r.t3_committed);
  bool t2_t3_violation = false;
  for (const ConflictPair& p : r.report.pairs) {
    if (p.tx_a == 2 && p.tx_b == 3 && p.disjoint_tvars) {
      t2_t3_violation = true;
    }
  }
  EXPECT_TRUE(t2_t3_violation) << r.report.summarize();
}

TEST(Figure2, TlIsStrictlyDapButBlocks) {
  // The other side of the trade: TL has no shared base object between T2
  // and T3 (strict DAP) — but neither can commit while T1 holds its
  // encounter locks. Obstruction-freedom and strict DAP really do trade
  // off, which is the paper's point.
  SimTl tm(4, lock::TlOptions{/*patience=*/8});
  const Fig2Result r = run_figure2(tm);
  EXPECT_FALSE(r.t2_committed);
  EXPECT_FALSE(r.t3_committed);
  EXPECT_EQ(r.report.violations, 0u) << r.report.summarize();
}

TEST(Figure2, Tl2ViolatesStrictDapOnlyThroughItsClock) {
  // TL2: T2 and T3 share exactly one base object — the global version
  // clock (the paper: "every transaction has to access a common memory
  // location to determine its timestamp").
  SimTl2 tm(4);
  const Fig2Result r = run_figure2(tm);
  // T1 never locked anything (commit-time locking, and it is suspended
  // before tryC), so T2/T3 commit.
  EXPECT_TRUE(r.t2_committed);
  EXPECT_TRUE(r.t3_committed);
  int t2_t3_violations = 0;
  for (const ConflictPair& p : r.report.pairs) {
    if (p.tx_a == 2 && p.tx_b == 3 && p.disjoint_tvars) ++t2_t3_violations;
  }
  EXPECT_EQ(t2_t3_violations, 1);  // the clock, and only the clock
}

// Partitioned workload: disjoint transactions on DSTM never share base
// objects (no indirect linkage exists) — DSTM is DAP in the weaker sense of
// [22]; violations need the Figure-2 indirect connection.
TEST(StrictDap, DstmDisjointTransactionsAloneDoNotConflict) {
  SimDstm tm(4, cm::make_manager("aggressive"));
  sim::Env env(2);
  env.set_body(0, [&tm] {
    sim::Env::current()->set_label(1);
    core::TxnPtr txn = tm.begin();
    (void)tm.write(*txn, 0, 1);
    (void)tm.try_commit(*txn);
  });
  env.set_body(1, [&tm] {
    sim::Env::current()->set_label(2);
    core::TxnPtr txn = tm.begin();
    (void)tm.write(*txn, 1, 1);
    (void)tm.try_commit(*txn);
  });
  env.start();
  env.run_round_robin();
  Footprints fp;
  fp[1] = {0};
  fp[2] = {1};
  const ConflictReport report = analyze(env.trace(), fp);
  EXPECT_EQ(report.violations, 0u) << report.summarize();
}

}  // namespace
}  // namespace oftm::dap
