// Obstruction-freedom experiments (Definition 2, Theorem 5):
//
//   * a crashed/suspended transaction cannot block the OFTM backends (DSTM,
//     FOCTM) — the defining property; and the same scenario BLOCKS the
//     lock-based TL, the contrast the paper draws in the introduction;
//   * the step-contention oracle: across explored schedules, every forceful
//     abort has a step of another process inside the victim's lifetime
//     (Definition 2), checked on the simulator's low-level history;
//   * ic-obstruction-freedom (Definition 3 / Theorem 5): after a process
//     crashes, transactions that run with no live concurrency are never
//     forcefully aborted.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cm/managers.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "lock/tl.hpp"
#include "sim/explorer.hpp"
#include "sim/platform.hpp"

namespace oftm {
namespace {

using SimDstm = dstm::Dstm<sim::SimPlatform>;
using SimTl = lock::Tl<sim::SimPlatform>;
using SimFoctm =
    foctm::Foctm<sim::SimPlatform, foc::StrictFocPolicy<sim::SimPlatform>>;

// p0 starts a transaction, writes x and y, then is suspended forever
// (crash). p1 must still be able to run and commit a conflicting
// transaction — "a process that is preempted, delayed or even crashed
// cannot inhibit the progress of other processes".
template <typename Tm>
void run_crashed_owner_scenario(Tm& tm, bool expect_progress) {
  sim::Env env(2);
  auto committed = std::make_shared<bool>(false);
  env.set_body(0, [&tm] {
    core::TxnPtr txn = tm.begin();
    (void)tm.write(*txn, 0, 77);
    (void)tm.write(*txn, 1, 78);
    // Keep the transaction live: one more access loop we will never finish.
    (void)tm.read(*txn, 2);
    (void)tm.try_commit(*txn);
  });
  env.set_body(1, [&tm, committed] {
    for (int attempt = 0; attempt < 200 && !*committed; ++attempt) {
      core::TxnPtr txn = tm.begin();
      const auto v = tm.read(*txn, 0);
      if (!v) continue;
      if (!tm.write(*txn, 0, *v + 1)) continue;
      if (tm.try_commit(*txn)) *committed = true;
    }
  });
  env.start();
  // Let p0 run just far enough to take ownership of x (and possibly y),
  // then crash it mid-transaction.
  for (int i = 0; i < 6; ++i) env.step(0);
  env.crash(0);
  env.run_solo(1, 1'000'000);
  EXPECT_EQ(*committed, expect_progress);
}

TEST(ObstructionFreedom, CrashedOwnerCannotBlockDstm) {
  SimDstm tm(4, cm::make_manager("aggressive"));
  run_crashed_owner_scenario(tm, /*expect_progress=*/true);
}

TEST(ObstructionFreedom, CrashedOwnerCannotBlockDstmPoliteCm) {
  // Polite backs off a bounded number of times, then revokes: still OF.
  SimDstm tm(4, cm::make_manager("polite"));
  run_crashed_owner_scenario(tm, /*expect_progress=*/true);
}

TEST(ObstructionFreedom, CrashedOwnerCannotBlockFoctm) {
  SimFoctm tm(4);
  run_crashed_owner_scenario(tm, /*expect_progress=*/true);
}

TEST(ObstructionFreedom, CrashedOwnerBlocksTlForever) {
  // The contrast: TL's encounter-time locks are not revocable. p1
  // self-aborts forever; no amount of retrying helps.
  SimTl tm(4, lock::TlOptions{/*patience=*/8});
  run_crashed_owner_scenario(tm, /*expect_progress=*/false);
}

// Definition 2 as an executable oracle. Bodies bracket each transaction
// with markers; after every explored execution we verify: forcefully
// aborted => some step of another process lies inside the transaction's
// event window.
struct OracleState {
  std::unique_ptr<SimDstm> tm =
      std::make_unique<SimDstm>(3, cm::make_manager("aggressive"));
};

void oracle_txn(std::shared_ptr<OracleState> st, std::uint64_t label,
                core::TVarId a, core::TVarId b) {
  sim::Env* env = sim::Env::current();
  auto& tm = *st->tm;
  env->set_label(label);
  env->marker("tx_begin");
  core::TxnPtr txn = tm.begin();
  bool ok = tm.read(*txn, a).has_value() && tm.write(*txn, b, label);
  if (ok) ok = tm.try_commit(*txn);
  env->marker(ok ? "tx_commit" : "tx_forced_abort");
  env->set_label(0);
}

std::string check_definition2(const std::vector<sim::Step>& trace) {
  // For every label with a tx_forced_abort marker, find its window and
  // require a step by a different pid strictly inside it.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const sim::Step& end = trace[i];
    if (end.kind != sim::Step::Kind::kMarker ||
        std::string(end.note) != "tx_forced_abort") {
      continue;
    }
    // Find the matching begin (same label, latest before i).
    std::size_t begin = trace.size();
    for (std::size_t j = i; j-- > 0;) {
      if (trace[j].kind == sim::Step::Kind::kMarker &&
          trace[j].label == end.label &&
          std::string(trace[j].note) == "tx_begin") {
        begin = j;
        break;
      }
    }
    if (begin == trace.size()) return "unmatched tx_forced_abort marker";
    bool contention = false;
    for (std::size_t j = begin + 1; j < i && !contention; ++j) {
      contention = trace[j].is_shared_access() && trace[j].pid != end.pid;
    }
    if (!contention) {
      return "forceful abort without step contention (label " +
             std::to_string(end.label) + ")";
    }
  }
  return "";
}

TEST(ObstructionFreedom, ForcefulAbortImpliesStepContention) {
  auto setup = [](sim::Env& env) {
    auto st = std::make_shared<OracleState>();
    env.set_body(0, [st] { oracle_txn(st, 1, 0, 1); });
    env.set_body(1, [st] { oracle_txn(st, 2, 1, 0); });
    return [st, &env]() -> std::string {
      return check_definition2(env.trace());
    };
  };
  sim::ExplorerOptions options;
  options.preemption_bound = 3;
  options.max_executions = 30000;
  const auto r = sim::explore(2, setup, options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_GT(r.executions, 20u);
}

TEST(ObstructionFreedom, ForcefulAbortImpliesStepContentionThreeProcs) {
  auto setup = [](sim::Env& env) {
    auto st = std::make_shared<OracleState>();
    env.set_body(0, [st] { oracle_txn(st, 1, 0, 1); });
    env.set_body(1, [st] { oracle_txn(st, 2, 1, 2); });
    env.set_body(2, [st] { oracle_txn(st, 3, 2, 0); });
    return [st, &env]() -> std::string {
      return check_definition2(env.trace());
    };
  };
  sim::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_executions = 30000;
  const auto r = sim::explore(3, setup, options);
  EXPECT_FALSE(r.violation_found) << r.violation;
}

// Theorem 5 / ic-obstruction-freedom: once the only other process has
// crashed, a fresh transaction runs step-contention-free and must commit
// even though a *live* transaction of the crashed process still owns
// t-variables.
TEST(ObstructionFreedom, IcObstructionFreedomAfterCrash) {
  SimDstm tm(4, cm::make_manager("polite"));
  sim::Env env(2);
  env.set_body(0, [&tm] {
    core::TxnPtr txn = tm.begin();
    (void)tm.write(*txn, 0, 10);
    (void)tm.read(*txn, 3);
    (void)tm.try_commit(*txn);
  });
  auto outcomes = std::make_shared<std::pair<int, int>>(0, 0);  // commit/abort
  env.set_body(1, [&tm, outcomes] {
    for (int i = 0; i < 5; ++i) {
      core::TxnPtr txn = tm.begin();
      bool ok = tm.read(*txn, 0).has_value() && tm.write(*txn, 1, i + 1);
      if (ok) ok = tm.try_commit(*txn);
      ++(ok ? outcomes->first : outcomes->second);
    }
  });
  env.start();
  for (int i = 0; i < 8; ++i) env.step(0);  // p0 owns x, then...
  env.crash(0);                             // ...crashes
  env.run_solo(1, 1'000'000);
  // Every one of p1's post-crash transactions ran step-contention-free:
  // none may be forcefully aborted (they must all commit).
  EXPECT_EQ(outcomes->first, 5);
  EXPECT_EQ(outcomes->second, 0);
}

}  // namespace
}  // namespace oftm
