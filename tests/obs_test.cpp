// Tests for the observability layer (src/obs/): phase-timer calibration,
// the conflict heat map, abort-reason attribution and its reconciliation
// invariant across every backend recipe, the trace sink's ring/sampling
// determinism, and the contention-manager decision counters.
//
// The suite is built under whatever OFTM_OBS the tree was configured
// with: attribution assertions are gated on the macro, while the schema
// (TxStats fields, trace sink surface) is exercised in both modes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cm/managers.hpp"
#include "core/atomically.hpp"
#include "obs/phase_timer.hpp"
#include "obs/profile.hpp"
#include "obs/taxonomy.hpp"
#include "obs/trace.hpp"
#include "runtime/stats.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

// ---------------------------------------------------------------------------
// Taxonomy: stable wire names.
// ---------------------------------------------------------------------------

TEST(ObsTaxonomy, ReasonAndPhaseNamesAreDistinctAndNonEmpty) {
  std::set<std::string> reasons;
  for (std::size_t i = 0; i < obs::kNumAbortReasons; ++i) {
    const char* name = obs::abort_reason_name(i);
    ASSERT_NE(name, nullptr);
    EXPECT_NE(*name, '\0');
    reasons.insert(name);
  }
  EXPECT_EQ(reasons.size(), obs::kNumAbortReasons);

  std::set<std::string> phases;
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    const char* name = obs::phase_name(i);
    ASSERT_NE(name, nullptr);
    EXPECT_NE(*name, '\0');
    phases.insert(name);
  }
  EXPECT_EQ(phases.size(), obs::kNumPhases);
}

// ---------------------------------------------------------------------------
// Phase timer: calibration and monotonicity.
// ---------------------------------------------------------------------------

TEST(ObsPhaseTimer, CalibrationIsPositiveAndTicksAdvance) {
  EXPECT_GT(obs::ns_per_tick(), 0.0);
  // now_ticks is non-decreasing on one thread (invariant TSC or the
  // steady_clock fallback), and advances across a busy loop.
  const std::uint64_t t0 = obs::now_ticks();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  const std::uint64_t t1 = obs::now_ticks();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, t0) << "100k iterations took zero ticks";
  // Converted timestamps inherit the ordering.
  EXPECT_GE(obs::ticks_to_ns(t1), obs::ticks_to_ns(t0));
  const std::uint64_t n0 = obs::now_ns();
  const std::uint64_t n1 = obs::now_ns();
  EXPECT_GE(n1, n0);
}

#if OFTM_OBS

// ---------------------------------------------------------------------------
// Heat map: heavy hitters survive space-saving eviction.
// ---------------------------------------------------------------------------

TEST(ObsHeatMap, HeavyHitterSurvivesAStreamOfColdKeys) {
  obs::HeatMap heat;
  for (int i = 0; i < 100; ++i) heat.hit(42);
  // 50 distinct cold keys churn through the remaining slots.
  for (std::uint64_t k = 1000; k < 1050; ++k) heat.hit(k);
  std::vector<obs::HotVar> out;
  heat.collect_into(out);
  EXPECT_LE(out.size(), obs::HeatMap::kSlots);
  const obs::HotVar* hot = nullptr;
  for (const obs::HotVar& h : out) {
    if (h.key == 42) hot = &h;
  }
  ASSERT_NE(hot, nullptr) << "heavy hitter evicted by cold keys";
  EXPECT_GE(hot->hits, 100u);
}

TEST(ObsHeatMap, NeverExceedsSlotBound) {
  obs::HeatMap heat;
  for (std::uint64_t k = 0; k < 10000; ++k) heat.hit(k);
  std::vector<obs::HotVar> out;
  heat.collect_into(out);
  EXPECT_EQ(out.size(), obs::HeatMap::kSlots);
}

// ---------------------------------------------------------------------------
// Phase sampling gate and scoped recording.
// ---------------------------------------------------------------------------

TEST(ObsPhaseSampling, StrideElectsExactlyOneTransactionPerWindow) {
  const std::uint64_t stride = obs::phase_sample_stride();
  ASSERT_GE(stride, 1u);
  // The thread-local counter is monotone, so over any 8*stride
  // consecutive ticks exactly 8 are elected, wherever the phase starts.
  std::uint64_t sampled = 0;
  for (std::uint64_t i = 0; i < 8 * stride; ++i) {
    obs::tick_tx_sample();
    if (obs::tx_sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 8u);
}

TEST(ObsScopedPhase, SampledScopeRecordsIntoTheOwningCell) {
  obs::TmObs tm_obs;
  // Elect the current "transaction" deterministically.
  const std::uint64_t stride = obs::phase_sample_stride();
  for (std::uint64_t i = 0; i < stride; ++i) {
    obs::tick_tx_sample();
    if (obs::tx_sampled()) break;
  }
  ASSERT_TRUE(obs::tx_sampled());
  {
    OFTM_OBS_PHASE(tm_obs, obs::Phase::kValidation);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1;
  }
  std::uint64_t phase_ns[obs::kNumPhases] = {};
  std::uint64_t phase_count[obs::kNumPhases] = {};
  std::vector<obs::HotVar> hot;
  tm_obs.collect(phase_ns, phase_count, hot);
  EXPECT_EQ(phase_count[static_cast<std::size_t>(obs::Phase::kValidation)],
            1u);
  for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
    if (p != static_cast<std::size_t>(obs::Phase::kValidation)) {
      EXPECT_EQ(phase_count[p], 0u) << obs::phase_name(p);
    }
  }
}

TEST(ObsReasonCounters, CountsPerReasonExactly) {
  obs::ReasonCounters counters;
  counters.add(obs::AbortReason::kCmKill);
  counters.add(obs::AbortReason::kCmKill);
  counters.add(obs::AbortReason::kLockTimeout);
  EXPECT_EQ(
      counters.read(static_cast<std::size_t>(obs::AbortReason::kCmKill)), 2u);
  EXPECT_EQ(counters.read(
                static_cast<std::size_t>(obs::AbortReason::kLockTimeout)),
            1u);
  EXPECT_EQ(counters.read(static_cast<std::size_t>(
                obs::AbortReason::kReadValidation)),
            0u);
}

#endif  // OFTM_OBS

// ---------------------------------------------------------------------------
// TxStats: merge consistency and the reconciliation invariant.
// ---------------------------------------------------------------------------

TEST(ObsTxStats, MergeSumsReasonsPhasesAndHotVars) {
  runtime::TxStats a;
  a.commits = 10;
  a.aborts = 4;
  a.forced_aborts = 1;
  a.abort_reason[2] = 3;
  a.abort_reason[0] = 1;
  a.phase_ns[1] = 500;
  a.phase_count[1] = 5;
  a.hot_vars = {{7, 5}};

  runtime::TxStats b;
  b.commits = 5;
  b.aborts = 2;
  b.forced_aborts = 2;
  b.abort_reason[2] = 2;
  b.phase_ns[1] = 100;
  b.phase_count[1] = 1;
  b.hot_vars = {{7, 2}, {9, 3}};

  a.merge(b);
  EXPECT_EQ(a.commits, 15u);
  EXPECT_EQ(a.aborts, 6u);
  EXPECT_EQ(a.forced_aborts, 3u);
  EXPECT_EQ(a.abort_reason[2], 5u);
  EXPECT_EQ(a.abort_reason[0], 1u);
  EXPECT_EQ(a.abort_reason_total(), 6u);
  EXPECT_EQ(a.phase_ns[1], 600u);
  EXPECT_EQ(a.phase_count[1], 6u);
  EXPECT_DOUBLE_EQ(a.forced_abort_ratio(), 0.5);
  // Hot vars merged by key, heaviest first.
  ASSERT_EQ(a.hot_vars.size(), 2u);
  EXPECT_EQ(a.hot_vars[0].key, 7u);
  EXPECT_EQ(a.hot_vars[0].hits, 7u);
  EXPECT_EQ(a.hot_vars[1].key, 9u);
  EXPECT_EQ(a.hot_vars[1].hits, 3u);
#if OFTM_OBS
  EXPECT_TRUE(a.abort_reasons_consistent());
  a.check_abort_reasons();
#endif
}

TEST(ObsTxStats, ForcedAbortRatioIsZeroWithoutAborts) {
  runtime::TxStats s;
  EXPECT_DOUBLE_EQ(s.forced_abort_ratio(), 0.0);
  s.aborts = 8;
  s.forced_aborts = 8;
  EXPECT_DOUBLE_EQ(s.forced_abort_ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// Attribution: every backend recipe reconciles reasons with aborts.
// ---------------------------------------------------------------------------

class ObsReconciliationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ObsReconciliationTest, AbortReasonsSumToAbortsUnderContention) {
  // Small heap + high write fraction: force real conflicts so the abort
  // counters actually move on backends that can abort.
  auto tm = workload::make_tm(GetParam(), 16);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 400;
  config.ops_per_tx = 4;
  config.write_fraction = 0.5;
  config.seed = 0xAB0A7;
  // run_workload itself OFTM_ASSERTs the invariant after join; re-check
  // through the public predicate so a failure reads as a test failure.
  const workload::RunResult r = workload::run_workload(*tm, config);
  const runtime::TxStats s = r.tm_stats;
  EXPECT_TRUE(s.abort_reasons_consistent())
      << "sum(abort_reason)=" << s.abort_reason_total()
      << " aborts=" << s.aborts << " for " << GetParam();
#if !OFTM_OBS
  EXPECT_EQ(s.abort_reason_total(), 0u);
#endif
  EXPECT_EQ(r.committed, 1600u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ObsReconciliationTest,
    ::testing::ValuesIn(workload::all_backends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == ':') c = '_';
      }
      return name;
    });

TEST(ObsAttribution, ExplicitRetryIsAttributedToTheRetryReason) {
  auto tm = workload::make_tm("tl2", 16);
  int attempts = 0;
  core::atomically(*tm, [&attempts](core::TxView& v) {
    ++attempts;
    const core::Value x = v.read(0);
    if (attempts == 1) v.retry();  // precondition "fails" once
    v.write(0, x + 1);
  });
  EXPECT_EQ(attempts, 2);
  const runtime::TxStats s = tm->stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.forced_aborts, 0u);
#if OFTM_OBS
  EXPECT_EQ(s.abort_reason[static_cast<std::size_t>(
                obs::AbortReason::kExplicitRetry)],
            1u);
  s.check_abort_reasons();
#endif
}

TEST(ObsAttribution, CancelIsAttributedToUserRequested) {
  auto tm = workload::make_tm("norec", 16);
  EXPECT_THROW(
      core::atomically(*tm, [](core::TxView& v) { v.cancel(); }),
      core::TxCancelled);
  const runtime::TxStats s = tm->stats();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.forced_aborts, 0u);
#if OFTM_OBS
  EXPECT_EQ(s.abort_reason[static_cast<std::size_t>(
                obs::AbortReason::kUserRequested)],
            1u);
  s.check_abort_reasons();
#endif
}

// ---------------------------------------------------------------------------
// Contention-manager decision counters.
// ---------------------------------------------------------------------------

TEST(ObsCmDecisions, DecideTalliesPerDecision) {
  auto mgr = cm::make_manager("aggressive");  // always kAbortVictim
  cm::Conflict c;
  c.self_tid = 0;
  c.victim_tid = 1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(mgr->decide(c), cm::Decision::kAbortVictim);
  }
  const cm::ContentionManager::DecisionCounts n = mgr->decision_counts();
#if OFTM_OBS
  EXPECT_EQ(n.aborted_victim, 3u);
  EXPECT_EQ(n.waited, 0u);
  EXPECT_EQ(n.aborted_self, 0u);
#else
  EXPECT_EQ(n.aborted_victim, 0u);
#endif
}

// ---------------------------------------------------------------------------
// Trace sink: overflow, sampling determinism, Chrome JSON export.
//
// These tests run in declaration order and share the process-wide sink;
// each starts by configure()-ing it into a known state.
// ---------------------------------------------------------------------------

obs::TraceEvent make_event(std::uint64_t seq) {
  obs::TraceEvent e;
  e.start_ticks = 1000 + seq;
  e.dur_ticks = 10;
  e.tx_seq = seq;
  e.tid = 0;
  return e;
}

TEST(ObsTraceSink, OverflowKeepsTheNewestEventsAndCountsDrops) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.configure(/*ring_capacity=*/16, /*sample_stride=*/1, "");
  ASSERT_TRUE(sink.enabled());
  for (std::uint64_t i = 0; i < 100; ++i) sink.record(make_event(i));
  const std::vector<obs::TraceEvent> events = sink.snapshot();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(sink.dropped(), 84u);
  // The ring keeps the tail: the 16 most recent, in start order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tx_seq, 84 + i);
  }
}

TEST(ObsTraceSink, CounterStrideSamplingIsDeterministic) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.configure(/*ring_capacity=*/1024, /*sample_stride=*/4, "");
  for (std::uint64_t i = 0; i < 100; ++i) sink.record(make_event(i));
  const std::vector<obs::TraceEvent> events = sink.snapshot();
  ASSERT_EQ(events.size(), 25u);
  // Counter-based (not random) sampling: a fixed run keeps a fixed set.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tx_seq, 4 * i);
  }
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(ObsTraceSink, FlushWritesLoadableChromeTraceJson) {
  char path[] = "/tmp/oftm_obs_trace_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.configure(/*ring_capacity=*/64, /*sample_stride=*/1, path);

  obs::TraceEvent commit = make_event(0);
  commit.backend = sink.intern("tl2");
  sink.record(commit);
  obs::TraceEvent aborted = make_event(1);
  aborted.kind = obs::SpanKind::kAbort;
  aborted.reason = obs::AbortReason::kReadValidation;
  aborted.backend = commit.backend;
  sink.record(aborted);
  sink.flush();

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"abort:read_validation\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"tl2\""), std::string::npos);
  // The first event is rebased to ts=0.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  // Balanced object: starts with '{' and the last non-space is '}'.
  const std::size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[last], '}');

  close(fd);
  std::remove(path);
  // Leave the sink path-less so later suites in this process cannot
  // accidentally rewrite a deleted temp file at exit.
  sink.configure(/*ring_capacity=*/64, /*sample_stride=*/1, "");
}

TEST(ObsTraceSink, TracingDoesNotPerturbWorkloadResults) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.configure(/*ring_capacity=*/4096, /*sample_stride=*/1, "");
  auto tm = workload::make_tm("tl2", 64);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 500;
  config.ops_per_tx = 4;
  config.write_fraction = 0.5;
  config.seed = 99;
  const workload::RunResult r = workload::run_workload(*tm, config);
  EXPECT_EQ(r.committed, 2000u);
  EXPECT_TRUE(r.tm_stats.abort_reasons_consistent());
#if OFTM_OBS
  // The driver recorded one span per attempt on the sampled stride.
  EXPECT_GE(sink.snapshot().size() + sink.dropped(), 2000u);
#endif
}

}  // namespace
}  // namespace oftm
