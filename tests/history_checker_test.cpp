// Tests for the history framework: recording, well-formedness, and both
// correctness checkers (MVSG and exhaustive Definition-1 search), validated
// against hand-constructed serializable and non-serializable histories —
// including the exact history from the paper's Theorem 13 proof (Figure 2),
// which must be rejected.
#include <gtest/gtest.h>

#include "history/checker.hpp"
#include "history/event.hpp"
#include "history/recorder.hpp"

namespace oftm::history {
namespace {

// Tiny DSL for building digested transactions directly.
struct TxBuilder {
  TxRecord rec;
  std::uint64_t seq;

  TxBuilder(core::TxId id, int pid, std::uint64_t start) : seq(start) {
    rec.id = id;
    rec.pid = pid;
    rec.first_seq = start;
    rec.last_seq = start;
  }
  TxBuilder& read(core::TVarId x, core::Value v) {
    TxOp op;
    op.op = OpType::kRead;
    op.tvar = x;
    op.result = v;
    op.inv_seq = ++seq;
    op.resp_seq = ++seq;
    rec.ops.push_back(op);
    rec.last_seq = seq;
    return *this;
  }
  TxBuilder& write(core::TVarId x, core::Value v) {
    TxOp op;
    op.op = OpType::kWrite;
    op.tvar = x;
    op.arg = v;
    op.inv_seq = ++seq;
    op.resp_seq = ++seq;
    rec.ops.push_back(op);
    rec.last_seq = seq;
    return *this;
  }
  TxRecord commit() {
    rec.final_status = core::TxStatus::kCommitted;
    rec.last_seq = ++seq;
    return rec;
  }
  TxRecord abort() {
    rec.final_status = core::TxStatus::kAborted;
    rec.last_seq = ++seq;
    return rec;
  }
};

TEST(Mvsg, AcceptsSequentialHistory) {
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).write(0, 10).commit());
  txns.push_back(TxBuilder(2, 1, 100).read(0, 10).write(1, 20).commit());
  txns.push_back(TxBuilder(3, 0, 200).read(1, 20).commit());
  EXPECT_TRUE(check_mvsg(txns).ok);
  MvsgOptions strict;
  strict.respect_real_time = true;
  strict.include_aborted_readers = true;
  EXPECT_TRUE(check_mvsg(txns, strict).ok);
}

TEST(Mvsg, AcceptsSerializableInterleavingAgainstRealTime) {
  // T1 and T2 overlap; T2 commits first but T1 read the initial value of x
  // before T2's write: order T1 < T2 is legal. Without real-time edges this
  // passes even though T2's commit comes first.
  std::vector<TxRecord> txns;
  TxBuilder t1(1, 0, 0);
  t1.read(0, 0);
  TxBuilder t2(2, 1, 10);
  t2.seq = 20;
  txns.push_back(t2.write(0, 5).commit());  // commits at ~23
  t1.seq = 50;
  txns.push_back(t1.read(1, 0).commit());   // still sees old values
  EXPECT_TRUE(check_mvsg(txns).ok);
}

TEST(Mvsg, RejectsNonSerializableWriteSkew) {
  // Classic cycle: T1 reads x then writes y; T2 reads y then writes x; both
  // read initial 0 and both commit — no sequential order explains it if
  // each should have seen the other's write... here each MUST precede the
  // other through anti-dependencies.
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).read(0, 0).write(1, 11).commit());
  txns.push_back(TxBuilder(2, 1, 1).read(1, 0).write(0, 22).commit());
  // Serializable? T1 reads x=0 (ok before T2), T1 writes y; T2 read y=0
  // must precede T1's write: T2 < T1. And T1 < T2 by T1's read of x=0?
  // x=0 read only requires T1 before T2's write — contradiction.
  EXPECT_FALSE(check_mvsg(txns).ok);
}

TEST(Mvsg, RejectsReadOfNeverWrittenValue) {
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).read(0, 999).commit());
  const auto r = check_mvsg(txns);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no committed transaction wrote"), std::string::npos);
}

TEST(Mvsg, RejectsInconsistentRepeatedReads) {
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).write(0, 7).commit());
  txns.push_back(TxBuilder(2, 1, 100).read(0, 0).read(0, 7).commit());
  EXPECT_FALSE(check_mvsg(txns).ok);
}

TEST(Mvsg, AbortedReaderConsistencyOnlyUnderOpacity) {
  // An aborted transaction saw an impossible snapshot (x and y written
  // together atomically, but it saw one new and one old). Serializability
  // (committed-only) accepts; opacity mode rejects.
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).write(0, 1).write(1, 2).commit());
  TxBuilder bad(2, 1, 100);
  bad.read(0, 1);   // new value of x
  txns.push_back(bad.read(1, 0).abort());  // old value of y: inconsistent
  EXPECT_TRUE(check_mvsg(txns).ok);
  MvsgOptions opaque;
  opaque.respect_real_time = true;
  opaque.include_aborted_readers = true;
  EXPECT_FALSE(check_mvsg(txns, opaque).ok);
}

TEST(Mvsg, RealTimeOrderViolationDetected) {
  // T1 completes strictly before T2 starts, yet T2 reads the pre-T1 value:
  // fine for plain serializability (order T2 < T1), illegal when real-time
  // order must be preserved.
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0).write(0, 5).commit());       // [0, ~4]
  txns.push_back(TxBuilder(2, 1, 100).read(0, 0).commit());      // starts at 100
  EXPECT_TRUE(check_mvsg(txns).ok);
  MvsgOptions strict;
  strict.respect_real_time = true;
  EXPECT_FALSE(check_mvsg(txns, strict).ok);
}

// The Figure 2 history (Theorem 13's contradiction): T1 reads w=0, z=0 and
// writes x=1, y=1; T2 reads x=0 and writes w=1; T3 reads y=1 and writes
// z=1; all three commit. The paper shows no sequential legal order exists.
TEST(Mvsg, RejectsFigure2History) {
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0)
                     .read(/*w*/ 2, 0)
                     .read(/*z*/ 3, 0)
                     .write(/*x*/ 0, 1)
                     .write(/*y*/ 1, 1)
                     .commit());
  txns.push_back(TxBuilder(2, 1, 100).read(0, 0).write(2, 1).commit());
  txns.push_back(TxBuilder(3, 2, 200).read(1, 1).write(3, 1).commit());
  EXPECT_FALSE(check_mvsg(txns).ok);
  EXPECT_FALSE(check_exhaustive_serializability(txns).ok);
}

// The "good" variant of Figure 2: if T3 reads y = 0 instead (what a correct
// OFTM forces), the history is serializable as T2, T3, T1.
TEST(Mvsg, AcceptsFigure2CorrectedHistory) {
  std::vector<TxRecord> txns;
  txns.push_back(TxBuilder(1, 0, 0)
                     .read(2, 0)
                     .read(3, 0)
                     .write(0, 1)
                     .write(1, 1)
                     .commit());
  txns.push_back(TxBuilder(2, 1, 100).read(0, 0).write(2, 1).commit());
  txns.push_back(TxBuilder(3, 2, 200).read(1, 0).write(3, 1).commit());
  // Wait: T1 read w=0 and z=0 but T2 wrote w=1, T3 wrote z=1. Order
  // T1 < T2 < T3 works: T1 sees initial w, z; T2 sees x... T2 read x=0 but
  // T1 wrote x=1 before it — contradiction unless T2 < T1. Then T2 < T1,
  // T1 reads w=0 => T1 < T2. Cycle! So even the corrected T3 read does not
  // save the *whole* history unless T1 aborts. Model what DSTM actually
  // produces: T1 is forcefully aborted.
  txns[0].final_status = core::TxStatus::kAborted;
  EXPECT_TRUE(check_mvsg(txns).ok);
  EXPECT_TRUE(check_exhaustive_serializability(txns).ok);
}

TEST(Exhaustive, AgreesWithMvsgOnSmallHistories) {
  std::vector<TxRecord> good;
  good.push_back(TxBuilder(1, 0, 0).write(0, 1).commit());
  good.push_back(TxBuilder(2, 1, 50).read(0, 1).write(1, 2).commit());
  EXPECT_TRUE(check_exhaustive_serializability(good).ok);

  std::vector<TxRecord> bad;
  bad.push_back(TxBuilder(1, 0, 0).read(0, 0).write(1, 11).commit());
  bad.push_back(TxBuilder(2, 1, 1).read(1, 0).write(0, 22).commit());
  EXPECT_FALSE(check_exhaustive_serializability(bad).ok);
}

TEST(Exhaustive, CommitPendingMayCommitOrNot) {
  // A commit-pending transaction whose write was observed must be treated
  // as committed in some commit-completion (Definition 1).
  TxBuilder pending(1, 0, 0);
  TxRecord p = pending.write(0, 5).commit();
  p.final_status = core::TxStatus::kActive;
  p.commit_pending = true;
  std::vector<TxRecord> txns;
  txns.push_back(p);
  txns.push_back(TxBuilder(2, 1, 100).read(0, 5).commit());
  EXPECT_TRUE(check_exhaustive_serializability(txns).ok);

  // And one whose write contradicts the rest must be completable by NOT
  // committing it.
  TxRecord q = p;
  q.id = 3;
  q.ops[0].arg = 999;  // write 999 that nobody may see
  std::vector<TxRecord> txns2;
  txns2.push_back(q);
  txns2.push_back(TxBuilder(4, 1, 100).read(0, 0).commit());
  EXPECT_TRUE(check_exhaustive_serializability(txns2).ok);
}

TEST(Recorder, ProducesWellFormedHistories) {
  Recorder rec;
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = 1;
  inv.pid = 0;
  inv.op = OpType::kRead;
  inv.tvar = 0;
  rec.record(inv);
  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.result = 0;
  rec.record(resp);
  EXPECT_EQ(rec.check_well_formed(), "");

  // A second invocation without a response is ill-formed.
  rec.record(inv);
  Event inv2 = inv;
  inv2.op = OpType::kWrite;
  rec.record(inv2);
  EXPECT_NE(rec.check_well_formed(), "");
}

TEST(Recorder, DigestsTransactions) {
  Recorder rec;
  auto op = [&](core::TxId tx, OpType t, core::TVarId x, core::Value arg,
                core::Value result, bool aborted) {
    Event inv;
    inv.kind = Event::Kind::kInvoke;
    inv.tx = tx;
    inv.pid = 0;
    inv.op = t;
    inv.tvar = x;
    inv.arg = arg;
    rec.record(inv);
    Event resp = inv;
    resp.kind = Event::Kind::kResponse;
    resp.result = result;
    resp.aborted = aborted;
    rec.record(resp);
  };
  op(1, OpType::kWrite, 0, 42, 0, false);
  op(1, OpType::kTryCommit, core::kInvalidTVar, 0, 0, false);
  op(2, OpType::kRead, 0, 0, 42, false);
  op(2, OpType::kTryAbort, core::kInvalidTVar, 0, 0, true);

  const auto txns = rec.transactions();
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_TRUE(txns[0].committed());
  EXPECT_EQ(txns[0].ops.size(), 2u);
  EXPECT_TRUE(txns[1].aborted());
  EXPECT_TRUE(txns[1].requested_abort);
  EXPECT_FALSE(txns[1].forcefully_aborted());
  EXPECT_TRUE(txns[0].precedes(txns[1]) ||
              txns[0].last_seq > txns[1].first_seq);
}

}  // namespace
}  // namespace oftm::history
