// Unit tests for the sharded KV service (src/svc/): router determinism,
// seeding and the conservation audit, point-op semantics, the 2PC fast
// path / prepare-fail rollback / insufficient-funds votes, counter
// reconciliation under an abort storm, and shard-count transparency — a
// 1-shard and a 5-shard service driven by the same deterministic op
// sequence must be observationally identical (and match a plain map).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/memory_model.hpp"
#include "core/tm.hpp"
#include "runtime/xorshift.hpp"
#include "svc/service.hpp"

namespace oftm::svc {
namespace {

// A boxed-layout service plus the TMs it borrows, seeded and ready.
struct BoxedService {
  ServiceConfig cfg;
  std::vector<std::unique_ptr<core::TransactionalMemory>> tms;
  std::vector<core::TransactionalMemory*> raw;
  std::unique_ptr<KvServiceT<core::BoxedMemory>> svc;

  explicit BoxedService(ServiceConfig c) : cfg(std::move(c)) {
    tms = make_service_tms(cfg);
    for (auto& t : tms) raw.push_back(t.get());
    svc = std::make_unique<KvServiceT<core::BoxedMemory>>(cfg, raw);
    svc->init_and_seed();
  }
};

ServiceConfig small_config(int shards) {
  ServiceConfig cfg;
  cfg.backend = "tl2";
  cfg.num_shards = shards;
  cfg.clients = 2;
  cfg.keys = 256;
  return cfg;
}

// First key pair (src, dst) whose shards satisfy `order(s_src, s_dst)`.
template <typename Pred>
std::pair<std::uint64_t, std::uint64_t> find_pair(const ShardRouter& router,
                                                  std::uint64_t keys,
                                                  Pred order) {
  for (std::uint64_t a = 0; a < keys; ++a) {
    for (std::uint64_t b = 0; b < keys; ++b) {
      if (a != b && order(router.shard_of(a), router.shard_of(b))) {
        return {a, b};
      }
    }
  }
  ADD_FAILURE() << "no key pair with the requested shard order";
  return {0, 1};
}

TEST(SvcRouter, DeterministicAndCoversAllShards) {
  const ShardRouter router(8);
  std::set<int> hit;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const int s = router.shard_of(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    ASSERT_EQ(s, router.shard_of(k)) << "routing must be deterministic";
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 8u) << "hash partitioning left a shard empty";

  // Routers of equal shard count agree (the service and the tests build
  // separate instances and rely on this).
  const ShardRouter other(8);
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(router.shard_of(k), other.shard_of(k));
  }
}

TEST(SvcService, SeedPartitionsAllKeysAndAuditPasses) {
  BoxedService b(small_config(4));
  std::uint64_t owned = 0;
  for (int i = 0; i < 4; ++i) {
    owned += b.svc->shard(i).keys_owned_quiescent();
    EXPECT_EQ(b.svc->shard(i).locks_held_quiescent(), 0u);
    EXPECT_TRUE(b.svc->shard(i).audit_index_quiescent());
  }
  EXPECT_EQ(owned, b.cfg.keys);

  std::string why;
  EXPECT_TRUE(b.svc->audit(&why)) << why;

  // Every key reads back its seed balance through the router.
  for (std::uint64_t k = 0; k < b.cfg.keys; ++k) {
    ASSERT_EQ(b.svc->do_get(k),
              static_cast<core::Value>(b.cfg.initial_balance));
  }
}

TEST(SvcService, PutAddAccumulatesAndFeedsTheConservationTerm) {
  BoxedService b(small_config(4));
  b.svc->do_put(7, 25);
  b.svc->do_put(7, 5);
  b.svc->do_put(200, 1);
  EXPECT_EQ(b.svc->do_get(7), b.cfg.initial_balance + 30);
  EXPECT_EQ(b.svc->do_get(200), b.cfg.initial_balance + 1);

  core::Value delta = 0;
  for (int i = 0; i < 4; ++i) delta += b.svc->shard(i).applied_put_delta();
  EXPECT_EQ(delta, 31);

  std::string why;
  EXPECT_TRUE(b.svc->audit(&why)) << why;
}

TEST(SvcCoordinator, SingleShardTakesOnlyTheFastPath) {
  BoxedService b(small_config(1));
  CoordinatorStats stats;
  EXPECT_EQ(b.svc->do_transfer(3, 9, 100, stats), Vote::kYes);
  EXPECT_EQ(b.svc->do_transfer(9, 3, 40, stats), Vote::kYes);
  EXPECT_EQ(stats.transfers_attempted, 2u);
  EXPECT_EQ(stats.committed_fast_path, 2u);
  EXPECT_EQ(stats.committed_two_phase, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(b.svc->do_get(3), b.cfg.initial_balance - 100 + 40);
  EXPECT_EQ(b.svc->do_get(9), b.cfg.initial_balance + 100 - 40);
  EXPECT_TRUE(b.svc->audit());
}

TEST(SvcCoordinator, CrossShardTransferRunsTheFullProtocol) {
  BoxedService b(small_config(4));
  const auto [src, dst] = find_pair(b.svc->router(), b.cfg.keys,
                                    [](int s, int d) { return s != d; });
  CoordinatorStats stats;
  EXPECT_EQ(b.svc->do_transfer(src, dst, 123, stats), Vote::kYes);
  EXPECT_EQ(stats.committed_two_phase, 1u);
  EXPECT_EQ(stats.committed_fast_path, 0u);
  EXPECT_EQ(b.svc->do_get(src), b.cfg.initial_balance - 123);
  EXPECT_EQ(b.svc->do_get(dst), b.cfg.initial_balance + 123);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.svc->shard(i).locks_held_quiescent(), 0u);
  }
  EXPECT_TRUE(b.svc->audit());
}

TEST(SvcCoordinator, SecondPrepareBusyRollsBackTheFirst) {
  BoxedService b(small_config(4));
  // shard(src) < shard(dst): dst is prepared *second*, so a lock on dst
  // forces the rollback path (first prepared, then released).
  const auto [src, dst] = find_pair(b.svc->router(), b.cfg.keys,
                                    [](int s, int d) { return s < d; });
  constexpr std::uint64_t kForeignToken = 0xF00D;
  ASSERT_EQ(b.svc->shard_for(dst).prepare(dst, kForeignToken, 0), Vote::kYes);

  CoordinatorStats stats;
  EXPECT_EQ(b.svc->do_transfer(src, dst, 10, stats), Vote::kBusy);
  EXPECT_EQ(stats.busy_second, 1u);
  EXPECT_EQ(stats.busy_first, 0u);
  EXPECT_EQ(stats.rollbacks, 1u) << "prepared src lock must be released";
  EXPECT_EQ(stats.committed_two_phase, 0u);

  // No residue: balances untouched, only the foreign lock remains.
  EXPECT_EQ(b.svc->do_get(src), static_cast<core::Value>(b.cfg.initial_balance));
  EXPECT_EQ(b.svc->do_get(dst), static_cast<core::Value>(b.cfg.initial_balance));
  EXPECT_EQ(b.svc->shard_for(src).locks_held_quiescent(), 0u);
  EXPECT_EQ(b.svc->shard_for(dst).locks_held_quiescent(), 1u);

  // Clear the foreign lock; the same transfer now commits.
  b.svc->shard_for(dst).release(dst, kForeignToken);
  EXPECT_EQ(b.svc->do_transfer(src, dst, 10, stats), Vote::kYes);
  EXPECT_EQ(stats.committed_two_phase, 1u);
  EXPECT_TRUE(b.svc->audit());
}

TEST(SvcCoordinator, FirstPrepareBusyAbortsBeforeAnyLock) {
  BoxedService b(small_config(4));
  const auto [src, dst] = find_pair(b.svc->router(), b.cfg.keys,
                                    [](int s, int d) { return s < d; });
  constexpr std::uint64_t kForeignToken = 0xBEEF;
  ASSERT_EQ(b.svc->shard_for(src).prepare(src, kForeignToken, 0), Vote::kYes);

  CoordinatorStats stats;
  EXPECT_EQ(b.svc->do_transfer(src, dst, 10, stats), Vote::kBusy);
  EXPECT_EQ(stats.busy_first, 1u);
  EXPECT_EQ(stats.rollbacks, 0u) << "nothing was prepared, nothing to release";
  EXPECT_EQ(b.svc->shard_for(dst).locks_held_quiescent(), 0u);
  b.svc->shard_for(src).release(src, kForeignToken);
  EXPECT_TRUE(b.svc->audit());
}

TEST(SvcCoordinator, InsufficientFundsIsFinalAndLockFree) {
  BoxedService b(small_config(4));
  const auto [src, dst] = find_pair(b.svc->router(), b.cfg.keys,
                                    [](int s, int d) { return s != d; });
  CoordinatorStats stats;
  EXPECT_EQ(b.svc->do_transfer(src, dst, b.cfg.initial_balance + 1, stats),
            Vote::kInsufficient);
  EXPECT_EQ(stats.insufficient, 1u);
  EXPECT_EQ(b.svc->do_get(src), static_cast<core::Value>(b.cfg.initial_balance));
  EXPECT_EQ(b.svc->do_get(dst), static_cast<core::Value>(b.cfg.initial_balance));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.svc->shard(i).locks_held_quiescent(), 0u);
  }

  // The debit side prepared *second* (shard(src) > shard(dst)): the credit
  // participant is already locked when the insufficient vote lands, so
  // this shape must also roll back cleanly.
  const auto [src2, dst2] = find_pair(b.svc->router(), b.cfg.keys,
                                      [](int s, int d) { return s > d; });
  CoordinatorStats stats2;
  EXPECT_EQ(b.svc->do_transfer(src2, dst2, b.cfg.initial_balance + 1, stats2),
            Vote::kInsufficient);
  EXPECT_EQ(stats2.insufficient, 1u);
  EXPECT_EQ(stats2.rollbacks, 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.svc->shard(i).locks_held_quiescent(), 0u);
  }
  EXPECT_TRUE(b.svc->audit());
}

// Transfer-only storm on a tiny hot keyspace: every counter the layers
// keep must reconcile exactly, and the audit must hold afterwards.
TEST(SvcService, AbortStormCountersReconcile) {
  ServiceConfig cfg = small_config(4);
  cfg.keys = 64;
  cfg.clients = 4;
  cfg.put_fraction = 0.0;
  cfg.transfer_fraction = 0.9;
  cfg.scan_fraction = 0.0;
  cfg.churn_fraction = 0.0;
  cfg.ops_per_client = 1500;
  BoxedService b(cfg);

  const SvcRunResult r = b.svc->run_clients();

  // Attempt-level: every coordinator attempt ended in exactly one outcome.
  EXPECT_EQ(r.coord.transfers_attempted,
            r.coord.committed_fast_path + r.coord.committed_two_phase +
                r.coord.busy_first + r.coord.busy_second +
                r.coord.insufficient);
  // Client/protocol agreement, outcome by outcome.
  EXPECT_EQ(r.transfers_committed,
            r.coord.committed_fast_path + r.coord.committed_two_phase);
  EXPECT_EQ(r.transfers_insufficient, r.coord.insufficient);
  EXPECT_EQ(r.transfer_busy_retries, r.coord.busy_first + r.coord.busy_second);
  // Rollbacks are exactly the busy-or-insufficient verdicts that arrived
  // after a first participant had already prepared.
  EXPECT_LE(r.coord.rollbacks, r.coord.busy_second + r.coord.insufficient);
  // Op-level: completed ops partition into the per-kind counts.
  EXPECT_EQ(r.ops, r.gets + r.puts + r.scans + r.churns +
                       r.transfers_committed + r.transfers_insufficient);
  EXPECT_EQ(r.puts + r.scans + r.churns, 0u);
  EXPECT_GT(r.transfers_committed, 0u);
  EXPECT_EQ(r.op_latency_ns.count(), r.ops + r.transfers_gave_up);

  std::string why;
  EXPECT_TRUE(b.svc->audit(&why)) << why;
  for (int i = 0; i < cfg.num_shards; ++i) {
    EXPECT_EQ(b.svc->shard(i).locks_held_quiescent(), 0u);
  }
}

// Shard-count transparency: the same deterministic op sequence against a
// 1-shard and a 5-shard service yields identical observable results, and
// both match a plain std::unordered_map oracle.
TEST(SvcService, ShardCountIsObservationallyTransparent) {
  BoxedService one(small_config(1));
  BoxedService five(small_config(5));

  std::unordered_map<std::uint64_t, core::Value> oracle_balance;
  std::set<std::uint64_t> oracle_index;
  for (std::uint64_t k = 0; k < one.cfg.keys; ++k) {
    oracle_balance[k] = one.cfg.initial_balance;
    oracle_index.insert(k);
  }

  runtime::Xoshiro256 rng(2026);
  CoordinatorStats s1, s5;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.next_range(one.cfg.keys);
    switch (rng.next_range(5)) {
      case 0: {  // get
        const core::Value v1 = one.svc->do_get(key);
        const core::Value v5 = five.svc->do_get(key);
        ASSERT_EQ(v1, v5);
        ASSERT_EQ(v1, oracle_balance[key]);
        break;
      }
      case 1: {  // put
        const core::Value delta = rng.next_range(50) + 1;
        one.svc->do_put(key, delta);
        five.svc->do_put(key, delta);
        oracle_balance[key] += delta;
        break;
      }
      case 2: {  // transfer
        std::uint64_t dst = rng.next_range(one.cfg.keys);
        if (dst == key) dst = (dst + 1) % one.cfg.keys;
        const core::Value amount = rng.next_range(400) + 1;
        const Vote v1 = one.svc->do_transfer(key, dst, amount, s1);
        const Vote v5 = five.svc->do_transfer(key, dst, amount, s5);
        ASSERT_EQ(v1, v5) << "transfer verdict depends on shard count";
        ASSERT_NE(v1, Vote::kBusy) << "no concurrency, nothing can be busy";
        if (v1 == Vote::kYes) {
          oracle_balance[key] -= amount;
          oracle_balance[dst] += amount;
        } else {
          ASSERT_LT(oracle_balance[key], amount);
        }
        break;
      }
      case 3: {  // global ordered-index scan
        const std::uint64_t lo = rng.next_range(one.cfg.keys);
        const std::uint64_t hi = lo + rng.next_range(64) + 1;
        const std::uint64_t n1 = one.svc->do_scan_index(lo, hi);
        const std::uint64_t n5 = five.svc->do_scan_index(lo, hi);
        ASSERT_EQ(n1, n5);
        std::uint64_t expect = 0;
        for (std::uint64_t k : oracle_index) {
          if (k >= lo && k < hi) ++expect;
        }
        ASSERT_EQ(n1, expect);
        break;
      }
      default: {  // index churn
        one.svc->do_churn(key);
        five.svc->do_churn(key);
        if (!oracle_index.erase(key)) oracle_index.insert(key);
        break;
      }
    }
  }

  // Single-shard balance range scans match the oracle too.
  for (const auto [lo, hi] : {std::pair<std::uint64_t, std::uint64_t>{0, 256},
                              {10, 50},
                              {200, 230}}) {
    core::Value expect = 0;
    for (const auto& [k, v] : oracle_balance) {
      if (k >= lo && k < hi) expect += v;
    }
    EXPECT_EQ(one.svc->do_scan_balances(0, lo, hi), expect);
  }

  EXPECT_TRUE(one.svc->audit());
  EXPECT_TRUE(five.svc->audit());
  // The 5-shard run must actually have exercised the protocol.
  EXPECT_GT(s5.committed_two_phase, 0u);
  EXPECT_EQ(s1.committed_two_phase, 0u);
}

// End-to-end smoke on a region recipe through the runtime dispatcher —
// the same service code on tx_alloc'd heap words instead of t-var arenas.
TEST(SvcService, RegionRecipeEndToEnd) {
  ServiceConfig cfg;
  cfg.backend = "tl2-region";
  cfg.num_shards = 2;
  cfg.clients = 2;
  cfg.keys = 256;
  cfg.ops_per_client = 1200;
  const ServiceRun run = run_service(cfg);
  EXPECT_TRUE(run.audit_ok) << run.audit_why;
  EXPECT_GT(run.result.ops, 0u);
  EXPECT_GT(run.result.tm_stats.commits, 0u);
}

TEST(SvcService, NorecRecipeEndToEnd) {
  ServiceConfig cfg;
  cfg.backend = "norec";
  cfg.num_shards = 2;
  cfg.clients = 2;
  cfg.keys = 256;
  cfg.ops_per_client = 1200;
  const ServiceRun run = run_service(cfg);
  EXPECT_TRUE(run.audit_ok) << run.audit_why;
  EXPECT_GT(run.result.ops, 0u);
}

}  // namespace
}  // namespace oftm::svc
