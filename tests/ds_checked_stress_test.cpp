// Checked-stress ride-along for the region-backed containers: 100k
// committed transactions of alloc/free churn through the RegionHeap's
// epochs per structure × region recipe, with an opacity verdict.
//
// The history checker's vocabulary (and its unique-writes discipline) is
// TVarId-based, while region container traffic is word-granular and
// necessarily unrecorded (history::RecordingTm forwards the word tier
// transparently). So each churn transaction carries recorded scratch
// t-variable operations riding in the SAME transaction as the container
// op: a read of a neighbour thread's scratch var, a read of the thread's
// own, and a unique-valued write of its own. check_mvsg then certifies
// that projection of the history — if the region backend ever served the
// churn transactions a non-opaque schedule, the scratch projection
// embedded in those very transactions could not stay opaque either.
//
// Suite label: checked-stress (own CI job; excluded from the sanitizer
// presets — see tests/CMakeLists.txt and CMakePresets.json).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/xorshift.hpp"
#include "workload/factory.hpp"

namespace oftm::ds {
namespace {

constexpr int kThreads = 4;
constexpr int kTxnsPerThread = 25'000;  // 100k committed txns per test

// Recorder reserve for one churn run: each attempt records the 3-op
// scratch projection (2 reads + 1 write, invoke/response pairs) plus the
// tryC pair = 8 events; container word traffic forwards unrecorded. The
// scratch vars are deliberately contended (every transaction reads a
// neighbour thread's), so budget 3 aborted attempts per commit — the
// checked tier asserts size() <= reserved() to keep this honest.
constexpr std::size_t kReservePerRun = static_cast<std::size_t>(kThreads) *
                                       kTxnsPerThread * 8 * (1 + 3);

// One churn transaction body per call: recorded scratch ops + an
// unrecorded region container op, all in one transaction. `op` receives
// the TxView and performs the container traffic.
template <typename Op>
void run_churn(core::TransactionalMemory& recorded, Op&& op) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorded, &op, t] {
      runtime::Xoshiro256 rng(9000 + static_cast<std::uint64_t>(t));
      std::uint64_t attempt_seq = 0;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        core::atomically(recorded, [&](core::TxView& tx) {
          // Unique value per ATTEMPT, not per logical op — a retried
          // attempt is a distinct recorded transaction and must not
          // duplicate a written value (unique-writes discipline).
          const core::Value unique =
              (static_cast<core::Value>(t + 1) << 40) | ++attempt_seq;
          (void)tx.read(static_cast<core::TVarId>((t + 1) % kThreads));
          (void)tx.read(static_cast<core::TVarId>(t));
          op(tx, t, rng);
          tx.write(static_cast<core::TVarId>(t), unique);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
}

void check_history(history::Recorder& recorder) {
  const auto events = recorder.events();
  // Pre-sizing drift guard: kReservePerRun must cover the actual log, or
  // recording paid regrowth stalls under the recorder lock mid-run.
  EXPECT_LE(events.size(), recorder.reserved())
      << "recorder outgrew its reserve: kReservePerRun underestimates "
         "this churn configuration";
  ASSERT_EQ(history::Recorder::check_well_formed(events, /*threads=*/0), "");
  const auto txns = history::Recorder::transactions(events, /*threads=*/0);
  EXPECT_GE(txns.size(),
            static_cast<std::size_t>(kThreads) * kTxnsPerThread);
  history::MvsgOptions opts;
  opts.respect_real_time = true;
  opts.include_aborted_readers = true;
  opts.threads = 0;  // parallel check; bit-identical to sequential
  const auto check = history::check_mvsg(txns, opts);
  EXPECT_TRUE(check.ok) << check.error;
}

void run_list_churn(const std::string& backend) {
  constexpr std::uint32_t kCap = 512;
  const std::size_t words =
      TListSetT<core::RegionMemory>::tvars_needed(kCap) + kThreads;
  auto tm = workload::make_tm_for_containers(backend, words);
  ASSERT_TRUE(tm->has_word_access());
  history::Recorder recorder;
  recorder.reserve(kReservePerRun);
  history::RecordingTm recorded(*tm, recorder);

  TListSetT<core::RegionMemory> set(recorded, 0, kCap);
  set.init();
  run_churn(recorded, [&set](core::TxView& tx, int /*t*/,
                             runtime::Xoshiro256& rng) {
    // Node alloc/free churn: inserts and erases through the RegionHeap's
    // size-class free lists and epoch-deferred reclamation.
    const std::uint64_t key = rng.next_range(400) + 1;
    if (rng.next_bool(0.5)) {
      set.insert(tx, key);
    } else {
      set.erase(tx, key);
    }
  });
  EXPECT_TRUE(set.audit_quiescent());
  check_history(recorder);
}

void run_map_churn(const std::string& backend) {
  constexpr std::uint32_t kCap = 1024;
  const std::size_t words =
      THashMapT<core::RegionMemory>::tvars_needed(kCap) + kThreads;
  auto tm = workload::make_tm_for_containers(backend, words);
  ASSERT_TRUE(tm->has_word_access());
  history::Recorder recorder;
  recorder.reserve(kReservePerRun);
  history::RecordingTm recorded(*tm, recorder);

  THashMapT<core::RegionMemory> map(recorded, 0, kCap);
  map.init();
  run_churn(recorded, [&map](core::TxView& tx, int t,
                             runtime::Xoshiro256& rng) {
    // Put/erase churn over the contiguous word-array probe table,
    // tombstone trimming included.
    const std::uint64_t key = rng.next_range(700);
    if (rng.next_bool(0.6)) {
      map.put(tx, key, (static_cast<core::Value>(t) << 32) | key);
    } else {
      map.erase(tx, key);
    }
  });
  check_history(recorder);
}

TEST(DsCheckedStress, ListChurnOpacityOnTl2Region) {
  run_list_churn("tl2-region");
}

TEST(DsCheckedStress, ListChurnOpacityOnNorecRegion) {
  run_list_churn("norec-region");
}

TEST(DsCheckedStress, MapChurnOpacityOnTl2Region) {
  run_map_churn("tl2-region");
}

TEST(DsCheckedStress, MapChurnOpacityOnNorecRegion) {
  run_map_churn("norec-region");
}

}  // namespace
}  // namespace oftm::ds
