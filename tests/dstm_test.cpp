// DSTM-specific mechanics beyond the backend-agnostic suites: revocable
// ownership (the CAS-on-status kill path), invisible-read invalidation,
// eager descriptor collapse, and reclamation hygiene.
#include <gtest/gtest.h>

#include <memory>

#include "cm/managers.hpp"
#include "core/platform.hpp"
#include "dstm/dstm.hpp"
#include "runtime/epoch.hpp"

namespace oftm::dstm {
namespace {

std::unique_ptr<HwDstm> make(const std::string& cm = "aggressive",
                             DstmOptions options = {}) {
  return std::make_unique<HwDstm>(16, cm::make_manager(cm), options);
}

TEST(Dstm, WriterRevokesLiveWriter) {
  auto tm = make();
  auto t1 = tm->begin();
  ASSERT_TRUE(tm->write(*t1, 0, 11));
  EXPECT_EQ(t1->status(), core::TxStatus::kActive);

  auto t2 = tm->begin();
  ASSERT_TRUE(tm->write(*t2, 0, 22));  // aggressive CM kills t1
  EXPECT_EQ(t1->status(), core::TxStatus::kAborted);
  EXPECT_FALSE(tm->try_commit(*t1));
  EXPECT_TRUE(tm->try_commit(*t2));
  EXPECT_EQ(tm->read_quiescent(0), 22u);
  EXPECT_GE(tm->stats().victim_kills, 1u);
}

TEST(Dstm, ReaderRevokesLiveWriter) {
  // A reader meeting a live owner must resolve it (the paper: "Ti may have
  // to eventually abort Tk") — with the aggressive manager, immediately.
  auto tm = make();
  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 11));
  auto reader = tm->begin();
  EXPECT_EQ(tm->read(*reader, 0).value(), 0u);  // pre-writer value
  EXPECT_EQ(writer->status(), core::TxStatus::kAborted);
  EXPECT_TRUE(tm->try_commit(*reader));
}

TEST(Dstm, InvisibleReaderIsInvalidatedNotKilled) {
  // Readers are invisible: a later writer does NOT abort the reader's
  // descriptor; the reader discovers the conflict at validation.
  auto tm = make();
  auto reader = tm->begin();
  EXPECT_EQ(tm->read(*reader, 0).value(), 0u);

  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 5));
  ASSERT_TRUE(tm->try_commit(*writer));

  // Reader is still active (invisible!), but must fail at commit: its
  // snapshot is stale.
  EXPECT_EQ(reader->status(), core::TxStatus::kActive);
  EXPECT_FALSE(tm->try_commit(*reader));
  EXPECT_EQ(reader->status(), core::TxStatus::kAborted);
}

TEST(Dstm, ReadSetRevalidationAbortsAtNextOpen) {
  // Opacity: the stale snapshot is discovered at the very next open, not
  // only at commit — a doomed transaction cannot observe an inconsistent
  // pair of values.
  auto tm = make();
  auto reader = tm->begin();
  EXPECT_EQ(tm->read(*reader, 0).value(), 0u);

  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 7));
  ASSERT_TRUE(tm->write(*writer, 1, 8));
  ASSERT_TRUE(tm->try_commit(*writer));

  EXPECT_FALSE(tm->read(*reader, 1).has_value());  // would be inconsistent
}

TEST(Dstm, UpgradeReadToWriteKeepsSnapshot) {
  auto tm = make();
  {
    auto setup = tm->begin();
    ASSERT_TRUE(tm->write(*setup, 3, 30));
    ASSERT_TRUE(tm->try_commit(*setup));
  }
  auto txn = tm->begin();
  EXPECT_EQ(tm->read(*txn, 3).value(), 30u);
  ASSERT_TRUE(tm->write(*txn, 3, 31));  // upgrade
  EXPECT_EQ(tm->read(*txn, 3).value(), 31u);
  ASSERT_TRUE(tm->try_commit(*txn));
  EXPECT_EQ(tm->read_quiescent(3), 31u);
}

TEST(Dstm, UpgradeFailsIfReadWasInvalidated) {
  auto tm = make();
  auto txn = tm->begin();
  EXPECT_EQ(tm->read(*txn, 3).value(), 0u);

  auto other = tm->begin();
  ASSERT_TRUE(tm->write(*other, 3, 99));
  ASSERT_TRUE(tm->try_commit(*other));

  EXPECT_FALSE(tm->write(*txn, 3, 1));  // snapshot is stale: abort
  EXPECT_EQ(txn->status(), core::TxStatus::kAborted);
}

TEST(Dstm, EagerCollapseKeepsSemantics) {
  DstmOptions options;
  options.eager_collapse = true;
  auto tm = make("aggressive", options);
  EXPECT_EQ(tm->name(), "dstm+collapse");
  for (int i = 1; i <= 50; ++i) {
    auto txn = tm->begin();
    const auto v = tm->read(*txn, 0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<core::Value>(i - 1));
    ASSERT_TRUE(tm->write(*txn, 0, static_cast<core::Value>(i)));
    ASSERT_TRUE(tm->try_commit(*txn));
  }
  EXPECT_EQ(tm->read_quiescent(0), 50u);
}

TEST(Dstm, VisibleReaderIsAbortedEarlyByWriter) {
  DstmOptions options;
  options.visible_reads = true;
  auto tm = make("aggressive", options);
  EXPECT_EQ(tm->name(), "dstm+visible");

  auto reader = tm->begin();
  EXPECT_EQ(tm->read(*reader, 0).value(), 0u);
  EXPECT_EQ(reader->status(), core::TxStatus::kActive);

  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 5));
  // With visible reads the writer's acquire sweep kills the reader at once
  // — no waiting for the reader's next validation.
  EXPECT_EQ(reader->status(), core::TxStatus::kAborted);
  ASSERT_TRUE(tm->try_commit(*writer));
  EXPECT_GE(tm->stats().victim_kills, 1u);
}

TEST(Dstm, VisibleReaderDeregistersOnCommit) {
  DstmOptions options;
  options.visible_reads = true;
  auto tm = make("aggressive", options);
  {
    auto reader = tm->begin();
    EXPECT_EQ(tm->read(*reader, 0).value(), 0u);
    ASSERT_TRUE(tm->try_commit(*reader));  // deregisters
  }
  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 5));
  ASSERT_TRUE(tm->try_commit(*writer));
  // No stale registration: nothing to kill.
  EXPECT_EQ(tm->stats().victim_kills, 0u);
}

TEST(Dstm, VisibleReadsOverflowFallsBackToInvisible) {
  // More simultaneous readers than table slots: the overflowing ones must
  // still be correct via validation (they just are not killed early).
  DstmOptions options;
  options.visible_reads = true;
  auto tm = make("aggressive", options);
  std::vector<core::TxnPtr> readers;
  for (int i = 0; i < 12; ++i) {  // kReaderSlots is 8
    readers.push_back(tm->begin());
    EXPECT_EQ(tm->read(*readers.back(), 0).value(), 0u);
  }
  auto writer = tm->begin();
  ASSERT_TRUE(tm->write(*writer, 0, 9));
  ASSERT_TRUE(tm->try_commit(*writer));
  // Every reader — registered or overflowed — must now fail to commit.
  for (auto& r : readers) {
    EXPECT_FALSE(tm->try_commit(*r));
  }
}

TEST(Dstm, DescriptorOfExposesStatusWord) {
  auto tm = make();
  auto t1 = tm->begin();
  auto t2 = tm->begin();
  EXPECT_NE(HwDstm::descriptor_of(*t1), HwDstm::descriptor_of(*t2));
  EXPECT_NE(HwDstm::descriptor_of(*t1), nullptr);
  tm->try_abort(*t1);
  tm->try_abort(*t2);
}

TEST(Dstm, AbandonedTransactionIsAutoAborted) {
  auto tm = make();
  {
    auto txn = tm->begin();
    ASSERT_TRUE(tm->write(*txn, 5, 55));
    // Dropped without commit/abort: the handle's destructor must abort it
    // so the ownership is resolvable.
  }
  auto txn = tm->begin();
  EXPECT_EQ(tm->read(*txn, 5).value(), 0u);
  EXPECT_TRUE(tm->try_commit(*txn));
}

TEST(Dstm, ChurnDoesNotAccumulateRetiredGarbage) {
  // Locators/descriptors are retired through EBR; after quiescence and a
  // few reclaim passes the backlog must drain (leak hygiene under ASan).
  auto tm = make();
  for (int i = 0; i < 20000; ++i) {
    auto txn = tm->begin();
    (void)tm->read(*txn, static_cast<core::TVarId>(i % 16));
    (void)tm->write(*txn, static_cast<core::TVarId>((i + 1) % 16), i + 1);
    (void)tm->try_commit(*txn);
  }
  auto& mgr = runtime::EpochManager::global();
  for (int i = 0; i < 8; ++i) mgr.reclaim();
  EXPECT_LT(mgr.retired_count(), 1024u);
}

}  // namespace
}  // namespace oftm::dstm
