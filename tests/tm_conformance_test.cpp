// Cross-backend conformance suite: every backend the factory can build is
// driven through core::TransactionalMemory by the same Section 2.2
// assertions — abort events are terminal, reads see own writes, commits are
// atomic under concurrency, and recorded histories pass the opacity checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/atomically.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "tm_conformance.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

using conformance::TmConformanceTest;
using core::TxnPtr;
using core::TxStatus;

// ---------------------------------------------------------------------------
// Transaction lifecycle: status transitions and terminal abort events.
// ---------------------------------------------------------------------------

TEST_P(TmConformanceTest, StatusFollowsLifecycle) {
  {
    TxnPtr txn = tm_->begin();
    EXPECT_EQ(txn->status(), TxStatus::kActive);
    ASSERT_TRUE(tm_->write(*txn, 0, 1));
    EXPECT_EQ(txn->status(), TxStatus::kActive);
    ASSERT_TRUE(tm_->try_commit(*txn));
    EXPECT_EQ(txn->status(), TxStatus::kCommitted);
  }
  {
    TxnPtr txn = tm_->begin();
    tm_->try_abort(*txn);
    EXPECT_EQ(txn->status(), TxStatus::kAborted);
  }
}

TEST_P(TmConformanceTest, AbortEventIsTerminal) {
  // After A_k every further operation of T_k must itself return A_k and
  // must not change the transaction's state (Section 2.2: A_k completes
  // the transaction).
  TxnPtr txn = tm_->begin();
  ASSERT_TRUE(tm_->write(*txn, 1, 11));
  tm_->try_abort(*txn);
  EXPECT_EQ(txn->status(), TxStatus::kAborted);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(tm_->read(*txn, 1).has_value());
    EXPECT_FALSE(tm_->write(*txn, 1, 12));
    EXPECT_FALSE(tm_->try_commit(*txn));
    tm_->try_abort(*txn);  // tryA is idempotent on an aborted transaction
    EXPECT_EQ(txn->status(), TxStatus::kAborted);
  }
}

TEST_P(TmConformanceTest, PostAbortWritesAreNeverVisible) {
  // Writes of a transaction that ends in A_k must never reach committed
  // state, whether the abort was requested before or surfaced by a
  // rejected operation.
  {
    TxnPtr setup = tm_->begin();
    ASSERT_TRUE(tm_->write(*setup, 2, 20));
    ASSERT_TRUE(tm_->write(*setup, 3, 30));
    ASSERT_TRUE(tm_->try_commit(*setup));
  }
  TxnPtr txn = tm_->begin();
  ASSERT_TRUE(tm_->write(*txn, 2, 21));
  ASSERT_TRUE(tm_->write(*txn, 3, 31));
  ASSERT_TRUE(tm_->write(*txn, 4, 41));
  tm_->try_abort(*txn);
  EXPECT_EQ(txn->status(), TxStatus::kAborted);
  // A write issued *after* the abort event must also stay invisible.
  EXPECT_FALSE(tm_->write(*txn, 5, 51));
  EXPECT_EQ(tm_->read_quiescent(2), 20u);
  EXPECT_EQ(tm_->read_quiescent(3), 30u);
  EXPECT_EQ(tm_->read_quiescent(4), 0u);
  EXPECT_EQ(tm_->read_quiescent(5), 0u);
  // A fresh transaction sees only the committed state.
  TxnPtr check = tm_->begin();
  EXPECT_EQ(tm_->read(*check, 2).value(), 20u);
  EXPECT_EQ(tm_->read(*check, 4).value(), 0u);
  EXPECT_TRUE(tm_->try_commit(*check));
}

TEST_P(TmConformanceTest, ReturnedAbortEventImpliesAbortedStatus) {
  // Drive two raw (no-retry) conflicting workers; whenever any operation
  // returns the abort event A_k, the handle must report kAborted and that
  // transaction's writes must never become visible. Backends that never
  // forcefully abort in this pattern (e.g. coarse) pass vacuously.
  constexpr core::Value kPoison = 0xDEADBEEF;
  std::atomic<bool> poison_seen{false};
  auto worker = [&](core::TVarId mine, core::TVarId theirs) {
    for (int i = 0; i < 300; ++i) {
      TxnPtr txn = tm_->begin();
      bool aborted = false;
      const auto v = tm_->read(*txn, theirs);
      if (v.has_value() && *v == kPoison) poison_seen.store(true);
      if (!v.has_value()) {
        aborted = true;
      } else if (!tm_->write(*txn, mine, kPoison)) {
        aborted = true;
      } else if (!tm_->write(*txn, mine, i + 1) ||
                 !tm_->write(*txn, theirs, i + 1)) {
        aborted = true;
      } else if (!tm_->try_commit(*txn)) {
        aborted = true;
      }
      if (aborted) {
        EXPECT_EQ(txn->status(), TxStatus::kAborted);
      }
    }
  };
  std::thread a(worker, 10, 11);
  std::thread b(worker, 11, 10);
  a.join();
  b.join();
  // kPoison is always overwritten before commit, so it is visible only if
  // an aborted transaction leaked its write set.
  EXPECT_FALSE(poison_seen.load());
  EXPECT_NE(tm_->read_quiescent(10), kPoison);
  EXPECT_NE(tm_->read_quiescent(11), kPoison);
}

// ---------------------------------------------------------------------------
// Read-your-own-writes and snapshot behaviour.
// ---------------------------------------------------------------------------

TEST_P(TmConformanceTest, ReadsSeeOwnWritesInterleaved) {
  TxnPtr txn = tm_->begin();
  for (core::TVarId x = 0; x < 32; ++x) {
    ASSERT_TRUE(tm_->write(*txn, x, x + 100));
  }
  for (core::TVarId x = 0; x < 32; ++x) {
    EXPECT_EQ(tm_->read(*txn, x).value(), x + 100);
    ASSERT_TRUE(tm_->write(*txn, x, x + 200));
    EXPECT_EQ(tm_->read(*txn, x).value(), x + 200);
  }
  ASSERT_TRUE(tm_->try_commit(*txn));
  for (core::TVarId x = 0; x < 32; ++x) {
    EXPECT_EQ(tm_->read_quiescent(x), x + 200);
  }
}

// ---------------------------------------------------------------------------
// Commit atomicity under real concurrency.
// ---------------------------------------------------------------------------

TEST_P(TmConformanceTest, CommitAtomicityUnderConcurrency) {
  // Transfers between two t-variables preserve their sum; concurrent
  // readers must never observe a partially applied transfer.
  constexpr core::Value kTotal = 1000;
  core::atomically(*tm_, [&](core::TxView& tx) { tx.write(50, kTotal); });

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) {
      core::atomically(*tm_, [&](core::TxView& tx) {
        const core::Value a = tx.read(50);
        const core::Value amount = i % 7;
        if (a >= amount) {
          tx.write(50, a - amount);
          tx.write(51, tx.read(51) + amount);
        } else {
          const core::Value b = tx.read(51);
          tx.write(50, a + b);
          tx.write(51, 0);
        }
      });
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const auto sum = core::atomically(*tm_, [](core::TxView& tx) {
        return tx.read(50) + tx.read(51);
      });
      if (sum != kTotal) torn_reads.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(tm_->read_quiescent(50) + tm_->read_quiescent(51), kTotal);
}

// ---------------------------------------------------------------------------
// Opacity spot-check via the history recorder.
// ---------------------------------------------------------------------------

TEST_P(TmConformanceTest, RecordedHistoryIsOpaque) {
  history::Recorder recorder;
  history::RecordingTm recorded(*tm_, recorder);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 100;
  config.ops_per_tx = 6;
  config.write_fraction = 0.5;
  config.seed = 7;
  const auto r = workload::run_workload(recorded, config);
  EXPECT_EQ(r.committed, 400u);
  EXPECT_EQ(recorder.check_well_formed(), "");
  history::MvsgOptions opts;
  opts.respect_real_time = true;
  opts.include_aborted_readers = true;
  const auto check = history::check_mvsg(recorder.transactions(), opts);
  EXPECT_TRUE(check.ok) << check.error;
}

// ---------------------------------------------------------------------------
// Stats plumbing (TmStatsMixin) across every backend.
// ---------------------------------------------------------------------------

TEST_P(TmConformanceTest, StatsCountersTrackOperationsAndReset) {
  tm_->reset_stats();
  for (int i = 0; i < 5; ++i) {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->read(*txn, 60).has_value());
    ASSERT_TRUE(tm_->write(*txn, 60, i + 1));
    ASSERT_TRUE(tm_->try_commit(*txn));
  }
  for (int i = 0; i < 3; ++i) {
    TxnPtr txn = tm_->begin();
    ASSERT_TRUE(tm_->write(*txn, 61, i + 1));
    tm_->try_abort(*txn);
  }
  const auto s = tm_->stats();
  EXPECT_EQ(s.commits, 5u);
  EXPECT_EQ(s.aborts, 3u);
  EXPECT_EQ(s.forced_aborts, 0u);  // requested aborts are not forceful
  EXPECT_GE(s.reads, 5u);
  EXPECT_GE(s.writes, 8u);

  tm_->reset_stats();
  const auto z = tm_->stats();
  EXPECT_EQ(z.commits, 0u);
  EXPECT_EQ(z.aborts, 0u);
  EXPECT_EQ(z.forced_aborts, 0u);
  EXPECT_EQ(z.reads, 0u);
  EXPECT_EQ(z.writes, 0u);
  EXPECT_EQ(z.cm_backoffs, 0u);
  EXPECT_EQ(z.victim_kills, 0u);
}

OFTM_INSTANTIATE_FOR_ALL_BACKENDS(TmConformanceTest);

// ---------------------------------------------------------------------------
// Factory error paths (not parameterized: these must throw, not build).
// ---------------------------------------------------------------------------

TEST(TmFactoryErrors, UnknownBackendNameThrows) {
  EXPECT_THROW(workload::make_tm("no-such-backend", 16),
               std::invalid_argument);
  EXPECT_THROW(workload::make_tm("", 16), std::invalid_argument);
  EXPECT_THROW(workload::make_tm("DSTM", 16), std::invalid_argument);
}

TEST(TmFactoryErrors, UnknownContentionManagerThrows) {
  EXPECT_THROW(workload::make_tm("dstm:no-such-cm", 16),
               std::invalid_argument);
  EXPECT_THROW(workload::make_tm("dstm:", 16), std::invalid_argument);
}

TEST(TmFactoryErrors, CmSuffixOnNonDstmBackendThrows) {
  // Only the DSTM family takes a contention manager; a ':<cm>' suffix on
  // any other backend is a recipe typo that must not silently run the
  // base backend.
  EXPECT_THROW(workload::make_tm("tl:karma", 16), std::invalid_argument);
  EXPECT_THROW(workload::make_tm("tl2:polite", 16), std::invalid_argument);
  EXPECT_THROW(workload::make_tm("coarse:karma", 16), std::invalid_argument);
  EXPECT_THROW(workload::make_tm("foctm:karma", 16), std::invalid_argument);
  EXPECT_THROW(workload::make_tm("norec:karma", 16), std::invalid_argument);
}

TEST(TmFactoryErrors, DefaultBackendsAreAdvertisedAndConstructible) {
  // default_backends() (what comparative benches sweep) must stay a subset
  // of all_backends() (what the conformance suite certifies): a recipe in
  // the first but not the second would be benched without ever being
  // tested, so the lists must not drift apart.
  const auto& all = workload::all_backends();
  for (const std::string& name : workload::default_backends()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end())
        << name << " is swept by default but not conformance-tested";
    auto tm = workload::make_tm(name, 8);
    ASSERT_NE(tm, nullptr) << name;
  }
}

TEST(TmFactoryErrors, EveryAdvertisedBackendConstructs) {
  for (const std::string& name : workload::all_backends()) {
    auto tm = workload::make_tm(name, 8);
    ASSERT_NE(tm, nullptr) << name;
    EXPECT_EQ(tm->num_tvars(), 8u) << name;
    EXPECT_FALSE(tm->name().empty()) << name;
  }
}

}  // namespace
}  // namespace oftm
