// Million-transaction checked-stress tier: one recipe per backend family
// (coarse lock, encounter locking, commit-time locking, sequence lock,
// obstruction-free DSTM, FOCTM) runs a 1,000,000-transaction workload
// under the history recorder, and the recorded history is digested and
// opacity-checked on the PARALLEL paths (Recorder::transactions /
// check_mvsg with threads = one per hardware thread).
//
// This is the acceptance pin for the parallel checker: a recorded
// million-transaction history must opacity-check in single-digit seconds
// on the CI runner (the bench_checker baseline pins the throughput curve;
// this test pins the hard ceiling), and the parallel verdict + witness
// must be bit-identical to the sequential one at full scale, not just on
// the small equivalence-suite histories.
//
// Suite label: checked-stress (own CI job, 900 s timeout; excluded from
// sanitizer presets — see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "history/checker.hpp"
#include "history/synth.hpp"
#include "tm_conformance.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

constexpr std::uint64_t kMillion = 1'000'000;

workload::WorkloadConfig million_config() {
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 250'000;
  // Two ops per transaction keeps the recorded log (and its up-front
  // reserve) within the CI runner's memory while still producing a
  // million-node serialization graph with real rf/ww/rw edge density.
  config.ops_per_tx = 2;
  config.write_fraction = 0.25;
  config.seed = 0x10E6;
  return config;
}

// One recipe per family — workload::default_backends() is exactly that
// selection (see workload/factory.cpp).
class CheckerScaleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckerScaleTest, MillionTransactionsParallelCheckWithinBudget) {
  auto tm = workload::make_tm(GetParam(), 2048);
  const auto out =
      conformance::run_checked_stress(*tm, million_config(),
                                      /*check_threads=*/0);
  EXPECT_EQ(out.run.committed, kMillion);
  EXPECT_EQ(out.well_formed_error, "");
  EXPECT_GE(out.transactions, kMillion);
  EXPECT_TRUE(out.check.ok)
      << out.check.error << "\nwitness: " << out.check.witness_str();
  // The acceptance pin: single-digit seconds for the check alone.
  EXPECT_LE(out.check_seconds, 9.0)
      << "parallel check_mvsg took " << out.check_seconds
      << " s on a recorded million-transaction history (" << GetParam()
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    BackendFamilies, CheckerScaleTest,
    ::testing::ValuesIn(workload::default_backends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == ':') c = '_';
      }
      return name;
    });

// Bit-identical determinism at full scale: the small equivalence suite
// proves the contract per phase; this pins it on a million-node graph
// where the frontier batching, the atomic indegree relaxation and the
// parallel merge sort all actually engage (clean history and a violating
// mutation, so the first-failure reduction and witness extraction are
// exercised at scale too).
TEST(CheckerScale, MillionSyntheticParallelMatchesSequential) {
  history::synth::SynthOptions opts;
  opts.transactions = kMillion;
  opts.num_tvars = 4096;
  opts.ops_per_tx = 2;
  opts.hot_fraction = 0.1;  // some single-chain skew, mostly spread
  const auto clean = history::synth::make_history(opts);

  std::vector<history::TxRecord> mutated = clean;
  core::TxId fork_a = 0, fork_b = 0;
  ASSERT_TRUE(history::synth::seed_lost_update(mutated, 0, &fork_a, &fork_b));

  const std::vector<history::TxRecord>* histories[] = {&clean, &mutated};
  for (const std::vector<history::TxRecord>* txns : histories) {
    history::MvsgOptions seq_opts;
    seq_opts.respect_real_time = true;
    const auto seq = history::check_mvsg(*txns, seq_opts);
    history::MvsgOptions par_opts = seq_opts;
    par_opts.threads = 0;
    const auto par = history::check_mvsg(*txns, par_opts);
    EXPECT_EQ(seq.ok, par.ok);
    EXPECT_EQ(seq.error, par.error);
    EXPECT_EQ(seq.witness_str(), par.witness_str());
  }
}

}  // namespace
}  // namespace oftm
