// Checked-stress verification tier: stress-scale runs that are *checked*,
// not just survived. Two halves, matching the two checkers:
//
//   * Opacity at scale — every backend recipe, on both execution tiers,
//     runs a 100,000-transaction workload under the history recorder; the
//     recorded history must be well-formed and pass the strict opacity
//     check (real-time edges + aborted readers). The recorder pre-reserves
//     (workload::estimated_history_events) so recording overhead stays
//     flat, and the single-hot-key case pins the checker's stress-scale
//     budget: 100k transactions on one t-variable must check in <= 5 s.
//
//   * DAP witnesses at scale — simulated backends produce full low-level
//     traces; dap::analyze must return complete conflict-graph witnesses
//     (base object with stable ordinal, both TxIds, both t-var
//     footprints) for seeded Figure-2 violations, and a partitioned
//     scale audit on DSTM must stay violation-free.
//
// Label: checked-stress (not tier1/stress) — see tests/CMakeLists.txt and
// the checked-stress CI job; excluded from the tsan presets (the recorder
// serializes everything anyway, and TSan at 100k-transaction scale blows
// the runtime budget without adding coverage).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cm/managers.hpp"
#include "dap/conflicts.hpp"
#include "dstm/dstm.hpp"
#include "history/checker.hpp"
#include "obs/trace.hpp"
#include "sim/env.hpp"
#include "sim/platform.hpp"
#include "tm_conformance.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

using SimDstm = dstm::Dstm<sim::SimPlatform>;

// ---------------------------------------------------------------------------
// Opacity at 100k-transaction scale, every backend, both execution tiers.
// ---------------------------------------------------------------------------

class CheckedStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckedStressTest, HundredThousandTransactionsAreOpaque) {
  auto tm = conformance::make_conformance_tm(GetParam(), 1024);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 25'000;
  config.ops_per_tx = 4;
  config.write_fraction = 0.25;
  config.seed = 0x5EED2026;
  const auto out = conformance::run_checked_stress(*tm, config);
  EXPECT_EQ(out.run.committed, 100'000u);
  EXPECT_EQ(out.well_formed_error, "");
  // Aborted attempts are digested too (include_aborted_readers), so the
  // history holds at least the committed transactions.
  EXPECT_GE(out.transactions, 100'000u);
  EXPECT_TRUE(out.check.ok)
      << out.check.error << "\nwitness: " << out.check.witness_str();
}

OFTM_INSTANTIATE_FOR_ALL_BACKENDS(CheckedStressTest);

// The acceptance pin: a single-hot-key history — the worst case for the
// version-indexed checker (one 100k-version chain, every read and every
// anti-dependency on it) — must check in low single-digit seconds.
TEST(CheckedStressHotKey, SingleHotKeyHundredThousandChecksWithinFiveSeconds) {
  auto tm = workload::make_tm("coarse", 64);
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 25'000;
  config.ops_per_tx = 4;
  config.write_fraction = 0.5;
  config.hot_op_fraction = 1.0;  // every op redirected into the hot set...
  config.hot_set_size = 1;       // ...of exactly one t-variable
  config.seed = 7;
  const auto out = conformance::run_checked_stress(*tm, config);
  EXPECT_EQ(out.run.committed, 100'000u);
  EXPECT_EQ(out.well_formed_error, "");
  EXPECT_TRUE(out.check.ok)
      << out.check.error << "\nwitness: " << out.check.witness_str();
  EXPECT_LE(out.check_seconds, 5.0)
      << "check_mvsg took " << out.check_seconds
      << " s on a 100k-transaction single-hot-key history";
}

// Observability ride-along: the same checked run with the trace sink live
// (ring + sampling active, no output file). Tracing instruments the attempt
// loop of every worker; it must not perturb the recorded history's opacity,
// and the abort-reason counters must still reconcile at scale.
TEST(CheckedStressTraced, TracingDoesNotPerturbOpacity) {
  obs::TraceSink::instance().configure(/*ring_capacity=*/8192,
                                       /*sample_stride=*/7, "");
  for (const char* recipe : {"tl2", "dstm"}) {
    auto tm = conformance::make_conformance_tm(recipe, 1024);
    workload::WorkloadConfig config;
    config.threads = 4;
    config.tx_per_thread = 12'500;
    config.ops_per_tx = 4;
    config.write_fraction = 0.25;
    config.seed = 0x5EED2026;
    const auto out = conformance::run_checked_stress(*tm, config);
    EXPECT_EQ(out.run.committed, 50'000u) << recipe;
    EXPECT_EQ(out.well_formed_error, "") << recipe;
    EXPECT_TRUE(out.check.ok)
        << recipe << ": " << out.check.error
        << "\nwitness: " << out.check.witness_str();
    EXPECT_TRUE(out.run.tm_stats.abort_reasons_consistent()) << recipe;
  }
}

// ---------------------------------------------------------------------------
// DAP conflict-graph witnesses.
// ---------------------------------------------------------------------------

// Figure-2 seeding (the paper's Theorem 13 scenario): T1 acquires x and y
// then suspends; T2 (reads x, writes w) and T3 (reads y, writes z) have
// disjoint t-var footprints, yet on DSTM both must CAS T1's descriptor — a
// strict-DAP violation whose witness must name the base object, both
// transactions, and both footprints.
TEST(CheckedStressDap, SeededViolationYieldsFullWitness) {
  SimDstm tm(4, cm::make_manager("aggressive"));
  sim::Env env(3);
  auto committed = std::make_shared<std::pair<bool, bool>>(false, false);

  env.set_body(0, [&tm] {
    sim::Env::current()->set_label(1);  // T1
    core::TxnPtr txn = tm.begin();
    (void)tm.read(*txn, 2);
    (void)tm.read(*txn, 3);
    (void)tm.write(*txn, 0, 1);
    (void)tm.write(*txn, 1, 1);
    sim::Env::current()->marker("t1_acquired");
    (void)tm.try_commit(*txn);  // never reached: suspended before
  });
  env.set_body(1, [&tm, committed] {
    sim::Env::current()->set_label(2);  // T2
    for (int i = 0; i < 50 && !committed->first; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 0).has_value()) continue;
      if (!tm.write(*txn, 2, 1)) continue;
      committed->first = tm.try_commit(*txn);
    }
  });
  env.set_body(2, [&tm, committed] {
    sim::Env::current()->set_label(3);  // T3
    for (int i = 0; i < 50 && !committed->second; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 1).has_value()) continue;
      if (!tm.write(*txn, 3, 1)) continue;
      committed->second = tm.try_commit(*txn);
    }
  });

  env.start();
  auto t1_acquired = [&env] {
    for (const sim::Step& s : env.trace()) {
      if (s.kind == sim::Step::Kind::kMarker && s.note != nullptr &&
          std::string(s.note) == "t1_acquired") {
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < 400 && !t1_acquired(); ++i) env.step(0);
  env.run_solo(1, 500000);
  env.run_solo(2, 500000);

  dap::Footprints fp;
  fp[1] = {0, 1, 2, 3};
  fp[2] = {0, 2};
  fp[3] = {1, 3};
  const dap::ConflictReport report = dap::analyze(env.trace(), fp);
  ASSERT_TRUE(committed->first && committed->second);

  const dap::ConflictPair* witness = nullptr;
  for (const dap::ConflictPair& p : report.pairs) {
    if (p.tx_a == 2 && p.tx_b == 3 && p.disjoint_tvars) witness = &p;
  }
  ASSERT_NE(witness, nullptr) << report.summarize();
  // The full conflict-graph witness: base object, both transactions, both
  // t-var footprints.
  EXPECT_NE(witness->object, nullptr);
  EXPECT_EQ(witness->tvars_a, (std::vector<core::TVarId>{0, 2}));
  EXPECT_EQ(witness->tvars_b, (std::vector<core::TVarId>{1, 3}));

  // summarize(): violating pairs print both footprints; unnamed base
  // objects fall back to the stable ordinal, named ones print the name.
  const std::string anon = report.summarize();
  EXPECT_NE(anon.find("T2 <-> T3 on obj#"), std::string::npos) << anon;
  EXPECT_NE(anon.find("T2 t-vars: {x0, x2}"), std::string::npos) << anon;
  EXPECT_NE(anon.find("T3 t-vars: {x1, x3}"), std::string::npos) << anon;
  const std::string named =
      report.summarize({{witness->object, "State[T1]"}});
  EXPECT_NE(named.find("T2 <-> T3 on State[T1]"), std::string::npos) << named;
}

// Partitioned scale audit: thousands of per-transaction labels on DSTM,
// fully disjoint working sets — the full conflict-graph sweep must come
// back clean (DSTM is DAP in the weak sense; violations need the Figure-2
// indirect connection, not scale alone).
TEST(CheckedStressDap, PartitionedScaleAuditIsViolationFree) {
  constexpr int kProcs = 4;
  constexpr int kTxPerProc = 1500;
  constexpr core::TVarId kVarsPerProc = 16;
  SimDstm tm(kProcs * kVarsPerProc, cm::make_manager("aggressive"));
  sim::Env env(kProcs);
  auto fp = std::make_shared<dap::Footprints>();

  for (int p = 0; p < kProcs; ++p) {
    env.set_body(p, [&tm, fp, p] {
      for (int i = 0; i < kTxPerProc; ++i) {
        const std::uint64_t label =
            static_cast<std::uint64_t>(p + 1) * 100000 +
            static_cast<std::uint64_t>(i) + 1;
        sim::Env::current()->set_label(label);
        const auto a = static_cast<core::TVarId>(
            p * kVarsPerProc + i % kVarsPerProc);
        const auto b = static_cast<core::TVarId>(
            p * kVarsPerProc + (i + 7) % kVarsPerProc);
        core::TxnPtr txn = tm.begin();
        const auto v = tm.read(*txn, a);
        if (!v.has_value()) continue;
        if (!tm.write(*txn, b, *v + 1)) continue;
        (void)tm.try_commit(*txn);
        (*fp)[label] = {a, b};
      }
    });
  }

  env.start();
  env.run_round_robin();

  const dap::ConflictReport report = dap::analyze(env.trace(), *fp);
  EXPECT_EQ(report.violations, 0u) << report.summarize();
  // Every reported pair still carries its full witness fields.
  for (const dap::ConflictPair& p : report.pairs) {
    EXPECT_NE(p.tx_a, 0u);
    EXPECT_NE(p.tx_b, 0u);
    EXPECT_NE(p.object, nullptr);
  }
}

}  // namespace
}  // namespace oftm
