// Implementation-level confirmation of the consensus-number boundary: the
// schedule explorer hunts for non-terminating executions of retry-consensus
// over the *real* fo-consensus objects (not the abstract VM of
// sim/valency.*).
//
//   * Over StrictFoConsensus (aborts on observed step contention), an
//     adversarial schedule exists in which two processes abort each other's
//     proposes forever — the explorer finds it as a truncated execution and
//     reports its schedule. (A bounded prefix plus the state-cycling
//     structure of the protocol makes this a genuine livelock witness: the
//     same 3-step abort pattern repeats verbatim.)
//   * Over CasFoConsensus (never aborts), every schedule terminates with
//     agreement — exhaustively verified.
//
// Together with tests/valency_test.cpp this pins the paper's Section 4
// story from both sides: abstract semantics and concrete objects.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "foc/fo_consensus.hpp"
#include "sim/explorer.hpp"
#include "sim/platform.hpp"

namespace oftm::foc {
namespace {

using SimStrict = StrictFoConsensus<sim::SimPlatform, std::uint64_t, 0>;
using SimCas = CasFoConsensus<sim::SimPlatform, std::uint64_t, 0>;

template <typename Foc>
sim::SetupFn retry_consensus_setup(bool* decided_flag) {
  return [decided_flag](sim::Env& env) {
    struct State {
      Foc foc;
      std::optional<std::uint64_t> decided[2];
    };
    auto st = std::make_shared<State>();
    for (int pid = 0; pid < 2; ++pid) {
      env.set_body(pid, [st, pid] {
        for (;;) {
          const auto r =
              st->foc.propose(static_cast<std::uint64_t>(pid + 1));
          if (r.has_value()) {
            st->decided[pid] = *r;
            return;
          }
        }
      });
    }
    return [st, decided_flag]() -> std::string {
      // Safety in every terminating execution: agreement + validity.
      if (st->decided[0] && st->decided[1] &&
          *st->decided[0] != *st->decided[1]) {
        return "agreement violated";
      }
      for (int pid = 0; pid < 2; ++pid) {
        if (st->decided[pid] &&
            (*st->decided[pid] < 1 || *st->decided[pid] > 2)) {
          return "validity violated";
        }
      }
      if (decided_flag != nullptr && st->decided[0] && st->decided[1]) {
        *decided_flag = true;
      }
      return "";
    };
  };
}

TEST(LivelockSearch, StrictObjectAdmitsTwoProcessLivelock) {
  sim::ExplorerOptions options;
  options.max_steps_per_run = 60;  // ~10 mutual-abort rounds
  options.max_executions = 20000;
  const auto r = sim::explore(2, retry_consensus_setup<SimStrict>(nullptr),
                              options);
  // The explorer must find a schedule that never terminates (truncation):
  // the paired-abort adversary of the Theorem 9 proof, live on real code.
  ASSERT_TRUE(r.violation_found);
  EXPECT_NE(r.violation.find("livelock"), std::string::npos) << r.violation;
  EXPECT_GE(r.violating_schedule.size(), options.max_steps_per_run);
}

TEST(LivelockSearch, CasObjectAlwaysTerminatesWithAgreement) {
  bool decided = false;
  sim::ExplorerOptions options;
  options.max_steps_per_run = 200;
  options.max_executions = 50000;
  const auto r =
      sim::explore(2, retry_consensus_setup<SimCas>(&decided), options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_TRUE(r.exhausted);
  EXPECT_TRUE(decided);
}

TEST(LivelockSearch, StrictObjectSoloAlwaysDecides) {
  // fo-obstruction-freedom at the implementation level: restrict the
  // explorer to zero preemptions (each process runs solo to completion in
  // some order) — every execution must decide.
  bool decided = false;
  sim::ExplorerOptions options;
  options.max_steps_per_run = 200;
  options.preemption_bound = 0;
  const auto r =
      sim::explore(2, retry_consensus_setup<SimStrict>(&decided), options);
  EXPECT_FALSE(r.violation_found) << r.violation;
  EXPECT_TRUE(decided);
}

}  // namespace
}  // namespace oftm::foc
