// Tests for the deterministic simulator: lockstep scheduling, step logging
// (the paper's low-level histories), crashes, solo runs, replayable
// schedules, and the exhaustive explorer.
//
// The LowLevelHistory.* tests double as the Figure 1 reproduction: a
// high-level operation (move between two "counters") unfolds into an
// interleaving-free sequence of base-object steps bracketed by markers,
// exactly the two-level structure of Section 2.1.
#include <gtest/gtest.h>

#include <memory>

#include "sim/env.hpp"
#include "sim/explorer.hpp"
#include "sim/platform.hpp"
#include "sim/sim_atomic.hpp"

namespace oftm::sim {
namespace {

TEST(SimAtomic, RawAccessOutsideSimulation) {
  SimAtomic<int> a(41);
  EXPECT_EQ(a.load(), 41);
  a.store(42);
  EXPECT_EQ(a.load(), 42);
  int expected = 42;
  EXPECT_TRUE(a.compare_exchange_strong(expected, 43));
  EXPECT_EQ(a.exchange(7), 43);
  EXPECT_EQ(a.fetch_add(3), 7);
  EXPECT_EQ(a.load(), 10);
}

TEST(Env, StepsAreSerializedAndLogged) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(0);
  Env env(2);
  env.set_body(0, [&] {
    for (int i = 0; i < 3; ++i) x->fetch_add(1);
  });
  env.set_body(1, [&] {
    for (int i = 0; i < 3; ++i) x->fetch_add(10);
  });
  env.start();
  env.run_round_robin();
  EXPECT_TRUE(env.all_done());
  EXPECT_EQ(x->peek(), 33u);
  // 6 shared-memory steps, alternating pids under round-robin.
  ASSERT_EQ(env.trace().size(), 6u);
  EXPECT_EQ(env.trace()[0].pid, 0);
  EXPECT_EQ(env.trace()[1].pid, 1);
  EXPECT_EQ(env.trace()[0].kind, Step::Kind::kFetchAdd);
}

TEST(Env, ScheduleControlsInterleaving) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(0);
  auto run = [&](std::vector<int> schedule) {
    x->store(0);
    Env env(2);
    // Classic lost-update: read, then write read+1.
    auto body = [&] {
      const std::uint64_t v = x->load();
      x->store(v + 1);
    };
    env.set_body(0, body);
    env.set_body(1, body);
    env.start();
    env.run_schedule(schedule);
    env.run_round_robin();  // drain
    return x->peek();
  };
  EXPECT_EQ(run({0, 0, 1, 1}), 2u);  // sequential: both increments land
  EXPECT_EQ(run({0, 1, 0, 1}), 1u);  // interleaved: lost update
}

TEST(Env, SoloRunMatchesStepContentionFreedom) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(0);
  Env env(3);
  env.set_body(0, [&] { x->store(5); });
  env.set_body(1, [&] { x->store(6); });
  env.set_body(2, [&] { x->store(7); });
  env.start();
  env.run_solo(1);
  EXPECT_TRUE(env.done(1));
  EXPECT_FALSE(env.done(0));
  EXPECT_EQ(x->peek(), 6u);
  // Every step so far belongs to p1: p1 ran step-contention-free.
  for (const Step& s : env.trace()) EXPECT_EQ(s.pid, 1);
  env.run_round_robin();
}

TEST(Env, CrashedProcessTakesNoFurtherSteps) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(0);
  Env env(2);
  env.set_body(0, [&] {
    x->store(1);
    x->store(2);  // never reached
  });
  env.set_body(1, [&] { x->fetch_add(10); });
  env.start();
  ASSERT_TRUE(env.step(0));  // p0 executes store(1)
  env.crash(0);
  EXPECT_FALSE(env.step(0));  // crashed: cannot be scheduled
  env.run_round_robin();
  EXPECT_EQ(x->peek(), 11u);  // store(2) never happened
  EXPECT_TRUE(env.crashed(0));
}

TEST(Env, LabelsAndMarkersAnnotateTheHistory) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(0);
  Env env(1);
  env.set_body(0, [&] {
    Env::current()->set_label(77);
    Env::current()->marker("begin");
    x->store(1);
    Env::current()->marker("end");
  });
  env.start();
  env.run_round_robin();
  const auto& trace = env.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].kind, Step::Kind::kMarker);
  EXPECT_STREQ(trace[0].note, "begin");
  EXPECT_EQ(trace[1].label, 77u);
  EXPECT_TRUE(trace[1].modifies());
}

// Figure 1 of the paper: process pi executes high-level A.move(), which the
// implementation turns into x.inc() and y.dec() on base objects x and y.
TEST(LowLevelHistory, Figure1TwoLevelStructure) {
  auto x = std::make_unique<SimAtomic<std::uint64_t>>(3);
  auto y = std::make_unique<SimAtomic<std::uint64_t>>(3);
  Env env(1);
  env.name_object(x.get(), "x");
  env.name_object(y.get(), "y");
  env.set_body(0, [&] {
    Env* e = Env::current();
    e->marker("A.move() invocation");
    x->fetch_add(1);   // x.inc()
    y->fetch_sub(1);   // y.dec()
    e->marker("A.move() -> ok");
  });
  env.start();
  env.run_round_robin();

  const auto& t = env.trace();
  ASSERT_EQ(t.size(), 4u);
  // Well-formedness (Section 2.1): the steps of the operation sit strictly
  // between its invocation and response, in program order.
  EXPECT_EQ(t[0].kind, Step::Kind::kMarker);
  EXPECT_EQ(t[1].obj, x.get());
  EXPECT_EQ(t[2].obj, y.get());
  EXPECT_EQ(t[3].kind, Step::Kind::kMarker);
  const std::string rendered = env.format_trace();
  EXPECT_NE(rendered.find("A.move() invocation"), std::string::npos);
  EXPECT_NE(rendered.find("x"), std::string::npos);
}

// --- Explorer ---------------------------------------------------------------

TEST(Explorer, CountsInterleavingsOfIndependentSteps) {
  // Two processes, two steps each on distinct objects: C(4,2) = 6 schedules.
  ExplorerOptions options;
  auto setup = [](Env& env) {
    auto state = std::make_shared<std::pair<SimAtomic<int>, SimAtomic<int>>>();
    env.set_body(0, [state] {
      state->first.store(1);
      state->first.store(2);
    });
    env.set_body(1, [state] {
      state->second.store(1);
      state->second.store(2);
    });
    return [state]() -> std::string { return ""; };
  };
  const ExplorerResult r = explore(2, setup, options);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.violation_found);
  EXPECT_EQ(r.executions, 6u);
}

TEST(Explorer, FindsTheOneBadInterleaving) {
  // Lost-update bug: only some schedules produce a final value of 1; the
  // explorer must find one and report its schedule.
  auto setup = [](Env& env) {
    auto x = std::make_shared<SimAtomic<std::uint64_t>>(0);
    auto body = [x] {
      const std::uint64_t v = x->load();
      x->store(v + 1);
    };
    env.set_body(0, body);
    env.set_body(1, body);
    return [x]() -> std::string {
      return x->peek() == 2 ? "" : "lost update";
    };
  };
  const ExplorerResult r = explore(2, setup, {});
  EXPECT_TRUE(r.violation_found);
  EXPECT_EQ(r.violation, "lost update");
  EXPECT_FALSE(r.violating_schedule.empty());
}

TEST(Explorer, PreemptionBoundPrunesSchedules) {
  auto setup = [](Env& env) {
    auto x = std::make_shared<SimAtomic<std::uint64_t>>(0);
    auto body = [x] {
      for (int i = 0; i < 3; ++i) x->fetch_add(1);
    };
    env.set_body(0, body);
    env.set_body(1, body);
    return [x]() -> std::string { return ""; };
  };
  ExplorerOptions unbounded;
  ExplorerOptions bounded;
  bounded.preemption_bound = 1;
  const auto full = explore(2, setup, unbounded);
  const auto pruned = explore(2, setup, bounded);
  EXPECT_TRUE(full.exhausted);
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_GT(full.executions, pruned.executions);
  EXPECT_GE(pruned.executions, 2u);
}

}  // namespace
}  // namespace oftm::sim
