// Shared cross-backend conformance fixture: the TM-as-shared-object
// semantics of Section 2.2, phrased once and instantiated over every
// backend recipe in workload::all_backends() (src/workload/factory.cpp —
// the factory owns the list, so adding a backend there enrolls it in the
// whole suite) — and over every recipe a second time through the
// pooled-session hot tier (the "<recipe>@session" parameters), so both
// execution tiers of core::TransactionalMemory certify the same
// semantics.
//
// Used by tm_conformance_test.cpp (the conformance suite proper) and
// stm_unit_test.cpp (the original backend-agnostic unit tests, now driven
// through the same fixture).
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tm.hpp"
#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "runtime/assert.hpp"
#include "runtime/thread_registry.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm::conformance {

inline constexpr std::string_view kSessionTierSuffix = "@session";

// Test-only decorator that routes the portability-tier interface through
// the wrapped backend's pooled-session hot tier: every begin() leases a
// session slot, begins on it via begin(TmSession&), and hands back a proxy
// handle whose release returns the lease. Lets the whole conformance
// suite certify the hot tier without rewriting a single test.
class SessionTierTm final : public core::TransactionalMemory {
 public:
  explicit SessionTierTm(std::unique_ptr<core::TransactionalMemory> inner)
      : inner_(std::move(inner)) {
    for (int s = runtime::ThreadRegistry::kMaxThreads - 1; s >= 0; --s) {
      free_slots_.push_back(s);
    }
  }

  ~SessionTierTm() override {
    // Fallback sessions (atomically() drives this wrapper through them)
    // hold the last proxy handle; release it while inner_ and the slot
    // list are still alive — the base destructor would be too late.
    release_sessions();
  }

  using core::TransactionalMemory::begin;

  core::TxnPtr begin() override {
    core::ThreadSlot slot;
    {
      std::lock_guard<std::mutex> lk(mu_);
      OFTM_ASSERT_MSG(!free_slots_.empty(), "session slots exhausted");
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    core::Transaction& pooled = inner_->begin(inner_->session(slot));
    return core::TxnPtr(new Proxy(*this, pooled, slot));
  }

  std::optional<core::Value> read(core::Transaction& txn,
                                  core::TVarId x) override {
    return inner_->read(unwrap(txn), x);
  }
  bool write(core::Transaction& txn, core::TVarId x, core::Value v) override {
    return inner_->write(unwrap(txn), x, v);
  }
  bool try_commit(core::Transaction& txn) override {
    return inner_->try_commit(unwrap(txn));
  }
  void try_abort(core::Transaction& txn) override {
    inner_->try_abort(unwrap(txn));
  }
  bool has_word_access() const override { return inner_->has_word_access(); }
  std::optional<core::Value> read_word(core::Transaction& txn,
                                       const core::Value* addr) override {
    return inner_->read_word(unwrap(txn), addr);
  }
  bool write_word(core::Transaction& txn, core::Value* addr,
                  core::Value v) override {
    return inner_->write_word(unwrap(txn), addr, v);
  }
  void* tx_alloc(core::Transaction& txn, std::size_t bytes) override {
    return inner_->tx_alloc(unwrap(txn), bytes);
  }
  bool tx_free(core::Transaction& txn, void* p) override {
    return inner_->tx_free(unwrap(txn), p);
  }
  void* alloc_quiescent(std::size_t bytes) override {
    return inner_->alloc_quiescent(bytes);
  }
  core::Value read_word_quiescent(const core::Value* addr) const override {
    return inner_->read_word_quiescent(addr);
  }
  std::size_t num_tvars() const override { return inner_->num_tvars(); }
  core::Value read_quiescent(core::TVarId x) const override {
    return inner_->read_quiescent(x);
  }
  std::string name() const override { return inner_->name() + "@session"; }
  runtime::TxStats stats() const override { return inner_->stats(); }
  void reset_stats() override { inner_->reset_stats(); }

 private:
  class Proxy final : public core::Transaction {
   public:
    Proxy(SessionTierTm& tm, core::Transaction& pooled, core::ThreadSlot slot)
        : tm_(tm), pooled_(pooled), slot_(slot) {}
    core::TxStatus status() const override { return pooled_.status(); }
    core::TxId id() const override { return pooled_.id(); }

   private:
    friend class SessionTierTm;

    void handle_released() noexcept override {
      // An abandoned live transaction must not keep protocol resources
      // (e.g. coarse's global lock) hostage on a returned slot.
      if (pooled_.status() == core::TxStatus::kActive) {
        tm_.inner_->try_abort(pooled_);
      }
      tm_.return_slot(slot_);
      delete this;
    }

    SessionTierTm& tm_;
    core::Transaction& pooled_;
    const core::ThreadSlot slot_;
  };

  static core::Transaction& unwrap(core::Transaction& txn) {
    return static_cast<Proxy&>(txn).pooled_;
  }

  void return_slot(core::ThreadSlot slot) noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    free_slots_.push_back(slot);
  }

  std::unique_ptr<core::TransactionalMemory> inner_;
  std::mutex mu_;
  std::vector<core::ThreadSlot> free_slots_;
};

// Builds the TM a conformance parameter names: a plain recipe constructs
// the backend directly (portability tier); "<recipe>@session" wraps it in
// SessionTierTm so the identical assertions drive the hot tier.
inline std::unique_ptr<core::TransactionalMemory> make_conformance_tm(
    const std::string& param, std::size_t num_tvars) {
  const std::string_view p(param);
  if (p.size() > kSessionTierSuffix.size() &&
      p.substr(p.size() - kSessionTierSuffix.size()) == kSessionTierSuffix) {
    const std::string recipe(
        p.substr(0, p.size() - kSessionTierSuffix.size()));
    return std::make_unique<SessionTierTm>(
        workload::make_tm(recipe, num_tvars));
  }
  return workload::make_tm(param, num_tvars);
}

// all_backends() with the session-tier suffix appended to every recipe.
inline const std::vector<std::string>& session_tier_backends() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const std::string& name : workload::all_backends()) {
      v.push_back(name + std::string(kSessionTierSuffix));
    }
    return v;
  }();
  return names;
}

// gtest test names must be alphanumeric/underscore only.
inline std::string backend_param_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == ':' || c == '-' || c == '@') c = '_';
  }
  return name;
}

// Base fixture: a fresh instance of the parameterized backend per test.
class TmConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::size_t kNumTVars = 256;

  void SetUp() override { tm_ = make_conformance_tm(GetParam(), kNumTVars); }

  std::unique_ptr<core::TransactionalMemory> tm_;
};

// ---------------------------------------------------------------------------
// Large-history (checked-stress) mode: record a full workload run, check
// well-formedness and opacity, and hand back the verdict plus the checking
// wall time. The recorder is pre-reserved from the workload configuration
// so recording overhead stays flat at 100k+-transaction scale — regrowth
// of the event log would serialize every worker behind the recorder lock.
// Used by tests/checked_stress_test.cpp over every backend recipe on both
// execution tiers; the DAP side of the tier (full conflict-graph witnesses
// on simulated backends) lives in the same test file.

struct CheckedStressOutcome {
  workload::RunResult run;
  std::size_t events = 0;        // recorded history length
  std::size_t transactions = 0;  // digested TxRecords (committed + aborted)
  std::string well_formed_error; // empty == well-formed
  history::CheckResult check;    // opacity verdict (strict + aborted readers)
  double check_seconds = 0;      // check_mvsg wall time alone
};

inline CheckedStressOutcome run_checked_stress(
    core::TransactionalMemory& tm, const workload::WorkloadConfig& config,
    int check_threads = 0) {
  CheckedStressOutcome out;
  history::Recorder recorder;
  recorder.reserve(workload::estimated_history_events(config));
  history::RecordingTm recorded(tm, recorder);
  out.run = workload::run_workload(recorded, config);
  // One snapshot of the (multi-million-event) log, shared by the
  // well-formedness check and the digestion — the per-call snapshot
  // convenience methods would copy it twice.
  const auto events = recorder.events();
  out.events = events.size();
  // Pre-sizing drift guard: an estimated_history_events underestimate
  // means the event log regrew mid-run, serializing every worker behind
  // the recorder lock. Fail loudly instead of silently costing stalls.
  EXPECT_LE(events.size(), recorder.reserved())
      << "recorder outgrew its reserve: estimated_history_events "
         "underestimates this configuration";
  // Digestion and the check both run on the parallel paths (0 = one worker
  // per hardware thread) — results are bit-identical to sequential for
  // every thread count, so the verdicts the tier pins are unchanged.
  out.well_formed_error =
      history::Recorder::check_well_formed(events, check_threads);
  const auto txns = history::Recorder::transactions(events, check_threads);
  out.transactions = txns.size();
  history::MvsgOptions opts;
  opts.respect_real_time = true;
  opts.include_aborted_readers = true;
  opts.threads = check_threads;
  const auto t0 = std::chrono::steady_clock::now();
  out.check = history::check_mvsg(txns, opts);
  out.check_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return out;
}

// Instantiates `fixture` (TmConformanceTest or a subclass registered with
// TEST_P) over every factory backend, through both execution tiers.
#define OFTM_INSTANTIATE_FOR_ALL_BACKENDS(fixture)                        \
  INSTANTIATE_TEST_SUITE_P(                                               \
      AllBackends, fixture,                                               \
      ::testing::ValuesIn(::oftm::workload::all_backends()),              \
      ::oftm::conformance::backend_param_name);                           \
  INSTANTIATE_TEST_SUITE_P(                                               \
      AllBackendsSessionTier, fixture,                                    \
      ::testing::ValuesIn(::oftm::conformance::session_tier_backends()),  \
      ::oftm::conformance::backend_param_name)

}  // namespace oftm::conformance
