// Shared cross-backend conformance fixture: the TM-as-shared-object
// semantics of Section 2.2, phrased once and instantiated over every
// backend recipe in workload::all_backends() (src/workload/factory.cpp —
// the factory owns the list, so adding a backend there enrolls it in the
// whole suite).
//
// Used by tm_conformance_test.cpp (the conformance suite proper) and
// stm_unit_test.cpp (the original backend-agnostic unit tests, now driven
// through the same fixture).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/tm.hpp"
#include "workload/factory.hpp"

namespace oftm::conformance {

// gtest test names must be alphanumeric/underscore only.
inline std::string backend_param_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == ':' || c == '-') c = '_';
  }
  return name;
}

// Base fixture: a fresh instance of the parameterized backend per test.
class TmConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::size_t kNumTVars = 256;

  void SetUp() override { tm_ = workload::make_tm(GetParam(), kNumTVars); }

  std::unique_ptr<core::TransactionalMemory> tm_;
};

// Instantiates `fixture` (TmConformanceTest or a subclass registered with
// TEST_P) over every factory backend.
#define OFTM_INSTANTIATE_FOR_ALL_BACKENDS(fixture)                       \
  INSTANTIATE_TEST_SUITE_P(                                              \
      AllBackends, fixture,                                              \
      ::testing::ValuesIn(::oftm::workload::all_backends()),             \
      ::oftm::conformance::backend_param_name)

}  // namespace oftm::conformance
