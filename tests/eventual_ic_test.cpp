// Theorem 6 experiments: the separation between an OFTM and an *eventual
// ic-OFTM*, and Algorithm 3's repair of it.
//
// EventualIcTm wraps DSTM and injects a bounded number of forceful aborts
// with no step contention whatsoever — legal for an eventual ic-OFTM
// (Definition 4), illegal for an OFTM (Definition 2). Then:
//   * Algorithm 1 (one transaction per propose) leaks those aborts to its
//     caller even when running completely alone — over this substrate it
//     is NOT an fo-consensus;
//   * Algorithm 3's activity registers let it abort only on *witnessed*
//     contention, so it absorbs the bounded obstruction: a solo propose
//     never returns ⊥ (this is the constructive content of Theorem 6).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cm/managers.hpp"
#include "core/eventual_ic.hpp"
#include "dstm/dstm.hpp"
#include "foc/foc_from_eventual.hpp"
#include "foc/foc_from_tm.hpp"
#include "runtime/barrier.hpp"

namespace oftm {
namespace {

using Hw = core::HwPlatform;

std::unique_ptr<dstm::HwDstm> make_inner() {
  return std::make_unique<dstm::HwDstm>(8, cm::make_manager("polite"));
}

TEST(EventualIcTm, InjectsExactlyBudgetSpuriousAborts) {
  auto inner = make_inner();
  core::EventualIcOptions options;
  options.obstruction_budget = 5;
  options.abort_period = 2;
  core::EventualIcTm tm(*inner, options);

  int spurious = 0;
  for (int i = 0; i < 100; ++i) {
    auto txn = tm.begin();
    const bool ok =
        tm.read(*txn, 0).has_value() && tm.write(*txn, 0, i + 1) &&
        tm.try_commit(*txn);
    if (!ok) ++spurious;  // solo: only the injector can abort us
  }
  EXPECT_EQ(spurious, 5);
  EXPECT_EQ(tm.remaining_budget(), 0);
  // After the obstruction period, fully transparent.
  auto txn = tm.begin();
  EXPECT_TRUE(tm.write(*txn, 1, 42));
  EXPECT_TRUE(tm.try_commit(*txn));
  EXPECT_EQ(tm.read_quiescent(1), 42u);
}

TEST(EventualIcTm, DoomedTransactionLeavesNoTrace) {
  auto inner = make_inner();
  core::EventualIcOptions options;
  options.obstruction_budget = 1;
  options.abort_period = 1;  // the very first transaction is doomed
  core::EventualIcTm tm(*inner, options);
  auto txn = tm.begin();
  EXPECT_FALSE(tm.write(*txn, 0, 99));
  EXPECT_EQ(txn->status(), core::TxStatus::kAborted);
  EXPECT_EQ(tm.read_quiescent(0), 0u);
}

TEST(Theorem6, Algorithm1LeaksSpuriousAbortsSolo) {
  auto inner = make_inner();
  core::EventualIcOptions options;
  options.obstruction_budget = 4;
  options.abort_period = 2;
  core::EventualIcTm tm(*inner, options);
  foc::FocFromTm foc(tm, 0);

  int solo_aborts = 0;
  for (int i = 0; i < 20; ++i) {
    if (!foc.propose(static_cast<std::uint64_t>(i + 1)).has_value()) {
      ++solo_aborts;
    }
  }
  // A step-contention-free propose returned ⊥: over an eventual ic-OFTM,
  // Algorithm 1 alone does not yield an fo-consensus.
  EXPECT_GT(solo_aborts, 0);
}

TEST(Theorem6, Algorithm3AbsorbsSpuriousAbortsSolo) {
  for (int budget : {1, 3, 10, 50}) {
    auto inner = make_inner();
    core::EventualIcOptions options;
    options.obstruction_budget = budget;
    options.abort_period = 1;  // worst case: every transaction doomed while
                               // the budget lasts
    core::EventualIcTm tm(*inner, options);
    foc::FocFromEventualTm<Hw> foc(tm, 0, /*nprocs=*/4);
    const auto r = foc.propose(0, 123);
    ASSERT_TRUE(r.has_value()) << "budget " << budget;
    EXPECT_EQ(*r, 123u);  // solo: must decide own value, never ⊥
  }
}

TEST(Theorem6, Algorithm3KeepsAgreementUnderConcurrencyAndInjection) {
  constexpr int kThreads = 4;
  for (int round = 0; round < 20; ++round) {
    auto inner = make_inner();
    core::EventualIcOptions options;
    options.obstruction_budget = 16;
    options.abort_period = 3;
    core::EventualIcTm tm(*inner, options);
    foc::FocFromEventualTm<Hw> foc(tm, 0, kThreads);
    runtime::SpinBarrier barrier(kThreads);
    std::vector<std::uint64_t> decided(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        for (;;) {
          const auto r = foc.propose(t, static_cast<std::uint64_t>(t + 1));
          if (r.has_value()) {
            decided[static_cast<std::size_t>(t)] = *r;
            return;
          }
          // ⊥ is legal here: another thread's activity was witnessed.
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(decided[static_cast<std::size_t>(t)], decided[0]);
    }
    EXPECT_GE(decided[0], 1u);
    EXPECT_LE(decided[0], static_cast<std::uint64_t>(kThreads));
  }
}

}  // namespace
}  // namespace oftm
