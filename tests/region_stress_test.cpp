// Adversarial region-tier soak: many threads race transactional
// allocate/publish/unlink/free cycles through a small set of shared
// pointer slots. This is the workload the boxed tiers cannot run at all,
// and the one that stresses every region-specific mechanism at once:
//
//   * private-block access (nodes are initialized in place before the
//     commit that publishes them);
//   * epoch-deferred reclamation (a node freed by one thread's commit must
//     stay readable — and value-stable — for every doomed reader that
//     still holds its address);
//   * stripe/seqlock validation over recycled addresses.
//
// Each node carries a self-describing stamp replicated across its words; a
// committed reader that observes a mixed or stale stamp proves a reclaimed
// block was recycled under a live snapshot. The final accounting (every
// block returned, allocator drained to baseline) proves no leak on either
// the commit or the abort path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/region.hpp"
#include "lock/tl2_region.hpp"
#include "norec/norec_region.hpp"
#include "runtime/barrier.hpp"
#include "runtime/xorshift.hpp"

namespace oftm {
namespace {

constexpr int kThreads = 4;
constexpr int kItersPerThread = 15'000;
constexpr std::size_t kSlots = 64;
constexpr std::size_t kNodeWords = 6;  // payload: stamp replicated 6x

template <typename R>
void run_churn() {
  core::RegionOptions options;
  options.capacity_bytes = 4 << 20;
  R region{options};

  auto* slots = static_cast<core::Value*>(
      region.heap().alloc(kSlots * sizeof(core::Value)));
  ASSERT_NE(slots, nullptr);
  const std::size_t baseline = region.heap().allocated_bytes();

  std::atomic<std::uint64_t> stamp_mix_failures{0};
  std::atomic<std::uint64_t> committed{0};
  runtime::SpinBarrier done(kThreads);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      typename R::Session session(t);
      runtime::Xoshiro256 rng(0xC0FFEE + static_cast<std::uint64_t>(t));
      std::uint64_t counter = 0;

      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t s = rng.next_range(kSlots);
        const bool prefer_free = (rng.next() & 1) != 0;
        // Unique per (thread, attempt) so a cross-lifetime mix-up cannot
        // masquerade as a valid stamp.
        const core::Value stamp =
            (static_cast<core::Value>(t + 1) << 48) | ++counter;

        // Retry until this logical operation commits.
        for (;;) {
          typename R::Txn& tx = session.hot();
          region.prepare(tx);

          const auto cur = region.read(tx, &slots[s]);
          if (!cur.has_value()) continue;  // forced abort: retry

          bool ok = true;
          if (*cur != 0 && prefer_free) {
            // Unlink and free the published node — after checking that
            // every word still carries one coherent stamp.
            auto* node = reinterpret_cast<core::Value*>(
                static_cast<std::uintptr_t>(*cur));
            core::Value seen = 0;
            bool mixed = false;
            for (std::size_t w = 0; ok && w < kNodeWords; ++w) {
              const auto v = region.read(tx, &node[w]);
              if (!v.has_value()) {
                ok = false;
                break;
              }
              if (w == 0) {
                seen = *v;
              } else if (*v != seen) {
                mixed = true;
              }
            }
            if (!ok) continue;
            if (mixed) stamp_mix_failures.fetch_add(1);
            ok = region.write(tx, &slots[s], 0) && region.tx_free(tx, node);
          } else if (*cur == 0) {
            // Allocate, initialize in place (private), publish.
            void* p = region.tx_alloc(tx, kNodeWords * sizeof(core::Value));
            ASSERT_NE(p, nullptr);
            auto* node = static_cast<core::Value*>(p);
            for (std::size_t w = 0; ok && w < kNodeWords; ++w) {
              ok = region.write(tx, &node[w], stamp);
            }
            ok = ok && region.write(
                           tx, &slots[s],
                           static_cast<core::Value>(
                               reinterpret_cast<std::uintptr_t>(node)));
          } else {
            // Occupied and we wanted to allocate: read-verify the node
            // instead (pure reader racing the free/recycle path).
            auto* node = reinterpret_cast<core::Value*>(
                static_cast<std::uintptr_t>(*cur));
            core::Value seen = 0;
            for (std::size_t w = 0; ok && w < kNodeWords; ++w) {
              const auto v = region.read(tx, &node[w]);
              if (!v.has_value()) {
                ok = false;
                break;
              }
              if (w == 0) {
                seen = *v;
              } else if (*v != seen) {
                stamp_mix_failures.fetch_add(1);
              }
            }
            if (!ok) continue;
          }
          if (ok && region.try_commit(tx)) {
            committed.fetch_add(1);
            break;
          }
        }
      }

      // Drain this worker's own retirements while every thread is
      // quiescent (the retire lists are per-thread; nobody else can sweep
      // them once this thread exits).
      done.arrive_and_wait();
      for (int k = 0; k < 6; ++k) region.heap().epochs().reclaim();
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(stamp_mix_failures.load(), 0u)
      << "a committed snapshot observed words from two block lifetimes";
  EXPECT_EQ(committed.load(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);

  // Unlink and free every survivor, then drain: the heap must return to
  // its post-setup footprint — no leaked node on any commit/abort path.
  typename R::Session session(0);
  for (std::size_t s = 0; s < kSlots; ++s) {
    for (;;) {
      typename R::Txn& tx = session.hot();
      region.prepare(tx);
      const auto cur = region.read(tx, &slots[s]);
      if (!cur.has_value()) continue;
      bool ok = true;
      if (*cur != 0) {
        auto* node = reinterpret_cast<core::Value*>(
            static_cast<std::uintptr_t>(*cur));
        ok = region.write(tx, &slots[s], 0) && region.tx_free(tx, node);
      }
      if (ok && region.try_commit(tx)) break;
    }
  }
  region.heap().flush_reclamation();
  EXPECT_EQ(region.heap().allocated_bytes(), baseline);
}

TEST(RegionStress, Tl2RegionAllocFreeChurnStaysCoherent) {
  run_churn<lock::Tl2Region>();
}

TEST(RegionStress, NorecRegionAllocFreeChurnStaysCoherent) {
  run_churn<norec::NorecRegion>();
}

// The same churn with one stripe per cache line: heavier aliasing, more
// false conflicts, identical safety obligations (aliasing may only ever
// manufacture conflicts). NOrec has no stripes, so TL2 only.
TEST(RegionStress, Tl2RegionCoarseStripesChurnStaysCoherent) {
  core::RegionOptions options;
  options.capacity_bytes = 4 << 20;
  options.granularity_log2 = 6;
  options.stripe_count_log2 = 10;  // small table: capacity aliasing too
  lock::Tl2Region region{options};
  auto* slot = static_cast<core::Value*>(region.heap().alloc(8));
  ASSERT_NE(slot, nullptr);

  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lock::Tl2Region::Session session(t);
      for (int i = 0; i < kItersPerThread / 3; ++i) {
        for (;;) {
          auto& tx = session.hot();
          region.prepare(tx);
          const auto v = region.read(tx, slot);
          if (!v.has_value()) continue;
          if (!region.write(tx, slot, *v + 1)) continue;
          if (region.try_commit(tx)) {
            committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto expected =
      static_cast<std::uint64_t>(kThreads) * (kItersPerThread / 3);
  EXPECT_EQ(committed.load(), expected);
  EXPECT_EQ(region.read_quiescent(slot), expected);
}

}  // namespace
}  // namespace oftm
