// The TmRegion tier, pinned at three levels:
//   * RegionHeap — allocation/rounding/recycling semantics and the
//     epoch-deferred retire path.
//   * The region backends driven word-granularly (tx_alloc/tx_free,
//     private-block access, publish-on-commit, rollback-on-abort) — the
//     capabilities the boxed TVar interface cannot express.
//   * The address -> t-var adapter (core::RegionWordTm) through the
//     factory, where the existing bank-invariant machinery certifies
//     multi-threaded region histories. (The conformance + checked-stress
//     suites enroll "tl2-region"/"norec-region" automatically via
//     workload::all_backends.)
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/region.hpp"
#include "core/region_tm.hpp"
#include "lock/stripe_table.hpp"
#include "lock/tl2_region.hpp"
#include "norec/norec_region.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"

namespace oftm {
namespace {

// --- RegionHeap -------------------------------------------------------------

TEST(RegionHeap, AllocationsAreZeroedAlignedAndSized) {
  core::RegionHeap heap(1 << 20);
  for (std::size_t bytes : {1u, 8u, 24u, 100u, 4096u}) {
    void* p = heap.alloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    EXPECT_TRUE(heap.contains(p));
    EXPECT_GE(heap.block_bytes(p), bytes);
    const auto* b = static_cast<const std::byte*>(p);
    for (std::size_t i = 0; i < heap.block_bytes(p); ++i) {
      ASSERT_EQ(b[i], std::byte{0});
    }
  }
}

TEST(RegionHeap, FreeNowRecyclesTheSameBlock) {
  core::RegionHeap heap(1 << 16);
  void* p = heap.alloc(48);
  ASSERT_NE(p, nullptr);
  const std::size_t after_alloc = heap.allocated_bytes();
  heap.free_now(p);
  EXPECT_LT(heap.allocated_bytes(), after_alloc);
  // Same size class: the freed block is at the head of the free list.
  void* q = heap.alloc(48);
  EXPECT_EQ(q, p);
  // And the recycled payload is zeroed again.
  const auto* b = static_cast<const std::byte*>(q);
  for (std::size_t i = 0; i < heap.block_bytes(q); ++i) {
    ASSERT_EQ(b[i], std::byte{0});
  }
}

TEST(RegionHeap, LargeBlocksRecycleByExactSize) {
  core::RegionHeap heap(1 << 20);
  void* big = heap.alloc(100'000);  // above the size-class threshold
  ASSERT_NE(big, nullptr);
  EXPECT_GE(heap.block_bytes(big), 100'000u);
  heap.free_now(big);
  void* again = heap.alloc(100'000);
  EXPECT_EQ(again, big);
}

TEST(RegionHeap, ExhaustionReturnsNullInsteadOfThrowing) {
  core::RegionHeap heap(4096);
  std::vector<void*> blocks;
  for (;;) {
    void* p = heap.alloc(256);
    if (p == nullptr) break;
    blocks.push_back(p);
  }
  EXPECT_FALSE(blocks.empty());
  EXPECT_EQ(heap.alloc(256), nullptr);
  // Freeing restores allocatability.
  heap.free_now(blocks.back());
  EXPECT_NE(heap.alloc(256), nullptr);
}

TEST(RegionHeap, RetireDefersReuseUntilFlushed) {
  core::RegionHeap heap(1 << 16);
  void* p = heap.alloc(64);
  ASSERT_NE(p, nullptr);
  const std::size_t live = heap.allocated_bytes();
  heap.retire(p);
  // Still accounted: the block waits out its grace period.
  EXPECT_EQ(heap.allocated_bytes(), live);
  heap.flush_reclamation();
  EXPECT_LT(heap.allocated_bytes(), live);
}

// --- Stripe table -----------------------------------------------------------

TEST(StripeTable, KnobsShapeTheTable) {
  lock::StripeTable t(/*count_log2=*/4, /*granularity_log2=*/6);
  EXPECT_EQ(t.count(), 16u);
  EXPECT_EQ(t.granularity_bytes(), 64u);
  // Words within one granule share a stripe; the next granule moves on.
  alignas(64) std::uint64_t granule[16] = {};
  EXPECT_EQ(t.index_of(&granule[0]), t.index_of(&granule[7]));
  EXPECT_NE(t.index_of(&granule[0]), t.index_of(&granule[8]));
}

TEST(StripeTable, AutoSizingClampsToSaneBounds) {
  EXPECT_EQ(lock::auto_stripe_count_log2(1), 14u);          // floor
  EXPECT_EQ(lock::auto_stripe_count_log2(1u << 16), 16u);   // ~1 per word
  EXPECT_EQ(lock::auto_stripe_count_log2(std::size_t{1} << 30), 22u);  // cap
}

// --- Word-granular region backends ------------------------------------------

template <typename R>
R make_region(unsigned granularity_log2 = 3) {
  core::RegionOptions options;
  options.capacity_bytes = 1 << 20;
  options.granularity_log2 = granularity_log2;
  return R(options);
}

template <typename R>
class RegionBackendTest : public ::testing::Test {};

using RegionBackends = ::testing::Types<lock::Tl2Region, norec::NorecRegion>;
TYPED_TEST_SUITE(RegionBackendTest, RegionBackends);

TYPED_TEST(RegionBackendTest, CommittedWritesAreVisibleAbortedOnesAreNot) {
  TypeParam region = make_region<TypeParam>();
  auto* words = static_cast<core::Value*>(region.heap().alloc(8 * 8));
  ASSERT_NE(words, nullptr);

  typename TypeParam::Session session(0);
  typename TypeParam::Txn& t1 = session.hot();
  region.prepare(t1);
  EXPECT_TRUE(region.write(t1, &words[3], 42));
  EXPECT_EQ(region.read(t1, &words[3]), std::optional<core::Value>(42));
  // Lazy write-back: nothing hits memory before commit.
  EXPECT_EQ(region.read_quiescent(&words[3]), 0u);
  EXPECT_TRUE(region.try_commit(t1));
  EXPECT_EQ(region.read_quiescent(&words[3]), 42u);

  region.prepare(t1);
  EXPECT_TRUE(region.write(t1, &words[3], 77));
  region.try_abort(t1);
  EXPECT_EQ(region.read_quiescent(&words[3]), 42u);
}

TYPED_TEST(RegionBackendTest, AbortReturnsPrivateAllocationsImmediately) {
  TypeParam region = make_region<TypeParam>();
  typename TypeParam::Session session(0);
  const std::size_t baseline = region.heap().allocated_bytes();

  typename TypeParam::Txn& tx = session.hot();
  region.prepare(tx);
  void* p = region.tx_alloc(tx, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(region.heap().allocated_bytes(), baseline);
  // Private block: in-place access bypasses the commit protocol.
  auto* w = static_cast<core::Value*>(p);
  EXPECT_TRUE(region.write(tx, &w[0], 7));
  EXPECT_EQ(region.read(tx, &w[0]), std::optional<core::Value>(7));
  region.try_abort(tx);
  EXPECT_EQ(region.heap().allocated_bytes(), baseline);
}

TYPED_TEST(RegionBackendTest, CommitPublishesAllocationAndFreeRetires) {
  TypeParam region = make_region<TypeParam>();
  typename TypeParam::Session session(0);
  auto* slot = static_cast<core::Value*>(region.heap().alloc(8));
  ASSERT_NE(slot, nullptr);
  const std::size_t baseline = region.heap().allocated_bytes();

  // T1: allocate a node, initialize it, publish its address in *slot.
  typename TypeParam::Txn& tx = session.hot();
  region.prepare(tx);
  void* node = region.tx_alloc(tx, 32);
  ASSERT_NE(node, nullptr);
  auto* nw = static_cast<core::Value*>(node);
  EXPECT_TRUE(region.write(tx, &nw[0], 1234));
  EXPECT_TRUE(
      region.write(tx, slot, static_cast<core::Value>(
                                 reinterpret_cast<std::uintptr_t>(node))));
  ASSERT_TRUE(region.try_commit(tx));
  EXPECT_GT(region.heap().allocated_bytes(), baseline);

  // T2: follow the published pointer, read the node, unlink and free it.
  region.prepare(tx);
  const auto ptr = region.read(tx, slot);
  ASSERT_TRUE(ptr.has_value());
  auto* found =
      reinterpret_cast<core::Value*>(static_cast<std::uintptr_t>(*ptr));
  ASSERT_EQ(found, nw);
  EXPECT_EQ(region.read(tx, &found[0]), std::optional<core::Value>(1234));
  EXPECT_TRUE(region.write(tx, slot, 0));
  EXPECT_TRUE(region.tx_free(tx, found));
  ASSERT_TRUE(region.try_commit(tx));

  // The free is deferred through the grace period, then reclaimed.
  region.heap().flush_reclamation();
  EXPECT_EQ(region.heap().allocated_bytes(), baseline);
}

TYPED_TEST(RegionBackendTest, AllocThenFreeInSameTransactionLeavesNoTrace) {
  TypeParam region = make_region<TypeParam>();
  typename TypeParam::Session session(0);
  const std::size_t baseline = region.heap().allocated_bytes();

  typename TypeParam::Txn& tx = session.hot();
  region.prepare(tx);
  void* p = region.tx_alloc(tx, 48);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(region.tx_free(tx, p));
  ASSERT_TRUE(region.try_commit(tx));
  // Never published -> immediate reuse, no grace period involved.
  EXPECT_EQ(region.heap().allocated_bytes(), baseline);
}

TYPED_TEST(RegionBackendTest, ExhaustionSurfacesAsNullNotAbort) {
  core::RegionOptions options;
  options.capacity_bytes = 4096;
  TypeParam region{options};
  typename TypeParam::Session session(0);

  typename TypeParam::Txn& tx = session.hot();
  region.prepare(tx);
  EXPECT_EQ(region.tx_alloc(tx, 1 << 20), nullptr);
  // The transaction itself is still healthy.
  EXPECT_EQ(tx.status(), core::TxStatus::kActive);
  EXPECT_TRUE(region.try_commit(tx));
}

// Conflict-unit coarsening: with one stripe per 64-byte granule, two
// *different* words in the same granule conflict — the false-sharing axis
// the region tier exists to measure. (NOrec has no stripes; TL2 only.)
TEST(Tl2Region, CoarseGranularityManufacturesAdjacencyConflicts) {
  lock::Tl2Region region = make_region<lock::Tl2Region>(/*granularity=*/6);
  auto* words = static_cast<core::Value*>(region.heap().alloc(64));
  ASSERT_NE(words, nullptr);
  ASSERT_EQ(region.stripes().granularity_bytes(), 64u);

  lock::Tl2Region::Session s1(0), s2(1);
  // T1 reads word 0; T2 writes word 1 (same granule) and commits; T1's
  // commit-time validation must then see a newer stripe version... but T1
  // is read-only, so it validates at read time: make T1 read *again* after
  // T2's commit to observe the conflict.
  auto& t1 = s1.hot();
  region.prepare(t1);
  ASSERT_TRUE(region.read(t1, &words[0]).has_value());

  auto& t2 = s2.hot();
  region.prepare(t2);
  ASSERT_TRUE(region.write(t2, &words[1], 9));
  ASSERT_TRUE(region.try_commit(t2));

  // Same stripe, version now > t1.rv: the adjacent word is unreadable.
  EXPECT_FALSE(region.read(t1, &words[0]).has_value());
  EXPECT_EQ(t1.status(), core::TxStatus::kAborted);
}

// --- The adapter, through the factory ----------------------------------------

TEST(RegionTm, FactoryBuildsBothRecipesWithRegionSemantics) {
  for (const char* recipe : {"tl2-region", "norec-region"}) {
    auto tm = workload::make_tm(recipe, 256);
    EXPECT_EQ(tm->name(), recipe);
    EXPECT_EQ(tm->num_tvars(), 256u);
    core::TxnPtr txn = tm->begin();
    ASSERT_TRUE(tm->write(*txn, 7, 99));
    ASSERT_TRUE(tm->try_commit(*txn));
    EXPECT_EQ(tm->read_quiescent(7), 99u);
  }
}

TEST(RegionTm, StripeKnobsReachTheBackend) {
  core::RegionOptions options;
  options.stripe_count_log2 = 5;
  options.granularity_log2 = 6;
  core::RegionWordTm<lock::Tl2Region> tm(128, options);
  EXPECT_EQ(tm.region().stripes().count(), 32u);
  EXPECT_EQ(tm.region().stripes().granularity_bytes(), 64u);
}

TEST(RegionTm, BankInvariantHoldsAcrossThreads) {
  for (const char* recipe : {"tl2-region", "norec-region"}) {
    auto tm = workload::make_tm(recipe, 128);
    bool invariant_ok = false;
    const auto result = workload::run_bank_workload(
        *tm, /*threads=*/4, /*tx_per_thread=*/2000, /*accounts=*/128,
        /*initial_balance=*/1000, /*seed=*/2026, &invariant_ok,
        /*pin_threads=*/false);
    EXPECT_TRUE(invariant_ok) << recipe;
    EXPECT_EQ(result.committed, 8000u) << recipe;
  }
}

TEST(RegionTm, DriverMixedWorkloadCommitsEverythingEventually) {
  workload::WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 1500;
  config.ops_per_tx = 6;
  config.write_fraction = 0.3;
  config.pin_threads = false;
  for (const char* recipe : {"tl2-region", "norec-region"}) {
    auto tm = workload::make_tm(recipe, 512);
    const auto result = workload::run_workload(*tm, config);
    EXPECT_EQ(result.committed, 6000u) << recipe;
    EXPECT_EQ(result.gave_up, 0u) << recipe;
  }
}

}  // namespace
}  // namespace oftm
