// Workload-harness tests: factory coverage, generator properties (zipf
// skew, unique-writes discipline), and driver accounting.
#include <gtest/gtest.h>

#include <map>

#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"
#include "workload/zipf.hpp"

namespace oftm::workload {
namespace {

TEST(Factory, ConstructsEveryDefaultBackend) {
  for (const std::string& name : default_backends()) {
    auto tm = make_tm(name, 16);
    ASSERT_NE(tm, nullptr) << name;
    EXPECT_EQ(tm->num_tvars(), 16u);
  }
  EXPECT_THROW(make_tm("nonsense", 16), std::invalid_argument);
}

TEST(Factory, CmSuffixSelectsContentionManager) {
  auto tm = make_tm("dstm:karma", 8);
  ASSERT_NE(tm, nullptr);
  auto txn = tm->begin();
  EXPECT_TRUE(tm->write(*txn, 0, 1));
  EXPECT_TRUE(tm->try_commit(*txn));
  EXPECT_THROW(make_tm("dstm:bogus", 8), std::invalid_argument);
}

TEST(Zipf, SkewPrefersLowKeys) {
  ZipfSampler zipf(1000, 0.99, 42);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.next()];
  // Key 0 must be dramatically more popular than the tail.
  EXPECT_GT(counts[0], kSamples / 100);
  int tail = 0;
  for (std::uint64_t k = 900; k < 1000; ++k) {
    auto it = counts.find(k);
    if (it != counts.end()) tail += it->second;
  }
  EXPECT_GT(counts[0], tail / 10);
}

TEST(Zipf, ZeroSkewIsUniformish) {
  ZipfSampler zipf(10, 0.0, 7);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto k = zipf.next();
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 10 * 0.2) << k;
  }
}

TEST(Driver, CountsCommitsExactly) {
  auto tm = make_tm("tl2", 64);
  WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 500;
  config.ops_per_tx = 4;
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 2000u);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(tm->stats().commits, 2000u + 0u);
  EXPECT_GT(r.throughput(), 0.0);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(Driver, DurationModeRunsForTheConfiguredTime) {
  auto tm = make_tm("norec", 64);
  WorkloadConfig config;
  config.threads = 2;
  config.run_seconds = 0.2;
  config.tx_per_thread = 1;  // must be ignored in duration mode
  config.ops_per_tx = 4;
  const auto r = run_workload(*tm, config);
  // The run must last (at least) the configured duration and keep
  // committing throughout — far more than the ignored tx_per_thread.
  EXPECT_GE(r.seconds, 0.2 * 0.9);
  EXPECT_LT(r.seconds, 5.0);
  EXPECT_GT(r.committed, 2u);
  EXPECT_EQ(r.committed, tm->stats().commits);
}

TEST(Driver, UniqueWritesDisciplineHolds) {
  // Recorded history must pass the MVSG checker, which *rejects* duplicate
  // written values — so passing also certifies the discipline.
  auto tm = make_tm("dstm", 32);
  history::Recorder recorder;
  history::RecordingTm recorded(*tm, recorder);
  WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 200;
  config.write_fraction = 1.0;
  const auto r = run_workload(recorded, config);
  EXPECT_EQ(r.committed, 800u);
  const auto check = history::check_mvsg(recorder.transactions());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Driver, BankInvariantAcrossBackendsQuick) {
  for (const std::string& name : default_backends()) {
    auto tm = make_tm(name, 32);
    bool ok = false;
    const auto r = run_bank_workload(*tm, 4, 500, 16, 100, 11, &ok);
    EXPECT_TRUE(ok) << name;
    EXPECT_GT(r.committed, 0u) << name;
  }
}

}  // namespace
}  // namespace oftm::workload
