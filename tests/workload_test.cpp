// Workload-harness tests: factory coverage, generator properties (zipf
// skew, unique-writes discipline), and driver accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "history/checker.hpp"
#include "history/recorder.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"
#include "workload/zipf.hpp"

namespace oftm::workload {
namespace {

TEST(Factory, ConstructsEveryDefaultBackend) {
  for (const std::string& name : default_backends()) {
    auto tm = make_tm(name, 16);
    ASSERT_NE(tm, nullptr) << name;
    EXPECT_EQ(tm->num_tvars(), 16u);
  }
  EXPECT_THROW(make_tm("nonsense", 16), std::invalid_argument);
}

TEST(Factory, CmSuffixSelectsContentionManager) {
  auto tm = make_tm("dstm:karma", 8);
  ASSERT_NE(tm, nullptr);
  auto txn = tm->begin();
  EXPECT_TRUE(tm->write(*txn, 0, 1));
  EXPECT_TRUE(tm->try_commit(*txn));
  EXPECT_THROW(make_tm("dstm:bogus", 8), std::invalid_argument);
}

TEST(Zipf, SkewPrefersLowKeys) {
  ZipfSampler zipf(1000, 0.99, 42);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.next()];
  // Key 0 must be dramatically more popular than the tail.
  EXPECT_GT(counts[0], kSamples / 100);
  int tail = 0;
  for (std::uint64_t k = 900; k < 1000; ++k) {
    auto it = counts.find(k);
    if (it != counts.end()) tail += it->second;
  }
  EXPECT_GT(counts[0], tail / 10);
}

TEST(Zipf, ZeroSkewIsUniformish) {
  ZipfSampler zipf(10, 0.0, 7);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto k = zipf.next();
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 10 * 0.2) << k;
  }
}

// Goodness-of-fit against the exact zipf pmf: chi-squared over the full
// support. With 49 degrees of freedom the 99.9th percentile is ~85.4; the
// seed is fixed, so this is a deterministic pin that the sampler (with the
// quick-accept fast path) still draws the *distribution it claims to* —
// the property the shape tests above are too loose to certify.
TEST(Zipf, FrequenciesMatchThePmfChiSquared) {
  constexpr std::uint64_t kN = 50;
  constexpr double kS = 0.99;
  constexpr int kSamples = 500'000;
  ZipfSampler zipf(kN, kS, 0x5EED'2026);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto k = zipf.next();
    ASSERT_LT(k, kN);
    ++counts[k];
  }
  double norm = 0;
  for (std::uint64_t k = 1; k <= kN; ++k) norm += std::pow(k, -kS);
  double chi2 = 0;
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const double expected = kSamples * std::pow(k, -kS) / norm;
    const double d = counts[k - 1] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 85.4) << "sampler frequencies drifted from the zipf pmf";
}

// Regression: n == 1 used to hand the rejection loop an empty acceptance
// window (h(1.5), h(1.5)) and spin forever.
TEST(Zipf, SingleKeyDomainTerminates) {
  ZipfSampler zipf(1, 0.99, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(), 0u);
}

// Regression: a negative skew inverts h()'s integrand and the envelope no
// longer dominates; the sampler clamps it to uniform instead.
TEST(Zipf, NegativeSkewClampsToUniform) {
  ZipfSampler zipf(16, -0.5, 11);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 64'000;
  for (int i = 0; i < kSamples; ++i) {
    const auto k = zipf.next();
    ASSERT_LT(k, 16u);
    ++counts[k];
  }
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, kSamples / 16, kSamples / 16 * 0.25) << k;
  }
}

// Replayability: the driver's pre-generated access lists are a pure
// function of (config seed, thread index) — equal seeds reproduce the
// transaction mix exactly, distinct threads and seeds diverge. This is
// what makes cross-backend comparisons apples-to-apples and failures
// re-runnable.
TEST(Driver, PregeneratedSpecsAreDeterministicPerSeedAndThread) {
  WorkloadConfig config;
  config.tx_per_thread = 128;
  config.ops_per_tx = 8;
  config.seed = 1234;

  const auto specs_for = [&](std::uint64_t seed, int thread) {
    WorkloadConfig c = config;
    c.seed = seed;
    detail::WorkerArena arena;
    detail::pregenerate_specs(arena, c, /*n=*/512, thread);
    return arena.specs;
  };

  const auto a = specs_for(1234, 2);
  const auto b = specs_for(1234, 2);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].write_mask, b[i].write_mask) << i;
    for (int k = 0; k < config.ops_per_tx; ++k) {
      ASSERT_EQ(a[i].vars[k], b[i].vars[k]) << i << ":" << k;
    }
  }

  // Distinct thread or seed: some spec must differ.
  const auto differs = [&](const std::vector<detail::TxSpec>& other) {
    for (std::size_t i = 0; i < a.size() && i < other.size(); ++i) {
      if (a[i].write_mask != other[i].write_mask) return true;
      for (int k = 0; k < config.ops_per_tx; ++k) {
        if (a[i].vars[k] != other[i].vars[k]) return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(differs(specs_for(1234, 3)));
  EXPECT_TRUE(differs(specs_for(99, 2)));
}

// Forwarding decorator whose try_commit always fails: every logical
// transaction retries until max_retries (count mode) or the deadline
// (duration mode), which is exactly the accounting the expired/gave-up
// tests need to pin down.
class AlwaysAbortCommitTm : public core::TransactionalMemory {
 public:
  explicit AlwaysAbortCommitTm(core::TransactionalMemory& inner)
      : inner_(inner) {}

  using core::TransactionalMemory::begin;  // keep begin(TmSession&) visible
  core::TxnPtr begin() override { return inner_.begin(); }
  std::optional<core::Value> read(core::Transaction& txn,
                                  core::TVarId x) override {
    return inner_.read(txn, x);
  }
  bool write(core::Transaction& txn, core::TVarId x, core::Value v) override {
    return inner_.write(txn, x, v);
  }
  bool try_commit(core::Transaction& txn) override {
    inner_.try_abort(txn);
    return false;
  }
  void try_abort(core::Transaction& txn) override { inner_.try_abort(txn); }
  std::size_t num_tvars() const override { return inner_.num_tvars(); }
  core::Value read_quiescent(core::TVarId x) const override {
    return inner_.read_quiescent(x);
  }
  std::string name() const override { return "always-abort"; }
  runtime::TxStats stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }

 private:
  core::TransactionalMemory& inner_;
};

TEST(Driver, PartitionBoundsCoverEveryTvarExactlyOnce) {
  for (std::size_t n : {4u, 7u, 16u, 37u, 193u}) {
    for (int threads : {1, 2, 3, 4}) {
      if (n < static_cast<std::size_t>(threads)) continue;
      std::size_t covered = 0;
      for (int t = 0; t < threads; ++t) {
        const auto b = partition_bounds(n, threads, t);
        // Contiguous, in thread order, no gaps or overlap.
        EXPECT_EQ(b.base, covered) << n << "/" << threads << "/" << t;
        EXPECT_GE(b.size, 1u);
        covered += b.size;
      }
      // The n % threads remainder must be folded in, not dropped.
      EXPECT_EQ(covered, n) << n << "/" << threads;
    }
  }
}

TEST(Driver, PartitionedPatternTouchesTheWholeArray) {
  // 37 % 3 != 0: before the remainder fix, the last 37 - 3*12 = 1
  // t-variable was never accessed by any thread.
  auto tm = make_tm("tl2", 37);
  WorkloadConfig config;
  config.threads = 3;
  config.tx_per_thread = 500;
  config.ops_per_tx = 8;
  config.write_fraction = 1.0;
  config.pattern = AccessPattern::kPartitioned;
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 1500u);
  for (std::size_t x = 0; x < 37; ++x) {
    EXPECT_NE(tm->read_quiescent(static_cast<core::TVarId>(x)), 0u)
        << "t-var " << x << " never written";
  }
}

TEST(Driver, GiveUpAccountingAtMaxRetries) {
  auto inner = make_tm("coarse", 16);
  AlwaysAbortCommitTm tm(*inner);
  WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 25;
  config.ops_per_tx = 2;
  config.max_retries = 4;
  const auto r = run_workload(tm, config);
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.gave_up, 50u);
  EXPECT_EQ(r.aborted_attempts, 50u * 4u);
  EXPECT_EQ(r.commit_latency_ns.count(), 0u);
  EXPECT_EQ(r.retries_per_commit.count(), 0u);
}

TEST(Driver, ExpiredDeadlineIsNotAGiveUp) {
  auto inner = make_tm("coarse", 16);
  AlwaysAbortCommitTm tm(*inner);
  WorkloadConfig config;
  config.threads = 1;
  config.run_seconds = 0.1;
  config.ops_per_tx = 2;
  config.max_retries = 1'000'000'000;  // only the deadline can stop the run
  const auto r = run_workload(tm, config);
  // The deadline fires mid-retry: the unfinished transaction's failed
  // attempts stay counted, but it is neither a commit nor a gave_up.
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_GT(r.aborted_attempts, 0u);
  // Generous bounds: the spinning worker can delay the main thread's start
  // timestamp by several ms on a loaded single-core box.
  EXPECT_GE(r.seconds, 0.1 * 0.5);
  EXPECT_LT(r.seconds, 5.0);
}

TEST(Driver, LatencyHistogramsMatchStripedCounters) {
  auto tm = make_tm("norec", 64);
  WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 500;
  config.ops_per_tx = 4;
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 2000u);
  // The per-thread latency histograms, merged at flush time, must account
  // for exactly the commits the backend's striped counters saw.
  EXPECT_EQ(r.commit_latency_ns.count(), r.committed);
  EXPECT_EQ(r.commit_latency_ns.count(), tm->stats().commits);
  EXPECT_EQ(r.retries_per_commit.count(), r.committed);
  EXPECT_GT(r.commit_latency_ns.quantile(0.5), 0u);
  EXPECT_GE(r.commit_latency_ns.quantile(0.99),
            r.commit_latency_ns.quantile(0.5));
  // Per-thread skew vector: one entry per worker, summing to the total.
  ASSERT_EQ(r.per_thread_committed.size(), 4u);
  std::uint64_t sum = 0;
  for (std::uint64_t c : r.per_thread_committed) sum += c;
  EXPECT_EQ(sum, r.committed);
}

TEST(Driver, AccumulateRunAddsPerThreadEntriesElementwise) {
  // Folding benchmark iterations must keep entry i meaning "worker i"
  // (element-wise add), unlike the worker flush which concatenates.
  RunResult a;
  a.seconds = 0.5;
  a.committed = 30;
  a.per_thread_committed = {10, 20};
  a.commit_latency_ns.record(100);
  RunResult b;
  b.seconds = 0.25;
  b.committed = 3;
  b.per_thread_committed = {1, 2};
  b.commit_latency_ns.record(200);
  b.tm_stats.commits = 3;
  a.accumulate_run(b);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
  EXPECT_EQ(a.committed, 33u);
  ASSERT_EQ(a.per_thread_committed.size(), 2u);
  EXPECT_EQ(a.per_thread_committed[0], 11u);
  EXPECT_EQ(a.per_thread_committed[1], 22u);
  EXPECT_EQ(a.commit_latency_ns.count(), 2u);
  EXPECT_EQ(a.tm_stats.commits, 3u);
}

TEST(Driver, ReadOnlyFractionSuppressesWrites) {
  auto tm = make_tm("tl2", 64);
  WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 300;
  config.write_fraction = 1.0;       // would write every op...
  config.read_only_fraction = 1.0;   // ...but every transaction is read-only
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 600u);
  EXPECT_EQ(tm->stats().writes, 0u);
}

TEST(Driver, HotSetConfinesRedirectedOps) {
  auto tm = make_tm("tl2", 64);
  WorkloadConfig config;
  config.threads = 2;
  config.tx_per_thread = 400;
  config.write_fraction = 1.0;
  config.hot_op_fraction = 1.0;  // every op lands in the hot set
  config.hot_set_size = 4;
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 800u);
  for (std::size_t x = 0; x < 4; ++x) {
    EXPECT_NE(tm->read_quiescent(static_cast<core::TVarId>(x)), 0u) << x;
  }
  for (std::size_t x = 4; x < 64; ++x) {
    EXPECT_EQ(tm->read_quiescent(static_cast<core::TVarId>(x)), 0u) << x;
  }
}

TEST(Driver, CountsCommitsExactly) {
  auto tm = make_tm("tl2", 64);
  WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 500;
  config.ops_per_tx = 4;
  const auto r = run_workload(*tm, config);
  EXPECT_EQ(r.committed, 2000u);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(tm->stats().commits, 2000u + 0u);
  EXPECT_GT(r.throughput(), 0.0);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(Driver, DurationModeRunsForTheConfiguredTime) {
  auto tm = make_tm("norec", 64);
  WorkloadConfig config;
  config.threads = 2;
  config.run_seconds = 0.2;
  config.tx_per_thread = 1;  // must be ignored in duration mode
  config.ops_per_tx = 4;
  const auto r = run_workload(*tm, config);
  // The run must last (at least) the configured duration and keep
  // committing throughout — far more than the ignored tx_per_thread.
  EXPECT_GE(r.seconds, 0.2 * 0.9);
  EXPECT_LT(r.seconds, 5.0);
  EXPECT_GT(r.committed, 2u);
  EXPECT_EQ(r.committed, tm->stats().commits);
  // Duration mode records latency per commit too; the merged histograms
  // must agree with the striped backend counters.
  EXPECT_EQ(r.commit_latency_ns.count(), tm->stats().commits);
  EXPECT_EQ(r.retries_per_commit.count(), r.committed);
}

TEST(Driver, UniqueWritesDisciplineHolds) {
  // Recorded history must pass the MVSG checker, which *rejects* duplicate
  // written values — so passing also certifies the discipline.
  auto tm = make_tm("dstm", 32);
  history::Recorder recorder;
  history::RecordingTm recorded(*tm, recorder);
  WorkloadConfig config;
  config.threads = 4;
  config.tx_per_thread = 200;
  config.write_fraction = 1.0;
  const auto r = run_workload(recorded, config);
  EXPECT_EQ(r.committed, 800u);
  const auto check = history::check_mvsg(recorder.transactions());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Driver, BankInvariantAcrossBackendsQuick) {
  for (const std::string& name : default_backends()) {
    auto tm = make_tm(name, 32);
    bool ok = false;
    const auto r = run_bank_workload(*tm, 4, 500, 16, 100, 11, &ok);
    EXPECT_TRUE(ok) << name;
    EXPECT_GT(r.committed, 0u) << name;
    EXPECT_EQ(r.commit_latency_ns.count(), r.committed) << name;
  }
}

TEST(Driver, BankHonorsPinThreadsFlag) {
  // Oversubscribed run (more workers than the container has cores): only
  // valid with pinning off, which run_bank_workload used to hard-code on.
  auto tm = make_tm("norec", 32);
  bool ok = false;
  const auto r = run_bank_workload(*tm, 12, 200, 16, 100, 23, &ok,
                                   /*pin_threads=*/false);
  EXPECT_TRUE(ok);
  EXPECT_GT(r.committed, 0u);
  ASSERT_EQ(r.per_thread_committed.size(), 12u);
}

}  // namespace
}  // namespace oftm::workload
