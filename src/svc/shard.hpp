// One shard of the KV service: an independent TM instance owning a hash
// partition of the keyspace, with every public operation a single
// committed transaction on that TM.
//
// Per-shard state, all transactional:
//   balances  THashMapT   key -> balance, the primary record store
//   locks     THashMapT   key -> coordinator token; an entry is the 2PC
//                         "prepared" mark for that key (svc/coordinator.hpp)
//   index     TListSetT   the shard's owned keys in sorted order, for
//                         ordered range scans and membership churn
//   meta      1 t-var     sum of every committed put delta — the term that
//                         keeps the global conservation audit exact while
//                         puts mutate balances concurrently with transfers
//
// Locking discipline (deadlock freedom): prepare() is a try-lock — it
// *votes* kBusy instead of waiting when a key is already locked, so a
// lock holder never blocks on another lock. Only put_add(), which holds
// no locks, is allowed to wait (tx.retry()) for a lock to clear.
//
// The layout is computed against the instantiated MemoryModel, but TMs
// are sized by the *boxed* footprint (the larger: region containers keep
// their records in the backend heap), so one `shard_tvar_words()` figure
// sizes every recipe and doubles as the scratch-t-var base the
// checked-stress harness projects its recorded history through.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "core/tm.hpp"
#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "runtime/assert.hpp"
#include "svc/config.hpp"

namespace oftm::svc {

// Boxed-layout t-var footprint of one shard (containers + the meta word).
// Boxed recipes need exactly this many t-variables; region recipes get the
// same t-var array (the meta word lives there) plus heap headroom, via
// workload::make_tm_for_containers.
inline std::size_t shard_tvar_words(const ServiceConfig& cfg) {
  return ds::THashMapT<core::BoxedMemory>::tvars_needed(cfg.map_capacity()) +
         ds::THashMapT<core::BoxedMemory>::tvars_needed(cfg.lock_capacity()) +
         ds::TListSetT<core::BoxedMemory>::tvars_needed(cfg.index_capacity()) +
         1;
}

template <core::MemoryModel M>
class ShardT {
 public:
  using Map = ds::THashMapT<M>;
  using Set = ds::TListSetT<M>;
  // Runs first inside every transaction this shard executes. The
  // checked-stress harness injects recorded scratch-t-var writes here so
  // each committed transaction is visible to the opacity checker; empty in
  // production (one untaken branch per transaction).
  using TxHook = std::function<void(core::TxView&)>;

  ShardT(core::TransactionalMemory& tm, const ServiceConfig& cfg, int id)
      : tm_(tm),
        id_(id),
        balances_(tm, balances_base(cfg), cfg.map_capacity()),
        locks_(tm, locks_base(cfg), cfg.lock_capacity()),
        index_(tm, index_base(cfg), cfg.index_capacity()),
        meta_var_(meta_base(cfg)) {}

  int id() const noexcept { return id_; }
  core::TransactionalMemory& tm() const noexcept { return tm_; }
  void set_tx_hook(TxHook hook) { hook_ = std::move(hook); }

  void init() {
    balances_.init();
    locks_.init();
    index_.init();
    core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      tx.write(meta_var_, 0);
    });
  }

  // Seed the shard's owned keys, batched so seeding N keys is not N
  // transactions. Quiescent use only (before clients start).
  void seed(const std::vector<std::uint64_t>& keys, core::Value balance) {
    OFTM_ASSERT_MSG(keys.size() <= index_.capacity(),
                    "per-shard load exceeds the sizing bound");
    constexpr std::size_t kBatch = 64;
    for (std::size_t at = 0; at < keys.size(); at += kBatch) {
      const std::size_t end =
          at + kBatch < keys.size() ? at + kBatch : keys.size();
      core::atomically(tm_, [&](core::TxView& tx) {
        run_hook(tx);
        for (std::size_t i = at; i < end; ++i) {
          balances_.put(tx, keys[i], balance);
          index_.insert(tx, keys[i]);
          if (!tx.ok()) return;
        }
      });
    }
  }

  // ---- Single-shard client operations ----------------------------------

  // Point read. Reads ignore the lock table: a prepared-but-uncommitted
  // transfer has not changed any balance yet, so the pre-transfer value is
  // the consistent answer.
  std::optional<core::Value> get(std::uint64_t key) {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      return balances_.get(tx, key);
    });
  }

  // Additive point update, mirrored into the meta word so the global
  // conservation audit stays exact. Waits out a 2PC lock via tx.retry():
  // safe because a put holds no locks while waiting, and the lock holder
  // (the coordinator) never waits on anything.
  void put_add(std::uint64_t key, core::Value delta) {
    core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      if (locks_.get(tx, key).has_value()) tx.retry();
      const auto cur = balances_.get(tx, key);
      if (!tx.ok()) return;
      balances_.put(tx, key, cur.value_or(0) + delta);
      tx.write(meta_var_, tx.read(meta_var_) + delta);
    });
  }

  // Same-shard transfer: both keys live here, so the whole transfer is one
  // transaction and 2PC is pure overhead — the fast path whose share the
  // coordinator reports (it shrinks as the shard count grows).
  Vote transfer_local(std::uint64_t src, std::uint64_t dst,
                      core::Value amount) {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      if (locks_.get(tx, src).has_value() ||
          locks_.get(tx, dst).has_value()) {
        return Vote::kBusy;
      }
      const auto s = balances_.get(tx, src);
      if (!tx.ok() || !s.has_value()) return Vote::kBusy;  // doomed view
      if (*s < amount) return Vote::kInsufficient;
      balances_.put(tx, src, *s - amount);
      const auto d = balances_.get(tx, dst);
      if (!tx.ok() || !d.has_value()) return Vote::kBusy;
      balances_.put(tx, dst, *d + amount);
      return Vote::kYes;
    });
  }

  // Ordered range scan over the shard's key index: |[lo, hi) ∩ owned|.
  std::uint64_t scan_index(std::uint64_t lo, std::uint64_t hi) {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      return index_.scan_range(tx, lo, hi, [](std::uint64_t) {});
    });
  }

  // Range aggregate over the balance table (full-table scan — open
  // addressing has no order; the expensive snapshot the tail-latency
  // histograms exist to expose).
  core::Value scan_balances(std::uint64_t lo, std::uint64_t hi) {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      return balances_.range_sum(tx, lo, hi);
    });
  }

  // Membership churn on the key index: erase if present, insert if not.
  // Only toggles keys the shard was seeded with, so capacity never grows.
  void churn_index(std::uint64_t key) {
    core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      if (!index_.erase(tx, key)) index_.insert(tx, key);
    });
  }

  // ---- 2PC participant operations (svc/coordinator.hpp) -----------------

  // Phase one, try-style: validate funds and lock the key under `token`,
  // or vote without side effects. `required` is the debit this participant
  // must be able to cover (0 for the credit side). Never waits: voting
  // kBusy instead of blocking is what makes the protocol deadlock-free.
  Vote prepare(std::uint64_t key, std::uint64_t token, core::Value required) {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      if (locks_.get(tx, key).has_value()) return Vote::kBusy;
      const auto bal = balances_.get(tx, key);
      if (!tx.ok() || !bal.has_value()) return Vote::kBusy;  // doomed view
      if (*bal < required) return Vote::kInsufficient;
      locks_.put(tx, key, token);
      return Vote::kYes;
    });
  }

  // Phase two, commit side: apply the signed delta and drop the lock.
  // Unconditional once every participant voted yes — retried until it
  // commits (the lock guarantees no validation can fail semantically).
  void commit_apply(std::uint64_t key, std::uint64_t token,
                    std::int64_t delta) {
    core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      const auto held = locks_.get(tx, key);
      if (!tx.ok()) return;
      OFTM_ASSERT_MSG(held.has_value() && *held == token,
                      "2PC commit_apply without holding the lock");
      const auto bal = balances_.get(tx, key);
      if (!tx.ok()) return;
      balances_.put(tx, key,
                    static_cast<core::Value>(
                        static_cast<std::int64_t>(bal.value_or(0)) + delta));
      locks_.erase(tx, key);
    });
  }

  // Phase two, abort side: drop the lock, touch nothing else.
  void release(std::uint64_t key, std::uint64_t token) {
    core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      const auto held = locks_.get(tx, key);
      if (!tx.ok()) return;
      OFTM_ASSERT_MSG(held.has_value() && *held == token,
                      "2PC release without holding the lock");
      locks_.erase(tx, key);
    });
  }

  // ---- Audits -----------------------------------------------------------

  // Transactional sum of every balance the shard holds (one snapshot).
  core::Value sum_balances() {
    return core::atomically(tm_, [&](core::TxView& tx) {
      run_hook(tx);
      core::Value sum = 0;
      balances_.for_each(tx, [&](std::uint64_t, core::Value v) {
        sum += v;
        return true;
      });
      return sum;
    });
  }

  // Sum of committed put deltas (quiescent).
  core::Value applied_put_delta() const {
    return tm_.read_quiescent(meta_var_);
  }

  // 2PC locks still held (quiescent; must be 0 after clients drain).
  std::uint64_t locks_held_quiescent() const {
    return locks_.size_quiescent();
  }

  std::uint64_t keys_owned_quiescent() const {
    return balances_.size_quiescent();
  }

  bool audit_index_quiescent() const { return index_.audit_quiescent(); }

 private:
  // Container bases, laid out sequentially in the instantiated model's
  // footprint (region bases are ignored by RegionMemory but harmless).
  static core::TVarId balances_base(const ServiceConfig&) { return 0; }
  static core::TVarId locks_base(const ServiceConfig& cfg) {
    return balances_base(cfg) +
           static_cast<core::TVarId>(Map::tvars_needed(cfg.map_capacity()));
  }
  static core::TVarId index_base(const ServiceConfig& cfg) {
    return locks_base(cfg) +
           static_cast<core::TVarId>(Map::tvars_needed(cfg.lock_capacity()));
  }
  static core::TVarId meta_base(const ServiceConfig& cfg) {
    return index_base(cfg) +
           static_cast<core::TVarId>(Set::tvars_needed(cfg.index_capacity()));
  }

  void run_hook(core::TxView& tx) {
    if (hook_) hook_(tx);
  }

  core::TransactionalMemory& tm_;
  const int id_;
  Map balances_;
  Map locks_;
  Set index_;
  const core::TVarId meta_var_;
  TxHook hook_;
};

}  // namespace oftm::svc
