#include "svc/service.hpp"

#include "workload/factory.hpp"
#include "workload/report.hpp"

namespace oftm::svc {

// Anchor the templates over both layouts so a layout regression breaks
// this library's build, not the first client (same pattern as ds/ds.cpp).
template class ShardT<core::BoxedMemory>;
template class ShardT<core::RegionMemory>;
template class TwoPhaseCoordinator<core::BoxedMemory>;
template class TwoPhaseCoordinator<core::RegionMemory>;
template class KvServiceT<core::BoxedMemory>;
template class KvServiceT<core::RegionMemory>;

std::vector<std::unique_ptr<core::TransactionalMemory>> make_service_tms(
    const ServiceConfig& cfg) {
  std::vector<std::unique_ptr<core::TransactionalMemory>> tms;
  tms.reserve(static_cast<std::size_t>(cfg.num_shards));
  const std::size_t words = shard_tvar_words(cfg) + cfg.extra_tvars;
  for (int i = 0; i < cfg.num_shards; ++i) {
    tms.push_back(workload::make_tm_for_containers(cfg.backend, words));
  }
  return tms;
}

ServiceRun run_service(const ServiceConfig& cfg) {
  auto tms = make_service_tms(cfg);
  std::vector<core::TransactionalMemory*> raw;
  raw.reserve(tms.size());
  for (auto& tm : tms) raw.push_back(tm.get());
  return core::with_memory_model(*raw.front(), [&](auto tag) {
    using Model = typename decltype(tag)::type;
    KvServiceT<Model> service(cfg, raw);
    service.init_and_seed();
    ServiceRun run;
    run.result = service.run_clients();
    run.audit_ok = service.audit(&run.audit_why);
    return run;
  });
}

void emit_service_run(std::string_view bench, std::string_view scenario,
                      const ServiceConfig& cfg, const SvcRunResult& r) {
  namespace report = workload::report;
  report::Json config;
  config.field("shards", cfg.num_shards)
      .field("clients", cfg.clients)
      .field("keys", cfg.keys)
      .field("initial_balance", cfg.initial_balance)
      .field("put_fraction", cfg.put_fraction)
      .field("transfer_fraction", cfg.transfer_fraction)
      .field("scan_fraction", cfg.scan_fraction)
      .field("churn_fraction", cfg.churn_fraction)
      .field("scan_span", cfg.scan_span)
      .field("max_transfer", cfg.max_transfer)
      .field("zipf_s", cfg.zipf_s)
      .field("ops_per_client", cfg.ops_per_client)
      .field("run_seconds", cfg.run_seconds)
      .field("seed", cfg.seed);

  report::Json coord;
  coord.field("transfers_attempted", r.coord.transfers_attempted)
      .field("committed_fast_path", r.coord.committed_fast_path)
      .field("committed_two_phase", r.coord.committed_two_phase)
      .field("busy_first", r.coord.busy_first)
      .field("busy_second", r.coord.busy_second)
      .field("insufficient", r.coord.insufficient)
      .field("rollbacks", r.coord.rollbacks);

  report::Json latency;
  latency.field_raw("all", report::to_json(r.op_latency_ns))
      .field_raw("get", report::to_json(r.get_latency_ns))
      .field_raw("put", report::to_json(r.put_latency_ns))
      .field_raw("scan", report::to_json(r.scan_latency_ns))
      .field_raw("transfer", report::to_json(r.transfer_latency_ns));

  std::string shard_commits = "[";
  for (std::size_t i = 0; i < r.per_shard_commits.size(); ++i) {
    if (i > 0) shard_commits += ',';
    shard_commits += std::to_string(r.per_shard_commits[i]);
  }
  shard_commits += ']';

  report::Json result;
  result.field("seconds", r.seconds)
      .field("ops", r.ops)
      .field("throughput_tx_s", r.throughput())
      .field("gets", r.gets)
      .field("puts", r.puts)
      .field("scans", r.scans)
      .field("churns", r.churns)
      .field("transfers_committed", r.transfers_committed)
      .field("transfers_insufficient", r.transfers_insufficient)
      .field("transfers_gave_up", r.transfers_gave_up)
      .field("transfer_busy_retries", r.transfer_busy_retries)
      .field_raw("coordinator", coord.str())
      .field_raw("latency_ns", latency.str())
      .field_raw("per_shard_commits", shard_commits)
      .field_raw("tm_stats", report::to_json(r.tm_stats));

  report::Json record;
  record.field("bench", bench)
      .field("scenario", scenario)
      .field("backend", cfg.backend)
      .field_raw("config", config.str())
      .field_raw("result", result.str());
  report::emit(record);
}

}  // namespace oftm::svc
