// Configuration for the sharded transactional KV service (src/svc/).
//
// The service partitions one logical keyspace [0, keys) across
// `num_shards` *independent* TM instances — the regime "Distributed
// Transactional Systems Cannot Be Fast" (PAPERS.md) predicts the
// interesting cost curve in: single-shard operations stay as cheap as one
// TM allows, while cross-shard transfers pay a two-phase commit built
// from per-shard transactions (svc/coordinator.hpp).
//
// Every knob a run needs is here, so a report line carrying the config is
// reproducible without the source; the derived per-shard container sizing
// lives here too, so the service, the tests and the benches agree on the
// t-var layout byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace oftm::svc {

inline constexpr std::uint32_t next_pow2(std::uint64_t v) noexcept {
  std::uint32_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

struct ServiceConfig {
  // Which factory recipe backs every shard (workload::make_tm_for_containers
  // grammar — boxed or region; the service dispatches the layout at runtime
  // via core::with_memory_model).
  std::string backend = "tl2";
  int num_shards = 4;
  int clients = 4;

  // Global keyspace [0, keys), hash-partitioned across shards. Every key
  // is seeded with initial_balance before clients start.
  std::uint64_t keys = 2048;
  core::Value initial_balance = 1000;

  // Client op mix, drawn per op: put / transfer / scan / index churn, the
  // remainder point gets. Fractions are cumulative probabilities' summands
  // and must total <= 1.
  double put_fraction = 0.20;
  double transfer_fraction = 0.20;
  double scan_fraction = 0.05;
  double churn_fraction = 0.05;

  // Range scans cover [lo, lo + scan_span); transfers move 1..max_transfer.
  std::uint64_t scan_span = 64;
  core::Value max_transfer = 16;

  // Zipf skew of the client key distribution (key 0 hottest). 0 = uniform.
  double zipf_s = 0.99;

  // Count mode (run_seconds == 0): each client runs ops_per_client ops.
  // Duration mode (run_seconds > 0): clients run until the deadline.
  std::uint64_t ops_per_client = 10'000;
  double run_seconds = 0;

  std::uint64_t seed = 42;

  // A transfer that keeps losing prepare races (kBusy) is retried with
  // backoff up to this many attempts before the client gives up on it.
  int max_transfer_attempts = 1'000'000;

  // Off by default: the service targets oversubscribed client counts
  // (clients >> cores), where pinning would serialize the world.
  bool pin_threads = false;

  // Extra t-variables appended to every shard's TM beyond the container
  // layout — scratch space the checked-stress harness writes its recorded
  // projection through (tests/svc_checked_stress_test.cpp).
  std::size_t extra_tvars = 0;

  // ---- Derived per-shard sizing ----------------------------------------
  // Shards are hash partitions, so per-shard load is binomial around
  // keys/num_shards; 2x the mean plus constant slack is far beyond any
  // realistic tail (the seeder asserts the real load fits).
  std::uint64_t per_shard_key_bound() const {
    const std::uint64_t mean = keys / static_cast<std::uint64_t>(num_shards);
    const std::uint64_t bound = 2 * mean + 128;
    return bound < keys ? bound : keys;
  }
  // Balance table: open addressing wants <= 50% load.
  std::uint32_t map_capacity() const {
    return next_pow2(2 * per_shard_key_bound());
  }
  // 2PC lock table: at most one entry per in-flight transfer participant.
  std::uint32_t lock_capacity() const {
    const std::uint64_t inflight = 8 * static_cast<std::uint64_t>(clients);
    return next_pow2(inflight < 64 ? 64 : inflight);
  }
  // Sorted key index (range scans / membership churn): holds every key the
  // shard owns.
  std::uint32_t index_capacity() const {
    return static_cast<std::uint32_t>(per_shard_key_bound());
  }
};

// Upper bound on ONE shard's recorded history length when every shard TM
// is wrapped in a history::RecordingTm (the checked-stress harness hands
// this to Recorder::reserve; the tier asserts size() <= reserved()).
//
// records_container_ops distinguishes the memory models: boxed recipes
// record every container t-var access (including full per-shard table
// scans), region recipes record only the scratch-projection ops the
// checked-stress hook injects (word-tier container traffic forwards
// unrecorded). Per attempt a participating shard records invoke/response
// pairs for each op plus the tryC pair; the constants below are ceilings
// per op class, scaled by expected shard participation (point ops touch 1
// shard, transfers 2, scans all), then by hash-partition skew and an
// abort-retry slack covering 2PC busy-loops under the default zipf skew.
inline std::size_t estimated_shard_history_events(
    const ServiceConfig& cfg, bool records_container_ops) {
  const double total_ops = static_cast<double>(cfg.clients) *
                           static_cast<double>(cfg.ops_per_client);
  const double shards = static_cast<double>(cfg.num_shards);
  // Scratch-projection hook (3 ops) + tryC: recorded on every attempt of
  // every service transaction, both memory models.
  const double base = 3 * 2 + 2;
  // Container ceilings per participating shard, boxed recipes only:
  // point get/put and a transfer leg stay single-digit accesses; index
  // churn walks the sorted index; a scan reads the shard's whole balance
  // table plus index.
  const double keys_per_shard =
      static_cast<double>(cfg.per_shard_key_bound());
  const double point = base + (records_container_ops ? 24 : 0);
  const double churn = base + (records_container_ops ? 64 : 0);
  const double scan =
      base + (records_container_ops ? 2 * keys_per_shard + 32 : 0);
  const double point_fraction =
      1.0 - cfg.transfer_fraction - cfg.scan_fraction - cfg.churn_fraction;
  // Expected recorded events per client op, summed over ALL shards.
  const double per_op = point_fraction * point +
                        cfg.transfer_fraction * 2 * point +
                        cfg.churn_fraction * churn +
                        cfg.scan_fraction * shards * scan;
  const double skew_slack = 1.5;   // hash-partition imbalance
  const double abort_slack = 2.0;  // retried attempts per committed op
  return static_cast<std::size_t>(total_ops * per_op / shards * skew_slack *
                                  (1.0 + abort_slack)) +
         4096;
}

// Outcome of a 2PC prepare (and of the whole transfer, whose verdict is
// the logical AND of its participants' votes).
enum class Vote {
  kYes,           // validated and locked
  kBusy,          // a concurrent transfer holds a participant; retry
  kInsufficient,  // the debit side lacks funds; permanent for this amount
};

inline const char* to_string(Vote v) noexcept {
  switch (v) {
    case Vote::kYes: return "yes";
    case Vote::kBusy: return "busy";
    case Vote::kInsufficient: return "insufficient";
  }
  return "?";
}

}  // namespace oftm::svc
