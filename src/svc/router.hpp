// Shard router: which TM instance owns a key.
//
// Hash partitioning (mix64, then modulo) rather than range partitioning,
// deliberately: the client key distribution is Zipf with rank 0 hottest,
// and a range router would park the entire hot set on shard 0, measuring
// one TM plus idle bystanders. Hashing spreads the hot ranks across
// shards so the shard-count sweep in bench_shard_service measures the
// coordination cost curve, not a placement artifact.
#pragma once

#include <cstdint>

#include "runtime/assert.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::svc {

class ShardRouter {
 public:
  explicit ShardRouter(int num_shards) : num_shards_(num_shards) {
    OFTM_ASSERT(num_shards >= 1);
  }

  int shard_of(std::uint64_t key) const noexcept {
    return static_cast<int>(runtime::mix64(key) %
                            static_cast<std::uint64_t>(num_shards_));
  }

  int num_shards() const noexcept { return num_shards_; }

 private:
  int num_shards_;
};

}  // namespace oftm::svc
