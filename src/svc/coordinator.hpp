// Two-phase commit over per-shard transactions.
//
// A cross-shard transfer debits a key on one TM instance and credits a key
// on another; no single transaction can span both, so atomicity comes from
// the classic protocol, with each phase step a committed transaction on
// one shard (ShardT::prepare / commit_apply / release):
//
//   prepare   participants in ascending (shard id, key) order; each
//             validates funds and records key -> token in its lock table.
//             Try-style: an already-locked key votes kBusy instead of
//             waiting — combined with put_add being the only waiter (and
//             it holds nothing), no cycle of waiters can form.
//   decide    all yes  -> commit_apply on each participant (apply delta,
//                         drop lock); unconditional, retried to commit.
//             any no   -> release the already-prepared participants and
//                         report the losing vote to the client, who
//                         retries kBusy with backoff and treats
//                         kInsufficient as a completed (failed) transfer.
//
// Safety argument, in this in-process setting: between a key's prepare and
// its phase two, the lock entry excludes every other transfer (they vote
// kBusy) and holds off puts (they wait); gets read the pre-transfer value,
// which is consistent because phase one writes no balances. The
// coordinator cannot crash independently of the shards — the classic 2PC
// blocking window is out of scope here; what this layer measures is the
// protocol's *cost*, which is exactly what the bench sweeps.
//
// Tokens are globally unique (one shared counter), so a stale release can
// never unlock a key re-prepared by a later transfer.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/memory_model.hpp"
#include "runtime/assert.hpp"
#include "svc/config.hpp"
#include "svc/router.hpp"
#include "svc/shard.hpp"

namespace oftm::svc {

// Protocol-level outcome counters (client-op accounting lives in
// SvcRunResult; these count what the 2PC machinery itself did).
struct CoordinatorStats {
  std::uint64_t transfers_attempted = 0;
  std::uint64_t committed_fast_path = 0;  // same-shard, single transaction
  std::uint64_t committed_two_phase = 0;  // cross-shard, full protocol
  std::uint64_t busy_first = 0;           // first prepare lost the race
  std::uint64_t busy_second = 0;          // second prepare lost -> rollback
  std::uint64_t insufficient = 0;         // debit side lacked funds
  std::uint64_t rollbacks = 0;            // releases of prepared locks

  CoordinatorStats& merge(const CoordinatorStats& o) {
    transfers_attempted += o.transfers_attempted;
    committed_fast_path += o.committed_fast_path;
    committed_two_phase += o.committed_two_phase;
    busy_first += o.busy_first;
    busy_second += o.busy_second;
    insufficient += o.insufficient;
    rollbacks += o.rollbacks;
    return *this;
  }
};

template <core::MemoryModel M>
class TwoPhaseCoordinator {
 public:
  TwoPhaseCoordinator(std::vector<ShardT<M>*> shards, const ShardRouter& router)
      : shards_(std::move(shards)), router_(router) {}

  // One transfer attempt: move `amount` from src_key to dst_key, or report
  // why not. kBusy is transient (the caller retries with backoff);
  // kInsufficient is final for this amount. `stats` is the caller's
  // private accumulator — clients each pass their own and merge at run
  // end, so the coordinator adds no shared hot spot.
  Vote transfer(std::uint64_t src_key, std::uint64_t dst_key,
                core::Value amount, CoordinatorStats& stats) {
    OFTM_ASSERT(src_key != dst_key);
    ++stats.transfers_attempted;

    const int s = router_.shard_of(src_key);
    const int d = router_.shard_of(dst_key);
    if (s == d) {
      const Vote v = shards_[static_cast<std::size_t>(s)]->transfer_local(
          src_key, dst_key, amount);
      switch (v) {
        case Vote::kYes: ++stats.committed_fast_path; break;
        case Vote::kBusy: ++stats.busy_first; break;
        case Vote::kInsufficient: ++stats.insufficient; break;
      }
      return v;
    }

    const std::uint64_t token =
        next_token_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Participants in ascending shard-id order. Not needed for deadlock
    // freedom (prepare never waits) but it bounds wasted work: concurrent
    // transfers over the same shard pair collide on their *first* prepare,
    // before either holds anything worth rolling back.
    struct Participant {
      ShardT<M>* shard;
      std::uint64_t key;
      core::Value required;  // debit to validate (0 on the credit side)
      std::int64_t delta;    // signed amount applied in phase two
    };
    const std::int64_t signed_amount = static_cast<std::int64_t>(amount);
    Participant first{shards_[static_cast<std::size_t>(s)], src_key, amount,
                      -signed_amount};
    Participant second{shards_[static_cast<std::size_t>(d)], dst_key, 0,
                       signed_amount};
    if (d < s) std::swap(first, second);

    const Vote v1 = first.shard->prepare(first.key, token, first.required);
    if (v1 != Vote::kYes) {
      if (v1 == Vote::kBusy) ++stats.busy_first;
      else ++stats.insufficient;
      return v1;
    }
    const Vote v2 = second.shard->prepare(second.key, token, second.required);
    if (v2 != Vote::kYes) {
      first.shard->release(first.key, token);
      ++stats.rollbacks;
      if (v2 == Vote::kBusy) ++stats.busy_second;
      else ++stats.insufficient;
      return v2;
    }

    first.shard->commit_apply(first.key, token, first.delta);
    second.shard->commit_apply(second.key, token, second.delta);
    ++stats.committed_two_phase;
    return Vote::kYes;
  }

 private:
  std::vector<ShardT<M>*> shards_;
  const ShardRouter& router_;
  std::atomic<std::uint64_t> next_token_{0};
};

}  // namespace oftm::svc
