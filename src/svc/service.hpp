// The sharded transactional KV service: N independent TM instances, one
// router, one 2PC coordinator, and a client harness that drives a mixed
// OLTP op set against them — the ROADMAP's millions-of-users scenario
// scaled to a process.
//
// Client ops (mix drawn per op from ServiceConfig's fractions):
//   get       point read of one Zipf-drawn key (single shard)
//   put       additive point update (single shard; waits out 2PC locks)
//   transfer  move funds between two keys; same-shard = one transaction
//             (fast path), cross-shard = two-phase commit; kBusy retried
//             with backoff, kInsufficient accepted as a completed outcome
//   scan      ordered key-index count across every shard, or a one-shard
//             balance range aggregate (a full-table snapshot)
//   churn     membership toggle on a shard's key index
//
// Measurement mirrors workload::run_workload: each client accumulates
// into a cache-line-isolated arena (latency histograms per op kind,
// private coordinator counters) and flushes once after the stop barrier,
// so the harness adds no shared hot spot of its own.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/memory_model.hpp"
#include "core/tm.hpp"
#include "runtime/backoff.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/stats.hpp"
#include "runtime/topology.hpp"
#include "runtime/xorshift.hpp"
#include "svc/config.hpp"
#include "svc/coordinator.hpp"
#include "svc/router.hpp"
#include "svc/shard.hpp"
#include "workload/zipf.hpp"

namespace oftm::svc {

// Aggregated outcome of one service run. Histograms are nanoseconds per
// *completed client op*, internal retries included — the client-visible
// latency the p99/p999 report fields summarize.
struct SvcRunResult {
  double seconds = 0;
  std::uint64_t ops = 0;  // completed client ops (gave-ups excluded)
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t scans = 0;
  std::uint64_t churns = 0;
  std::uint64_t transfers_committed = 0;
  std::uint64_t transfers_insufficient = 0;  // completed, funds lacking
  std::uint64_t transfers_gave_up = 0;       // exhausted busy retries
  std::uint64_t transfer_busy_retries = 0;   // extra attempts burned on kBusy

  runtime::Log2Histogram op_latency_ns;
  runtime::Log2Histogram get_latency_ns;
  runtime::Log2Histogram put_latency_ns;
  runtime::Log2Histogram scan_latency_ns;
  runtime::Log2Histogram transfer_latency_ns;

  CoordinatorStats coord;
  runtime::TxStats tm_stats;  // merged across every shard's TM
  std::vector<std::uint64_t> per_shard_commits;

  double throughput() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
  }

  // Client-arena flush; whole-run fields (seconds, tm_stats, per-shard
  // commits) are filled once by the harness.
  void merge_from(const SvcRunResult& o) {
    ops += o.ops;
    gets += o.gets;
    puts += o.puts;
    scans += o.scans;
    churns += o.churns;
    transfers_committed += o.transfers_committed;
    transfers_insufficient += o.transfers_insufficient;
    transfers_gave_up += o.transfers_gave_up;
    transfer_busy_retries += o.transfer_busy_retries;
    op_latency_ns += o.op_latency_ns;
    get_latency_ns += o.get_latency_ns;
    put_latency_ns += o.put_latency_ns;
    scan_latency_ns += o.scan_latency_ns;
    transfer_latency_ns += o.transfer_latency_ns;
    coord.merge(o.coord);
  }
};

template <core::MemoryModel M>
class KvServiceT {
 public:
  // `tms` must hold cfg.num_shards instances, each sized for
  // shard_tvar_words(cfg) + cfg.extra_tvars (see make_service_tms). The
  // service borrows them — tests interpose recording wrappers this way.
  KvServiceT(const ServiceConfig& cfg,
             const std::vector<core::TransactionalMemory*>& tms)
      : cfg_(cfg), router_(cfg.num_shards) {
    OFTM_ASSERT(tms.size() == static_cast<std::size_t>(cfg.num_shards));
    OFTM_ASSERT(cfg.put_fraction + cfg.transfer_fraction + cfg.scan_fraction +
                    cfg.churn_fraction <=
                1.0);
    OFTM_ASSERT(cfg.keys >= 2 && cfg.scan_span >= 1);
    shards_.reserve(tms.size());
    std::vector<ShardT<M>*> raw;
    for (int i = 0; i < cfg.num_shards; ++i) {
      shards_.push_back(std::make_unique<ShardT<M>>(*tms[i], cfg, i));
      raw.push_back(shards_.back().get());
    }
    coordinator_ =
        std::make_unique<TwoPhaseCoordinator<M>>(std::move(raw), router_);
  }

  const ServiceConfig& config() const noexcept { return cfg_; }
  const ShardRouter& router() const noexcept { return router_; }
  ShardT<M>& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  ShardT<M>& shard_for(std::uint64_t key) {
    return shard(router_.shard_of(key));
  }
  TwoPhaseCoordinator<M>& coordinator() { return *coordinator_; }

  // Partition the keyspace through the router and seed every shard.
  // Quiescent; run once before clients.
  void init_and_seed() {
    std::vector<std::vector<std::uint64_t>> owned(
        static_cast<std::size_t>(cfg_.num_shards));
    for (std::uint64_t k = 0; k < cfg_.keys; ++k) {
      owned[static_cast<std::size_t>(router_.shard_of(k))].push_back(k);
    }
    for (int i = 0; i < cfg_.num_shards; ++i) {
      shards_[static_cast<std::size_t>(i)]->init();
      shards_[static_cast<std::size_t>(i)]->seed(
          owned[static_cast<std::size_t>(i)], cfg_.initial_balance);
      // Stats reported after run_clients() should cover the client phase,
      // not the seeding batches.
      shards_[static_cast<std::size_t>(i)]->tm().reset_stats();
    }
  }

  // One client op by explicit kind — the unit the equivalence tests drive
  // deterministically. Returns the op's observable result (get value /
  // scan count / transfer vote) encoded as a Value for easy comparison.
  core::Value do_get(std::uint64_t key) {
    return shard_for(key).get(key).value_or(~core::Value{0});
  }
  void do_put(std::uint64_t key, core::Value delta) {
    shard_for(key).put_add(key, delta);
  }
  Vote do_transfer(std::uint64_t src, std::uint64_t dst, core::Value amount,
                   CoordinatorStats& stats) {
    return coordinator_->transfer(src, dst, amount, stats);
  }
  // Global ordered-index count: per-shard snapshots, summed. Each shard's
  // contribution is one consistent transaction; the union is as atomic as
  // a cross-shard read-only op can be without a global read lock.
  std::uint64_t do_scan_index(std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t n = 0;
    for (auto& s : shards_) n += s->scan_index(lo, hi);
    return n;
  }
  core::Value do_scan_balances(int shard_id, std::uint64_t lo,
                               std::uint64_t hi) {
    return shard(shard_id).scan_balances(lo, hi);
  }
  void do_churn(std::uint64_t key) { shard_for(key).churn_index(key); }

  // Run cfg.clients threads of the mixed workload to completion.
  SvcRunResult run_clients() {
    const int n = cfg_.clients;
    OFTM_ASSERT(n >= 1);
    runtime::SpinBarrier barrier(static_cast<std::uint32_t>(n) + 1);
    std::vector<ClientArena> arenas(static_cast<std::size_t>(n));
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      clients.emplace_back([&, t] {
        client_loop(t, arenas[static_cast<std::size_t>(t)], barrier);
      });
    }
    barrier.arrive_and_wait();
    const auto start = Clock::now();
    barrier.arrive_and_wait();
    const auto stop = Clock::now();
    for (auto& c : clients) c.join();

    SvcRunResult total;
    total.seconds = std::chrono::duration<double>(stop - start).count();
    for (ClientArena& arena : arenas) total.merge_from(arena.local);
    for (auto& s : shards_) {
      const runtime::TxStats st = s->tm().stats();
      total.per_shard_commits.push_back(st.commits);
      total.tm_stats.merge(st);
    }
    return total;
  }

  // Quiescent audit: conservation (every balance ever created is
  // accounted: seeds + committed put deltas), drained lock tables, and
  // structurally sound indices. On failure *why (if given) names the
  // violated check.
  bool audit(std::string* why = nullptr) {
    core::Value actual = 0;
    core::Value put_delta = 0;
    for (auto& s : shards_) {
      actual += s->sum_balances();
      put_delta += s->applied_put_delta();
      if (s->locks_held_quiescent() != 0) {
        if (why) *why = "lock table not drained on shard " +
                        std::to_string(s->id());
        return false;
      }
      if (!s->audit_index_quiescent()) {
        if (why) *why = "index audit failed on shard " +
                        std::to_string(s->id());
        return false;
      }
    }
    const core::Value expected =
        cfg_.keys * cfg_.initial_balance + put_delta;
    if (actual != expected) {
      if (why) {
        *why = "conservation violated: balances sum to " +
               std::to_string(actual) + ", expected " +
               std::to_string(expected);
      }
      return false;
    }
    return true;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct alignas(runtime::kCacheLineSize) ClientArena {
    SvcRunResult local;
  };

  void client_loop(int t, ClientArena& arena, runtime::SpinBarrier& barrier) {
    if (cfg_.pin_threads) runtime::pin_current_thread(t);
    runtime::Xoshiro256 rng(runtime::mix64(
        cfg_.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(t) + 1));
    workload::ZipfSampler zipf(
        cfg_.keys, cfg_.zipf_s,
        runtime::mix64(cfg_.seed + 0x5bd1e995u * (static_cast<std::uint64_t>(t) + 1)));
    SvcRunResult& mine = arena.local;

    barrier.arrive_and_wait();

    const bool timed = cfg_.run_seconds > 0;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(cfg_.run_seconds));
    const double p_put = cfg_.put_fraction;
    const double p_transfer = p_put + cfg_.transfer_fraction;
    const double p_scan = p_transfer + cfg_.scan_fraction;
    const double p_churn = p_scan + cfg_.churn_fraction;

    for (std::uint64_t i = 0; timed || i < cfg_.ops_per_client; ++i) {
      const auto op_start = Clock::now();
      if (timed && op_start >= deadline) break;
      const double r = rng.next_double();

      if (r < p_put) {
        const std::uint64_t key = zipf.next();
        shard_for(key).put_add(key, rng.next_range(8) + 1);
        ++mine.puts;
        ++mine.ops;
        record(mine, mine.put_latency_ns, op_start);
      } else if (r < p_transfer) {
        std::uint64_t src = zipf.next();
        std::uint64_t dst = zipf.next();
        if (src == dst) dst = (dst + 1) % cfg_.keys;
        const core::Value amount = rng.next_range(cfg_.max_transfer) + 1;
        run_transfer(mine, src, dst, amount, timed, deadline);
        record(mine, mine.transfer_latency_ns, op_start);
      } else if (r < p_scan) {
        const std::uint64_t span =
            cfg_.scan_span < cfg_.keys ? cfg_.scan_span : cfg_.keys;
        const std::uint64_t lo = rng.next_range(cfg_.keys - span + 1);
        if (rng.next_bool(0.5)) {
          do_scan_index(lo, lo + span);
        } else {
          do_scan_balances(router_.shard_of(lo), lo, lo + span);
        }
        ++mine.scans;
        ++mine.ops;
        record(mine, mine.scan_latency_ns, op_start);
      } else if (r < p_churn) {
        do_churn(zipf.next());
        ++mine.churns;
        ++mine.ops;
        record(mine, mine.op_latency_ns, op_start);  // churn folds into all
      } else {
        const std::uint64_t key = zipf.next();
        shard_for(key).get(key);
        ++mine.gets;
        ++mine.ops;
        record(mine, mine.get_latency_ns, op_start);
      }
    }

    barrier.arrive_and_wait();
  }

  // Transfer with busy-retry: kBusy means a prepare race was lost, which
  // backoff resolves; the deadline check keeps a pathological hot pair
  // from pinning a timed run past its budget.
  void run_transfer(SvcRunResult& mine, std::uint64_t src, std::uint64_t dst,
                    core::Value amount, bool timed,
                    Clock::time_point deadline) {
    runtime::ExponentialBackoff backoff;
    for (int attempt = 1;; ++attempt) {
      const Vote v = do_transfer(src, dst, amount, mine.coord);
      if (v == Vote::kYes) {
        ++mine.transfers_committed;
        ++mine.ops;
        return;
      }
      if (v == Vote::kInsufficient) {
        ++mine.transfers_insufficient;
        ++mine.ops;
        return;
      }
      ++mine.transfer_busy_retries;
      if (attempt >= cfg_.max_transfer_attempts ||
          (timed && Clock::now() >= deadline)) {
        ++mine.transfers_gave_up;
        return;
      }
      backoff.pause();
    }
  }

  void record(SvcRunResult& mine, runtime::Log2Histogram& kind,
              Clock::time_point op_start) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             op_start)
            .count());
    mine.op_latency_ns.record(ns);
    if (&kind != &mine.op_latency_ns) kind.record(ns);
  }

  ServiceConfig cfg_;
  ShardRouter router_;
  std::vector<std::unique_ptr<ShardT<M>>> shards_;
  std::unique_ptr<TwoPhaseCoordinator<M>> coordinator_;
};

// ---------------------------------------------------------------------------
// Backend-agnostic entry points (service.cpp).

// Build cfg.num_shards TM instances of cfg.backend, each sized for one
// shard's containers plus cfg.extra_tvars scratch t-variables.
std::vector<std::unique_ptr<core::TransactionalMemory>> make_service_tms(
    const ServiceConfig& cfg);

// Full service lifecycle on any recipe: build, seed, run clients, audit.
struct ServiceRun {
  SvcRunResult result;
  bool audit_ok = false;
  std::string audit_why;
};
ServiceRun run_service(const ServiceConfig& cfg);

// Emit one JSON-lines report record for a service run (throughput plus
// per-op-kind latency histograms with the p99/p999 tail fields).
void emit_service_run(std::string_view bench, std::string_view scenario,
                      const ServiceConfig& cfg, const SvcRunResult& result);

}  // namespace oftm::svc
