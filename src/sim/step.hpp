// Steps: the paper's low-level events (Section 2.1).
//
// "At the low-level, we consider processes executing operations on base
// objects (e.g., hardware memory locations). ... pi's events on base
// objects, which we call steps, can be visible to other processes."
//
// Every access to a simulated base object produces one Step in the global
// trace; markers (kMarker) additionally record high-level events
// (transaction begin/commit/abort, operation invocations/responses) so the
// trace is a faithful low-level history in the paper's sense: high-level
// events interleaved with steps.
#pragma once

#include <cstdint>
#include <string>

namespace oftm::sim {

struct Step {
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kCas,       // arg = desired, result = 1 on success
    kExchange,
    kFetchAdd,
    kLocal,     // scheduling point with no shared access (e.g. backoff)
    kMarker,    // high-level event annotation (not a shared-memory step)
  };

  std::uint32_t seq = 0;       // global sequence number
  int pid = -1;                // executing process
  Kind kind = Kind::kLocal;
  const void* obj = nullptr;   // base-object identity (address)
  std::uint64_t arg = 0;       // value written / desired
  std::uint64_t result = 0;    // value read / CAS outcome
  std::uint64_t label = 0;     // caller annotation (transaction id etc.)
  const char* note = nullptr;  // static string for markers

  // True if this step modified the state of its base object — the notion
  // used by the strict disjoint-access-parallelism definition (Def. 12):
  // failed CAS is a read-only access.
  bool modifies() const noexcept {
    switch (kind) {
      case Kind::kStore:
      case Kind::kExchange:
      case Kind::kFetchAdd:
        return true;
      case Kind::kCas:
        return result != 0;
      default:
        return false;
    }
  }

  bool is_shared_access() const noexcept {
    return kind != Kind::kLocal && kind != Kind::kMarker;
  }
};

inline const char* to_string(Step::Kind k) noexcept {
  switch (k) {
    case Step::Kind::kLoad: return "load";
    case Step::Kind::kStore: return "store";
    case Step::Kind::kCas: return "cas";
    case Step::Kind::kExchange: return "xchg";
    case Step::Kind::kFetchAdd: return "faa";
    case Step::Kind::kLocal: return "local";
    case Step::Kind::kMarker: return "marker";
  }
  return "?";
}

}  // namespace oftm::sim
