#include "sim/explorer.hpp"

#include <algorithm>
#include <memory>

#include "runtime/assert.hpp"

namespace oftm::sim {
namespace {

// One scheduling decision: the candidate pids in exploration order and the
// index (into `order`) that was taken.
struct ChoicePoint {
  std::vector<int> order;
  std::size_t taken = 0;
  int preemptions_before = 0;  // preemptions on the path up to this point
};

// Exploration order for a decision: continue the previously running pid if
// possible (fewest preemptions first), then the rest ascending.
std::vector<int> make_order(const std::vector<int>& runnable, int prev_pid) {
  std::vector<int> order;
  order.reserve(runnable.size());
  const bool has_prev =
      prev_pid >= 0 && std::find(runnable.begin(), runnable.end(),
                                 prev_pid) != runnable.end();
  if (has_prev) order.push_back(prev_pid);
  for (int pid : runnable) {
    if (!has_prev || pid != prev_pid) order.push_back(pid);
  }
  return order;
}

bool is_preemption(const std::vector<int>& runnable, int prev_pid,
                   int chosen) {
  if (prev_pid < 0 || chosen == prev_pid) return false;
  return std::find(runnable.begin(), runnable.end(), prev_pid) !=
         runnable.end();
}

}  // namespace

ExplorerResult explore(int nprocs, const SetupFn& setup,
                       const ExplorerOptions& options) {
  ExplorerResult result;
  // Forced prefix of decision indices (into each point's `order`).
  std::vector<std::size_t> forced;

  for (;;) {
    if (result.executions >= options.max_executions) {
      result.exhausted = false;
      return result;
    }

    auto env = std::make_unique<Env>(nprocs);
    auto checker = setup(*env);
    env->start();

    std::vector<ChoicePoint> path;
    std::vector<int> schedule;
    int prev_pid = -1;
    int preemptions = 0;
    bool truncated = false;

    for (;;) {
      std::vector<int> runnable = env->runnable_pids();
      if (runnable.empty()) break;
      if (schedule.size() >=
          static_cast<std::size_t>(options.max_steps_per_run)) {
        truncated = true;
        break;
      }

      ChoicePoint cp;
      cp.order = make_order(runnable, prev_pid);
      cp.preemptions_before = preemptions;
      if (path.size() < forced.size()) {
        cp.taken = forced[path.size()];
        OFTM_ASSERT_MSG(cp.taken < cp.order.size(),
                        "nondeterministic program under replay");
      } else {
        cp.taken = 0;
      }
      const int chosen = cp.order[cp.taken];
      if (is_preemption(runnable, prev_pid, chosen)) ++preemptions;
      path.push_back(cp);
      schedule.push_back(chosen);
      const bool ok = env->step(chosen);
      OFTM_ASSERT(ok);
      prev_pid = chosen;
    }

    ++result.executions;

    std::string failure;
    if (truncated) {
      failure = "execution exceeded max_steps_per_run (possible livelock)";
    } else {
      failure = checker();
    }
    if (!failure.empty()) {
      result.violation_found = true;
      result.violation = std::move(failure);
      result.violating_schedule = std::move(schedule);
      env.reset();
      return result;
    }
    env.reset();  // join simulated threads before the next run

    // Backtrack: deepest choice point with an unexplored alternative that
    // respects the preemption bound.
    bool advanced = false;
    while (!path.empty()) {
      ChoicePoint& cp = path.back();
      std::size_t next = cp.taken + 1;
      while (next < cp.order.size()) {
        // Alternatives beyond index 0 switch away from the previous pid iff
        // order[0] was the previous pid; approximate the preemption count
        // by charging one preemption for any non-first alternative.
        const int alt_preempts = cp.preemptions_before + (next > 0 ? 1 : 0);
        if (options.preemption_bound >= 0 &&
            alt_preempts > options.preemption_bound) {
          ++next;
          continue;
        }
        break;
      }
      if (next < cp.order.size()) {
        cp.taken = next;
        forced.clear();
        forced.reserve(path.size());
        for (const ChoicePoint& p : path) forced.push_back(p.taken);
        advanced = true;
        break;
      }
      path.pop_back();
    }
    if (!advanced) {
      result.exhausted = true;
      return result;
    }
  }
}

}  // namespace oftm::sim
