// The deterministic execution environment: n simulated processes in
// lockstep, scheduled one step at a time by a controller (the test/bench
// thread). This realizes the paper's asynchronous shared-memory model
// (Section 2.1) with full adversarial control:
//
//   * exactly one process runs between two scheduling decisions;
//   * every access to a simulated base object is one *step*, logged into a
//     global low-level history (sim/step.hpp);
//   * a crashed process takes no further steps, ever (crash());
//   * schedules are replayable, enabling the exhaustive explorer.
//
// Mechanics: each simulated process is a real thread parked on a
// grant/park handshake. Access to simulated objects is race-free because
// only the granted thread executes between handshakes and the handshake
// mutex carries the happens-before edges.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "sim/step.hpp"

namespace oftm::sim {

class Env {
 public:
  explicit Env(int nprocs);
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  int nprocs() const noexcept { return static_cast<int>(tasks_.size()); }

  // ---- Setup (before start) -------------------------------------------
  void set_body(int pid, std::function<void()> body);

  // Launch all process threads; each runs its local preamble up to its
  // first shared access and parks there.
  void start();

  // ---- Scheduling (controller side) ------------------------------------
  // Grant one step to pid. Returns false if pid is not currently steppable
  // (done, crashed, or blocked forever).
  bool step(int pid);

  bool runnable(int pid) const;
  std::vector<int> runnable_pids() const;
  bool all_done() const;
  bool done(int pid) const;

  // Crash pid: it is never scheduled again (its thread is unwound silently
  // at env destruction).
  void crash(int pid);
  bool crashed(int pid) const;

  // Convenience drivers. Each returns the number of steps granted.
  std::uint64_t run_round_robin(std::uint64_t max_steps = ~std::uint64_t{0});
  std::uint64_t run_random(std::uint64_t seed,
                           std::uint64_t max_steps = ~std::uint64_t{0});
  // Follow `schedule` (skipping non-runnable pids), then stop.
  std::uint64_t run_schedule(std::span<const int> schedule);
  // Run pid alone until it completes (or max). The paper's
  // "step-contention-free" executions.
  std::uint64_t run_solo(int pid, std::uint64_t max_steps = ~std::uint64_t{0});

  // ---- Task side (called from simulated-process code) ------------------
  static Env* current() noexcept;       // null outside simulated processes
  static int current_pid() noexcept;    // -1 outside

  // Park until granted; then the caller performs its shared access. The
  // passed step (sans result) is appended to the trace; patch_result fills
  // in the outcome afterwards.
  void access_gate(Step s);
  void patch_result(std::uint64_t result);

  // Scheduling point without shared access (backoff/pause).
  void local_yield();

  // Annotate subsequent steps of the calling process (e.g. transaction id).
  void set_label(std::uint64_t label);
  std::uint64_t label_of(int pid) const;

  // Record a high-level event marker (no scheduling, no shared access).
  void marker(const char* note);

  // ---- Trace ------------------------------------------------------------
  const std::vector<Step>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

  void name_object(const void* obj, std::string name);
  std::string object_name(const void* obj) const;
  std::string format_trace() const;

  // ---- Deferred reclamation --------------------------------------------
  // Simulated processes may hold pointers across yields, so frees are
  // deferred to env destruction (runs are finite by construction).
  void defer_free(void* p, void (*deleter)(void*));

  template <typename T>
  void defer_delete(T* p) {
    defer_free(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // True while the env is unwinding crashed/unfinished tasks: simulated
  // accesses become raw (no parking, no logging).
  bool tearing_down() const noexcept { return teardown_; }

 private:
  enum class Phase : std::uint8_t {
    kNotStarted,
    kParked,    // waiting for a grant inside access_gate/local_yield
    kRunning,   // has the floor
    kDone,      // body returned
    kCrashed,   // crash() called; thread still parked until teardown
  };

  struct Task {
    std::function<void()> body;
    std::thread thread;
    Phase phase = Phase::kNotStarted;
    bool granted = false;
    std::uint64_t label = 0;
    std::condition_variable cv;
  };

  void task_main(int pid);
  bool step_locked(std::unique_lock<std::mutex>& lk, int pid);

  mutable std::mutex mu_;
  std::condition_variable controller_cv_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Step> trace_;
  std::map<const void*, std::string> object_names_;
  std::vector<std::pair<void*, void (*)(void*)>> deferred_;
  std::uint32_t next_seq_ = 0;
  bool started_ = false;
  bool teardown_ = false;
};

// Internal exception used to unwind crashed tasks at teardown. Task bodies
// must let it propagate (catch(...) blocks in simulated code should rethrow).
struct CrashUnwind {};

}  // namespace oftm::sim
