// Simulated base objects with std::atomic-compatible API.
//
// Each operation is one *step*: the calling simulated process parks at the
// scheduler's gate, and when granted performs the access and logs it into
// the env's low-level history. Outside a simulation (or during teardown
// unwinding) accesses degrade to plain memory operations, so the same STM
// template code links and runs in both worlds.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "sim/env.hpp"

namespace oftm::sim {

namespace detail {

template <typename T>
std::uint64_t to_word(T v) noexcept {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<std::uint64_t>(v);
  } else if constexpr (std::is_enum_v<T>) {
    return static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<T>>(v));
  } else if constexpr (std::is_integral_v<T> || std::is_same_v<T, bool>) {
    return static_cast<std::uint64_t>(v);
  } else {
    return 0;  // opaque payload: identity is still logged via the object
  }
}

}  // namespace detail

template <typename T>
class SimAtomic {
 public:
  SimAtomic() noexcept : v_{} {}
  explicit SimAtomic(T v) noexcept : v_(v) {}

  SimAtomic(const SimAtomic&) = delete;
  SimAtomic& operator=(const SimAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    gate(Step::Kind::kLoad, 0);
    T v = v_;
    patch(detail::to_word(v));
    return v;
  }

  void store(T v, std::memory_order = std::memory_order_seq_cst) {
    gate(Step::Kind::kStore, detail::to_word(v));
    v_ = v;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order = std::memory_order_seq_cst,
                               std::memory_order = std::memory_order_seq_cst) {
    gate(Step::Kind::kCas, detail::to_word(desired));
    if (v_ == expected) {
      v_ = desired;
      patch(1);
      return true;
    }
    expected = v_;
    patch(0);
    return false;
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst,
                             std::memory_order = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo);
  }

  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    gate(Step::Kind::kExchange, detail::to_word(v));
    T old = v_;
    v_ = v;
    patch(detail::to_word(old));
    return old;
  }

  T fetch_add(T delta, std::memory_order = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    gate(Step::Kind::kFetchAdd, detail::to_word(delta));
    T old = v_;
    v_ = static_cast<T>(v_ + delta);
    patch(detail::to_word(old));
    return old;
  }

  T fetch_sub(T delta, std::memory_order mo = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    return fetch_add(static_cast<T>(T{} - delta), mo);
  }

  // Non-step peek for controller-side assertions (never call from a
  // simulated process: it would hide a step from the history).
  T peek() const noexcept { return v_; }

 private:
  void gate(Step::Kind kind, std::uint64_t arg) const {
    Env* env = Env::current();
    if (env == nullptr || env->tearing_down()) return;
    Step s;
    s.kind = kind;
    s.obj = this;
    s.arg = arg;
    env->access_gate(s);
  }

  void patch(std::uint64_t result) const {
    Env* env = Env::current();
    if (env == nullptr || env->tearing_down()) return;
    env->patch_result(result);
  }

  T v_;
};

}  // namespace oftm::sim
