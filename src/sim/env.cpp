#include "sim/env.hpp"

#include <cinttypes>
#include <cstdio>

#include "runtime/assert.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::sim {
namespace {

struct TlsCtx {
  Env* env = nullptr;
  int pid = -1;
};

thread_local TlsCtx tls_ctx;

}  // namespace

Env::Env(int nprocs) {
  OFTM_ASSERT(nprocs >= 1);
  tasks_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    tasks_.push_back(std::make_unique<Task>());
  }
}

Env::~Env() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    teardown_ = true;
    for (auto& t : tasks_) {
      if (t->phase == Phase::kParked || t->phase == Phase::kCrashed) {
        t->granted = true;
        t->cv.notify_all();
      }
    }
  }
  for (auto& t : tasks_) {
    if (t->thread.joinable()) t->thread.join();
  }
  // Deferred frees may enqueue more deferred frees (e.g. a locator's
  // destructor retiring its transaction descriptor); loop to a fixed point.
  while (!deferred_.empty()) {
    auto batch = std::move(deferred_);
    deferred_.clear();
    for (auto& [p, del] : batch) del(p);
  }
}

void Env::set_body(int pid, std::function<void()> body) {
  OFTM_ASSERT(!started_);
  OFTM_ASSERT(pid >= 0 && pid < nprocs());
  tasks_[static_cast<std::size_t>(pid)]->body = std::move(body);
}

void Env::task_main(int pid) {
  tls_ctx.env = this;
  tls_ctx.pid = pid;
  Task& t = *tasks_[static_cast<std::size_t>(pid)];
  {
    // Park at the entry gate; start() grants once so the local preamble up
    // to the first shared access runs synchronously inside start().
    std::unique_lock<std::mutex> lk(mu_);
    t.phase = Phase::kParked;
    controller_cv_.notify_all();
    t.cv.wait(lk, [&] { return t.granted; });
    t.granted = false;
    if (teardown_) {
      t.phase = Phase::kDone;
      controller_cv_.notify_all();
      return;
    }
    t.phase = Phase::kRunning;
  }
  try {
    if (t.body) t.body();
  } catch (const CrashUnwind&) {
    // expected unwind path for crashed tasks at teardown
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    t.phase = Phase::kDone;
    controller_cv_.notify_all();
  }
}

void Env::start() {
  OFTM_ASSERT(!started_);
  started_ = true;
  for (int pid = 0; pid < nprocs(); ++pid) {
    Task& t = *tasks_[static_cast<std::size_t>(pid)];
    t.thread = std::thread([this, pid] { task_main(pid); });
    // Wait for entry park, then run the preamble up to the first access.
    std::unique_lock<std::mutex> lk(mu_);
    controller_cv_.wait(lk, [&] { return t.phase == Phase::kParked; });
    t.granted = true;
    t.phase = Phase::kRunning;
    t.cv.notify_all();
    controller_cv_.wait(lk, [&] { return t.phase != Phase::kRunning; });
  }
}

bool Env::step_locked(std::unique_lock<std::mutex>& lk, int pid) {
  Task& t = *tasks_[static_cast<std::size_t>(pid)];
  if (t.phase != Phase::kParked) return false;
  t.granted = true;
  t.phase = Phase::kRunning;
  t.cv.notify_all();
  controller_cv_.wait(lk, [&] { return t.phase != Phase::kRunning; });
  return true;
}

bool Env::step(int pid) {
  OFTM_ASSERT(pid >= 0 && pid < nprocs());
  std::unique_lock<std::mutex> lk(mu_);
  return step_locked(lk, pid);
}

bool Env::runnable(int pid) const {
  std::unique_lock<std::mutex> lk(mu_);
  return tasks_[static_cast<std::size_t>(pid)]->phase == Phase::kParked;
}

std::vector<int> Env::runnable_pids() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<int> out;
  for (int i = 0; i < nprocs(); ++i) {
    if (tasks_[static_cast<std::size_t>(i)]->phase == Phase::kParked) {
      out.push_back(i);
    }
  }
  return out;
}

bool Env::all_done() const {
  std::unique_lock<std::mutex> lk(mu_);
  for (const auto& t : tasks_) {
    if (t->phase != Phase::kDone && t->phase != Phase::kCrashed) return false;
  }
  return true;
}

bool Env::done(int pid) const {
  std::unique_lock<std::mutex> lk(mu_);
  return tasks_[static_cast<std::size_t>(pid)]->phase == Phase::kDone;
}

void Env::crash(int pid) {
  std::unique_lock<std::mutex> lk(mu_);
  Task& t = *tasks_[static_cast<std::size_t>(pid)];
  OFTM_ASSERT_MSG(t.phase != Phase::kRunning,
                  "crash() must be called between steps");
  if (t.phase == Phase::kParked) t.phase = Phase::kCrashed;
}

bool Env::crashed(int pid) const {
  std::unique_lock<std::mutex> lk(mu_);
  return tasks_[static_cast<std::size_t>(pid)]->phase == Phase::kCrashed;
}

std::uint64_t Env::run_round_robin(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && !all_done()) {
    bool any = false;
    for (int pid = 0; pid < nprocs() && steps < max_steps; ++pid) {
      if (step(pid)) {
        ++steps;
        any = true;
      }
    }
    if (!any) break;  // everything done or crashed
  }
  return steps;
}

std::uint64_t Env::run_random(std::uint64_t seed, std::uint64_t max_steps) {
  runtime::Xoshiro256 rng(seed);
  std::uint64_t steps = 0;
  while (steps < max_steps) {
    const std::vector<int> r = runnable_pids();
    if (r.empty()) break;
    const int pid = r[rng.next_range(r.size())];
    if (step(pid)) ++steps;
  }
  return steps;
}

std::uint64_t Env::run_schedule(std::span<const int> schedule) {
  std::uint64_t steps = 0;
  for (int pid : schedule) {
    if (pid >= 0 && pid < nprocs() && step(pid)) ++steps;
  }
  return steps;
}

std::uint64_t Env::run_solo(int pid, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && step(pid)) ++steps;
  return steps;
}

Env* Env::current() noexcept { return tls_ctx.env; }
int Env::current_pid() noexcept { return tls_ctx.pid; }

void Env::access_gate(Step s) {
  std::unique_lock<std::mutex> lk(mu_);
  if (teardown_) return;  // raw access during unwind; not a step
  Task& t = *tasks_[static_cast<std::size_t>(tls_ctx.pid)];
  t.phase = Phase::kParked;
  controller_cv_.notify_all();
  t.cv.wait(lk, [&] { return t.granted; });
  t.granted = false;
  if (teardown_) throw CrashUnwind{};
  t.phase = Phase::kRunning;
  s.seq = next_seq_++;
  s.pid = tls_ctx.pid;
  s.label = t.label;
  trace_.push_back(s);
}

void Env::patch_result(std::uint64_t result) {
  std::unique_lock<std::mutex> lk(mu_);
  if (teardown_ || trace_.empty()) return;
  trace_.back().result = result;
}

void Env::local_yield() {
  std::unique_lock<std::mutex> lk(mu_);
  if (teardown_) return;
  Task& t = *tasks_[static_cast<std::size_t>(tls_ctx.pid)];
  t.phase = Phase::kParked;
  controller_cv_.notify_all();
  t.cv.wait(lk, [&] { return t.granted; });
  t.granted = false;
  if (teardown_) throw CrashUnwind{};
  t.phase = Phase::kRunning;
}

void Env::set_label(std::uint64_t label) {
  std::unique_lock<std::mutex> lk(mu_);
  tasks_[static_cast<std::size_t>(tls_ctx.pid)]->label = label;
}

std::uint64_t Env::label_of(int pid) const {
  std::unique_lock<std::mutex> lk(mu_);
  return tasks_[static_cast<std::size_t>(pid)]->label;
}

void Env::marker(const char* note) {
  std::unique_lock<std::mutex> lk(mu_);
  if (teardown_) return;
  Step s;
  s.kind = Step::Kind::kMarker;
  s.seq = next_seq_++;
  s.pid = tls_ctx.env == this ? tls_ctx.pid : -1;
  s.label = s.pid >= 0 ? tasks_[static_cast<std::size_t>(s.pid)]->label : 0;
  s.note = note;
  trace_.push_back(s);
}

void Env::name_object(const void* obj, std::string name) {
  std::unique_lock<std::mutex> lk(mu_);
  object_names_[obj] = std::move(name);
}

std::string Env::object_name(const void* obj) const {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = object_names_.find(obj);
  if (it != object_names_.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "obj@%p", obj);
  return buf;
}

std::string Env::format_trace() const {
  std::string out;
  // Copy under lock, format without (object_name relocks).
  std::vector<Step> steps;
  {
    std::unique_lock<std::mutex> lk(mu_);
    steps = trace_;
  }
  char line[256];
  for (const Step& s : steps) {
    if (s.kind == Step::Kind::kMarker) {
      std::snprintf(line, sizeof(line), "[%4u] p%d  -- %s (label=%" PRIu64
                    ")\n",
                    s.seq, s.pid, s.note ? s.note : "", s.label);
    } else {
      std::snprintf(line, sizeof(line),
                    "[%4u] p%d  %-5s %-24s arg=%" PRIu64 " res=%" PRIu64
                    " label=%" PRIu64 "\n",
                    s.seq, s.pid, to_string(s.kind),
                    object_name(s.obj).c_str(), s.arg, s.result, s.label);
    }
    out += line;
  }
  return out;
}

void Env::defer_free(void* p, void (*deleter)(void*)) {
  std::unique_lock<std::mutex> lk(mu_);
  deferred_.emplace_back(p, deleter);
}

}  // namespace oftm::sim
