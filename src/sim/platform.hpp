// SimPlatform: instantiates the STM backends over simulated base objects.
// See core/platform.hpp for the policy contract.
#pragma once

#include "sim/env.hpp"
#include "sim/sim_atomic.hpp"

namespace oftm::sim {

struct SimReclaimer {
  // Epochs are unnecessary under the lockstep scheduler; lifetimes extend to
  // env teardown instead (runs are finite).
  struct Guard {
    Guard() noexcept = default;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  template <typename T>
  static void retire(T* p) {
    if (Env* env = Env::current()) {
      env->defer_delete(p);
    } else {
      delete p;
    }
  }
};

// Deterministic "backoff": a plain scheduling point. Keeps simulated
// executions a pure function of the schedule (no RNG), which the explorer
// depends on.
struct SimBackoff {
  void pause() {
    if (Env* env = Env::current(); env && !env->tearing_down()) {
      env->local_yield();
    }
  }
  void reset() noexcept {}
};

struct SimPlatform {
  template <typename T>
  using Atomic = SimAtomic<T>;

  using Reclaimer = SimReclaimer;

  using Backoff = SimBackoff;

  // Backoff inside a simulation must cede the floor, or the lockstep
  // scheduler would spin forever granting the waiter.
  static void pause() {
    if (Env* env = Env::current(); env && !env->tearing_down()) {
      env->local_yield();
    }
  }

  // Simulated process id, not the host-thread id: contention managers and
  // per-thread tables inside the backends must be indexed by the paper's
  // process identity.
  static int thread_id() {
    const int pid = Env::current_pid();
    return pid >= 0 ? pid : 0;
  }

  static constexpr bool kIsSimulation = true;
};

}  // namespace oftm::sim
