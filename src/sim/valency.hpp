// Valency analysis of consensus protocols over abstract fo-consensus
// (Theorem 9 / Corollary 11 experiments).
//
// The object model mirrors how the paper's Theorem-9 proof uses fo-consensus
// as a base object: a propose spans an invocation and a response event (the
// proof's bracketed sequences [c.propose(pa, ⊥), c.propose(pb, ⊥)] interleave
// these events), and the abort nondeterminism available to the adversary is
// a configurable semantics:
//
//   kUnrestrictedOverlap — a propose may abort iff another process executed
//     an event on the same object inside its invocation/response window.
//     This is the full power granted by fo-obstruction-freedom alone (the
//     only abort restriction stated in Section 4.1), and exactly the move
//     the proof's histories E4/E5 rely on.
//
//   kFailOnly — a propose may abort only if a *concurrent propose took
//     effect* (registered a value) during its window. A strictly stronger
//     object; the natural reading of "fail-only" in which an abort implies
//     somebody else succeeded.
//
// The analyzed protocol is the canonical retry loop (announce is implicit in
// the register D; each process proposes its input, writes the decision to D
// on success, re-checks D and retries on abort) — the structure of
// Algorithm 1's consumer and of every consensus-from-fo-consensus usage in
// the paper.
//
// The analyzer exhaustively builds the reachable state graph and reports:
//   * livelock cycles (infinite executions where stepping processes never
//     decide) — wait-freedom violations, the paper's Theorem 9 outcome;
//   * whether every maximal execution decides (the possibility outcome);
//   * valency of every state (the set of values decidable from it), which
//     mechanizes the proof's Claim 10 on this protocol: does every bivalent
//     state have a bivalent successor?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oftm::sim::valency {

enum class AbortSemantics {
  kUnrestrictedOverlap,
  kFailOnly,
};

// Protocol families analyzed (the impossibility must not be an artifact of
// one particular retry shape):
//   kRetryOwn  — every propose carries the process's own input;
//   kAdoptMin  — processes announce their inputs in registers first; after
//     an aborted propose they rescan the announcements and adopt the
//     minimum (a natural "helping" strategy — which the analysis shows does
//     NOT defeat the Theorem-9 adversary).
enum class Protocol {
  kRetryOwn,
  kAdoptMin,
};

struct AnalysisOptions {
  int nprocs = 3;                       // 2..4
  AbortSemantics semantics = AbortSemantics::kUnrestrictedOverlap;
  Protocol protocol = Protocol::kRetryOwn;
  std::uint64_t max_states = 2'000'000;  // exploration guard
};

struct Analysis {
  std::uint64_t states = 0;
  bool complete = false;            // full reachable graph explored
  bool agreement_violated = false;  // sanity: should never be true
  bool validity_violated = false;   // sanity: should never be true

  // Liveness outcomes.
  bool livelock_cycle_found = false;
  std::vector<std::string> livelock_witness;  // moves reaching + looping

  // True iff the graph is cycle-free and every terminal state has all
  // processes decided: wait-free consensus achieved against this adversary.
  bool always_decides = false;

  // Claim-10 mechanization.
  std::uint64_t bivalent_states = 0;
  // Every bivalent state has at least one bivalent successor (the adversary
  // can maintain bivalence forever — Theorem 9's engine).
  bool bivalence_always_extendable = false;
};

Analysis analyze_retry_protocol(const AnalysisOptions& options);

std::string to_string(AbortSemantics s);

}  // namespace oftm::sim::valency
