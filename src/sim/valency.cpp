#include "sim/valency.hpp"

#include <array>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "runtime/assert.hpp"

namespace oftm::sim::valency {
namespace {

constexpr int kMaxProcs = 4;

enum class Phase : std::uint8_t {
  kCheckD = 0,  // about to read register D
  kInv,         // about to execute propose invocation event on F
  kResp,        // about to execute propose response event on F
  kWriteD,      // about to write its decision to register D
  kDecided,     // returned (absorbing)
  kAnnounce,    // kAdoptMin: about to write its input to A[i]
  kScan,        // kAdoptMin: about to rescan announcements after an abort
};

struct ProcState {
  Phase phase = Phase::kCheckD;
  bool window = false;      // propose open (between inv and resp)
  bool saw_event = false;   // another process executed an F event in window
  bool saw_effect = false;  // a concurrent propose registered in window
  std::uint8_t carry = 0;   // value to write to D / decided value
  std::uint8_t est = 0;     // current proposal value (kAdoptMin)
};

struct VmState {
  std::uint8_t d = 0;  // register D; 0 encodes ⊥, inputs are 1..n
  bool f_decided = false;
  std::uint8_t f_value = 0;
  std::uint8_t announced = 0;  // bitmask: A[i] written (value is input i+1)
  std::array<ProcState, kMaxProcs> procs{};
  std::uint8_t n = 3;

  bool all_decided() const {
    for (int i = 0; i < n; ++i) {
      if (procs[static_cast<std::size_t>(i)].phase != Phase::kDecided) {
        return false;
      }
    }
    return true;
  }

  std::uint64_t key() const {
    std::uint64_t k = d;                       // 3 bits
    k = (k << 1) | (f_decided ? 1u : 0u);      // 1
    k = (k << 3) | f_value;                    // 3
    k = (k << 4) | announced;                  // 4
    for (int i = 0; i < kMaxProcs; ++i) {
      const ProcState& p = procs[static_cast<std::size_t>(i)];
      k = (k << 3) | static_cast<std::uint64_t>(p.phase);
      k = (k << 1) | (p.window ? 1u : 0u);
      k = (k << 1) | (p.saw_event ? 1u : 0u);
      k = (k << 1) | (p.saw_effect ? 1u : 0u);
      k = (k << 3) | p.carry;
      k = (k << 3) | p.est;                    // 12 bits per proc
    }
    return k;  // 11 + 4*12 = 59 bits
  }
};

struct Move {
  VmState next;
  std::string desc;
};

std::string move_desc(int pid, const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "p%d: %s", pid, what);
  return buf;
}

// Record an F event by `actor`: every *other* process with an open window
// saw step contention on F.
void broadcast_f_event(VmState& s, int actor, bool is_effect) {
  for (int i = 0; i < s.n; ++i) {
    if (i == actor) continue;
    ProcState& p = s.procs[static_cast<std::size_t>(i)];
    if (p.window) {
      p.saw_event = true;
      if (is_effect) p.saw_effect = true;
    }
  }
}

std::vector<Move> successors(const VmState& s, AbortSemantics sem) {
  std::vector<Move> out;
  for (int i = 0; i < s.n; ++i) {
    const ProcState& p = s.procs[static_cast<std::size_t>(i)];
    // kRetryOwn: always propose the own input. kAdoptMin: propose est.
    const std::uint8_t input =
        p.est != 0 ? p.est : static_cast<std::uint8_t>(i + 1);
    switch (p.phase) {
      case Phase::kDecided:
        break;
      case Phase::kAnnounce: {
        VmState t = s;
        ProcState& q = t.procs[static_cast<std::size_t>(i)];
        t.announced = static_cast<std::uint8_t>(t.announced | (1u << i));
        q.est = static_cast<std::uint8_t>(i + 1);
        q.phase = Phase::kCheckD;
        out.push_back({t, move_desc(i, "announce A[i]")});
        break;
      }
      case Phase::kScan: {
        VmState t = s;
        ProcState& q = t.procs[static_cast<std::size_t>(i)];
        std::uint8_t best = q.est;
        for (int j = 0; j < s.n; ++j) {
          if ((s.announced & (1u << j)) != 0) {
            const auto v = static_cast<std::uint8_t>(j + 1);
            if (best == 0 || v < best) best = v;
          }
        }
        q.est = best;
        q.phase = Phase::kCheckD;
        out.push_back({t, move_desc(i, "scan announcements; adopt min")});
        break;
      }
      case Phase::kCheckD: {
        VmState t = s;
        ProcState& q = t.procs[static_cast<std::size_t>(i)];
        if (s.d != 0) {
          q.carry = s.d;
          q.phase = Phase::kDecided;
          out.push_back({t, move_desc(i, "read D -> decide")});
        } else {
          q.phase = Phase::kInv;
          out.push_back({t, move_desc(i, "read D = bottom")});
        }
        break;
      }
      case Phase::kInv: {
        VmState t = s;
        ProcState& q = t.procs[static_cast<std::size_t>(i)];
        q.window = true;
        q.saw_event = false;
        q.saw_effect = false;
        q.phase = Phase::kResp;
        broadcast_f_event(t, i, /*is_effect=*/false);
        out.push_back({t, move_desc(i, "F.propose invocation")});
        break;
      }
      case Phase::kResp: {
        // The response event itself is an F event visible to open windows.
        const bool abort_legal =
            sem == AbortSemantics::kUnrestrictedOverlap
                ? p.saw_event
                : p.saw_effect;  // kFailOnly: a concurrent propose registered
        // Where an aborted propose resumes: kAdoptMin rescans first.
        const Phase after_abort =
            p.est != 0 ? Phase::kScan : Phase::kCheckD;
        auto close = [&](VmState& t) {
          ProcState& q = t.procs[static_cast<std::size_t>(i)];
          q.window = false;
          broadcast_f_event(t, i, /*is_effect=*/false);
          return &q;
        };
        if (s.f_decided) {
          {
            VmState t = s;
            ProcState* q = close(t);
            q->carry = s.f_value;
            q->phase = Phase::kWriteD;
            out.push_back({t, move_desc(i, "F.propose -> decided value")});
          }
          if (abort_legal) {
            VmState t = s;
            ProcState* q = close(t);
            q->phase = after_abort;
            out.push_back({t, move_desc(i, "F.propose -> abort")});
          }
        } else {
          {
            // Register own value: this is the effectful event.
            VmState t = s;
            ProcState* q = close(t);
            t.f_decided = true;
            t.f_value = input;
            q->carry = input;
            q->phase = Phase::kWriteD;
            // Registration is an *effect* for concurrently open windows.
            for (int j = 0; j < t.n; ++j) {
              if (j == i) continue;
              ProcState& r = t.procs[static_cast<std::size_t>(j)];
              if (r.window) r.saw_effect = true;
            }
            out.push_back({t, move_desc(i, "F.propose -> register own")});
          }
          if (abort_legal) {
            VmState t = s;
            ProcState* q = close(t);
            q->phase = after_abort;
            out.push_back({t, move_desc(i, "F.propose -> abort")});
          }
        }
        break;
      }
      case Phase::kWriteD: {
        VmState t = s;
        ProcState& q = t.procs[static_cast<std::size_t>(i)];
        t.d = q.carry;
        q.phase = Phase::kDecided;
        out.push_back({t, move_desc(i, "write D; decide")});
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string to_string(AbortSemantics s) {
  return s == AbortSemantics::kUnrestrictedOverlap ? "unrestricted-overlap"
                                                   : "fail-only";
}

Analysis analyze_retry_protocol(const AnalysisOptions& options) {
  OFTM_ASSERT(options.nprocs >= 2 && options.nprocs <= kMaxProcs);
  Analysis result;

  VmState init;
  init.n = static_cast<std::uint8_t>(options.nprocs);
  if (options.protocol == Protocol::kAdoptMin) {
    for (int i = 0; i < init.n; ++i) {
      init.procs[static_cast<std::size_t>(i)].phase = Phase::kAnnounce;
    }
  }

  // ---- Phase 1: build the reachable graph (BFS). ------------------------
  struct Node {
    VmState state;
    std::vector<std::pair<std::uint32_t, std::string>> succ;  // idx, move
  };
  std::vector<Node> nodes;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::deque<std::uint32_t> frontier;

  auto intern = [&](const VmState& s) -> std::uint32_t {
    const std::uint64_t k = s.key();
    auto it = index.find(k);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(Node{s, {}});
    index.emplace(k, id);
    frontier.push_back(id);
    return id;
  };

  intern(init);
  while (!frontier.empty()) {
    if (nodes.size() > options.max_states) {
      result.states = nodes.size();
      result.complete = false;
      return result;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    const VmState s = nodes[id].state;  // copy: nodes may reallocate

    // Consensus safety sanity checks on this state.
    std::uint8_t decided_value = 0;
    for (int i = 0; i < s.n; ++i) {
      const ProcState& p = s.procs[static_cast<std::size_t>(i)];
      if (p.phase == Phase::kDecided) {
        if (p.carry == 0 || p.carry > s.n) result.validity_violated = true;
        if (decided_value == 0) {
          decided_value = p.carry;
        } else if (decided_value != p.carry) {
          result.agreement_violated = true;
        }
      }
    }

    for (Move& m : successors(s, options.semantics)) {
      const std::uint32_t t = intern(m.next);
      nodes[id].succ.emplace_back(t, std::move(m.desc));
    }
  }
  result.states = nodes.size();
  result.complete = true;

  // ---- Phase 2: cycle detection (iterative tri-color DFS). --------------
  // Any cycle is a livelock: kDecided is absorbing and emits no moves, so
  // every move on a cycle is a step of a process that never decides.
  {
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::vector<std::uint8_t> color(nodes.size(), kWhite);
    struct Frame {
      std::uint32_t node;
      std::size_t next_edge = 0;
    };
    std::vector<Frame> stack;

    stack.push_back({0, 0});
    color[0] = kGrey;
    while (!stack.empty() && !result.livelock_cycle_found) {
      Frame& f = stack.back();
      if (f.next_edge < nodes[f.node].succ.size()) {
        auto [t, desc] = nodes[f.node].succ[f.next_edge];
        ++f.next_edge;
        if (color[t] == kGrey) {
          // Found a cycle: witness = path from the first occurrence of t.
          result.livelock_cycle_found = true;
          std::size_t start = 0;
          for (std::size_t j = 0; j < stack.size(); ++j) {
            if (stack[j].node == t) {
              start = j;
              break;
            }
          }
          for (std::size_t j = start; j + 1 < stack.size(); ++j) {
            // Move taken from stack[j] to stack[j+1] is edge next_edge-1.
            const auto& edges = nodes[stack[j].node].succ;
            const auto& e = edges[stack[j].next_edge - 1];
            result.livelock_witness.push_back(e.second);
          }
          result.livelock_witness.push_back(desc + "  [closes cycle]");
        } else if (color[t] == kWhite) {
          color[t] = kGrey;
          stack.push_back({t, 0});
        }
      } else {
        color[f.node] = kBlack;
        stack.pop_back();
      }
    }

    if (!result.livelock_cycle_found) {
      bool terminals_ok = true;
      for (const Node& nd : nodes) {
        if (nd.succ.empty() && !nd.state.all_decided()) {
          terminals_ok = false;
          break;
        }
      }
      result.always_decides = terminals_ok;
    }
  }

  // ---- Phase 3: valency sets (fixpoint over the possibly-cyclic graph). --
  {
    std::vector<std::uint8_t> vals(nodes.size(), 0);  // bitmask of values
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (int p = 0; p < nodes[i].state.n; ++p) {
        const ProcState& ps = nodes[i].state.procs[static_cast<std::size_t>(p)];
        if (ps.phase == Phase::kDecided) {
          vals[i] |= static_cast<std::uint8_t>(1u << ps.carry);
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = nodes.size(); i-- > 0;) {
        std::uint8_t acc = vals[i];
        for (const auto& [t, desc] : nodes[i].succ) {
          (void)desc;
          acc |= vals[t];
        }
        if (acc != vals[i]) {
          vals[i] = acc;
          changed = true;
        }
      }
    }

    auto popcount = [](std::uint8_t m) { return __builtin_popcount(m); };
    bool all_extendable = true;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (popcount(vals[i]) < 2) continue;
      ++result.bivalent_states;
      bool has_bivalent_succ = false;
      for (const auto& [t, desc] : nodes[i].succ) {
        (void)desc;
        if (popcount(vals[t]) >= 2) {
          has_bivalent_succ = true;
          break;
        }
      }
      if (!has_bivalent_succ) all_extendable = false;
    }
    result.bivalence_always_extendable =
        result.bivalent_states > 0 && all_extendable;
  }

  return result;
}

}  // namespace oftm::sim::valency
