// Stateless exhaustive schedule exploration (CHESS-style).
//
// Re-runs a deterministic simulated program under every schedule (up to
// configurable bounds), checking a user property after each complete
// execution. Used to model-check the STM backends' serializability /
// opacity / obstruction-freedom on small scenarios, where "small" still
// means thousands of distinct interleavings.
//
// Requirements on the program: deterministic given the schedule (no
// randomness, no wall-clock time) — all backends in this repo satisfy this
// when driven with deterministic contention managers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/env.hpp"

namespace oftm::sim {

struct ExplorerOptions {
  // Stop one execution after this many scheduled steps (runaway guard).
  std::uint64_t max_steps_per_run = 20000;
  // Stop exploring after this many complete executions.
  std::uint64_t max_executions = 50000;
  // Iterative context bounding: schedules with more than this many
  // preemptions (switching away from a still-runnable process) are pruned.
  // -1 = unbounded (full DFS).
  int preemption_bound = -1;
};

struct ExplorerResult {
  std::uint64_t executions = 0;
  bool exhausted = false;       // true if the whole (bounded) space was covered
  bool violation_found = false;
  std::string violation;        // first property failure message
  std::vector<int> violating_schedule;
};

// `setup` populates a fresh Env (set_body for each pid) and returns the
// property checker to run after the execution completes; the checker
// returns an empty string on success or a diagnostic on failure.
using SetupFn = std::function<std::function<std::string()>(Env&)>;

ExplorerResult explore(int nprocs, const SetupFn& setup,
                       const ExplorerOptions& options = {});

}  // namespace oftm::sim
