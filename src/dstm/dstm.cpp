#include "dstm/dstm.hpp"

#include "sim/platform.hpp"

// Explicit instantiations: every translation unit that uses these platforms
// links against the same generated code, keeping build times and code size
// in check.
namespace oftm::dstm {

template class Dstm<core::HwPlatform>;
template class Dstm<sim::SimPlatform>;

}  // namespace oftm::dstm
