// DSTM — the paper's "typical OFTM" (Section 1), reproduced in full.
//
// Design, following Herlihy, Luchangco, Moir & Scherer [18] as summarized by
// the paper:
//
//   * Every t-variable points (via one CAS word) to a *locator*:
//     { owner transaction descriptor, old value, new value }.
//   * To update x, a transaction acquires exclusive-but-revocable ownership
//     by CASing in a fresh locator whose owner is its own descriptor.
//     "From this moment on, x contains the information that it is owned by
//     Ti and points to the transaction descriptor of Ti."
//   * The current value of x resolves through the owner's status:
//     committed -> new value, aborted/active -> old value.
//   * A transaction meeting a live owner consults the contention manager;
//     it may back off "to give Ti a chance, but eventually Tk must be able
//     to abort Ti ... without any interaction with Ti" — the abort is a CAS
//     on the victim's status field.
//   * Reads are invisible: the reader records (t-var, locator, value) and
//     revalidates its whole read set on every subsequent open and at commit
//     ("the state of y is re-read to ensure that Ti still observes a
//     consistent state"), which also gives opacity.
//   * Commit is a single CAS of the own status from active to committed.
//
// Obstruction-freedom (Definition 2) holds: a transaction is forcefully
// aborted only by another process's status CAS or by failed validation,
// both of which require steps by other processes inside its lifetime. The
// sim-instantiated test suite checks this against the step-contention
// oracle.
//
// Non-obvious liveness/memory points:
//   * Locators are immutable except `new_val`, written only by the owner
//     before its commit CAS (release) and read by others only after an
//     acquire load of status == committed.
//   * Replaced locators are retired through the platform reclaimer (EBR on
//     hardware); a locator holds a reference on its owner descriptor, so a
//     descriptor dies only after every locator naming it is reclaimed and
//     its transaction handle is gone.
//   * This is also where the paper's Theorem 13 bites: the descriptor is a
//     base object shared by *all* t-variables a transaction touched —
//     transactions on disjoint t-variable sets CAS the same descriptor
//     status word. The DAP instrumentation counts exactly those conflicts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cm/contention_manager.hpp"
#include "core/platform.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::dstm {

struct DstmOptions {
  // Ablation (DESIGN.md §6): when a resolver finds a locator whose owner is
  // already completed, it may collapse it to an ownerless value locator,
  // shortening descriptor lifetimes at the cost of extra CASes.
  bool eager_collapse = false;
  // Ablation: visible reads. Readers additionally register their descriptor
  // in a bounded per-t-variable reader table; an acquiring writer aborts
  // every registered live reader before installing its locator, so doomed
  // readers stop early instead of running to a failed validation. Purely an
  // early-abort optimization: invisible-read validation stays on, so safety
  // is unaffected even when the table overflows (reads fall back to
  // invisible) or a racing reader registers after the writer's sweep. The
  // original DSTM [18] offered the same switch; it also adds reader-side
  // base-object traffic per t-variable — measured by the DAP experiments.
  bool visible_reads = false;
};

template <typename P>
class Dstm final : public core::TransactionalMemory,
                   private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  struct TxDesc {
    Atomic<core::TxStatus> status{core::TxStatus::kActive};
    Atomic<std::uint32_t> refs{1};  // one reference held by the Txn handle
    core::TxId id = 0;

    void ref() { refs.fetch_add(1, std::memory_order_relaxed); }
    // acq_rel: the reclaiming thread must observe all writes made through
    // other references. Descriptors are *retired*, not deleted: besides
    // locators, the visible-reads reader tables hold raw descriptor
    // pointers that concurrent writers dereference under an epoch guard.
    static void unref(TxDesc* d) {
      if (d->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        P::Reclaimer::template retire<TxDesc>(d);
      }
    }
  };

  struct Locator {
    TxDesc* const owner;  // null => value locator (resolved constant)
    const core::Value old_val;
    Atomic<core::Value> new_val;

    Locator(TxDesc* o, core::Value oldv, core::Value newv)
        : owner(o), old_val(oldv), new_val(newv) {
      if (owner != nullptr) owner->ref();
    }
    ~Locator() {
      if (owner != nullptr) TxDesc::unref(owner);
    }
  };

  class Txn final : public core::Transaction {
   public:
    Txn() = default;

    ~Txn() override {
      // Pool teardown (TM destruction): drop the handle's descriptor
      // reference; locators still naming it keep it alive via their own.
      if (desc_ != nullptr) TxDesc::unref(desc_);
    }

    core::TxStatus status() const override {
      return desc_->status.load(std::memory_order_acquire);
    }
    core::TxId id() const override { return desc_->id; }

   private:
    friend class Dstm;
    struct ReadEntry {
      core::TVarId x;
      const Locator* seen;  // identity only; never dereferenced later
      core::Value val;
    };
    struct WriteEntry {
      core::TVarId x;
      Locator* loc;  // owned by the slot once installed
    };
    struct VisibleEntry {
      core::TVarId x;
      std::size_t slot_index;
    };

    // An abandoned live transaction is aborted so it cannot be committed
    // through a stale descriptor by a late status read.
    void handle_released() noexcept override {
      if (tm_ != nullptr) tm_->finish_descriptor(*this);
      core::Transaction::handle_released();
    }

    Dstm* tm_ = nullptr;
    TxDesc* desc_ = nullptr;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    std::vector<VisibleEntry> visible_;  // reader-table registrations
    int cm_tid_ = 0;
  };

  using Session = core::PooledTmSession<Txn>;

  Dstm(std::size_t num_tvars, std::shared_ptr<cm::ContentionManager> cm,
       DstmOptions options = {})
      : cm_(std::move(cm)), options_(options), num_tvars_(num_tvars) {
    OFTM_ASSERT(cm_ != nullptr);
    slots_ = std::make_unique<Slot[]>(num_tvars);
    for (std::size_t i = 0; i < num_tvars; ++i) {
      slots_[i].value.store(new Locator(nullptr, 0, 0),
                            std::memory_order_relaxed);
    }
  }

  ~Dstm() override {
    // Destruction implies quiescence: free the linked locators directly.
    for (std::size_t i = 0; i < num_tvars_; ++i) {
      delete slots_[i].value.load(std::memory_order_relaxed);
    }
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t, core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);

    // The guard must cover the own-write scan too, and must be entered
    // BEFORE the status check: a displacing writer force-aborts us first
    // and only then retires our locator, so observing kActive inside the
    // pinned epoch proves the retire (if any) lands after the pin — the
    // new_val dereference below cannot race reclamation.
    [[maybe_unused]] typename P::Reclaimer::Guard guard;
    if (tx.status() != core::TxStatus::kActive) return std::nullopt;

    // Own pending write?
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      for (const auto& w : tx.writes_) {
        if (w.x == x) return w.loc->new_val.load(std::memory_order_relaxed);
      }
      // Cached snapshot read? (Repeating it keeps the snapshot consistent.)
      for (const auto& r : tx.reads_) {
        if (r.x == x) return r.val;
      }
    }

    typename P::Backoff backoff;
    int attempt = 0;
    for (;;) {
      Locator* loc = slots_[x].value.load(std::memory_order_acquire);
      core::Value value;
      switch (resolve(tx, x, loc, attempt, value)) {
        case Resolve::kSelfAborted:
          return std::nullopt;
        case Resolve::kRetry:
          if (tx.status() != core::TxStatus::kActive) {
            on_forced_abort(tx, x);
            return std::nullopt;
          }
          {
            OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
            backoff.pause();
          }
          continue;
        case Resolve::kResolved:
          break;
      }
      if (options_.visible_reads) register_reader(tx, x);
      tx.reads_.push_back({x, loc, value});
      if (!validate(tx)) {
        abort_self(tx, obs::AbortReason::kReadValidation, x);
        return std::nullopt;
      }
      cm_->on_open(tx.cm_tid_);
      return value;
    }
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);

    // Guard before the status check and own-write scan — same reclamation
    // race as read(): the locator we are about to store into may otherwise
    // be retired by a displacing writer between check and dereference.
    [[maybe_unused]] typename P::Reclaimer::Guard guard;
    if (tx.status() != core::TxStatus::kActive) return false;

    for (const auto& w : tx.writes_) {
      if (w.x == x) {
        w.loc->new_val.store(v, std::memory_order_relaxed);
        return true;
      }
    }

    typename P::Backoff backoff;
    int attempt = 0;
    OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);  // ownership acquisition
    for (;;) {
      Locator* loc = slots_[x].value.load(std::memory_order_acquire);
      core::Value value;
      switch (resolve(tx, x, loc, attempt, value)) {
        case Resolve::kSelfAborted:
          return false;
        case Resolve::kRetry:
          if (tx.status() != core::TxStatus::kActive) {
            on_forced_abort(tx, x);
            return false;
          }
          {
            OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
            backoff.pause();
          }
          continue;
        case Resolve::kResolved:
          break;
      }
      auto* mine = new Locator(tx.desc_, value, v);
      Locator* expected = loc;
      if (slots_[x].value.compare_exchange_strong(expected, mine,
                                                  std::memory_order_acq_rel)) {
        P::Reclaimer::retire(loc);
        if (options_.visible_reads) sweep_readers(tx, x);
        // If x was read earlier, the read is still valid only if it came
        // from the locator we just displaced; then our own locator carries
        // the snapshot forward.
        for (auto& r : tx.reads_) {
          if (r.x == x) {
            if (r.seen != loc) {
              abort_self(tx, obs::AbortReason::kReadValidation, x);
              return false;
            }
            r.seen = mine;
            break;
          }
        }
        tx.writes_.push_back({x, mine});
        cm_->on_open(tx.cm_tid_);
        if (!validate(tx)) {
          abort_self(tx, obs::AbortReason::kReadValidation, x);
          return false;
        }
        return true;
      }
      delete mine;  // lost the race; destructor drops the descriptor ref
    }
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    [[maybe_unused]] typename P::Reclaimer::Guard guard;
    if (!validate(tx)) {
      abort_self(tx, obs::AbortReason::kReadValidation);
      return false;
    }
    core::TxStatus expected = core::TxStatus::kActive;
    // release on success: all new_val stores become visible to readers that
    // acquire-load the committed status.
    if (tx.desc_->status.compare_exchange_strong(
            expected, core::TxStatus::kCommitted,
            std::memory_order_acq_rel)) {
      commits_.add();
      cm_->on_commit(tx.cm_tid_);
      release_visible(tx);
      if (options_.eager_collapse) collapse_writes(tx);
      return true;
    }
    on_forced_abort(tx);  // somebody aborted us first
    return false;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    core::TxStatus expected = core::TxStatus::kActive;
    if (tx.desc_->status.compare_exchange_strong(
            expected, core::TxStatus::kAborted, std::memory_order_acq_rel)) {
      count_requested_abort();
      cm_->on_abort(tx.cm_tid_);
    }
    release_visible(tx);
  }

  std::size_t num_tvars() const override { return num_tvars_; }

  core::Value read_quiescent(core::TVarId x) const override {
    const Locator* loc = slots_[x].value.load(std::memory_order_acquire);
    if (loc->owner == nullptr) return loc->old_val;
    return loc->owner->status.load(std::memory_order_acquire) ==
                   core::TxStatus::kCommitted
               ? loc->new_val.load(std::memory_order_relaxed)
               : loc->old_val;
  }

  std::string name() const override {
    std::string n = "dstm";
    if (options_.eager_collapse) n += "+collapse";
    if (options_.visible_reads) n += "+visible";
    return n;
  }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

  // Address of the descriptor status word of a live transaction — exposed
  // for the DAP experiments, which need to point at the shared base object
  // Theorem 13 predicts.
  static const void* descriptor_of(const core::Transaction& t) {
    return &static_cast<const Txn&>(t).desc_->status;
  }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  // Bounded reader table used by the visible-reads ablation.
  static constexpr std::size_t kReaderSlots = 8;

  struct alignas(runtime::kCacheLineSize) Slot {
    Atomic<Locator*> value{nullptr};
    Atomic<TxDesc*> readers[kReaderSlots] = {};
  };

  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  // Complete whatever the descriptor's previous transaction left behind:
  // an active one is aborted (uncounted — this is abandonment, not a
  // protocol abort), reader-table registrations drop, and the handle's
  // TxDesc reference is released. Idempotent.
  void finish_descriptor(Txn& tx) noexcept {
    if (tx.desc_ == nullptr) return;
    core::TxStatus expected = core::TxStatus::kActive;
    tx.desc_->status.compare_exchange_strong(
        expected, core::TxStatus::kAborted, std::memory_order_acq_rel);
    release_visible(tx);
    TxDesc::unref(tx.desc_);
    tx.desc_ = nullptr;
  }

  // Re-arm a pooled descriptor. The read/write/visible sets keep their
  // capacity; the TxDesc itself is a fresh heap object by protocol
  // necessity — locators may outlive the transaction that installed them
  // (the paper's shared-descriptor base object, Theorem 13).
  void prepare(Txn& tx) {
    obs_tx_begin();
    finish_descriptor(tx);
    tx.tm_ = this;
    tx.desc_ = new TxDesc;
    tx.desc_->id = next_tx_id();
    tx.reads_.clear();
    tx.writes_.clear();
    tx.visible_.clear();
    tx.cm_tid_ = P::thread_id();
    cm_->on_tx_begin(tx.cm_tid_, tx.desc_->id);
  }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  enum class Resolve { kResolved, kRetry, kSelfAborted };

  // Resolve `loc` to the current committed value of x. On kResolved, `loc`
  // may have been updated to a collapsed value locator (the one the caller
  // should record/CAS against). kRetry means the contention manager told us
  // to wait; kSelfAborted means it sacrificed us (already accounted).
  Resolve resolve(Txn& tx, core::TVarId x, Locator*& loc, int& attempt,
                  core::Value& value) {
    if (loc->owner == nullptr) {
      value = loc->old_val;
      return Resolve::kResolved;
    }
    const core::TxStatus st = loc->owner->status.load(std::memory_order_acquire);
    if (st == core::TxStatus::kCommitted) {
      value = loc->new_val.load(std::memory_order_relaxed);
      if (Locator* flat = maybe_collapse(x, loc, value)) loc = flat;
      return Resolve::kResolved;
    }
    if (st == core::TxStatus::kAborted) {
      value = loc->old_val;
      if (Locator* flat = maybe_collapse(x, loc, value)) loc = flat;
      return Resolve::kResolved;
    }
    // Live owner. The paper: Tk cannot get blocked waiting for Ti; the
    // contention manager arbitrates and Tk can always force the abort.
    OFTM_ASSERT_MSG(loc->owner != tx.desc_,
                    "own writes are resolved through the write set");
    cm::Conflict c;
    c.self_tid = tx.cm_tid_;
    c.victim_tid = core::tx_id_thread(loc->owner->id);
    c.self_tx = tx.desc_->id;
    c.victim_tx = loc->owner->id;
    c.attempt = attempt;
    switch (cm_->decide(c)) {
      case cm::Decision::kAbortVictim: {
        core::TxStatus expected = core::TxStatus::kActive;
        if (loc->owner->status.compare_exchange_strong(
                expected, core::TxStatus::kAborted,
                std::memory_order_acq_rel)) {
          victim_kills_.add();
          cm_->on_abort(c.victim_tid);
        }
        // Owner is now resolved either way; re-resolve without pausing.
        const core::TxStatus st2 =
            loc->owner->status.load(std::memory_order_acquire);
        value = st2 == core::TxStatus::kCommitted
                    ? loc->new_val.load(std::memory_order_relaxed)
                    : loc->old_val;
        if (Locator* flat = maybe_collapse(x, loc, value)) loc = flat;
        return Resolve::kResolved;
      }
      case cm::Decision::kWait:
        cm_backoffs_.add();
        ++attempt;
        return Resolve::kRetry;
      case cm::Decision::kAbortSelf:
        abort_self(tx, obs::AbortReason::kCmKill, x);
        return Resolve::kSelfAborted;
    }
    return Resolve::kRetry;  // unreachable
  }

  // Invisible-read revalidation: every recorded read must still be the
  // current locator of its t-variable. Pointer identity suffices: a locator
  // is recorded only once its resolution is stable, and resolved locators
  // never change value.
  bool validate(Txn& tx) {
    OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
    for (const auto& r : tx.reads_) {
      if (slots_[r.x].value.load(std::memory_order_acquire) != r.seen) {
        return false;
      }
    }
    return tx.status() != core::TxStatus::kAborted;
  }

  void abort_self(Txn& tx, obs::AbortReason reason,
                  std::uint64_t key = obs::kNoKey) {
    core::TxStatus expected = core::TxStatus::kActive;
    tx.desc_->status.compare_exchange_strong(
        expected, core::TxStatus::kAborted, std::memory_order_acq_rel);
    count_forced_abort(reason, key);  // not requested via tryA
    cm_->on_abort(tx.cm_tid_);
    release_visible(tx);
  }

  // Our status CAS was beaten by another process (a contention-manager
  // kill, or a visible-reads sweep): account the forced abort.
  void on_forced_abort(Txn& tx, std::uint64_t key = obs::kNoKey) {
    count_forced_abort(obs::AbortReason::kCmKill, key);
    cm_->on_abort(tx.cm_tid_);
    release_visible(tx);
  }

  // ---- Visible reads (ablation) ----------------------------------------

  // Best-effort registration in the bounded reader table; overflow falls
  // back to purely invisible reading (validation covers it either way).
  void register_reader(Txn& tx, core::TVarId x) {
    Slot& s = slots_[x];
    // The table entry owns one reference, taken BEFORE publishing: a
    // concurrent sweeper may deregister-and-unref the entry the instant the
    // CAS lands, and that unref must have a matching ref to consume.
    tx.desc_->ref();
    for (std::size_t i = 0; i < kReaderSlots; ++i) {
      TxDesc* expected = nullptr;
      if (s.readers[i].compare_exchange_strong(expected, tx.desc_,
                                               std::memory_order_acq_rel)) {
        tx.visible_.push_back({x, i});
        return;
      }
    }
    TxDesc::unref(tx.desc_);  // table full: reference not needed after all
  }

  // Writer side: abort and deregister every registered live reader of x
  // (the whole point of visibility — doomed readers stop immediately).
  void sweep_readers(Txn& tx, core::TVarId x) {
    Slot& s = slots_[x];
    for (std::size_t i = 0; i < kReaderSlots; ++i) {
      TxDesc* reader = s.readers[i].load(std::memory_order_acquire);
      if (reader == nullptr || reader == tx.desc_) continue;
      core::TxStatus expected = core::TxStatus::kActive;
      if (reader->status.compare_exchange_strong(
              expected, core::TxStatus::kAborted,
              std::memory_order_acq_rel)) {
        victim_kills_.add();
        cm_->on_abort(core::tx_id_thread(reader->id));
      }
      // Whoever nulls the entry drops its reference.
      TxDesc* cur = reader;
      if (s.readers[i].compare_exchange_strong(cur, nullptr,
                                               std::memory_order_acq_rel)) {
        TxDesc::unref(reader);
      }
    }
  }

  // Reader side: drop own registrations (idempotent; every completion path
  // funnels through here).
  void release_visible(Txn& tx) {
    for (const auto& v : tx.visible_) {
      TxDesc* cur = tx.desc_;
      if (slots_[v.x].readers[v.slot_index].compare_exchange_strong(
              cur, nullptr, std::memory_order_acq_rel)) {
        TxDesc::unref(tx.desc_);
      }
    }
    tx.visible_.clear();
  }

  // Optionally replace a resolved locator with an ownerless value locator;
  // returns the installed value locator, or null if collapsing is off or
  // the CAS lost.
  Locator* maybe_collapse(core::TVarId x, Locator* loc, core::Value value) {
    if (!options_.eager_collapse || loc->owner == nullptr) return nullptr;
    auto* flat = new Locator(nullptr, value, value);
    Locator* expected = loc;
    if (slots_[x].value.compare_exchange_strong(expected, flat,
                                                std::memory_order_acq_rel)) {
      P::Reclaimer::retire(loc);
      return flat;
    }
    delete flat;
    return nullptr;
  }

  void collapse_writes(Txn& tx) {
    for (const auto& w : tx.writes_) {
      maybe_collapse(w.x, w.loc,
                     w.loc->new_val.load(std::memory_order_relaxed));
    }
  }

  std::shared_ptr<cm::ContentionManager> cm_;
  const DstmOptions options_;
  const std::size_t num_tvars_;
  std::unique_ptr<Slot[]> slots_;
};

using HwDstm = Dstm<core::HwPlatform>;

}  // namespace oftm::dstm
