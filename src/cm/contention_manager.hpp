// Contention management for obstruction-free TMs.
//
// Section 1 of the paper: "A contention manager might tell Tk to back off
// for some fixed time (maybe random) to give Ti a chance, but eventually Tk
// must be able to abort Ti and acquire x without any interaction with Ti."
//
// The decision interface below encodes exactly that contract: a manager may
// answer kWait finitely many times, but obstruction-freedom requires that
// for any fixed conflict, repeated consultation eventually yields
// kAbortVictim or kAbortSelf (it must not force the caller to wait on the
// victim forever). Every implementation in managers.hpp satisfies this and
// a property test enforces it (cm_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "obs/taxonomy.hpp"

namespace oftm::cm {

enum class Decision {
  kAbortVictim,  // forcefully abort the transaction that owns the object
  kWait,         // back off and re-examine the conflict
  kAbortSelf,    // abort the requesting transaction
};

// A conflict between the calling transaction ("self") and the current owner
// of an object ("victim"). `attempt` counts consecutive consultations for
// the same conflict; managers use it to bound politeness.
struct Conflict {
  int self_tid = 0;
  int victim_tid = 0;
  core::TxId self_tx = 0;
  core::TxId victim_tx = 0;
  int attempt = 0;
};

// Shared by all threads of one TM instance; implementations must be
// thread-safe. Notification hooks let managers maintain priorities.
class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  virtual Decision on_conflict(const Conflict& c) = 0;

  // How this manager resolved the conflicts routed through decide():
  // the kill-attribution view (who dies, and by whose choice) that pairs
  // with the per-backend kCmKill abort-reason counters.
  struct DecisionCounts {
    std::uint64_t aborted_victim = 0;
    std::uint64_t waited = 0;
    std::uint64_t aborted_self = 0;
  };

  // Counting wrapper backends consult instead of calling on_conflict()
  // directly: tallies the decision (when the obs gate is on) before
  // handing it back. Non-virtual on purpose — attribution must not
  // depend on which manager is plugged in.
  Decision decide(const Conflict& c);
  DecisionCounts decision_counts() const;

  // Lifecycle notifications (no-ops by default).
  virtual void on_tx_begin(int tid, core::TxId tx) { (void)tid; (void)tx; }
  virtual void on_open(int tid) { (void)tid; }
  virtual void on_commit(int tid) { (void)tid; }
  virtual void on_abort(int tid) { (void)tid; }

  virtual std::string name() const = 0;

 private:
#if OFTM_OBS
  std::atomic<std::uint64_t> decided_[3] = {};
#endif
};

}  // namespace oftm::cm
