// The contention-manager family from the DSTM line of work ([18] and the
// follow-ups [25, 1] the paper surveys). All managers guarantee eventual
// kAbortVictim/kAbortSelf (obstruction-freedom contract, see
// contention_manager.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cm/contention_manager.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::cm {

// Aggressive: always abort the victim immediately. Maximal progress for
// self, maximal wasted work for victims; the baseline the paper's "eventually
// Tk must be able to abort Ti" reduces to when the backoff budget is zero.
class Aggressive final : public ContentionManager {
 public:
  Decision on_conflict(const Conflict&) override {
    return Decision::kAbortVictim;
  }
  std::string name() const override { return "aggressive"; }
};

// Suicide: always abort self. The dual extreme; lets long-running owners
// finish but can starve the requester under sustained conflict (the retry
// loop, not the TM, provides liveness).
class Suicide final : public ContentionManager {
 public:
  Decision on_conflict(const Conflict&) override {
    return Decision::kAbortSelf;
  }
  std::string name() const override { return "suicide"; }
};

// Polite: back off (the caller pauses) a bounded number of times to "give Ti
// a chance" (paper, Section 1), then abort the victim.
class Polite final : public ContentionManager {
 public:
  explicit Polite(int max_attempts = 6) : max_attempts_(max_attempts) {}

  Decision on_conflict(const Conflict& c) override {
    return c.attempt < max_attempts_ ? Decision::kWait
                                     : Decision::kAbortVictim;
  }
  std::string name() const override { return "polite"; }

 private:
  const int max_attempts_;
};

// Randomized: flip a (deterministically seeded, per-call) coin between
// waiting and killing; bounded by max_attempts like Polite.
class Randomized final : public ContentionManager {
 public:
  explicit Randomized(double kill_probability = 0.5, int max_attempts = 16)
      : kill_probability_(kill_probability), max_attempts_(max_attempts) {}

  Decision on_conflict(const Conflict& c) override;
  std::string name() const override { return "randomized"; }

 private:
  const double kill_probability_;
  const int max_attempts_;
};

// Karma: priority = accumulated opens (work done). A requester kills a
// victim with no more karma than itself plus its patience so far; otherwise
// it waits, and each wait adds patience, so every conflict resolves in
// bounded consultations.
class Karma final : public ContentionManager {
 public:
  Decision on_conflict(const Conflict& c) override;
  void on_tx_begin(int tid, core::TxId) override;
  void on_open(int tid) override;
  void on_commit(int tid) override;
  std::string name() const override { return "karma"; }

 private:
  struct alignas(runtime::kCacheLineSize) Slot {
    std::atomic<std::uint64_t> karma{0};
  };
  Slot slots_[runtime::ThreadRegistry::kMaxThreads];
};

// Timestamp (a.k.a. Greedy-style seniority): older transactions win. A
// younger requester waits a bounded number of times before killing, so the
// obstruction-freedom contract holds even against a stalled elder.
class Timestamp final : public ContentionManager {
 public:
  explicit Timestamp(int patience = 8) : patience_(patience) {}

  Decision on_conflict(const Conflict& c) override;
  void on_tx_begin(int tid, core::TxId) override;
  std::string name() const override { return "timestamp"; }

 private:
  struct alignas(runtime::kCacheLineSize) Slot {
    std::atomic<std::uint64_t> stamp{~std::uint64_t{0}};
  };
  const int patience_;
  std::atomic<std::uint64_t> clock_{1};
  Slot slots_[runtime::ThreadRegistry::kMaxThreads];
};

// Factory: build a manager by name ("aggressive", "suicide", "polite",
// "randomized", "karma", "timestamp"). Throws std::invalid_argument on an
// unknown name.
std::unique_ptr<ContentionManager> make_manager(const std::string& name);

// All known manager names (for bench sweeps).
const std::vector<std::string>& manager_names();

}  // namespace oftm::cm
