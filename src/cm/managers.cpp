#include "cm/managers.hpp"

#include <stdexcept>

#include "runtime/xorshift.hpp"

namespace oftm::cm {

Decision ContentionManager::decide(const Conflict& c) {
  const Decision d = on_conflict(c);
#if OFTM_OBS
  decided_[static_cast<std::size_t>(d)].fetch_add(1,
                                                  std::memory_order_relaxed);
#endif
  return d;
}

ContentionManager::DecisionCounts ContentionManager::decision_counts() const {
  DecisionCounts n;
#if OFTM_OBS
  n.aborted_victim =
      decided_[static_cast<std::size_t>(Decision::kAbortVictim)].load(
          std::memory_order_relaxed);
  n.waited = decided_[static_cast<std::size_t>(Decision::kWait)].load(
      std::memory_order_relaxed);
  n.aborted_self =
      decided_[static_cast<std::size_t>(Decision::kAbortSelf)].load(
          std::memory_order_relaxed);
#endif
  return n;
}

Decision Randomized::on_conflict(const Conflict& c) {
  if (c.attempt >= max_attempts_) return Decision::kAbortVictim;
  thread_local runtime::Xoshiro256 rng = runtime::Xoshiro256::from_thread();
  return rng.next_bool(kill_probability_) ? Decision::kAbortVictim
                                          : Decision::kWait;
}

Decision Karma::on_conflict(const Conflict& c) {
  const std::uint64_t mine =
      slots_[c.self_tid].karma.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      slots_[c.victim_tid].karma.load(std::memory_order_relaxed);
  // Patience accumulates with attempts, so mine+attempt eventually exceeds
  // any fixed victim karma: bounded consultations per conflict.
  if (mine + static_cast<std::uint64_t>(c.attempt) >= theirs) {
    return Decision::kAbortVictim;
  }
  return Decision::kWait;
}

void Karma::on_tx_begin(int tid, core::TxId) {
  // Karma persists across aborts (that is the point: a transaction that
  // keeps losing accumulates priority) and resets on commit.
  (void)tid;
}

void Karma::on_open(int tid) {
  slots_[tid].karma.fetch_add(1, std::memory_order_relaxed);
}

void Karma::on_commit(int tid) {
  slots_[tid].karma.store(0, std::memory_order_relaxed);
}

Decision Timestamp::on_conflict(const Conflict& c) {
  const std::uint64_t mine =
      slots_[c.self_tid].stamp.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      slots_[c.victim_tid].stamp.load(std::memory_order_relaxed);
  if (mine < theirs) return Decision::kAbortVictim;  // I am older: win now.
  // Younger defers to the elder for `patience_` consultations, then kills
  // anyway — a stalled elder must not block us forever (obstruction-freedom).
  return c.attempt < patience_ ? Decision::kWait : Decision::kAbortVictim;
}

void Timestamp::on_tx_begin(int tid, core::TxId) {
  slots_[tid].stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

std::unique_ptr<ContentionManager> make_manager(const std::string& name) {
  if (name == "aggressive") return std::make_unique<Aggressive>();
  if (name == "suicide") return std::make_unique<Suicide>();
  if (name == "polite") return std::make_unique<Polite>();
  if (name == "randomized") return std::make_unique<Randomized>();
  if (name == "karma") return std::make_unique<Karma>();
  if (name == "timestamp") return std::make_unique<Timestamp>();
  throw std::invalid_argument("unknown contention manager: " + name);
}

const std::vector<std::string>& manager_names() {
  static const std::vector<std::string> names = {
      "aggressive", "suicide", "polite", "randomized", "karma", "timestamp"};
  return names;
}

}  // namespace oftm::cm
