// TL: encounter-time two-phase-locking STM with per-t-variable versioned
// locks and deferred (write-back) updates.
//
// This is the paper's canonical *strictly disjoint-access-parallel*
// baseline: "Lock-based TM implementations, most of which use some variant
// of the known two-phase locking protocol, are usually strictly
// disjoint-access-parallel (e.g., TL [11])." Every base object it touches
// (lock word + value word) belongs to exactly one t-variable, so
// transactions on disjoint t-variable sets never conflict on a base object
// — the DAP experiments verify this with the simulator's conflict journal.
//
// It is deliberately NOT obstruction-free: a writer that stalls while
// holding encounter-time locks blocks every later conflicting transaction
// (they spin out their patience and self-abort, forever). Figure 2's
// scenario run on TL demonstrates exactly this contrast with DSTM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "lock/versioned_lock.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::lock {

struct TlOptions {
  // How many lock-acquisition/validation retries before a transaction
  // gives up and aborts itself (deadlock/livelock avoidance).
  int patience = 64;
};

template <typename P>
class Tl final : public core::TransactionalMemory, private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   private:
    friend class Tl;
    struct ReadEntry {
      core::TVarId x;
      std::uint64_t version;
    };
    struct WriteEntry {
      core::TVarId x;
      std::uint64_t base_version;  // version observed when locking
      core::Value value;
    };

    // An abandoned handle must not leave encounter-time locks behind.
    void handle_released() noexcept override {
      if (tm_ != nullptr && status_ == core::TxStatus::kActive) {
        tm_->rollback(*this);
        status_ = core::TxStatus::kAborted;  // completed, not counted
      }
      core::Transaction::handle_released();
    }

    Tl* tm_ = nullptr;
    core::TxId id_ = 0;
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
  };

  using Session = core::PooledTmSession<Txn>;

  explicit Tl(std::size_t num_tvars, TlOptions options = {})
      : options_(options), num_tvars_(num_tvars) {
    slots_ = std::make_unique<Slot[]>(num_tvars);
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;

    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      for (const auto& w : tx.writes_) {
        if (w.x == x) return w.value;
      }
    }

    typename P::Backoff backoff;
    Slot& s = slots_[x];
    for (int spin = 0;; ++spin) {
      const std::uint64_t w1 = s.lock.load(std::memory_order_acquire);
      if (!LockWord::locked(w1)) {
        const core::Value v = s.value.load(std::memory_order_relaxed);
        // acquire fence via re-load: value is only valid if the lock word
        // did not move underneath us (seqlock pattern).
        const std::uint64_t w2 = s.lock.load(std::memory_order_acquire);
        if (w1 == w2) {
          bool known = false;
          for (const auto& r : tx.reads_) {
            if (r.x == x) {
              known = true;
              if (r.version != LockWord::version(w1)) {
                rollback_abort(tx, obs::AbortReason::kReadValidation, x);
                return std::nullopt;
              }
              break;
            }
          }
          if (!known) {
            tx.reads_.push_back({x, LockWord::version(w1)});
          }
          if (!validate(tx)) {
            rollback_abort(tx, obs::AbortReason::kReadValidation);
            return std::nullopt;
          }
          return v;
        }
      }
      if (spin >= options_.patience) {
        // A (possibly suspended) lock holder is in the way; lock-based TMs
        // cannot revoke it — we sacrifice ourselves. This is the
        // non-obstruction-freedom the paper contrasts OFTMs against.
        rollback_abort(tx, obs::AbortReason::kLockTimeout, x);
        return std::nullopt;
      }
      cm_backoffs_.add();
      OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
      backoff.pause();
    }
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return false;

    for (auto& w : tx.writes_) {
      if (w.x == x) {
        w.value = v;
        return true;
      }
    }

    typename P::Backoff backoff;
    Slot& s = slots_[x];
    OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
    for (int spin = 0;; ++spin) {
      std::uint64_t w1 = s.lock.load(std::memory_order_acquire);
      if (!LockWord::locked(w1)) {
        const std::uint64_t locked =
            LockWord::pack(LockWord::version(w1), true);
        if (s.lock.compare_exchange_strong(w1, locked,
                                           std::memory_order_acq_rel)) {
          // Encounter-time read validation: if we read x earlier, the
          // version must not have moved.
          for (const auto& r : tx.reads_) {
            if (r.x == x && r.version != LockWord::version(w1)) {
              s.lock.store(w1, std::memory_order_release);  // undo lock
              rollback_abort(tx, obs::AbortReason::kReadValidation, x);
              return false;
            }
          }
          tx.writes_.push_back({x, LockWord::version(w1), v});
          if (!validate(tx)) {
            rollback_abort(tx, obs::AbortReason::kReadValidation);
            return false;
          }
          return true;
        }
      }
      if (spin >= options_.patience) {
        rollback_abort(tx, obs::AbortReason::kLockTimeout, x);
        return false;
      }
      cm_backoffs_.add();
      OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
      backoff.pause();
    }
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return false;
    if (!validate(tx)) {
      rollback_abort(tx, obs::AbortReason::kReadValidation);
      return false;
    }
    // Write back and release: bump each version (2PL shrink phase).
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      for (const auto& w : tx.writes_) {
        Slot& s = slots_[w.x];
        s.value.store(w.value, std::memory_order_relaxed);
        s.lock.store(LockWord::pack(w.base_version + 1, false),
                     std::memory_order_release);
      }
    }
    tx.status_ = core::TxStatus::kCommitted;
    commits_.add();
    return true;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return;
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  std::size_t num_tvars() const override { return num_tvars_; }

  core::Value read_quiescent(core::TVarId x) const override {
    return slots_[x].value.load(std::memory_order_acquire);
  }

  std::string name() const override { return "tl"; }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  struct alignas(runtime::kCacheLineSize) Slot {
    Atomic<std::uint64_t> lock{LockWord::pack(0, false)};
    Atomic<core::Value> value{0};
  };

  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  // Re-arm a pooled descriptor. A hot-tier predecessor abandoned while
  // active still holds its encounter-time locks — release them first
  // (rollback is idempotent: it clears the write set it walks).
  void prepare(Txn& tx) {
    obs_tx_begin();
    if (tx.tm_ != nullptr && tx.status_ == core::TxStatus::kActive) {
      rollback(tx);
    }
    tx.tm_ = this;
    tx.id_ = next_tx_id();
    tx.status_ = core::TxStatus::kActive;
    tx.reads_.clear();
    tx.writes_.clear();
  }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  bool validate(Txn& tx) {
    OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
    for (const auto& r : tx.reads_) {
      bool own = false;
      for (const auto& w : tx.writes_) {
        if (w.x == r.x) {
          own = true;
          if (w.base_version != r.version) return false;
          break;
        }
      }
      if (own) continue;
      const std::uint64_t w = slots_[r.x].lock.load(std::memory_order_acquire);
      if (LockWord::locked(w) || LockWord::version(w) != r.version) {
        return false;
      }
    }
    return true;
  }

  // Release every encounter-time lock without publishing values.
  void rollback(Txn& tx) {
    for (const auto& w : tx.writes_) {
      slots_[w.x].lock.store(LockWord::pack(w.base_version, false),
                             std::memory_order_release);
    }
    tx.writes_.clear();
  }

  void rollback_abort(Txn& tx, obs::AbortReason reason,
                      std::uint64_t key = obs::kNoKey) {
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
  }

  const TlOptions options_;
  const std::size_t num_tvars_;
  std::unique_ptr<Slot[]> slots_;
};

using HwTl = Tl<core::HwPlatform>;

}  // namespace oftm::lock
