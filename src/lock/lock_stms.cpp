#include "lock/coarse.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "sim/platform.hpp"

namespace oftm::lock {

template class Tl<core::HwPlatform>;
template class Tl<sim::SimPlatform>;
template class Tl2<core::HwPlatform>;
template class Tl2<sim::SimPlatform>;
template class Coarse<core::HwPlatform>;
template class Coarse<sim::SimPlatform>;

}  // namespace oftm::lock
