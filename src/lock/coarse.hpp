// Coarse: one global lock around every transaction.
//
// The paper's introduction motivates TM as "as easy to use as coarse-grained
// locking"; this backend *is* coarse-grained locking behind the TM
// interface — the zero-parallelism baseline every scalability bench is
// anchored to. Trivially serializable (transactions are literally
// sequential), maximally non-disjoint-access-parallel (a single base
// object shared by everything), and as non-obstruction-free as it gets (a
// suspended lock holder halts the world).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::lock {

template <typename P>
class Coarse final : public core::TransactionalMemory,
                     private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  class Txn final : public core::Transaction {
   public:
    Txn(Coarse& tm, core::TxId id) : tm_(tm), id_(id) {}
    ~Txn() override {
      if (status_ == core::TxStatus::kActive) tm_.release(*this);
    }
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   private:
    friend class Coarse;
    struct Undo {
      core::TVarId x;
      core::Value old_value;
    };
    Coarse& tm_;
    core::TxId id_;
    core::TxStatus status_ = core::TxStatus::kActive;
    std::vector<Undo> undo_;
  };

  explicit Coarse(std::size_t num_tvars) : num_tvars_(num_tvars) {
    values_ = std::make_unique<Atomic<core::Value>[]>(num_tvars);
  }

  core::TxnPtr begin() override {
    auto txn = std::make_unique<Txn>(*this, next_tx_id());
    // Global TTAS lock; transactions execute one at a time.
    typename P::Backoff backoff;
    for (;;) {
      bool expected = false;
      if (lock_.value.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
        break;
      }
      cm_backoffs_.add();
      backoff.pause();
    }
    return txn;
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;
    return values_[x].load(std::memory_order_relaxed);
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return false;
    // In-place update with undo log (rolled back on abort).
    tx.undo_.push_back({x, values_[x].load(std::memory_order_relaxed)});
    values_[x].store(v, std::memory_order_relaxed);
    return true;
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return false;
    tx.status_ = core::TxStatus::kCommitted;
    release(tx);
    commits_.add();
    return true;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return;
    for (auto it = tx.undo_.rbegin(); it != tx.undo_.rend(); ++it) {
      values_[it->x].store(it->old_value, std::memory_order_relaxed);
    }
    tx.status_ = core::TxStatus::kAborted;
    release(tx);
    aborts_.add();
  }

  std::size_t num_tvars() const override { return num_tvars_; }
  core::Value read_quiescent(core::TVarId x) const override {
    return values_[x].load(std::memory_order_acquire);
  }
  std::string name() const override { return "coarse"; }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

 private:
  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  void release(Txn&) { lock_.value.store(false, std::memory_order_release); }

  const std::size_t num_tvars_;
  std::unique_ptr<Atomic<core::Value>[]> values_;
  runtime::CacheAligned<Atomic<bool>> lock_{false};
};

using HwCoarse = Coarse<core::HwPlatform>;

}  // namespace oftm::lock
