// Coarse: one global lock around every transaction.
//
// The paper's introduction motivates TM as "as easy to use as coarse-grained
// locking"; this backend *is* coarse-grained locking behind the TM
// interface — the zero-parallelism baseline every scalability bench is
// anchored to. Trivially serializable (transactions are literally
// sequential), maximally non-disjoint-access-parallel (a single base
// object shared by everything), and as non-obstruction-free as it gets (a
// suspended lock holder halts the world).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::lock {

template <typename P>
class Coarse final : public core::TransactionalMemory,
                     private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   private:
    friend class Coarse;
    struct Undo {
      core::TVarId x;
      core::Value old_value;
    };

    // A handle abandoned while active still holds the global lock: roll
    // back its in-place writes and release, or the world stays halted.
    void handle_released() noexcept override {
      if (tm_ != nullptr && status_ == core::TxStatus::kActive) {
        tm_->undo_writes(*this);
        status_ = core::TxStatus::kAborted;  // completed, not counted
        tm_->release(*this);
      }
      core::Transaction::handle_released();
    }

    Coarse* tm_ = nullptr;
    core::TxId id_ = 0;
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<Undo> undo_;
  };

  using Session = core::PooledTmSession<Txn>;

  explicit Coarse(std::size_t num_tvars) : num_tvars_(num_tvars) {
    values_ = std::make_unique<Atomic<core::Value>[]>(num_tvars);
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;
    return values_[x].load(std::memory_order_relaxed);
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return false;
    // In-place update with undo log (rolled back on abort).
    tx.undo_.push_back({x, values_[x].load(std::memory_order_relaxed)});
    values_[x].store(v, std::memory_order_relaxed);
    return true;
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return false;
    tx.status_ = core::TxStatus::kCommitted;
    release(tx);
    commits_.add();
    return true;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      undo_writes(tx);
    }
    tx.status_ = core::TxStatus::kAborted;
    release(tx);
    count_requested_abort();
  }

  std::size_t num_tvars() const override { return num_tvars_; }
  core::Value read_quiescent(core::TVarId x) const override {
    return values_[x].load(std::memory_order_acquire);
  }
  std::string name() const override { return "coarse"; }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  // Re-arm a pooled descriptor and take the global TTAS lock; transactions
  // execute one at a time. A hot-tier predecessor abandoned while active
  // still holds the lock (on this very thread) — finish it first or the
  // acquisition below would self-deadlock.
  void prepare(Txn& tx) {
    obs_tx_begin();
    if (tx.tm_ != nullptr && tx.status_ == core::TxStatus::kActive) {
      undo_writes(tx);
      tx.status_ = core::TxStatus::kAborted;  // completed, not counted
      release(tx);
    }
    tx.tm_ = this;
    tx.id_ = next_tx_id();
    tx.undo_.clear();
    typename P::Backoff backoff;
    OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
    for (;;) {
      bool expected = false;
      if (lock_.value.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
        break;
      }
      cm_backoffs_.add();
      OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
      backoff.pause();
    }
    tx.status_ = core::TxStatus::kActive;
  }

  void undo_writes(Txn& tx) {
    for (auto it = tx.undo_.rbegin(); it != tx.undo_.rend(); ++it) {
      values_[it->x].store(it->old_value, std::memory_order_relaxed);
    }
    tx.undo_.clear();
  }

  void release(Txn&) { lock_.value.store(false, std::memory_order_release); }

  const std::size_t num_tvars_;
  std::unique_ptr<Atomic<core::Value>[]> values_;
  runtime::CacheAligned<Atomic<bool>> lock_{false};
};

using HwCoarse = Coarse<core::HwPlatform>;

}  // namespace oftm::lock
