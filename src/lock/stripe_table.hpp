// TmRegion tier, part 2: the global versioned-lock stripe array.
//
// TL2's per-stripe (PS) metadata scheme: instead of one LockWord per boxed
// TVar, a single power-of-two array of LockWords covers *every* word the
// region tier transacts over, indexed by a shift-and-mask hash of the
// word's address:
//
//     stripe(addr) = (addr >> granularity_log2) & (2^count_log2 - 1)
//
// Two words hash to the same stripe either because they sit in the same
// 2^granularity-byte granule (adjacency aliasing — the knob that models
// cache-line false sharing at the metadata level) or because their granule
// indices collide modulo the table size (capacity aliasing). Both are
// conservative: an aliased stripe can only cause false conflicts, never
// missed ones, so safety is unconditional and the stripe-count x
// granularity sweep is purely a performance design space.
//
// Deliberately dense — no per-stripe cache-line padding. At 2^20+ stripes
// padding would 8x the table, and the sharing of neighbouring stripe words
// is exactly the behaviour production TL2 tables exhibit and the region
// benches measure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "lock/versioned_lock.hpp"
#include "runtime/assert.hpp"

namespace oftm::lock {

class StripeTable {
 public:
  StripeTable(unsigned count_log2, unsigned granularity_log2)
      : shift_(granularity_log2),
        mask_((std::size_t{1} << count_log2) - 1),
        stripes_(new std::atomic<std::uint64_t>[std::size_t{1} << count_log2]) {
    OFTM_ASSERT_MSG(granularity_log2 >= 3,
                    "stripe granularity below one 64-bit word");
    OFTM_ASSERT_MSG(count_log2 >= 1 && count_log2 <= 28,
                    "unreasonable stripe count");
    for (std::size_t i = 0; i <= mask_; ++i) {
      stripes_[i].store(LockWord::pack(0, false), std::memory_order_relaxed);
    }
  }

  std::size_t count() const noexcept { return mask_ + 1; }
  std::size_t granularity_bytes() const noexcept {
    return std::size_t{1} << shift_;
  }

  std::size_t index_of(const void* addr) const noexcept {
    return (reinterpret_cast<std::uintptr_t>(addr) >> shift_) & mask_;
  }

  std::atomic<std::uint64_t>& stripe(std::size_t index) noexcept {
    return stripes_[index];
  }
  const std::atomic<std::uint64_t>& stripe(std::size_t index) const noexcept {
    return stripes_[index];
  }
  std::atomic<std::uint64_t>& stripe_for(const void* addr) noexcept {
    return stripes_[index_of(addr)];
  }

 private:
  const unsigned shift_;
  const std::size_t mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> stripes_;
};

// Auto-sizing used when RegionOptions::stripe_count_log2 is 0: roughly one
// stripe per word, clamped so tiny regions do not under-provision (false
// conflicts) and huge ones do not over-provision (a 2^22 * 8 B = 32 MiB
// table is the ceiling).
inline unsigned auto_stripe_count_log2(std::size_t words) noexcept {
  unsigned k = 14;
  while ((std::size_t{1} << k) < words && k < 22) ++k;
  return k;
}

}  // namespace oftm::lock
