// TL2: commit-time locking with a global version clock [10].
//
// The paper singles this design out as the *exception* among lock-based
// TMs: "Notable exceptions are those TMs that use global timestamps in
// order to speed up the read validation process, e.g., TL2 [10] ... every
// transaction has to access a common memory location to determine its
// timestamp." — i.e., TL2 is NOT strictly disjoint-access-parallel by
// construction (the global clock is a base object shared by all
// transactions), but for the benign reason of a read-mostly-shared counter
// rather than DSTM's read-write descriptor hot spots. The DAP experiments
// report TL2's clock conflicts separately to make that distinction visible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "lock/versioned_lock.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::lock {

struct Tl2Options {
  int lock_patience = 64;  // spins per write-set lock before self-abort
  // Read-version extension: on a stale read (version > rv), revalidate the
  // read set against the current clock and, if every recorded version is
  // untouched, adopt the new clock value as rv instead of aborting. The
  // classic TL2 refinement; off by default to match the base algorithm —
  // bench_throughput compares both.
  bool rv_extension = false;
};

template <typename P>
class Tl2 final : public core::TransactionalMemory,
                  private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   private:
    friend class Tl2;
    struct ReadEntry {
      core::TVarId x;
      std::uint64_t version;  // lock-word version observed at read time
    };
    struct WriteEntry {
      core::TVarId x;
      core::Value value;
    };
    core::TxId id_ = 0;
    std::uint64_t rv_ = 0;  // read version (global clock at begin)
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    // Commit-path scratch (pre-lock versions of the write set): lives in
    // the descriptor so acquiring the write locks allocates nothing after
    // warm-up.
    std::vector<std::uint64_t> lock_versions_;
  };

  using Session = core::PooledTmSession<Txn>;

  explicit Tl2(std::size_t num_tvars, Tl2Options options = {})
      : options_(options), num_tvars_(num_tvars) {
    slots_ = std::make_unique<Slot[]>(num_tvars);
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;

    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      for (const auto& w : tx.writes_) {
        if (w.x == x) return w.value;
      }
    }

    Slot& s = slots_[x];
    for (int pass = 0; pass < 2; ++pass) {
      const std::uint64_t w1 = s.lock.load(std::memory_order_acquire);
      const core::Value v = s.value.load(std::memory_order_relaxed);
      const std::uint64_t w2 = s.lock.load(std::memory_order_acquire);
      // Valid iff stable, unlocked, and not newer than our read version.
      if (w1 == w2 && !LockWord::locked(w1) &&
          LockWord::version(w1) <= tx.rv_) {
        tx.reads_.push_back({x, LockWord::version(w1)});
        return v;
      }
      // Stale or unstable: try extending rv once, then give up.
      if (pass == 0 && options_.rv_extension && try_extend(tx)) continue;
      break;
    }
    abort_forced(tx, obs::AbortReason::kReadValidation, x);
    return std::nullopt;
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return false;
    for (auto& w : tx.writes_) {
      if (w.x == x) {
        w.value = v;
        return true;
      }
    }
    tx.writes_.push_back({x, v});
    return true;
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return false;

    // Read-only fast path: every read was validated against rv at read
    // time; nothing to lock.
    if (tx.writes_.empty()) {
      tx.status_ = core::TxStatus::kCommitted;
      commits_.add();
      return true;
    }

    // Lock the write set in canonical order (deadlock avoidance), bounded
    // spins (liveness: self-abort, as in the original).
    std::sort(tx.writes_.begin(), tx.writes_.end(),
              [](const auto& a, const auto& b) { return a.x < b.x; });
    std::vector<std::uint64_t>& base = tx.lock_versions_;
    base.clear();
    base.reserve(tx.writes_.size());
    typename P::Backoff backoff;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
      for (std::size_t i = 0; i < tx.writes_.size(); ++i) {
        Slot& s = slots_[tx.writes_[i].x];
        int spin = 0;
        for (;;) {
          std::uint64_t w = s.lock.load(std::memory_order_acquire);
          if (!LockWord::locked(w)) {
            const std::uint64_t locked =
                LockWord::pack(LockWord::version(w), true);
            if (s.lock.compare_exchange_strong(w, locked,
                                               std::memory_order_acq_rel)) {
              base.push_back(LockWord::version(w));
              break;
            }
          }
          if (++spin > options_.lock_patience) {
            unlock_prefix(tx, base, i);
            abort_forced(tx, obs::AbortReason::kLockTimeout,
                         tx.writes_[i].x);
            return false;
          }
          cm_backoffs_.add();
          OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
          backoff.pause();
        }
      }
    }

    // Commit timestamp from the shared clock.
    const std::uint64_t wv =
        clock_.value.fetch_add(1, std::memory_order_acq_rel) + 1;

    // Validate the read set unless nobody could have committed in between.
    if (tx.rv_ + 1 != wv) {
      OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
      for (const auto& r : tx.reads_) {
        bool own = false;
        for (const auto& w : tx.writes_) {
          if (w.x == r.x) {
            own = true;
            break;
          }
        }
        const std::uint64_t w =
            slots_[r.x].lock.load(std::memory_order_acquire);
        if ((LockWord::locked(w) && !own) || LockWord::version(w) > tx.rv_) {
          unlock_prefix(tx, base, tx.writes_.size());
          abort_forced(tx, obs::AbortReason::kReadValidation, r.x);
          return false;
        }
      }
    }

    // Write back and release with the commit version.
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      for (std::size_t i = 0; i < tx.writes_.size(); ++i) {
        Slot& s = slots_[tx.writes_[i].x];
        s.value.store(tx.writes_[i].value, std::memory_order_relaxed);
        s.lock.store(LockWord::pack(wv, false), std::memory_order_release);
      }
    }
    tx.status_ = core::TxStatus::kCommitted;
    commits_.add();
    return true;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return;
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  std::size_t num_tvars() const override { return num_tvars_; }
  core::Value read_quiescent(core::TVarId x) const override {
    return slots_[x].value.load(std::memory_order_acquire);
  }
  std::string name() const override {
    return options_.rv_extension ? "tl2+ext" : "tl2";
  }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  struct alignas(runtime::kCacheLineSize) Slot {
    Atomic<std::uint64_t> lock{LockWord::pack(0, false)};
    Atomic<core::Value> value{0};
  };

  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  // Re-arm a pooled descriptor; set capacity survives. TL2 transactions
  // hold no locks before try_commit (and try_commit always releases), so
  // an abandoned predecessor needs no cleanup.
  void prepare(Txn& tx) {
    obs_tx_begin();
    // The shared-clock read that makes TL2 non-strictly-DAP.
    tx.rv_ = clock_.value.load(std::memory_order_acquire);
    tx.id_ = next_tx_id();
    tx.status_ = core::TxStatus::kActive;
    tx.reads_.clear();
    tx.writes_.clear();
  }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  // rv extension: sound iff every recorded read is still current at the
  // *new* clock value — the snapshot simply turns out to be fresher than
  // first assumed.
  bool try_extend(Txn& tx) {
    OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
    const std::uint64_t new_rv = clock_.value.load(std::memory_order_acquire);
    if (new_rv <= tx.rv_) return false;
    for (const auto& r : tx.reads_) {
      const std::uint64_t w = slots_[r.x].lock.load(std::memory_order_acquire);
      if (LockWord::locked(w) || LockWord::version(w) != r.version) {
        return false;
      }
    }
    tx.rv_ = new_rv;
    return true;
  }

  void unlock_prefix(Txn& tx, const std::vector<std::uint64_t>& base,
                     std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      slots_[tx.writes_[i].x].lock.store(LockWord::pack(base[i], false),
                                         std::memory_order_release);
    }
  }

  void abort_forced(Txn& tx, obs::AbortReason reason,
                    std::uint64_t key = obs::kNoKey) {
    tx.status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
  }

  const Tl2Options options_;
  const std::size_t num_tvars_;
  std::unique_ptr<Slot[]> slots_;
  runtime::CacheAligned<Atomic<std::uint64_t>> clock_{0};
};

using HwTl2 = Tl2<core::HwPlatform>;

}  // namespace oftm::lock
