// TmRegion tier, part 3: TL2 over raw memory.
//
// The same algorithm as src/lock/tl2.hpp — global version clock,
// invisible reads validated against a read version, commit-time locking in
// canonical order with bounded patience — but transacting over the words
// of a RegionHeap instead of boxed TVars, with all metadata in a global
// StripeTable hashed from the word's address. This is the shape the
// original TL2 paper actually ships (its "PS" mode): per-object metadata
// was the concession this repo's boxed tier made to the formal model, and
// the region tier removes it.
//
// Differences from the boxed Tl2, all forced by raw memory:
//
//   * Conflict unit = stripe, not t-variable. Validation compares stripe
//     versions; aliasing (granule neighbours or hash collisions) can only
//     manufacture extra conflicts, never hide one (stripe_table.hpp).
//   * Transactions can allocate and free heap blocks (tx_alloc/tx_free).
//     Allocations are transaction-private until commit: reads and writes
//     of own blocks bypass the stripe protocol entirely (in-place access),
//     which both saves redo-log traffic and avoids false aborts from the
//     stale stripe versions a recycled address range carries. Aborts
//     return the private blocks immediately; commits keep them. Frees are
//     deferred: a committed tx_free retires the block through the heap's
//     EpochManager so no concurrent (doomed) reader can see it recycled.
//   * Every transaction holds an epoch Guard from prepare() to its final
//     commit/abort/release — the pin that makes the deferral sound (the
//     full argument lives at the top of core/region.hpp).
//
// Accesses to heap words use std::atomic_ref: the heap is plain memory,
// but transactional loads/stores race by design and are rolled into the
// same acquire/release discipline as the boxed backend's Slot atomics.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/region.hpp"
#include "core/tm.hpp"
#include "lock/stripe_table.hpp"
#include "lock/versioned_lock.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/epoch.hpp"

namespace oftm::lock {

struct Tl2RegionOptions {
  int lock_patience = 64;  // spins per write-set stripe before self-abort
};

class Tl2Region final : private core::TmStatsMixin {
 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   protected:
    // A dropped portability-tier handle may leave the transaction active;
    // it still owns private allocations and the epoch pin — roll back
    // before the descriptor re-enters the pool (the tl.hpp pattern).
    void handle_released() noexcept override {
      if (tm_ != nullptr && status_ == core::TxStatus::kActive) {
        tm_->rollback_abort(*this);
      }
      core::Transaction::handle_released();
    }

   private:
    friend class Tl2Region;
    struct ReadEntry {
      std::uint32_t stripe;
      std::uint64_t version;  // stripe version observed at read time
    };
    Tl2Region* tm_ = nullptr;
    core::TxId id_ = 0;
    std::uint64_t rv_ = 0;
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<ReadEntry> reads_;
    core::RegionWriteSet writes_;
    std::vector<void*> allocs_;  // private until commit
    std::vector<void*> frees_;   // retired at commit
    // Commit-path scratch, kept across transactions so the commit protocol
    // allocates nothing after warm-up.
    struct CommitEntry {
      core::Value* addr;
      core::Value value;
      std::uint32_t stripe;
    };
    std::vector<CommitEntry> commit_set_;
    std::vector<std::uint32_t> locked_stripes_;
    std::vector<std::uint64_t> lock_versions_;
    // Pin held for the whole active lifetime; see core/region.hpp.
    std::optional<runtime::EpochManager::Guard> guard_;

    bool owns(const void* addr, const core::RegionHeap& heap) const {
      for (void* p : allocs_) {
        const std::byte* b = static_cast<const std::byte*>(p);
        const std::byte* a = static_cast<const std::byte*>(addr);
        if (a >= b && a < b + heap.block_bytes(p)) return true;
      }
      return false;
    }
  };

  using Session = core::PooledTmSession<Txn>;

  explicit Tl2Region(const core::RegionOptions& options,
                     Tl2RegionOptions tl2_options = {})
      : options_(tl2_options),
        heap_(options.capacity_bytes),
        stripes_(options.stripe_count_log2 != 0
                     ? options.stripe_count_log2
                     : auto_stripe_count_log2(options.capacity_bytes / 8),
                 options.granularity_log2) {}

  core::RegionHeap& heap() noexcept { return heap_; }
  const StripeTable& stripes() const noexcept { return stripes_; }

  // Re-arm a pooled descriptor (set capacity survives). Finishes an
  // abandoned active predecessor first: unlike the boxed TL2, an active
  // region transaction owns resources (private blocks, the epoch pin).
  void prepare(Txn& tx) {
    obs_tx_begin();
    if (tx.tm_ != nullptr && tx.status_ == core::TxStatus::kActive) {
      rollback_abort(tx);
    }
    tx.tm_ = this;
    tx.guard_.emplace(heap_.epochs());
    tx.rv_ = clock_.value.load(std::memory_order_acquire);
    tx.id_ = next_tx_id();
    tx.status_ = core::TxStatus::kActive;
    tx.reads_.clear();
    tx.writes_.clear();
    tx.allocs_.clear();
    tx.frees_.clear();
  }

  std::optional<core::Value> read(Txn& tx, const core::Value* addr) {
    reads_.add();
    OFTM_ASSERT(heap_.contains(addr));
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;

    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      if (const core::Value* w = tx.writes_.find(addr)) return *w;
      if (tx.owns(addr, heap_)) {
        // Private block: nobody else can touch it, and its stripes carry
        // whatever versions the address range's previous life left behind —
        // bypass validation entirely.
        return std::atomic_ref<const core::Value>(*addr).load(
            std::memory_order_relaxed);
      }
    }

    const std::size_t si = stripes_.index_of(addr);
    const auto& s = stripes_.stripe(si);
    const std::uint64_t w1 = s.load(std::memory_order_acquire);
    const core::Value v =
        std::atomic_ref<const core::Value>(*addr).load(
            std::memory_order_relaxed);
    const std::uint64_t w2 = s.load(std::memory_order_acquire);
    // Valid iff stable, unlocked, and not newer than our read version.
    if (w1 == w2 && !LockWord::locked(w1) && LockWord::version(w1) <= tx.rv_) {
      tx.reads_.push_back(
          {static_cast<std::uint32_t>(si), LockWord::version(w1)});
      return v;
    }
    abort_forced(tx, obs::AbortReason::kReadValidation, si);
    return std::nullopt;
  }

  bool write(Txn& tx, core::Value* addr, core::Value v) {
    writes_.add();
    OFTM_ASSERT(heap_.contains(addr));
    if (tx.status_ != core::TxStatus::kActive) return false;
    if (tx.owns(addr, heap_)) {
      // Private block: write in place, no redo log, no commit-time lock.
      std::atomic_ref<core::Value>(*addr).store(v, std::memory_order_relaxed);
      return true;
    }
    tx.writes_.put(addr, v);
    return true;
  }

  // Allocate a zeroed block inside the transaction. nullptr when the arena
  // is exhausted — not an abort; the caller decides (exhaustion is not a
  // conflict and retrying will not help).
  void* tx_alloc(Txn& tx, std::size_t bytes) {
    if (tx.status_ != core::TxStatus::kActive) return nullptr;
    void* p = heap_.alloc(bytes);
    if (p != nullptr) tx.allocs_.push_back(p);
    return p;
  }

  // Free a block inside the transaction. Deferred to commit: a committed
  // free retires the block through the grace period; an abort forgets it.
  bool tx_free(Txn& tx, void* p) {
    OFTM_ASSERT(heap_.contains(p));
    if (tx.status_ != core::TxStatus::kActive) return false;
    tx.frees_.push_back(p);
    return true;
  }

  bool try_commit(Txn& tx) {
    if (tx.status_ != core::TxStatus::kActive) return false;

    // Read-only fast path (no shared words written): every read was
    // validated against rv at read time; nothing to lock. Private-block
    // writes and alloc/free logs still settle.
    if (tx.writes_.empty()) {
      settle_commit(tx);
      return true;
    }

    // Gather the redo log into commit scratch, sort by (stripe, addr), and
    // lock each distinct stripe once, in ascending order (deadlock
    // avoidance across committers), bounded spins (self-abort liveness).
    auto& cs = tx.commit_set_;
    cs.clear();
    tx.writes_.for_each([&](core::Value* addr, core::Value v) {
      cs.push_back({addr, v, static_cast<std::uint32_t>(
                                 stripes_.index_of(addr))});
    });
    std::sort(cs.begin(), cs.end(), [](const auto& a, const auto& b) {
      return a.stripe != b.stripe ? a.stripe < b.stripe : a.addr < b.addr;
    });

    std::vector<std::uint32_t>& locked = tx.locked_stripes_;
    std::vector<std::uint64_t>& base = tx.lock_versions_;
    locked.clear();
    base.clear();
    core::HwPlatform::Backoff backoff;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
      for (const auto& e : cs) {
        if (!locked.empty() && locked.back() == e.stripe) continue;  // dup
        auto& s = stripes_.stripe(e.stripe);
        int spin = 0;
        for (;;) {
          std::uint64_t w = s.load(std::memory_order_acquire);
          if (!LockWord::locked(w)) {
            const std::uint64_t held =
                LockWord::pack(LockWord::version(w), true);
            if (s.compare_exchange_strong(w, held,
                                          std::memory_order_acq_rel)) {
              locked.push_back(e.stripe);
              base.push_back(LockWord::version(w));
              break;
            }
          }
          if (++spin > options_.lock_patience) {
            unlock_stripes(tx, base, locked.size());
            abort_forced(tx, obs::AbortReason::kLockTimeout, e.stripe);
            return false;
          }
          cm_backoffs_.add();
          OFTM_OBS_PHASE(obs_, obs::Phase::kBackoff);
          backoff.pause();
        }
      }
    }

    // Commit timestamp from the shared clock.
    const std::uint64_t wv =
        clock_.value.fetch_add(1, std::memory_order_acq_rel) + 1;

    // Validate the read set unless nobody could have committed in between.
    // "Own" is stripe membership: a stripe this transaction locked is
    // allowed to appear locked.
    if (tx.rv_ + 1 != wv) {
      OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
      for (const auto& r : tx.reads_) {
        const bool own =
            std::binary_search(locked.begin(), locked.end(), r.stripe);
        const std::uint64_t w =
            stripes_.stripe(r.stripe).load(std::memory_order_acquire);
        if ((LockWord::locked(w) && !own) || LockWord::version(w) > tx.rv_) {
          unlock_stripes(tx, base, locked.size());
          abort_forced(tx, obs::AbortReason::kReadValidation, r.stripe);
          return false;
        }
      }
    }

    // Write back, then release every stripe with the commit version.
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      for (const auto& e : cs) {
        std::atomic_ref<core::Value>(*e.addr).store(
            e.value, std::memory_order_relaxed);
      }
      for (std::uint32_t si : locked) {
        stripes_.stripe(si).store(LockWord::pack(wv, false),
                                  std::memory_order_release);
      }
    }
    settle_commit(tx);
    return true;
  }

  void try_abort(Txn& tx) {
    if (tx.status_ != core::TxStatus::kActive) return;
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  core::Value read_quiescent(const core::Value* addr) const {
    return std::atomic_ref<const core::Value>(*addr).load(
        std::memory_order_acquire);
  }

  std::string name() const { return "tl2-region"; }
  runtime::TxStats stats() const { return collect_stats(); }
  void reset_stats() { reset_collect_stats(); }

 private:
  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(core::HwPlatform::thread_id(), ++counter);
  }

  // Commit epilogue: settle the allocation logs, then drop the pin.
  // Self-allocated-and-freed blocks were never published — immediate
  // reuse; foreign frees wait out the grace period.
  void settle_commit(Txn& tx) {
    for (void* p : tx.frees_) {
      auto it = std::find(tx.allocs_.begin(), tx.allocs_.end(), p);
      if (it != tx.allocs_.end()) {
        *it = tx.allocs_.back();
        tx.allocs_.pop_back();
        heap_.free_now(p);
      } else {
        heap_.retire(p);
      }
    }
    tx.status_ = core::TxStatus::kCommitted;
    commits_.add();
    tx.guard_.reset();
  }

  // Abort epilogue: private blocks were never visible — return them
  // immediately; frees never happened.
  void rollback(Txn& tx) {
    for (void* p : tx.allocs_) heap_.free_now(p);
    tx.allocs_.clear();
    tx.frees_.clear();
    tx.guard_.reset();
  }

  // Abandoned-handle / re-arm cleanup: the abort was requested by the
  // owner's side (dropping the handle), not forced by a conflict.
  void rollback_abort(Txn& tx) {
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  void abort_forced(Txn& tx, obs::AbortReason reason,
                    std::uint64_t key = obs::kNoKey) {
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
  }

  void unlock_stripes(Txn& tx, const std::vector<std::uint64_t>& base,
                      std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      stripes_.stripe(tx.locked_stripes_[i])
          .store(LockWord::pack(base[i], false), std::memory_order_release);
    }
  }

  const Tl2RegionOptions options_;
  core::RegionHeap heap_;
  StripeTable stripes_;
  runtime::CacheAligned<std::atomic<std::uint64_t>> clock_{0};
};

}  // namespace oftm::lock
