// Per-t-variable versioned write lock, the metadata word of the TL/TL2
// family ([11], [10] in the paper's bibliography): bit 0 = locked, bits
// 63..1 = version, incremented on every committed write.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace oftm::lock {

struct LockWord {
  static constexpr std::uint64_t kLockedBit = 1;

  static constexpr std::uint64_t pack(std::uint64_t version,
                                      bool locked) noexcept {
    return (version << 1) | (locked ? kLockedBit : 0);
  }
  static constexpr bool locked(std::uint64_t w) noexcept {
    return (w & kLockedBit) != 0;
  }
  static constexpr std::uint64_t version(std::uint64_t w) noexcept {
    return w >> 1;
  }
};

}  // namespace oftm::lock
