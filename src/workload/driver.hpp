// Multi-threaded workload driver: generates transactional workloads against
// any TM, measures throughput/abort behaviour and per-transaction commit
// latency, and (optionally) enforces the unique-writes discipline plus an
// invariant the checkers can verify afterwards.
//
// Scaling design: each worker owns a cache-line-isolated arena (its
// pre-generated access lists, its RunResult counters and its latency
// histograms). The hot path touches only that arena; results are flushed
// into the shared aggregate exactly once, at run end, so driver overhead
// stays flat as thread counts grow.
//
// Execution tiers: the measured loop runs on the pooled-session hot tier —
// each worker begins every transaction on its own TmSession, so after
// warm-up a transaction costs zero allocations and (when `run_workload` is
// instantiated with a concrete backend type via workload::visit_tm) no
// virtual dispatch either. The `core::TransactionalMemory&` overload keeps
// the fully type-erased path for wrappers like the history recorder.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/tm.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "runtime/assert.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/stats.hpp"
#include "runtime/topology.hpp"
#include "runtime/xorshift.hpp"
#include "workload/zipf.hpp"

namespace oftm::workload {

enum class AccessPattern {
  kUniform,      // uniform random t-variables
  kZipf,         // skewed (s = zipf_s)
  kPartitioned,  // thread i only touches its own t-variable partition
                 // (fully disjoint transactions: the strict-DAP best case)
};

struct WorkloadConfig {
  int threads = 4;
  std::uint64_t tx_per_thread = 10000;
  // Duration-based run mode: when > 0, each worker keeps generating
  // transactions until this much wall time has elapsed after the start
  // barrier, and tx_per_thread is ignored. The mode long soaks and
  // time-bounded bench sweeps use; 0 (default) keeps the exact
  // tx-count-per-thread semantics the accounting tests rely on.
  double run_seconds = 0;
  int ops_per_tx = 8;
  double write_fraction = 0.2;  // probability an op is a write
  // Mixed-regime knobs, so one sweep covers the paper's contended and
  // uncontended regimes at once:
  //  * read_only_fraction — probability a whole transaction is read-only
  //    (its ops ignore write_fraction). The ReadMostly regime at 0.8+.
  //  * hot_op_fraction / hot_set_size — per-op probability of redirecting
  //    the access into the first hot_set_size t-variables (a HotSpot
  //    overlay on any base pattern). hot_set_size == 0 defaults to
  //    max(1, num_tvars / 64).
  double read_only_fraction = 0.0;
  double hot_op_fraction = 0.0;
  std::size_t hot_set_size = 0;
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_s = 0.99;
  std::uint64_t seed = 42;
  int max_retries = 1'000'000;  // per transaction before giving up
  bool pin_threads = true;
};

// Upper-bound estimate of the recorder events a count-mode run of `config`
// produces: every op is at most a read+write invocation/response quartet,
// plus the tryC pair, scaled by committed transactions and an abort-retry
// slack. The checked-stress harness hands this to Recorder::reserve so the
// event log never regrows mid-run (regrowth stalls every worker behind the
// recorder lock and would bend the large-history timings). Duration-mode
// (run_seconds > 0) runs have no a-priori bound; the estimate then covers
// tx_per_thread as a best effort.
//
// abort_slack is extra attempts per committed transaction. The default
// (negative = derive from config) scales with the configured contention:
// the old flat 0.5 underestimated hot-set and zipf runs, whose retry rates
// routinely exceed one abort per commit — the checked-stress tiers now
// assert Recorder::size() <= Recorder::reserved() to keep this honest.
std::size_t estimated_history_events(const WorkloadConfig& config,
                                     double abort_slack = -1.0);

// t-variable range [base, base + size) owned by thread t under
// AccessPattern::kPartitioned. The remainder when n is not a multiple of
// threads is folded into the last partition so the union always covers
// [0, n) exactly.
struct PartitionBounds {
  std::size_t base = 0;
  std::size_t size = 0;
};
PartitionBounds partition_bounds(std::size_t num_tvars, int threads,
                                 int thread);

// Structured per-run report. Per-worker instances accumulate privately
// during the run and are merged (merge_from) into the returned aggregate
// after the workers join.
struct RunResult {
  double seconds = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;
  std::uint64_t gave_up = 0;  // transactions that hit max_retries
  // Wall time from a logical transaction's first begin() to its successful
  // commit, retries included, in nanoseconds. count() == committed.
  runtime::Log2Histogram commit_latency_ns;
  // Aborted attempts a committed transaction burned before succeeding
  // (0 == first-try commit). count() == committed.
  runtime::Log2Histogram retries_per_commit;
  // Commits per worker, in thread order — the per-thread skew the fairness
  // analysis reads (a starved worker shows up as a small entry).
  std::vector<std::uint64_t> per_thread_committed;
  runtime::TxStats tm_stats;

  double throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  // Worker flush: concatenates o's per-thread entries after this one's
  // (the callers in driver.cpp merge workers in thread order). Does not
  // touch seconds/tm_stats — those are whole-run properties the driver
  // fills in once.
  void merge_from(const RunResult& o);
  // Fold a later run of the same configuration (e.g. another benchmark
  // iteration) into this one: counters and histograms add, seconds
  // extends, per-thread commits add element-wise so entry i stays "worker
  // i" across iterations, tm_stats accumulates.
  void accumulate_run(const RunResult& o);
  std::string to_string() const;
};

namespace detail {

using Clock = std::chrono::steady_clock;

inline double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

inline std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// Unique-writes discipline: no two writes anywhere produce the same value,
// and no write produces the initial value 0.
inline core::Value unique_value(int thread, std::uint64_t counter) {
  return (static_cast<core::Value>(thread + 1) << 40) | (counter + 1);
}

inline constexpr int kMaxOpsPerTx = 64;

// One pre-generated logical transaction: its access list plus a write
// bitmask (bit k set == op k is a read-modify-write).
struct TxSpec {
  core::TVarId vars[kMaxOpsPerTx];
  std::uint64_t write_mask = 0;
};

// Number of pre-generated transaction specs each worker cycles through
// (count mode with fewer transactions allocates only tx_per_thread). Large
// enough that recycling does not visibly narrow the access distribution,
// small enough that a worker's spec ring (1024 * 520 B ≈ 0.5 MiB) stays
// cache-resident instead of evicting the TM's own metadata.
inline constexpr std::size_t kArenaSpecs = 1024;

// Everything a worker touches on the hot path, isolated on its own cache
// line(s): pre-generated access lists, private result counters and
// histograms. No shared writes until flush at run end.
struct alignas(runtime::kCacheLineSize) WorkerArena {
  std::vector<TxSpec> specs;
  RunResult local;
};

// Draw the access lists for one worker into its arena, before the start
// barrier, so generation cost (PRNG, zipf rejection sampling) is entirely
// off the measured path and patterns stay reproducible per (seed, thread).
void pregenerate_specs(WorkerArena& arena, const WorkloadConfig& config,
                       std::size_t n, int t);

// The measured loop, templated over the TM type: with a concrete backend
// (final class) every session/read/write/commit call devirtualizes and
// inlines; with Tm = core::TransactionalMemory this is the portable
// virtual-dispatch path. Either way every transaction runs on the
// worker's pooled session — no per-transaction allocations.
template <typename Tm>
RunResult run_workload_impl(Tm& tm, const WorkloadConfig& config) {
  OFTM_ASSERT(config.threads >= 1);
  const std::size_t n = tm.num_tvars();
  OFTM_ASSERT(n >= static_cast<std::size_t>(config.threads));

  runtime::SpinBarrier barrier(static_cast<std::uint32_t>(config.threads) + 1);
  std::vector<std::thread> workers;
  std::vector<WorkerArena> arenas(static_cast<std::size_t>(config.threads));

  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      if (config.pin_threads) runtime::pin_current_thread(t);
      WorkerArena& arena = arenas[static_cast<std::size_t>(t)];
      pregenerate_specs(arena, config, n, t);
      RunResult& mine = arena.local;
      // The worker's pooled session: one reusable descriptor for every
      // transaction (and retry) this thread runs.
      core::TmSession& session = tm.this_thread_session();
      // Per-op write decisions are baked into the specs; the value counter
      // is the only generation state left on the hot path.
      std::uint64_t value_counter = 0;
#if OFTM_OBS
      // Trace wiring resolved once per worker, before the start barrier:
      // when $OFTM_TRACE_FILE is unset `tracing` is a dead constant and
      // the measured loop pays one untaken branch per attempt.
      obs::TraceSink& trace_sink = obs::TraceSink::instance();
      const bool tracing = trace_sink.enabled();
      const char* trace_backend =
          tracing ? trace_sink.intern(tm.name()) : nullptr;
#endif

      barrier.arrive_and_wait();

      const bool timed = config.run_seconds > 0;
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(config.run_seconds));
      const int ops =
          config.ops_per_tx <= kMaxOpsPerTx ? config.ops_per_tx : kMaxOpsPerTx;
      const std::size_t spec_count = arena.specs.size();

      for (std::uint64_t i = 0; timed || i < config.tx_per_thread; ++i) {
        // The per-transaction latency timestamp doubles as the duration-mode
        // deadline check — no extra clock reads on the hot path.
        const auto tx_start = Clock::now();
        if (timed && tx_start >= deadline) break;
        // Cycle the pre-generated access lists; retries replay the same
        // accesses (it is the same transaction restarted).
        const TxSpec& spec = arena.specs[i % spec_count];

        bool done = false;
        bool expired = false;
        int attempt = 0;
        for (; attempt < config.max_retries && !done; ++attempt) {
          // In duration mode the retry loop must also honour the deadline:
          // a hot-key transaction can otherwise spin through max_retries
          // (seconds of wall time) long after the budget ran out.
          if (timed && (attempt & 0xFF) == 0xFF && Clock::now() >= deadline) {
            expired = true;
            break;
          }
#if OFTM_OBS
          const std::uint64_t span_start = tracing ? obs::now_ticks() : 0;
#endif
          core::Transaction& txn = tm.begin(session);
          bool ok = true;
          for (int k = 0; k < ops && ok; ++k) {
            if ((spec.write_mask >> k) & 1) {
              // Read-modify-write discipline: every write is preceded by a
              // read of the same t-variable. Besides being the realistic
              // access shape, it lets the history checker reconstruct
              // per-variable version orders exactly (see
              // history/checker.hpp).
              ok = tm.read(txn, spec.vars[k]).has_value() &&
                   tm.write(txn, spec.vars[k],
                            unique_value(t, value_counter++));
            } else {
              ok = tm.read(txn, spec.vars[k]).has_value();
            }
          }
          if (ok && tm.try_commit(txn)) {
            ++mine.committed;
            mine.commit_latency_ns.record(ns_between(tx_start, Clock::now()));
            mine.retries_per_commit.record(static_cast<std::uint64_t>(attempt));
            done = true;
          } else {
            ++mine.aborted_attempts;
          }
#if OFTM_OBS
          if (tracing) {
            obs::TraceEvent e;
            e.start_ticks = span_start;
            e.dur_ticks = obs::now_ticks() - span_start;
            e.tx_seq = i;
            e.attempt = static_cast<std::uint32_t>(attempt);
            e.tid = static_cast<std::uint16_t>(t);
            e.kind = done ? obs::SpanKind::kCommit : obs::SpanKind::kAbort;
            // Valid for aborts only: the reason the backend stamped when it
            // accounted this thread's most recent abort.
            e.reason = obs::last_abort_reason();
            e.backend = trace_backend;
            trace_sink.record(e);
          }
#endif
        }
        // Expired mid-retry: the unfinished logical transaction is simply
        // abandoned (its failed attempts are already counted in
        // aborted_attempts; no TM transaction is live here). It is not a
        // gave_up — it never exhausted max_retries.
        if (expired) break;
        if (!done) ++mine.gave_up;
      }
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  const auto start = Clock::now();
  barrier.arrive_and_wait();
  const auto stop = Clock::now();
  for (auto& w : workers) w.join();

  // Single flush point: per-worker arenas merge into the aggregate only
  // after every worker has passed the end barrier.
  RunResult total;
  total.seconds = seconds_between(start, stop);
  for (WorkerArena& arena : arenas) {
    arena.local.per_thread_committed.assign(1, arena.local.committed);
    total.merge_from(arena.local);
  }
  total.tm_stats = tm.stats();
#if OFTM_OBS
  // Quiescent point (all workers joined): the per-reason counters must
  // reconcile exactly with the aggregate abort count, and the trace file —
  // if one is configured — is rewritten with everything recorded so far.
  total.tm_stats.check_abort_reasons();
  obs::TraceSink::instance().flush();
#endif
  return total;
}

}  // namespace detail

// Run the configured workload to completion. Written values follow the
// unique-writes discipline (value = (thread+1) << 40 | counter), so recorded
// histories can be checked with history::check_mvsg.
RunResult run_workload(core::TransactionalMemory& tm,
                       const WorkloadConfig& config);

// Same loop with the TM's concrete type visible to the compiler: backends
// are final classes, so session/begin/read/write/try_commit devirtualize
// and inline. Pair with workload::visit_tm to go from a recipe name to
// this overload.
template <typename Tm>
RunResult run_workload(Tm& tm, const WorkloadConfig& config) {
  return detail::run_workload_impl(tm, config);
}

// Transfer workload preserving a checkable invariant: `accounts` t-vars
// each start with `initial_balance`; every transaction moves a random
// amount between two accounts. After the run, the sum of balances must be
// accounts * initial_balance. Returns false (in *invariant_ok) on violation.
// pin_threads defaults like WorkloadConfig; pass false for oversubscribed
// runs (threads > cores).
RunResult run_bank_workload(core::TransactionalMemory& tm, int threads,
                            std::uint64_t tx_per_thread, std::size_t accounts,
                            core::Value initial_balance, std::uint64_t seed,
                            bool* invariant_ok, bool pin_threads = true);

}  // namespace oftm::workload
