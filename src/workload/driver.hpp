// Multi-threaded workload driver: generates transactional workloads against
// any core::TransactionalMemory, measures throughput/abort behaviour, and
// (optionally) enforces the unique-writes discipline plus an invariant the
// checkers can verify afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tm.hpp"
#include "runtime/stats.hpp"

namespace oftm::workload {

enum class AccessPattern {
  kUniform,      // uniform random t-variables
  kZipf,         // skewed (s = zipf_s)
  kPartitioned,  // thread i only touches its own t-variable partition
                 // (fully disjoint transactions: the strict-DAP best case)
};

struct WorkloadConfig {
  int threads = 4;
  std::uint64_t tx_per_thread = 10000;
  // Duration-based run mode: when > 0, each worker keeps generating
  // transactions until this much wall time has elapsed after the start
  // barrier, and tx_per_thread is ignored. The mode long soaks and
  // time-bounded bench sweeps use; 0 (default) keeps the exact
  // tx-count-per-thread semantics the accounting tests rely on.
  double run_seconds = 0;
  int ops_per_tx = 8;
  double write_fraction = 0.2;  // probability an op is a write
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_s = 0.99;
  std::uint64_t seed = 42;
  int max_retries = 1'000'000;  // per transaction before giving up
  bool pin_threads = true;
};

struct RunResult {
  double seconds = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;
  std::uint64_t gave_up = 0;  // transactions that hit max_retries
  runtime::TxStats tm_stats;

  double throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  std::string to_string() const;
};

// Run the configured workload to completion. Written values follow the
// unique-writes discipline (value = (thread+1) << 40 | counter), so recorded
// histories can be checked with history::check_mvsg.
RunResult run_workload(core::TransactionalMemory& tm,
                       const WorkloadConfig& config);

// Transfer workload preserving a checkable invariant: `accounts` t-vars
// each start with `initial_balance`; every transaction moves a random
// amount between two accounts. After the run, the sum of balances must be
// accounts * initial_balance. Returns false (in *invariant_ok) on violation.
RunResult run_bank_workload(core::TransactionalMemory& tm, int threads,
                            std::uint64_t tx_per_thread, std::size_t accounts,
                            core::Value initial_balance, std::uint64_t seed,
                            bool* invariant_ok);

}  // namespace oftm::workload
