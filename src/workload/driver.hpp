// Multi-threaded workload driver: generates transactional workloads against
// any core::TransactionalMemory, measures throughput/abort behaviour and
// per-transaction commit latency, and (optionally) enforces the
// unique-writes discipline plus an invariant the checkers can verify
// afterwards.
//
// Scaling design: each worker owns a cache-line-isolated arena (its
// pre-generated access lists, its RunResult counters and its latency
// histograms). The hot path touches only that arena; results are flushed
// into the shared aggregate exactly once, at run end, so driver overhead
// stays flat as thread counts grow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tm.hpp"
#include "runtime/stats.hpp"

namespace oftm::workload {

enum class AccessPattern {
  kUniform,      // uniform random t-variables
  kZipf,         // skewed (s = zipf_s)
  kPartitioned,  // thread i only touches its own t-variable partition
                 // (fully disjoint transactions: the strict-DAP best case)
};

struct WorkloadConfig {
  int threads = 4;
  std::uint64_t tx_per_thread = 10000;
  // Duration-based run mode: when > 0, each worker keeps generating
  // transactions until this much wall time has elapsed after the start
  // barrier, and tx_per_thread is ignored. The mode long soaks and
  // time-bounded bench sweeps use; 0 (default) keeps the exact
  // tx-count-per-thread semantics the accounting tests rely on.
  double run_seconds = 0;
  int ops_per_tx = 8;
  double write_fraction = 0.2;  // probability an op is a write
  // Mixed-regime knobs, so one sweep covers the paper's contended and
  // uncontended regimes at once:
  //  * read_only_fraction — probability a whole transaction is read-only
  //    (its ops ignore write_fraction). The ReadMostly regime at 0.8+.
  //  * hot_op_fraction / hot_set_size — per-op probability of redirecting
  //    the access into the first hot_set_size t-variables (a HotSpot
  //    overlay on any base pattern). hot_set_size == 0 defaults to
  //    max(1, num_tvars / 64).
  double read_only_fraction = 0.0;
  double hot_op_fraction = 0.0;
  std::size_t hot_set_size = 0;
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_s = 0.99;
  std::uint64_t seed = 42;
  int max_retries = 1'000'000;  // per transaction before giving up
  bool pin_threads = true;
};

// t-variable range [base, base + size) owned by thread t under
// AccessPattern::kPartitioned. The remainder when n is not a multiple of
// threads is folded into the last partition so the union always covers
// [0, n) exactly.
struct PartitionBounds {
  std::size_t base = 0;
  std::size_t size = 0;
};
PartitionBounds partition_bounds(std::size_t num_tvars, int threads,
                                 int thread);

// Structured per-run report. Per-worker instances accumulate privately
// during the run and are merged (merge_from) into the returned aggregate
// after the workers join.
struct RunResult {
  double seconds = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;
  std::uint64_t gave_up = 0;  // transactions that hit max_retries
  // Wall time from a logical transaction's first begin() to its successful
  // commit, retries included, in nanoseconds. count() == committed.
  runtime::Log2Histogram commit_latency_ns;
  // Aborted attempts a committed transaction burned before succeeding
  // (0 == first-try commit). count() == committed.
  runtime::Log2Histogram retries_per_commit;
  // Commits per worker, in thread order — the per-thread skew the fairness
  // analysis reads (a starved worker shows up as a small entry).
  std::vector<std::uint64_t> per_thread_committed;
  runtime::TxStats tm_stats;

  double throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  // Worker flush: concatenates o's per-thread entries after this one's
  // (the callers in driver.cpp merge workers in thread order). Does not
  // touch seconds/tm_stats — those are whole-run properties the driver
  // fills in once.
  void merge_from(const RunResult& o);
  // Fold a later run of the same configuration (e.g. another benchmark
  // iteration) into this one: counters and histograms add, seconds
  // extends, per-thread commits add element-wise so entry i stays "worker
  // i" across iterations, tm_stats accumulates.
  void accumulate_run(const RunResult& o);
  std::string to_string() const;
};

// Run the configured workload to completion. Written values follow the
// unique-writes discipline (value = (thread+1) << 40 | counter), so recorded
// histories can be checked with history::check_mvsg.
RunResult run_workload(core::TransactionalMemory& tm,
                       const WorkloadConfig& config);

// Transfer workload preserving a checkable invariant: `accounts` t-vars
// each start with `initial_balance`; every transaction moves a random
// amount between two accounts. After the run, the sum of balances must be
// accounts * initial_balance. Returns false (in *invariant_ok) on violation.
// pin_threads defaults like WorkloadConfig; pass false for oversubscribed
// runs (threads > cores).
RunResult run_bank_workload(core::TransactionalMemory& tm, int threads,
                            std::uint64_t tx_per_thread, std::size_t accounts,
                            core::Value initial_balance, std::uint64_t seed,
                            bool* invariant_ok, bool pin_threads = true);

}  // namespace oftm::workload
