// Structured run reports: the one JSON emitter every bench shares.
//
// Each measured configuration becomes one self-describing JSON line
// (JSON-lines, not one big document, so partially-completed runs still
// yield parseable output and `grep '"bench":"B1"'` works). Destination:
// the file named by $OFTM_REPORT_FILE (appended), else stdout. The bench
// diff tooling (bench/diff_baselines.py) and the README "Measuring"
// section document the schema.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/stats.hpp"
#include "workload/driver.hpp"

namespace oftm::workload::report {

// Minimal JSON object builder — no external dependency, insertion-ordered,
// strings escaped. Nested objects/arrays go in via field_raw.
class Json {
 public:
  Json& field(std::string_view key, std::string_view value);
  Json& field(std::string_view key, const char* value);
  Json& field(std::string_view key, double value);
  Json& field(std::string_view key, std::uint64_t value);
  Json& field(std::string_view key, std::int64_t value);
  Json& field(std::string_view key, int value);
  Json& field(std::string_view key, bool value);
  // Splice pre-rendered JSON (an object, array or number) under key.
  Json& field_raw(std::string_view key, std::string_view json);

  std::string str() const;  // "{...}"

 private:
  void key_prefix(std::string_view key);
  std::string body_;
};

std::string escape(std::string_view s);

// Histogram summary: {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,
// "p999":..,"max":..} (quantiles are log2-bucket upper bounds; p999 and
// max are the tail-latency headline fields the service bench reports).
std::string to_json(const runtime::Log2Histogram& h);

// Backend-side counters: commits/aborts/reads/writes/backoffs/kills.
std::string to_json(const runtime::TxStats& s);

// The full structured run report: wall time, throughput, abort breakdown,
// commit-latency and retry histograms, per-thread commit skew
// (min/max/imbalance across workers).
std::string to_json(const RunResult& r);

// Emit one record (appends a newline). Honours $OFTM_REPORT_FILE.
void emit(const Json& record);

// The common case: a driver-measured run. scenario names the mix
// ("read_mostly", "zipf", ...); the config's knobs are inlined so a report
// line is reproducible without the source. num_tvars is the working-set
// size the TM was built with (it lives outside WorkloadConfig); 0 omits
// the field.
void emit_run(std::string_view bench, std::string_view scenario,
              std::string_view backend, const WorkloadConfig& config,
              const RunResult& result, std::size_t num_tvars = 0);

}  // namespace oftm::workload::report
