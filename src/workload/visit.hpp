// Static-dispatch backend factory: construct the TM a recipe names as its
// *concrete* type and hand it to a generic lambda. Where make_tm() returns
// a type-erased core::TransactionalMemory (one virtual call per operation),
// visit_tm() lets the driver and benches instantiate their hot loops per
// backend — reads, writes and commits devirtualize and inline, so harness
// overhead stops masking the backend deltas the repo exists to measure.
//
//   workload::visit_tm(name, num_tvars, [&](auto& tm) {
//     result = workload::run_workload(tm, config);  // concrete overload
//   });
//
// Accepts exactly the recipes make_tm() accepts (same names, same options,
// same error behaviour — a drift test in tm_conformance_test.cpp pins the
// two tables against each other). The TM lives for the duration of the
// call; the lambda's return value (if any) is passed through.
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "cm/managers.hpp"
#include "core/region_tm.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "lock/coarse.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "lock/tl2_region.hpp"
#include "norec/norec.hpp"
#include "norec/norec_region.hpp"

namespace oftm::workload {

template <typename F>
auto visit_tm(const std::string& name, std::size_t num_tvars, F&& f) {
  // All branches must agree on the return type; a generic lambda does.
  using R = std::invoke_result_t<F&, norec::HwNorec&>;

  std::string base = name;
  std::string cm_name = "polite";
  bool has_cm = false;
  if (const auto colon = name.find(':'); colon != std::string::npos) {
    base = name.substr(0, colon);
    cm_name = name.substr(colon + 1);
    has_cm = true;
  }
  // Only the DSTM family takes a contention manager; a ':<cm>' suffix on
  // any other backend is a recipe typo and must fail loudly, not silently
  // run the base backend.
  if (has_cm && base != "dstm" && base != "dstm-collapse" &&
      base != "dstm-visible") {
    throw std::invalid_argument("backend does not take a contention manager: " +
                                name);
  }

  auto invoke = [&f](auto& tm) -> R {
    if constexpr (std::is_void_v<R>) {
      f(tm);
    } else {
      return f(tm);
    }
  };

  if (base == "dstm" || base == "dstm-collapse" || base == "dstm-visible") {
    dstm::DstmOptions options;
    options.eager_collapse = (base == "dstm-collapse");
    options.visible_reads = (base == "dstm-visible");
    dstm::HwDstm tm(num_tvars, cm::make_manager(cm_name), options);
    return invoke(tm);
  }
  if (base == "foctm") {
    foctm::Foctm<core::HwPlatform, foc::CasFocPolicy<core::HwPlatform>> tm(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/false});
    return invoke(tm);
  }
  if (base == "foctm-hinted") {
    foctm::Foctm<core::HwPlatform, foc::CasFocPolicy<core::HwPlatform>> tm(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/true});
    return invoke(tm);
  }
  if (base == "foctm-strict") {
    foctm::Foctm<core::HwPlatform, foc::StrictFocPolicy<core::HwPlatform>> tm(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/true});
    return invoke(tm);
  }
  if (base == "tl") {
    lock::HwTl tm(num_tvars);
    return invoke(tm);
  }
  if (base == "tl2") {
    lock::HwTl2 tm(num_tvars);
    return invoke(tm);
  }
  if (base == "tl2-ext") {
    lock::Tl2Options options;
    options.rv_extension = true;
    lock::HwTl2 tm(num_tvars, options);
    return invoke(tm);
  }
  if (base == "coarse") {
    lock::HwCoarse tm(num_tvars);
    return invoke(tm);
  }
  if (base == "norec") {
    norec::HwNorec tm(num_tvars);
    return invoke(tm);
  }
  if (base == "norec-bloom") {
    norec::NorecOptions options;
    options.bloom_reads = true;
    norec::HwNorec tm(num_tvars, options);
    return invoke(tm);
  }
  if (base == "tl2-region") {
    core::RegionWordTm<lock::Tl2Region> tm(num_tvars);
    return invoke(tm);
  }
  if (base == "norec-region") {
    core::RegionWordTm<norec::NorecRegion> tm(num_tvars);
    return invoke(tm);
  }
  throw std::invalid_argument("unknown TM backend: " + name);
}

}  // namespace oftm::workload
