#include "workload/driver.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "runtime/assert.hpp"
#include "runtime/barrier.hpp"
#include "runtime/topology.hpp"
#include "runtime/xorshift.hpp"
#include "workload/zipf.hpp"

namespace oftm::workload {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Unique-writes discipline: no two writes anywhere produce the same value,
// and no write produces the initial value 0.
core::Value unique_value(int thread, std::uint64_t counter) {
  return (static_cast<core::Value>(thread + 1) << 40) | (counter + 1);
}

}  // namespace

std::string RunResult::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.3fs committed=%llu aborted=%llu gave_up=%llu "
                "throughput=%.0f tx/s",
                seconds, static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted_attempts),
                static_cast<unsigned long long>(gave_up), throughput());
  return buf;
}

RunResult run_workload(core::TransactionalMemory& tm,
                       const WorkloadConfig& config) {
  OFTM_ASSERT(config.threads >= 1);
  const std::size_t n = tm.num_tvars();
  OFTM_ASSERT(n >= static_cast<std::size_t>(config.threads));

  runtime::SpinBarrier barrier(static_cast<std::uint32_t>(config.threads) + 1);
  std::vector<std::thread> workers;
  std::vector<RunResult> partial(static_cast<std::size_t>(config.threads));

  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      if (config.pin_threads) runtime::pin_current_thread(t);
      runtime::Xoshiro256 rng(runtime::mix64(config.seed * 1000003 +
                                             static_cast<std::uint64_t>(t)));
      ZipfSampler zipf(n, config.zipf_s,
                       runtime::mix64(config.seed ^ (t * 7919 + 13)));
      RunResult& mine = partial[static_cast<std::size_t>(t)];
      std::uint64_t value_counter = 0;

      // Pre-generate per-transaction var sets so generation cost is off the
      // measured path as much as possible and patterns are reproducible.
      const std::size_t part_size = n / static_cast<std::size_t>(config.threads);
      const std::size_t part_base = static_cast<std::size_t>(t) * part_size;

      barrier.arrive_and_wait();

      // Duration mode: poll the clock only every few transactions so the
      // deadline check stays off the measured hot path.
      const bool timed = config.run_seconds > 0;
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(config.run_seconds));
      constexpr std::uint64_t kDeadlineCheckMask = 15;

      for (std::uint64_t i = 0; timed || i < config.tx_per_thread; ++i) {
        if (timed && (i & kDeadlineCheckMask) == 0 &&
            Clock::now() >= deadline) {
          break;
        }
        // Draw the access list for this logical transaction once; retries
        // replay the same accesses (it is the same transaction restarted).
        core::TVarId vars[64];
        bool is_write[64];
        const int ops = config.ops_per_tx <= 64 ? config.ops_per_tx : 64;
        for (int k = 0; k < ops; ++k) {
          std::size_t x = 0;
          switch (config.pattern) {
            case AccessPattern::kUniform:
              x = rng.next_range(n);
              break;
            case AccessPattern::kZipf:
              x = zipf.next();
              break;
            case AccessPattern::kPartitioned:
              x = part_base + rng.next_range(part_size);
              break;
          }
          vars[k] = static_cast<core::TVarId>(x);
          is_write[k] = rng.next_bool(config.write_fraction);
        }

        bool done = false;
        bool expired = false;
        for (int attempt = 0; attempt < config.max_retries && !done;
             ++attempt) {
          // In duration mode the retry loop must also honour the deadline:
          // a hot-key transaction can otherwise spin through max_retries
          // (seconds of wall time) long after the budget ran out.
          if (timed && (attempt & 0xFF) == 0xFF && Clock::now() >= deadline) {
            expired = true;
            break;
          }
          core::TxnPtr txn = tm.begin();
          bool ok = true;
          for (int k = 0; k < ops && ok; ++k) {
            if (is_write[k]) {
              // Read-modify-write discipline: every write is preceded by a
              // read of the same t-variable. Besides being the realistic
              // access shape, it lets the history checker reconstruct
              // per-variable version orders exactly (see
              // history/checker.hpp).
              ok = tm.read(*txn, vars[k]).has_value() &&
                   tm.write(*txn, vars[k], unique_value(t, value_counter++));
            } else {
              ok = tm.read(*txn, vars[k]).has_value();
            }
          }
          if (ok && tm.try_commit(*txn)) {
            ++mine.committed;
            done = true;
          } else {
            ++mine.aborted_attempts;
          }
        }
        if (expired) break;  // in-flight transaction dropped, not a gave_up
        if (!done) ++mine.gave_up;
      }
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  const auto start = Clock::now();
  barrier.arrive_and_wait();
  const auto stop = Clock::now();
  for (auto& w : workers) w.join();

  RunResult total;
  total.seconds = seconds_between(start, stop);
  for (const RunResult& p : partial) {
    total.committed += p.committed;
    total.aborted_attempts += p.aborted_attempts;
    total.gave_up += p.gave_up;
  }
  total.tm_stats = tm.stats();
  return total;
}

RunResult run_bank_workload(core::TransactionalMemory& tm, int threads,
                            std::uint64_t tx_per_thread, std::size_t accounts,
                            core::Value initial_balance, std::uint64_t seed,
                            bool* invariant_ok) {
  OFTM_ASSERT(accounts >= 2);
  OFTM_ASSERT(tm.num_tvars() >= accounts);

  // Seed balances through committed transactions (quiescent setup).
  {
    core::TxnPtr txn = tm.begin();
    for (std::size_t a = 0; a < accounts; ++a) {
      OFTM_ASSERT(tm.write(*txn, static_cast<core::TVarId>(a),
                           initial_balance));
    }
    OFTM_ASSERT(tm.try_commit(*txn));
  }

  runtime::SpinBarrier barrier(static_cast<std::uint32_t>(threads) + 1);
  std::vector<std::thread> workers;
  std::vector<RunResult> partial(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      runtime::pin_current_thread(t);
      runtime::Xoshiro256 rng(runtime::mix64(seed + 31 * t));
      RunResult& mine = partial[static_cast<std::size_t>(t)];
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < tx_per_thread; ++i) {
        const auto from = static_cast<core::TVarId>(rng.next_range(accounts));
        auto to = static_cast<core::TVarId>(rng.next_range(accounts));
        if (to == from) to = static_cast<core::TVarId>((to + 1) % accounts);
        const core::Value amount = rng.next_range(10) + 1;
        bool done = false;
        while (!done) {
          core::TxnPtr txn = tm.begin();
          const auto fb = tm.read(*txn, from);
          if (!fb) {
            ++mine.aborted_attempts;
            continue;
          }
          if (*fb < amount) {
            tm.try_abort(*txn);  // insufficient funds: requested abort
            done = true;         // not a retry — the transfer is dropped
            break;
          }
          const auto tb = tm.read(*txn, to);
          if (!tb || !tm.write(*txn, from, *fb - amount) ||
              !tm.write(*txn, to, *tb + amount) || !tm.try_commit(*txn)) {
            ++mine.aborted_attempts;
            continue;
          }
          ++mine.committed;
          done = true;
        }
      }
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  const auto start = Clock::now();
  barrier.arrive_and_wait();
  const auto stop = Clock::now();
  for (auto& w : workers) w.join();

  core::Value sum = 0;
  for (std::size_t a = 0; a < accounts; ++a) {
    sum += tm.read_quiescent(static_cast<core::TVarId>(a));
  }
  if (invariant_ok != nullptr) {
    *invariant_ok = (sum == initial_balance * accounts);
  }

  RunResult total;
  total.seconds = seconds_between(start, stop);
  for (const RunResult& p : partial) {
    total.committed += p.committed;
    total.aborted_attempts += p.aborted_attempts;
  }
  total.tm_stats = tm.stats();
  return total;
}

}  // namespace oftm::workload
