#include "workload/driver.hpp"

#include <cstdio>

namespace oftm::workload {

namespace detail {

void pregenerate_specs(WorkerArena& arena, const WorkloadConfig& config,
                       std::size_t n, int t) {
  runtime::Xoshiro256 rng(runtime::mix64(config.seed * 1000003 +
                                         static_cast<std::uint64_t>(t)));
  ZipfSampler zipf(n, config.zipf_s,
                   runtime::mix64(config.seed ^ (t * 7919 + 13)));
  const PartitionBounds part = partition_bounds(n, config.threads, t);
  const std::size_t hot_n =
      config.hot_set_size > 0
          ? (config.hot_set_size < n ? config.hot_set_size : n)
          : (n / 64 > 0 ? n / 64 : 1);

  const bool timed = config.run_seconds > 0;
  const std::size_t count =
      timed ? kArenaSpecs
            : (config.tx_per_thread < kArenaSpecs
                   ? static_cast<std::size_t>(config.tx_per_thread)
                   : kArenaSpecs);
  arena.specs.resize(count > 0 ? count : 1);

  const int ops =
      config.ops_per_tx <= kMaxOpsPerTx ? config.ops_per_tx : kMaxOpsPerTx;
  for (TxSpec& spec : arena.specs) {
    const bool read_only = rng.next_bool(config.read_only_fraction);
    for (int k = 0; k < ops; ++k) {
      std::size_t x = 0;
      if (config.hot_op_fraction > 0 && rng.next_bool(config.hot_op_fraction)) {
        x = rng.next_range(hot_n);  // HotSpot overlay
      } else {
        switch (config.pattern) {
          case AccessPattern::kUniform:
            x = rng.next_range(n);
            break;
          case AccessPattern::kZipf:
            x = zipf.next();
            break;
          case AccessPattern::kPartitioned:
            x = part.base + rng.next_range(part.size);
            break;
        }
      }
      spec.vars[k] = static_cast<core::TVarId>(x);
      if (!read_only && rng.next_bool(config.write_fraction)) {
        spec.write_mask |= std::uint64_t{1} << k;
      }
    }
  }
}

}  // namespace detail

std::size_t estimated_history_events(const WorkloadConfig& config,
                                     double abort_slack) {
  if (abort_slack < 0) {
    // Contention-derived slack: uncontended runs rarely exceed half an
    // aborted attempt per commit, but a hot-set overlay (every worker
    // funnelled into a few t-variables) or a zipf pattern pushes retry
    // rates past one abort per commit on the optimistic backends.
    abort_slack = 0.5 + 4.0 * config.hot_op_fraction +
                  (config.pattern == AccessPattern::kZipf ? 1.5 : 0.0);
  }
  const std::size_t per_attempt =
      4 * static_cast<std::size_t>(config.ops_per_tx) + 2;
  const double attempts =
      static_cast<double>(config.threads) *
      static_cast<double>(config.tx_per_thread) * (1.0 + abort_slack);
  return static_cast<std::size_t>(attempts *
                                  static_cast<double>(per_attempt)) +
         1024;
}

PartitionBounds partition_bounds(std::size_t num_tvars, int threads,
                                 int thread) {
  OFTM_ASSERT(threads >= 1);
  OFTM_ASSERT(thread >= 0 && thread < threads);
  const std::size_t part_size = num_tvars / static_cast<std::size_t>(threads);
  PartitionBounds b;
  b.base = static_cast<std::size_t>(thread) * part_size;
  // Fold the n % threads remainder into the last partition so "fully
  // disjoint" sweeps use every t-variable.
  b.size = thread == threads - 1 ? num_tvars - b.base : part_size;
  return b;
}

void RunResult::merge_from(const RunResult& o) {
  committed += o.committed;
  aborted_attempts += o.aborted_attempts;
  gave_up += o.gave_up;
  commit_latency_ns += o.commit_latency_ns;
  retries_per_commit += o.retries_per_commit;
  per_thread_committed.insert(per_thread_committed.end(),
                              o.per_thread_committed.begin(),
                              o.per_thread_committed.end());
}

void RunResult::accumulate_run(const RunResult& o) {
  seconds += o.seconds;
  committed += o.committed;
  aborted_attempts += o.aborted_attempts;
  gave_up += o.gave_up;
  commit_latency_ns += o.commit_latency_ns;
  retries_per_commit += o.retries_per_commit;
  if (per_thread_committed.size() < o.per_thread_committed.size()) {
    per_thread_committed.resize(o.per_thread_committed.size(), 0);
  }
  for (std::size_t i = 0; i < o.per_thread_committed.size(); ++i) {
    per_thread_committed[i] += o.per_thread_committed[i];
  }
  tm_stats += o.tm_stats;
}

std::string RunResult::to_string() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%.3fs committed=%llu aborted=%llu gave_up=%llu "
                "throughput=%.0f tx/s latency[p50<=%lluns p99<=%lluns]",
                seconds, static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted_attempts),
                static_cast<unsigned long long>(gave_up), throughput(),
                static_cast<unsigned long long>(commit_latency_ns.quantile(0.5)),
                static_cast<unsigned long long>(
                    commit_latency_ns.quantile(0.99)));
  return buf;
}

RunResult run_workload(core::TransactionalMemory& tm,
                       const WorkloadConfig& config) {
  return detail::run_workload_impl<core::TransactionalMemory>(tm, config);
}

RunResult run_bank_workload(core::TransactionalMemory& tm, int threads,
                            std::uint64_t tx_per_thread, std::size_t accounts,
                            core::Value initial_balance, std::uint64_t seed,
                            bool* invariant_ok, bool pin_threads) {
  using detail::Clock;
  OFTM_ASSERT(accounts >= 2);
  OFTM_ASSERT(tm.num_tvars() >= accounts);

  // Seed balances through a committed transaction (quiescent setup).
  {
    core::Transaction& txn = tm.begin(tm.this_thread_session());
    for (std::size_t a = 0; a < accounts; ++a) {
      OFTM_ASSERT(tm.write(txn, static_cast<core::TVarId>(a),
                           initial_balance));
    }
    OFTM_ASSERT(tm.try_commit(txn));
  }

  runtime::SpinBarrier barrier(static_cast<std::uint32_t>(threads) + 1);
  std::vector<std::thread> workers;
  std::vector<detail::WorkerArena> arenas(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      if (pin_threads) runtime::pin_current_thread(t);
      runtime::Xoshiro256 rng(runtime::mix64(seed + 31 * t));
      RunResult& mine = arenas[static_cast<std::size_t>(t)].local;
      core::TmSession& session = tm.this_thread_session();
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < tx_per_thread; ++i) {
        const auto from = static_cast<core::TVarId>(rng.next_range(accounts));
        auto to = static_cast<core::TVarId>(rng.next_range(accounts));
        if (to == from) to = static_cast<core::TVarId>((to + 1) % accounts);
        const core::Value amount = rng.next_range(10) + 1;
        const auto tx_start = Clock::now();
        std::uint64_t attempts = 0;
        bool done = false;
        while (!done) {
          core::Transaction& txn = tm.begin(session);
          const auto fb = tm.read(txn, from);
          if (!fb) {
            ++mine.aborted_attempts;
            ++attempts;
            continue;
          }
          if (*fb < amount) {
            tm.try_abort(txn);  // insufficient funds: requested abort
            done = true;        // not a retry — the transfer is dropped
            break;
          }
          const auto tb = tm.read(txn, to);
          if (!tb || !tm.write(txn, from, *fb - amount) ||
              !tm.write(txn, to, *tb + amount) || !tm.try_commit(txn)) {
            ++mine.aborted_attempts;
            ++attempts;
            continue;
          }
          ++mine.committed;
          mine.commit_latency_ns.record(
              detail::ns_between(tx_start, Clock::now()));
          mine.retries_per_commit.record(attempts);
          done = true;
        }
      }
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  const auto start = Clock::now();
  barrier.arrive_and_wait();
  const auto stop = Clock::now();
  for (auto& w : workers) w.join();

  core::Value sum = 0;
  for (std::size_t a = 0; a < accounts; ++a) {
    sum += tm.read_quiescent(static_cast<core::TVarId>(a));
  }
  if (invariant_ok != nullptr) {
    *invariant_ok = (sum == initial_balance * accounts);
  }

  RunResult total;
  total.seconds = detail::seconds_between(start, stop);
  for (detail::WorkerArena& arena : arenas) {
    arena.local.per_thread_committed.assign(1, arena.local.committed);
    total.merge_from(arena.local);
  }
  total.tm_stats = tm.stats();
#if OFTM_OBS
  total.tm_stats.check_abort_reasons();
#endif
  return total;
}

}  // namespace oftm::workload
