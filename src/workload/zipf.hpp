// Zipf-distributed key sampling (rejection-inversion, after W. Hörmann &
// G. Derflinger / the JDK's ZipfDistribution). Used by the skewed
// workloads: STM papers' hot-spot behaviour only shows under non-uniform
// access, which is exactly where DSTM's descriptor sharing hurts.
#pragma once

#include <cmath>
#include <cstdint>

#include "runtime/xorshift.hpp"

namespace oftm::workload {

class ZipfSampler {
 public:
  // Keys 0..n-1, skew `s` (s = 0 -> uniform; s ~ 0.99 is the YCSB default).
  // A negative skew is a configuration error, not a distribution this
  // sampler models — clamp it to uniform rather than feeding h()/h_inv()
  // a sign they were never derived for (x^-s with s < 0 inverts the
  // integrand and the rejection loop's envelope no longer dominates).
  ZipfSampler(std::uint64_t n, double s, std::uint64_t seed)
      : n_(n), s_(s > 0.0 ? s : 0.0), rng_(seed) {
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    dist_ = h_x1_ - h_n_;
    // Hörmann's quick-accept threshold: x this close below its rounded k
    // is always under the true pmf, so the common case skips the
    // exp/log-heavy exact test entirely.
    quick_s_ = 2.0 - h_inv(h(2.5) - std::exp(-s_ * std::log(2.0)));
  }

  std::uint64_t next() {
    // n == 1 has exactly one answer; the rejection loop's window
    // [h(1.5), h(1.5)) would be empty and spin forever.
    if (n_ <= 1) return 0;
    if (s_ == 0.0) return rng_.next_range(n_);
    for (;;) {
      const double u = h_n_ + rng_.next_double() * dist_;
      const double x = h_inv(u);
      const std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1 || k > n_) continue;
      // Quick accept (Hörmann & Derflinger): k - x <= s_star is a
      // sufficient acceptance condition, no pmf evaluation needed.
      if (static_cast<double>(k) - x <= quick_s_) return k - 1;
      // Accept with probability proportional to the true pmf.
      if (u >= h(static_cast<double>(k) + 0.5) - std::exp(-s_ * std::log(k))) {
        return k - 1;
      }
    }
  }

 private:
  // h(x) = integral of x^-s
  double h(double x) const {
    if (s_ == 1.0) return std::log(x);
    return std::exp((1.0 - s_) * std::log(x)) / (1.0 - s_);
  }
  double h_inv(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::exp(std::log((1.0 - s_) * u) / (1.0 - s_));
  }

  std::uint64_t n_;
  double s_;
  runtime::Xoshiro256 rng_;
  double h_x1_ = 0, h_n_ = 0, dist_ = 0, quick_s_ = 0;
};

}  // namespace oftm::workload
