// Zipf-distributed key sampling (rejection-inversion, after W. Hörmann &
// G. Derflinger / the JDK's ZipfDistribution). Used by the skewed
// workloads: STM papers' hot-spot behaviour only shows under non-uniform
// access, which is exactly where DSTM's descriptor sharing hurts.
#pragma once

#include <cmath>
#include <cstdint>

#include "runtime/xorshift.hpp"

namespace oftm::workload {

class ZipfSampler {
 public:
  // Keys 0..n-1, skew `s` (s = 0 -> uniform; s ~ 0.99 is the YCSB default).
  ZipfSampler(std::uint64_t n, double s, std::uint64_t seed)
      : n_(n), s_(s), rng_(seed) {
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    dist_ = h_x1_ - h_n_;
  }

  std::uint64_t next() {
    if (s_ == 0.0) return rng_.next_range(n_);
    for (;;) {
      const double u = h_n_ + rng_.next_double() * dist_;
      const double x = h_inv(u);
      const std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1 || k > n_) continue;
      // Accept with probability proportional to the true pmf.
      if (u >= h(static_cast<double>(k) + 0.5) - std::exp(-s_ * std::log(k))) {
        return k - 1;
      }
    }
  }

 private:
  // h(x) = integral of x^-s
  double h(double x) const {
    if (s_ == 1.0) return std::log(x);
    return std::exp((1.0 - s_) * std::log(x)) / (1.0 - s_);
  }
  double h_inv(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::exp(std::log((1.0 - s_) * u) / (1.0 - s_));
  }

  std::uint64_t n_;
  double s_;
  runtime::Xoshiro256 rng_;
  double h_x1_ = 0, h_n_ = 0, dist_ = 0;
};

}  // namespace oftm::workload
