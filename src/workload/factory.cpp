#include "workload/factory.hpp"

#include <cstdio>
#include <stdexcept>

#include "cm/managers.hpp"
#include "core/region_tm.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "lock/coarse.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "lock/tl2_region.hpp"
#include "norec/norec.hpp"
#include "norec/norec_region.hpp"

namespace oftm::workload {

std::unique_ptr<core::TransactionalMemory> make_tm(const std::string& name,
                                                   std::size_t num_tvars) {
  std::string base = name;
  std::string cm_name = "polite";
  bool has_cm = false;
  if (const auto colon = name.find(':'); colon != std::string::npos) {
    base = name.substr(0, colon);
    cm_name = name.substr(colon + 1);
    has_cm = true;
  }
  // Only the DSTM family takes a contention manager; a ':<cm>' suffix on
  // any other backend is a recipe typo and must fail loudly, not silently
  // run the base backend.
  if (has_cm && base != "dstm" && base != "dstm-collapse" &&
      base != "dstm-visible") {
    throw std::invalid_argument("backend does not take a contention manager: " +
                                name);
  }

  if (base == "dstm" || base == "dstm-collapse" || base == "dstm-visible") {
    dstm::DstmOptions options;
    options.eager_collapse = (base == "dstm-collapse");
    options.visible_reads = (base == "dstm-visible");
    return std::make_unique<dstm::HwDstm>(num_tvars,
                                          cm::make_manager(cm_name), options);
  }
  if (base == "foctm") {
    return std::make_unique<
        foctm::Foctm<core::HwPlatform, foc::CasFocPolicy<core::HwPlatform>>>(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/false});
  }
  if (base == "foctm-hinted") {
    return std::make_unique<
        foctm::Foctm<core::HwPlatform, foc::CasFocPolicy<core::HwPlatform>>>(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/true});
  }
  if (base == "foctm-strict") {
    return std::make_unique<foctm::Foctm<
        core::HwPlatform, foc::StrictFocPolicy<core::HwPlatform>>>(
        num_tvars, foctm::FoctmOptions{/*use_hints=*/true});
  }
  if (base == "tl") {
    return std::make_unique<lock::HwTl>(num_tvars);
  }
  if (base == "tl2") {
    return std::make_unique<lock::HwTl2>(num_tvars);
  }
  if (base == "tl2-ext") {
    lock::Tl2Options options;
    options.rv_extension = true;
    return std::make_unique<lock::HwTl2>(num_tvars, options);
  }
  if (base == "coarse") {
    return std::make_unique<lock::HwCoarse>(num_tvars);
  }
  if (base == "norec") {
    return std::make_unique<norec::HwNorec>(num_tvars);
  }
  if (base == "norec-bloom") {
    norec::NorecOptions options;
    options.bloom_reads = true;
    return std::make_unique<norec::HwNorec>(num_tvars, options);
  }
  if (base == "tl2-region") {
    return std::make_unique<core::RegionWordTm<lock::Tl2Region>>(num_tvars);
  }
  if (base == "norec-region") {
    return std::make_unique<core::RegionWordTm<norec::NorecRegion>>(num_tvars);
  }
  throw std::invalid_argument("unknown TM backend: " + name);
}

std::unique_ptr<core::TransactionalMemory> make_tm_for_containers(
    const std::string& name, std::size_t words) {
  if (name == "tl2-region" || name == "norec-region") {
    // The t-var word array, the containers' statics (≈ the same words
    // again), node churn, and slack for size-class rounding.
    core::RegionOptions options;
    options.capacity_bytes =
        3 * words * sizeof(core::Value) + (std::size_t{2} << 20);
    if (name == "tl2-region") {
      return std::make_unique<core::RegionWordTm<lock::Tl2Region>>(words,
                                                                   options);
    }
    return std::make_unique<core::RegionWordTm<norec::NorecRegion>>(words,
                                                                    options);
  }
  return make_tm(name, words);
}

std::unique_ptr<core::TransactionalMemory> make_tm_for_containers_cli(
    const std::string& name, std::size_t words) {
  try {
    return make_tm_for_containers(name, words);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n\navailable backend recipes:\n",
                 e.what());
    for (const std::string& recipe : all_backends()) {
      std::fprintf(stderr, "  %s\n", recipe.c_str());
    }
    std::fprintf(stderr,
                 "(dstm-collapse/dstm-visible also accept a ':<cm>' "
                 "contention-manager suffix)\n");
    return nullptr;
  }
}

const std::vector<std::string>& default_backends() {
  static const std::vector<std::string> names = {
      "dstm", "tl", "tl2", "coarse", "norec", "foctm-hinted"};
  return names;
}

const std::vector<std::string>& all_backends() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v = {
        "dstm",         "dstm-collapse", "dstm-visible", "foctm",
        "foctm-hinted", "foctm-strict",  "tl",           "tl2",
        "tl2-ext",      "coarse",        "norec",        "norec-bloom",
        "tl2-region",   "norec-region",
    };
    for (const std::string& cm_name : cm::manager_names()) {
      if (cm_name == "polite") continue;  // the plain "dstm" default
      v.push_back("dstm:" + cm_name);
    }
    return v;
  }();
  return names;
}

}  // namespace oftm::workload
