// Backend factory: construct any TM in this repo by name. Used by benches,
// tests and examples so experiment code is backend-agnostic.
//
// Two entry points share one recipe grammar:
//   make_tm()  (here)                — type-erased core::TransactionalMemory,
//                                      the portability tier every checker and
//                                      the conformance harness drive.
//   visit_tm() (workload/visit.hpp)  — static dispatch to the concrete
//                                      backend type, for hot loops that must
//                                      not pay virtual dispatch per op.
//
// Names:
//   dstm[:<cm>]        DSTM with the given contention manager (default
//                      polite); "dstm-collapse[:<cm>]" enables eager
//                      descriptor collapsing; "dstm-visible[:<cm>]" enables
//                      visible reads (early reader aborts).
//   foctm              Algorithm 2 over CAS-backed fo-consensus (faithful).
//   foctm-hinted       Algorithm 2 with the resolved-prefix hint ablation.
//   foctm-strict       Algorithm 2 over strict (abortable) fo-consensus.
//   tl | tl2 | coarse  The lock-based baselines.
//   tl2-ext            TL2 with read-version extension.
//   norec              NOrec: single global sequence lock, invisible reads,
//                      commit-time value-based revalidation, lazy
//                      write-back. The minimal *progressive* (blocking) TM
//                      the cost-of-obstruction-freedom comparison is
//                      anchored against (see src/norec/norec.hpp).
//   norec-bloom        NOrec with a Bloom-filter write-set gate on the
//                      read path (the classic hot-path ablation).
//   tl2-region         TL2 over the word-granular region tier: raw-memory
//                      heap, metadata in a global lock-stripe table
//                      (src/lock/tl2_region.hpp), t-variables laid out as
//                      contiguous heap words via core::RegionWordTm.
//   norec-region       NOrec over the region tier (no per-word metadata;
//                      the region baseline the stripe sweep compares to).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tm.hpp"

namespace oftm::workload {

std::unique_ptr<core::TransactionalMemory> make_tm(const std::string& name,
                                                   std::size_t num_tvars);

// Container-sizing entry point: `words` is the ds:: layer's tvars_needed
// total. Boxed recipes need exactly that many t-variables; region recipes
// keep the same scratch t-var array but must also fit the containers'
// statics and node churn in the region heap, so their arena is derived
// from `words` with extra headroom instead of the plain num_tvars formula.
std::unique_ptr<core::TransactionalMemory> make_tm_for_containers(
    const std::string& name, std::size_t words);

// CLI front end shared by the examples and the service tools: same as
// make_tm_for_containers, but an unknown recipe prints the error plus the
// full recipe list to stderr and returns nullptr instead of throwing —
// the caller exits non-zero. Keeps every binary's usage message in sync
// with the factory grammar.
std::unique_ptr<core::TransactionalMemory> make_tm_for_containers_cli(
    const std::string& name, std::size_t words);

// Backends every comparative bench sweeps by default.
const std::vector<std::string>& default_backends();

// One recipe per distinct backend configuration: each base backend and
// ablation variant, plus plain DSTM under every registered non-default
// contention manager (cm suffixes on the dstm-collapse/-visible ablations
// are accepted by make_tm but not enumerated). The conformance suite
// instantiates over this list, so a backend added to make_tm must be
// added here to ship.
const std::vector<std::string>& all_backends();

}  // namespace oftm::workload
