#include "workload/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/taxonomy.hpp"

namespace oftm::workload::report {
namespace {

void append_number(std::string& out, double v) {
  // %g would render inf/nan as bare words, which no JSON parser accepts;
  // a non-finite metric (e.g. a ratio over a zero denominator upstream)
  // degrades to null instead of poisoning the whole record.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_number(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::key_prefix(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += escape(key);
  body_ += "\":";
}

Json& Json::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  body_ += '"';
  body_ += escape(value);
  body_ += '"';
  return *this;
}

Json& Json::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

Json& Json::field(std::string_view key, double value) {
  key_prefix(key);
  append_number(body_, value);
  return *this;
}

Json& Json::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  append_number(body_, value);
  return *this;
}

Json& Json::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  append_number(body_, value);
  return *this;
}

Json& Json::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

Json& Json::field(std::string_view key, bool value) {
  key_prefix(key);
  body_ += value ? "true" : "false";
  return *this;
}

Json& Json::field_raw(std::string_view key, std::string_view json) {
  key_prefix(key);
  body_ += json;
  return *this;
}

std::string Json::str() const { return "{" + body_ + "}"; }

std::string to_json(const runtime::Log2Histogram& h) {
  return Json()
      .field("count", h.count())
      .field("mean", h.mean())
      .field("p50", h.quantile(0.50))
      .field("p90", h.quantile(0.90))
      .field("p99", h.quantile(0.99))
      .field("p999", h.quantile(0.999))
      .field("max", h.max())
      .str();
}

std::string to_json(const runtime::TxStats& s) {
  // Key order is fixed (insertion-ordered builder) and the obs-shaped
  // fields are emitted in both gate modes — zeros under OFTM_OBS=0 — so
  // the schema downstream tooling sees never depends on the build.
  Json reasons;
  for (std::size_t i = 0; i < obs::kNumAbortReasons; ++i) {
    reasons.field(obs::abort_reason_name(i), s.abort_reason[i]);
  }
  Json phases;
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    phases.field_raw(obs::phase_name(i), Json()
                                             .field("ns", s.phase_ns[i])
                                             .field("count", s.phase_count[i])
                                             .str());
  }
  std::string hot = "[";
  for (std::size_t i = 0; i < s.hot_vars.size(); ++i) {
    if (i > 0) hot += ',';
    hot += Json()
               .field("key", s.hot_vars[i].key)
               .field("hits", s.hot_vars[i].hits)
               .str();
  }
  hot += ']';
  return Json()
      .field("commits", s.commits)
      .field("aborts", s.aborts)
      .field("forced_aborts", s.forced_aborts)
      .field("abort_ratio", s.abort_ratio())
      .field("forced_abort_ratio", s.forced_abort_ratio())
      .field("reads", s.reads)
      .field("writes", s.writes)
      .field("cm_backoffs", s.cm_backoffs)
      .field("victim_kills", s.victim_kills)
      .field_raw("abort_reasons", reasons.str())
      .field_raw("phases", phases.str())
      .field_raw("hot_vars", hot)
      .str();
}

std::string to_json(const RunResult& r) {
  Json j;
  j.field("seconds", r.seconds)
      .field("committed", r.committed)
      .field("aborted_attempts", r.aborted_attempts)
      .field("gave_up", r.gave_up)
      .field("throughput_tx_s", r.throughput())
      .field_raw("commit_latency_ns", to_json(r.commit_latency_ns))
      .field_raw("retries_per_commit", to_json(r.retries_per_commit));

  // Per-thread skew: min/max commits per worker and the imbalance ratio
  // (max/mean; 1.0 == perfectly fair). A starved worker drives it up.
  if (!r.per_thread_committed.empty()) {
    const auto [lo, hi] = std::minmax_element(r.per_thread_committed.begin(),
                                              r.per_thread_committed.end());
    const double mean =
        static_cast<double>(r.committed) /
        static_cast<double>(r.per_thread_committed.size());
    std::string arr = "[";
    for (std::size_t i = 0; i < r.per_thread_committed.size(); ++i) {
      if (i > 0) arr += ',';
      append_number(arr, r.per_thread_committed[i]);
    }
    arr += ']';
    j.field_raw(
        "per_thread",
        Json()
            .field("entries",
                   static_cast<std::uint64_t>(r.per_thread_committed.size()))
            .field("min_committed", *lo)
            .field("max_committed", *hi)
            .field("imbalance",
                   mean > 0 ? static_cast<double>(*hi) / mean : 0.0)
            .field_raw("committed", arr)
            .str());
  }
  j.field_raw("tm_stats", to_json(r.tm_stats));
  return j.str();
}

void emit(const Json& record) {
  // One process-wide sink; serialized so concurrent benchmark fixtures
  // cannot interleave half-lines.
  static std::mutex mu;
  std::scoped_lock guard(mu);
  static std::FILE* sink = [] {
    const char* path = std::getenv("OFTM_REPORT_FILE");
    if (path != nullptr && *path != '\0') {
      std::FILE* f = std::fopen(path, "a");
      if (f != nullptr) return f;
      std::fprintf(stderr, "report: cannot open %s, using stdout\n", path);
    }
    return stdout;
  }();
  const std::string line = record.str();
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fputc('\n', sink);
  std::fflush(sink);
}

void emit_run(std::string_view bench, std::string_view scenario,
              std::string_view backend, const WorkloadConfig& config,
              const RunResult& result, std::size_t num_tvars) {
  const char* pattern = "uniform";
  switch (config.pattern) {
    case AccessPattern::kUniform: pattern = "uniform"; break;
    case AccessPattern::kZipf: pattern = "zipf"; break;
    case AccessPattern::kPartitioned: pattern = "partitioned"; break;
  }
  Json cfg;
  if (num_tvars > 0) {
    cfg.field("num_tvars", static_cast<std::uint64_t>(num_tvars));
  }
  cfg.field("threads", config.threads)
      .field("tx_per_thread", config.tx_per_thread)
      .field("run_seconds", config.run_seconds)
      .field("ops_per_tx", config.ops_per_tx)
      .field("write_fraction", config.write_fraction)
      .field("read_only_fraction", config.read_only_fraction)
      .field("hot_op_fraction", config.hot_op_fraction)
      .field("hot_set_size", static_cast<std::uint64_t>(config.hot_set_size))
      .field("pattern", pattern)
      .field("zipf_s", config.zipf_s)
      .field("seed", config.seed)
      .field("max_retries", config.max_retries);
  Json j;
  j.field("bench", bench)
      .field("scenario", scenario)
      .field("backend", backend)
      .field_raw("config", cfg.str())
      .field_raw("result", to_json(result));
  emit(j);
}

}  // namespace oftm::workload::report
