// Shared vocabulary types for the TM model of Section 2.2 of the paper.
//
// T-variables are *transactional registers* holding 64-bit words — exactly
// the model the paper proves its results in ("the proofs of our results are
// more easily explained with only read-write t-variables"; Section 6 argues
// this does not lose generality). A typed overlay lives in core/tvar.hpp.
#pragma once

#include <cstdint>
#include <limits>

namespace oftm::core {

// Value stored in a t-variable (a transactional register).
using Value = std::uint64_t;

// Index of a t-variable within a TM instance.
using TVarId = std::uint32_t;

inline constexpr TVarId kInvalidTVar = std::numeric_limits<TVarId>::max();

// Globally unique transaction identifier. The paper (footnote 3) generates
// ids locally by combining the process id with a per-process counter; we do
// the same: high 16 bits = thread slot, low 48 bits = local counter.
using TxId = std::uint64_t;

inline constexpr TxId make_tx_id(int thread_slot,
                                 std::uint64_t local_counter) noexcept {
  return (static_cast<TxId>(static_cast<std::uint16_t>(thread_slot)) << 48) |
         (local_counter & ((std::uint64_t{1} << 48) - 1));
}

inline constexpr int tx_id_thread(TxId id) noexcept {
  return static_cast<int>(id >> 48);
}

// Completion status of a transaction (Section 2.2: live / committed /
// aborted).
enum class TxStatus : std::uint32_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

inline const char* to_string(TxStatus s) noexcept {
  switch (s) {
    case TxStatus::kActive: return "active";
    case TxStatus::kCommitted: return "committed";
    case TxStatus::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace oftm::core
