// EventualIcTm: a TM decorator that turns any (OF)TM into an *eventual
// ic-OFTM* in the strict sense of Definition 4 — and deliberately NOT an
// OFTM in the sense of Definition 2.
//
// It injects forceful aborts that have no step-contention justification
// (the wrapped transaction is doomed at begin and fails at its first
// operation), but only finitely many times per decorator instance
// (`obstruction_budget`), after which it is transparent. This models the
// paper's weakest liveness variant: "allows a crashed process to obstruct
// other processes ... for arbitrary, but finite time".
//
// Used by the Theorem 6 experiments (tests/eventual_ic_test.cpp,
// bench_eventual_ic): Algorithm 1 over this substrate leaks the spurious
// aborts to its caller (violating fo-obstruction-freedom), while
// Algorithm 3's activity registers absorb them — exactly the separation the
// theorem is about.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "core/tm.hpp"

namespace oftm::core {

struct EventualIcOptions {
  // Total number of spurious forceful aborts this instance may inject
  // (the finite obstruction period d of Definition 4).
  int obstruction_budget = 8;
  // Inject on every `abort_period`-th transaction while budget remains.
  int abort_period = 3;
};

class EventualIcTm final : public TransactionalMemory {
 public:
  EventualIcTm(TransactionalMemory& inner, EventualIcOptions options = {})
      : inner_(inner), options_(options), budget_(options.obstruction_budget) {}

  // Keep the base's session-tier begin(TmSession&) visible alongside the
  // override below (it drives this virtual begin via fallback sessions).
  using TransactionalMemory::begin;

  TxnPtr begin() override {
    auto txn = std::make_unique<Txn>(*this, inner_.begin());
    const int n = begin_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.abort_period > 0 && n % options_.abort_period == 0) {
      // Claim one unit of the obstruction budget; once it runs out the
      // decorator is transparent forever (the "finite period" of Def. 4).
      int b = budget_.load(std::memory_order_relaxed);
      while (b > 0 && !budget_.compare_exchange_weak(
                          b, b - 1, std::memory_order_relaxed)) {
      }
      if (b > 0) txn->doomed_ = true;
    }
    // Wrapper descriptors are heap-per-begin (this decorator models
    // obstruction, not performance); handle_released() frees them.
    return TxnPtr(txn.release());
  }

  std::optional<Value> read(Transaction& t, TVarId x) override {
    auto& tx = static_cast<Txn&>(t);
    if (tx.doom_if_needed()) return std::nullopt;
    return inner_.read(*tx.inner_, x);
  }

  bool write(Transaction& t, TVarId x, Value v) override {
    auto& tx = static_cast<Txn&>(t);
    if (tx.doom_if_needed()) return false;
    return inner_.write(*tx.inner_, x, v);
  }

  bool try_commit(Transaction& t) override {
    auto& tx = static_cast<Txn&>(t);
    if (tx.doom_if_needed()) return false;
    return inner_.try_commit(*tx.inner_);
  }

  void try_abort(Transaction& t) override {
    auto& tx = static_cast<Txn&>(t);
    inner_.try_abort(*tx.inner_);
  }

  std::size_t num_tvars() const override { return inner_.num_tvars(); }
  Value read_quiescent(TVarId x) const override {
    return inner_.read_quiescent(x);
  }
  std::string name() const override { return inner_.name() + "+eventual-ic"; }
  runtime::TxStats stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }

  // Remaining spurious-abort budget (0 once the obstruction period ended).
  int remaining_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

 private:
  class Txn final : public Transaction {
   public:
    Txn(EventualIcTm& tm, TxnPtr inner)
        : tm_(tm), inner_(std::move(inner)) {}
    TxStatus status() const override {
      return doomed_executed_ ? TxStatus::kAborted : inner_->status();
    }
    TxId id() const override { return inner_->id(); }

   private:
    friend class EventualIcTm;

    // Not pooled: dropping the handle frees the wrapper (and releases the
    // wrapped inner handle with it).
    void handle_released() noexcept override { delete this; }

    // Execute the doomed verdict at the first operation: forcefully abort
    // with no step contention whatsoever.
    bool doom_if_needed() {
      if (!doomed_) return false;
      if (!doomed_executed_) {
        doomed_executed_ = true;
        tm_.inner_.try_abort(*inner_);
      }
      return true;
    }

    EventualIcTm& tm_;
    TxnPtr inner_;
    bool doomed_ = false;
    bool doomed_executed_ = false;
  };

  TransactionalMemory& inner_;
  const EventualIcOptions options_;
  std::atomic<int> budget_;
  std::atomic<int> begin_count_{0};
};

}  // namespace oftm::core
