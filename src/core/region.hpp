// TmRegion tier, part 1: the byte-addressable transactional heap.
//
// Every transactional datum elsewhere in this repo is a boxed TVar with
// per-object metadata — fine for the paper's proofs, hopeless for the
// scale story (10M+ words) and for studying the cache/false-sharing design
// real STMs confront. The region tier transacts over *raw memory* instead,
// the TL2 ("Transactional Locking II", Dice/Shalev/Shavit) per-stripe
// design: word-granular accesses, metadata in a global lock-stripe array
// (src/lock/stripe_table.hpp) hashed from the word's address, and a heap
// whose blocks can be allocated and freed *inside* transactions.
//
// This header owns the memory side:
//
//   RegionOptions — capacity plus the two false-sharing knobs (stripe
//                   count, stripe granularity) the region backends read.
//   RegionHeap    — a fixed-capacity arena with size-class free lists.
//                   alloc()/free_now() are immediate (used for setup and
//                   for the allocations of *aborted* transactions, which
//                   were never visible to anyone); retire() defers reuse
//                   through an EpochManager grace period so a block freed
//                   by a committed transaction is never recycled while a
//                   concurrent (doomed) reader may still dereference it.
//
// Reclamation safety argument, in one place because every region backend
// leans on it: a region transaction holds an epoch Guard for its whole
// active lifetime (prepare -> commit/abort). A pointer to a block can only
// be obtained from a consistent snapshot, and the transaction that frees a
// block unlinks it in the same transaction (standard malloc discipline),
// so a transaction started after the free commits can never reach the
// block; a transaction started before is pinned and blocks recycling.
// Reads of a retired-but-not-recycled block stay memory-safe (the arena is
// never unmapped) and are value-stable (retire does not write), so TL2
// version validation and NOrec value revalidation both remain sound.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "core/types.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/epoch.hpp"
#include "runtime/spin_lock.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::core {

struct RegionOptions {
  // Arena size. 0 = derived by the consumer (RegionWordTm sizes it from
  // num_tvars; direct users should set it).
  std::size_t capacity_bytes = 0;

  // log2 of the number of lock stripes in the global versioned-lock table.
  // 0 = auto: next_pow2(words) clamped to [2^14, 2^22]. More stripes =
  // fewer false conflicts but a larger always-hot metadata array; this is
  // one axis of the false-sharing design space the region tier exists to
  // expose.
  unsigned stripe_count_log2 = 0;

  // log2 of the bytes that map onto one stripe (>= 3, i.e. at least one
  // 64-bit word). 3 = per-word metadata (TL2's default), 6 = one stripe
  // per cache line — coarser granules trade metadata footprint for
  // word-adjacency false conflicts. The other axis of the sweep.
  unsigned granularity_log2 = 3;
};

// Fixed-capacity transactional arena. Thread-safe; allocation is a
// size-class free-list pop (per-class spin lock) with a bump-pointer
// fallback, so steady-state transactional workloads that do not allocate
// touch it not at all, and alloc/free churn costs one small critical
// section. Returned payloads are 16-byte aligned and zeroed.
class RegionHeap {
 public:
  explicit RegionHeap(std::size_t capacity_bytes);

  RegionHeap(const RegionHeap&) = delete;
  RegionHeap& operator=(const RegionHeap&) = delete;

  // Immediate allocation; nullptr when the arena is exhausted.
  void* alloc(std::size_t payload_bytes);

  // Immediate reuse. Only legal when no concurrent reader can hold the
  // pointer: setup/teardown, or the alloc-undo of an aborted transaction
  // (its blocks were never published).
  void free_now(void* payload);

  // Deferred reuse through the heap's epoch manager: the block re-enters
  // the free lists only after a grace period. The path committed tx_free
  // takes.
  void retire(void* payload);

  bool contains(const void* p) const noexcept {
    const std::byte* b = static_cast<const std::byte*>(p);
    return b >= arena_.get() && b < arena_.get() + capacity_;
  }

  // Usable payload bytes of a live block.
  std::size_t block_bytes(const void* payload) const;

  std::size_t capacity() const noexcept { return capacity_; }
  // Bytes currently under allocated blocks (headers included); retired
  // blocks count until their grace period elapses.
  std::size_t allocated_bytes() const noexcept {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  // The manager region transactions pin and tx_free retires through. Each
  // heap owns its instance (the PR-4-hardened EpochManager) so teardown
  // can drain every pending retirement back into free lists that are
  // still alive, and so a long-pinned reader elsewhere in the process
  // cannot stall region reclamation.
  runtime::EpochManager& epochs() noexcept { return epochs_; }

  // Test/teardown helper: advance + sweep until nothing this thread
  // retired remains pending. Caller guarantees quiescence.
  void flush_reclamation();

 private:
  // 16-byte header in front of every payload: total block size (header
  // included) + an allocation-state word that turns double free / foreign
  // pointer bugs into assertions instead of corruption.
  struct BlockHeader {
    std::uint64_t total_bytes;
    std::uint64_t state;
  };
  static constexpr std::uint64_t kStateAllocated = 0xA110CA7Eu;
  static constexpr std::uint64_t kStateFree = 0xF4EEB10Cu;
  static constexpr std::size_t kHeaderBytes = sizeof(BlockHeader);
  // Smallest block: header + one free-list link, rounded to pow2.
  static constexpr std::size_t kMinBlockBytes = 32;
  // Blocks up to this total size use power-of-two size classes; larger
  // ones are rounded to 256 B and recycled through an exact-fit pool.
  static constexpr std::size_t kLargeThreshold = std::size_t{1} << 16;
  static constexpr std::size_t kLargeQuantum = 256;
  static constexpr int kNumClasses = 12;  // 32 .. 65536

  static std::size_t round_total(std::size_t payload_bytes) noexcept;
  static int class_of(std::size_t total) noexcept;

  BlockHeader* header_of(void* payload) const {
    return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(payload) -
                                          kHeaderBytes);
  }

  void* pop_free(std::size_t total);
  void push_free(std::byte* block, std::size_t total);
  void* bump(std::size_t total);

  struct alignas(64) FreeList {
    runtime::SpinLock lock;
    std::byte* head = nullptr;  // link stored in the block payload area
  };

  struct ArenaDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{runtime::kCacheLineSize});
    }
  };

  std::size_t capacity_ = 0;
  // RAII member, not a manual delete in a destructor body: ~EpochManager
  // (below, destroyed first) drains pending retirements through free_now,
  // which reads block headers inside the arena — the arena must outlive it.
  std::unique_ptr<std::byte[], ArenaDeleter> arena_;
  std::atomic<std::size_t> bump_{0};
  std::atomic<std::size_t> allocated_bytes_{0};
  FreeList classes_[kNumClasses];
  runtime::SpinLock large_lock_;
  std::vector<std::pair<std::byte*, std::size_t>> large_pool_;
  // Declared last: destroyed first, draining pending retirements back into
  // the free lists above while they still exist.
  runtime::EpochManager epochs_;
};

// Open-addressed redo log for region transactions: word address -> value,
// linear probing, power-of-two capacity, grown geometrically and *kept*
// across transactions of a pooled descriptor — the same shape (and the
// same reason) as NOrec's TVarId-keyed WriteSet.
class RegionWriteSet {
 public:
  RegionWriteSet() : table_(kInitialCapacity) {}

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void clear() noexcept {
    if (size_ == 0) return;
    for (Entry& e : table_) e = Entry{};
    size_ = 0;
  }

  const Value* find(const Value* addr) const noexcept {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = slot_of(addr, mask);; i = (i + 1) & mask) {
      const Entry& e = table_[i];
      if (e.addr == addr) return &e.value;
      if (e.addr == nullptr) return nullptr;
    }
  }

  void put(Value* addr, Value v) {
    if (size_ * 2 >= table_.size()) grow();
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = slot_of(addr, mask);; i = (i + 1) & mask) {
      Entry& e = table_[i];
      if (e.addr == addr) {
        e.value = v;
        return;
      }
      if (e.addr == nullptr) {
        e = Entry{addr, v};
        ++size_;
        return;
      }
    }
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const Entry& e : table_) {
      if (e.addr != nullptr) f(e.addr, e.value);
    }
  }

 private:
  struct Entry {
    Value* addr = nullptr;
    Value value = 0;
  };
  static constexpr std::size_t kInitialCapacity = 16;

  static std::size_t slot_of(const Value* addr, std::size_t mask) noexcept {
    return static_cast<std::size_t>(runtime::mix64(
               reinterpret_cast<std::uintptr_t>(addr) >> 3)) &
           mask;
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{});
    const std::size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.addr == nullptr) continue;
      for (std::size_t i = slot_of(e.addr, mask);; i = (i + 1) & mask) {
        if (table_[i].addr == nullptr) {
          table_[i] = e;
          break;
        }
      }
    }
  }

  std::vector<Entry> table_;
  std::size_t size_ = 0;
};

}  // namespace oftm::core
