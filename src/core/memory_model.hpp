// The memory-model concept behind the write-once ds:: containers.
//
// The paper motivates TM with composable operations on shared data
// structures; this layer decides what "shared data" *is*. Two layouts
// implement one concept:
//
//   BoxedMemory   — records live in the TM's boxed TVarId space. A record
//                   reference is a word offset into a per-container arena
//                   (plus one, so 0 stays null) and field access is TVarId
//                   arithmetic. Dynamic records come from a transactional
//                   bump-plus-free-list allocator whose roots are
//                   themselves t-variables, so an aborted allocation leaks
//                   nothing.
//   RegionMemory  — records live in a region backend's word-granular heap
//                   (tl2-region / norec-region). A record reference is the
//                   address of its first word; dynamic records are
//                   tx_alloc'd pointer-linked nodes and static records are
//                   contiguous word arrays — the inline layout whose
//                   cache-locality trade-offs the region tier exists to
//                   measure.
//
// A container written against the MemoryModel concept instantiates over
// both and stays a single implementation (see src/ds/). Records are either
// raw (a Ref plus word indices, for variable-length tables) or typed
// (TxPtr<T> plus member-pointer field access, for fixed-shape nodes).
//
// All transactional traffic routes through core::TxView, so the dead-view
// discipline is uniform: on a forced abort every load returns poison 0,
// every store/alloc no-ops, and the container bails out via tx.ok().
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "core/atomically.hpp"
#include "core/tm.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"

namespace oftm::core {

// Layout-independent record reference. 0 is null in both models; boxed
// refs are arena word offsets + 1, region refs are word addresses.
using Ref = Value;
inline constexpr Ref kNullRef = 0;

// Typed handle to a record of shape T, where T is a plain struct of
// Value-sized fields (the transactional unit of both models).
template <typename T>
struct TxPtr {
  Ref ref = kNullRef;
  constexpr explicit operator bool() const noexcept { return ref != kNullRef; }
  friend constexpr bool operator==(TxPtr, TxPtr) = default;
};

// Word index of a field within its record, from a member pointer: probes a
// static default-constructed T instead of trusting manual offsets.
template <typename T, typename F>
inline std::size_t field_index(F T::*member) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "record shapes must be plain structs of Value fields");
  static_assert(sizeof(F) == sizeof(Value),
                "every record field must be one transactional word");
  static const T probe{};
  return static_cast<std::size_t>(
             reinterpret_cast<const char*>(&(probe.*member)) -
             reinterpret_cast<const char*>(&probe)) /
         sizeof(Value);
}

// What a container needs from a layout. `kOverheadWords` is the model's
// fixed bookkeeping cost, part of every container's tvars_needed formula
// (boxed: the two allocator root words; region: zero).
template <typename M>
concept MemoryModel =
    requires(M m, const M cm, TxView& tx, Ref r, std::size_t n, Value v) {
      { M::kOverheadWords } -> std::convertible_to<std::size_t>;
      // Setup-time allocation of a container root / table: `n` contiguous
      // zeroed words, alive for the container's lifetime. Quiescent —
      // call from the container constructor, before any transaction.
      { m.alloc_static(n) } -> std::same_as<Ref>;
      // One-time arming inside the container's init transaction (boxed:
      // resets the arena allocator; region: no-op).
      m.init(tx);
      // Transactional field access on the record at r.
      { m.load(tx, r, n) } -> std::same_as<Value>;
      m.store(tx, r, n, v);
      // Transactional record allocation (zeroed) / free. alloc returns
      // kNullRef on arena exhaustion with tx.ok() still true — exhaustion
      // is not an abort, retrying will not help — and on a dead view.
      { m.alloc(tx, n) } -> std::same_as<Ref>;
      m.dealloc(tx, r, n);
      // Quiescent field read for structural audits.
      { cm.load_quiescent(r, n) } -> std::same_as<Value>;
      // How many more `n`-word records the model could hand out, counted
      // quiescently; nullopt when the model cannot say (region: the heap
      // is shared). Lets boxed audits pin allocator conservation.
      {
        cm.free_capacity_quiescent(n)
      } -> std::same_as<std::optional<std::uint64_t>>;
      { cm.tm() } -> std::same_as<TransactionalMemory&>;
    };

// ---------------------------------------------------------------------------
// Boxed layout: records in the TVarId space [base, base + total_words).
//
// Arena word offsets map 1:1 onto t-variables (word o <-> base + o):
//   offset 0   bump cursor (next never-used word), transactional
//   offset 1   free-list head Ref, transactional
//   offset 2+  static records, then dynamically allocated records
//
// Freed records link through their word 0. The arena serves ONE dynamic
// size class (containers have one node shape), which keeps the free list
// a single untyped stack.
class BoxedMemory {
 public:
  static constexpr std::size_t kOverheadWords = 2;

  BoxedMemory(TransactionalMemory& tm, TVarId base, std::size_t total_words)
      : tm_(tm), base_(base), total_words_(total_words) {
    OFTM_ASSERT(base + total_words <= tm.num_tvars());
  }

  TransactionalMemory& tm() const noexcept { return tm_; }

  Ref alloc_static(std::size_t words) {
    OFTM_ASSERT_MSG(static_top_ + words <= total_words_,
                    "BoxedMemory arena too small for container statics");
    const Ref r = static_cast<Ref>(static_top_) + 1;
    static_top_ += words;
    return r;
  }

  // Arms the bump cursor past the statics and empties the free list;
  // re-running a container's init() resets the whole arena with it.
  void init(TxView& tx) {
    tx.write(bump_var(), static_top_);
    tx.write(free_var(), kNullRef);
  }

  Value load(TxView& tx, Ref r, std::size_t field) {
    return tx.read(var_of(r, field));
  }

  void store(TxView& tx, Ref r, std::size_t field, Value v) {
    tx.write(var_of(r, field), v);
  }

  Ref alloc(TxView& tx, std::size_t words) {
    bind_size_class(words);
    const Value head = tx.read(free_var());
    if (!tx.ok()) return kNullRef;
    Ref r = kNullRef;
    if (head != kNullRef) {
      tx.write(free_var(), tx.read(var_of(head, 0)));
      r = head;
    } else {
      const Value bump = tx.read(bump_var());
      if (!tx.ok()) return kNullRef;
      if (bump + words > total_words_) return kNullRef;  // exhausted, ok()
      tx.write(bump_var(), bump + words);
      r = static_cast<Ref>(bump) + 1;
    }
    // Zero like region tx_alloc does: a recycled record still carries its
    // previous life's fields (word 0 carries the free-list link).
    for (std::size_t f = 0; f < words; ++f) store(tx, r, f, 0);
    return r;
  }

  void dealloc(TxView& tx, Ref r, std::size_t words) {
    bind_size_class(words);
    tx.write(var_of(r, 0), tx.read(free_var()));
    tx.write(free_var(), r);
  }

  Value load_quiescent(Ref r, std::size_t field) const {
    return tm_.read_quiescent(var_of(r, field));
  }

  std::optional<std::uint64_t> free_capacity_quiescent(
      std::size_t node_words) const {
    const Value bump = tm_.read_quiescent(bump_var());
    const std::uint64_t armed = bump > static_top_ ? bump : static_top_;
    std::uint64_t n = (total_words_ - armed) / node_words;
    Value cur = tm_.read_quiescent(free_var());
    std::uint64_t steps = 0;
    while (cur != kNullRef) {
      if (++steps > total_words_) return total_words_;  // cycle: fail audits
      ++n;
      cur = tm_.read_quiescent(var_of(cur, 0));
    }
    return n;
  }

 private:
  TVarId bump_var() const { return base_; }
  TVarId free_var() const { return base_ + 1; }
  TVarId var_of(Ref r, std::size_t field) const {
    return base_ + static_cast<TVarId>(r - 1 + field);
  }

  // First alloc/dealloc fixes the arena's dynamic size class.
  void bind_size_class(std::size_t words) {
    std::size_t expected = 0;
    if (!node_words_.compare_exchange_strong(expected, words,
                                             std::memory_order_relaxed)) {
      OFTM_ASSERT_MSG(expected == words,
                      "BoxedMemory arena serves one node size class");
    }
  }

  TransactionalMemory& tm_;
  const TVarId base_;
  const std::size_t total_words_;
  std::size_t static_top_ = kOverheadWords;
  std::atomic<std::size_t> node_words_{0};
};

// ---------------------------------------------------------------------------
// Region layout: records are raw heap words of a region-tier backend.
// Requires tm.has_word_access(); base/total_words exist only so both
// models construct with the same signature (the region heap is sized by
// the backend — see workload::make_tm_for_containers).
class RegionMemory {
 public:
  static constexpr std::size_t kOverheadWords = 0;

  RegionMemory(TransactionalMemory& tm, TVarId /*base*/,
               std::size_t /*total_words*/)
      : tm_(tm) {
    OFTM_ASSERT_MSG(tm.has_word_access(),
                    "RegionMemory requires a region-tier backend");
  }

  TransactionalMemory& tm() const noexcept { return tm_; }

  Ref alloc_static(std::size_t words) {
    void* p = tm_.alloc_quiescent(words * sizeof(Value));
    OFTM_ASSERT_MSG(p != nullptr, "region arena too small for container");
    return static_cast<Ref>(reinterpret_cast<std::uintptr_t>(p));
  }

  void init(TxView&) {}

  Value load(TxView& tx, Ref r, std::size_t field) {
    return tx.read_at(word(r) + field);
  }

  void store(TxView& tx, Ref r, std::size_t field, Value v) {
    tx.write_at(word(r) + field, v);
  }

  Ref alloc(TxView& tx, std::size_t words) {
    return static_cast<Ref>(
        reinterpret_cast<std::uintptr_t>(tx.alloc(words * sizeof(Value))));
  }

  void dealloc(TxView& tx, Ref r, std::size_t /*words*/) {
    tx.dealloc(word(r));
  }

  Value load_quiescent(Ref r, std::size_t field) const {
    return tm_.read_word_quiescent(word(r) + field);
  }

  std::optional<std::uint64_t> free_capacity_quiescent(std::size_t) const {
    return std::nullopt;  // the heap is shared; audits skip conservation
  }

 private:
  static Value* word(Ref r) {
    return reinterpret_cast<Value*>(static_cast<std::uintptr_t>(r));
  }

  TransactionalMemory& tm_;
};

static_assert(MemoryModel<BoxedMemory>);
static_assert(MemoryModel<RegionMemory>);

// ---------------------------------------------------------------------------
// Typed accessors over any model: fixed-shape records named by TxPtr<T>
// with member-pointer field selection.

template <typename T, MemoryModel M>
TxPtr<T> tx_make(M& mem, TxView& tx) {
  static_assert(sizeof(T) % sizeof(Value) == 0);
  return TxPtr<T>{mem.alloc(tx, sizeof(T) / sizeof(Value))};
}

template <typename T, MemoryModel M>
void tx_destroy(M& mem, TxView& tx, TxPtr<T> p) {
  mem.dealloc(tx, p.ref, sizeof(T) / sizeof(Value));
}

template <MemoryModel M, typename T, typename F>
Value tx_get(M& mem, TxView& tx, TxPtr<T> p, F T::*field) {
  return mem.load(tx, p.ref, field_index(field));
}

template <MemoryModel M, typename T, typename F>
void tx_set(M& mem, TxView& tx, TxPtr<T> p, F T::*field, Value v) {
  mem.store(tx, p.ref, field_index(field), v);
}

// ---------------------------------------------------------------------------
// Runtime layout dispatch: picks the model matching the backend's
// capability and calls f(ModelTag<M>{}), so one templated application
// function runs on every factory recipe.

template <typename M>
struct ModelTag {
  using type = M;
};

template <typename F>
decltype(auto) with_memory_model(TransactionalMemory& tm, F&& f) {
  if (tm.has_word_access()) return f(ModelTag<RegionMemory>{});
  return f(ModelTag<BoxedMemory>{});
}

}  // namespace oftm::core
