#include "core/tm.hpp"

// Anchors the vtables of Transaction/TransactionalMemory/TmSession and
// hosts the session-table plus fallback-session plumbing shared by every
// TM (wrappers included).

namespace oftm::core {

TmSession& TransactionalMemory::session(ThreadSlot slot) {
  OFTM_ASSERT(slot >= 0 && slot < runtime::ThreadRegistry::kMaxThreads);
  std::atomic<TmSession*>& cell =
      sessions_.cells[static_cast<std::size_t>(slot)];
  if (TmSession* s = cell.load(std::memory_order_acquire)) return *s;
  std::lock_guard<std::mutex> lock(sessions_.mu);
  if (TmSession* s = cell.load(std::memory_order_relaxed)) return *s;
  std::unique_ptr<TmSession> fresh = make_session(slot);
  TmSession* raw = fresh.get();
  sessions_.owned.push_back(std::move(fresh));
  cell.store(raw, std::memory_order_release);
  return *raw;
}

TmSession& TransactionalMemory::this_thread_session() {
  return session(runtime::ThreadRegistry::current_id());
}

Transaction& TransactionalMemory::begin(TmSession& session) {
  // Fallback hot tier: drive the virtual begin() and keep the handle alive
  // until the next begin on this session. Release the previous handle
  // FIRST — "beginning again finishes whatever the previous transaction
  // left behind" — or an abandoned-active predecessor could still hold
  // backend resources (e.g. coarse's global lock) while the new begin()
  // blocks on them: self-deadlock.
  auto& s = static_cast<detail::FallbackSession&>(session);
  s.held.reset();
  s.held = begin();
  return *s.held;
}

std::unique_ptr<TmSession> TransactionalMemory::make_session(ThreadSlot slot) {
  return std::make_unique<detail::FallbackSession>(slot);
}

// Word-tier defaults: reaching these without the capability is a
// programming error (the memory-model layer gates on has_word_access()).
std::optional<Value> TransactionalMemory::read_word(Transaction&,
                                                    const Value*) {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return std::nullopt;
}

bool TransactionalMemory::write_word(Transaction&, Value*, Value) {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return false;
}

void* TransactionalMemory::tx_alloc(Transaction&, std::size_t) {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return nullptr;
}

bool TransactionalMemory::tx_free(Transaction&, void*) {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return false;
}

void* TransactionalMemory::alloc_quiescent(std::size_t) {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return nullptr;
}

Value TransactionalMemory::read_word_quiescent(const Value*) const {
  OFTM_ASSERT_MSG(false, "backend has no word-granular region heap");
  return 0;
}

void TransactionalMemory::release_sessions() noexcept {
  for (auto& cell : sessions_.cells) {
    cell.store(nullptr, std::memory_order_relaxed);
  }
  sessions_.owned.clear();
}

}  // namespace oftm::core
