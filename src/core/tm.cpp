#include "core/tm.hpp"

// Interface-only translation unit: anchors the vtables of Transaction and
// TransactionalMemory so they are emitted exactly once.

namespace oftm::core {}  // namespace oftm::core
