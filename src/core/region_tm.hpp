// TmRegion tier, part 5: the address -> t-variable adapter.
//
// RegionWordTm<R> lays out num_tvars contiguous words inside a region
// backend's heap and exposes them through the repo's TransactionalMemory
// interface: TVarId x is the word at words_[x]. That one indirection makes
// the *entire* existing verification and measurement stack — conformance
// suite, history recorder, check_mvsg/check_opacity, checked stress, the
// workload driver — certify region histories unchanged: a region backend
// earns the same opacity evidence as the boxed backends by construction,
// which is the acceptance bar for the region tier.
//
// The region-only capabilities (tx_alloc/tx_free, raw word addressing) are
// reachable through region(): region-specific tests and benches drive them
// directly on the concrete backend, outside this interface.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "core/platform.hpp"
#include "core/region.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"

namespace oftm::core {

template <typename R>
class RegionWordTm final : public TransactionalMemory {
 public:
  using Txn = typename R::Txn;
  using Session = PooledTmSession<Txn>;

  // options.capacity_bytes == 0 derives the arena from num_tvars: the word
  // array plus headroom so transactional alloc/free tests and workloads
  // have space to churn in.
  explicit RegionWordTm(std::size_t num_tvars, RegionOptions options = {})
      : num_tvars_(num_tvars), region_(derive(options, num_tvars)) {
    words_ = static_cast<Value*>(
        region_.heap().alloc(num_tvars * sizeof(Value)));
    OFTM_ASSERT_MSG(words_ != nullptr, "region arena too small for t-vars");
  }

  R& region() noexcept { return region_; }
  Value* words() noexcept { return words_; }

  TmSession& this_thread_session() override {
    return session(HwPlatform::thread_id());
  }

  Transaction& begin(TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    region_.prepare(tx);
    return tx;
  }

  TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(HwPlatform::thread_id())).checkout();
    region_.prepare(tx);
    return TxnPtr(&tx);
  }

  std::optional<Value> read(Transaction& t, TVarId x) override {
    OFTM_ASSERT(x < num_tvars_);
    return region_.read(static_cast<Txn&>(t), words_ + x);
  }

  bool write(Transaction& t, TVarId x, Value v) override {
    OFTM_ASSERT(x < num_tvars_);
    return region_.write(static_cast<Txn&>(t), words_ + x, v);
  }

  bool try_commit(Transaction& t) override {
    return region_.try_commit(static_cast<Txn&>(t));
  }

  void try_abort(Transaction& t) override {
    region_.try_abort(static_cast<Txn&>(t));
  }

  // Word tier: the region-only capabilities, surfaced through the
  // type-erased interface so the memory-model layer (and through it the
  // ds:: containers) can lay data out as heap words on any region recipe
  // the factory hands back.
  bool has_word_access() const override { return true; }

  std::optional<Value> read_word(Transaction& t, const Value* addr) override {
    return region_.read(static_cast<Txn&>(t), addr);
  }

  bool write_word(Transaction& t, Value* addr, Value v) override {
    return region_.write(static_cast<Txn&>(t), addr, v);
  }

  void* tx_alloc(Transaction& t, std::size_t bytes) override {
    return region_.tx_alloc(static_cast<Txn&>(t), bytes);
  }

  bool tx_free(Transaction& t, void* p) override {
    return region_.tx_free(static_cast<Txn&>(t), p);
  }

  void* alloc_quiescent(std::size_t bytes) override {
    return region_.heap().alloc(bytes);
  }

  Value read_word_quiescent(const Value* addr) const override {
    return region_.read_quiescent(addr);
  }

  std::size_t num_tvars() const override { return num_tvars_; }
  Value read_quiescent(TVarId x) const override {
    return region_.read_quiescent(words_ + x);
  }
  std::string name() const override { return region_.name(); }
  runtime::TxStats stats() const override { return region_.stats(); }
  void reset_stats() override { region_.reset_stats(); }

 protected:
  std::unique_ptr<TmSession> make_session(ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  static RegionOptions derive(RegionOptions options, std::size_t num_tvars) {
    if (options.capacity_bytes == 0) {
      options.capacity_bytes =
          num_tvars * sizeof(Value) + (std::size_t{1} << 20);
    }
    return options;
  }

  const std::size_t num_tvars_;
  R region_;
  Value* words_ = nullptr;  // owned by the region heap
};

}  // namespace oftm::core
