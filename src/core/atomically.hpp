// Convenience retry layer: the programming model the paper's introduction
// describes ("a process that wants to access a shared data structure
// executes some operations ... inside an atomic program called a
// transaction"). A forcefully aborted transaction is transparently retried
// with randomized backoff — the paper (Section 3) stresses that *restarting
// a computation is up to the application*, which is exactly what this layer
// is: application-side glue, not part of any TM implementation.
#pragma once

#include <type_traits>
#include <utility>

#include "core/tm.hpp"
#include "runtime/backoff.hpp"

namespace oftm::core {

// Internal control-flow signal: the enclosing transaction aborted and the
// body must unwind so atomically() can retry. Not derived from
// std::exception on purpose — user catch(const std::exception&) blocks
// inside transaction bodies must not swallow it.
struct TxRetrySignal {};

// Thrown by TxView::cancel(): unwind and do NOT retry.
struct TxCancelled {};

// The handle the transaction body programs against.
class TxView {
 public:
  TxView(TransactionalMemory& tm, Transaction& txn) : tm_(tm), txn_(txn) {}

  Value read(TVarId x) {
    auto v = tm_.read(txn_, x);
    if (!v) throw TxRetrySignal{};
    return *v;
  }

  void write(TVarId x, Value v) {
    if (!tm_.write(txn_, x, v)) throw TxRetrySignal{};
  }

  // Application-requested abort + retry from scratch (e.g. "retry" in
  // composable-memory-transactions style when a precondition fails).
  [[noreturn]] void retry() {
    tm_.try_abort(txn_);
    throw TxRetrySignal{};
  }

  // Application-requested abort without retry: atomically() rethrows
  // TxCancelled to the caller.
  [[noreturn]] void cancel() {
    tm_.try_abort(txn_);
    throw TxCancelled{};
  }

  Transaction& transaction() noexcept { return txn_; }

 private:
  TransactionalMemory& tm_;
  Transaction& txn_;
};

// Run `body(TxView&)` as a transaction, retrying on (forceful or requested)
// abort until it commits. Returns the body's return value of the committed
// execution.
template <typename F>
auto atomically(TransactionalMemory& tm, F&& body) {
  using R = std::invoke_result_t<F&, TxView&>;
  runtime::ExponentialBackoff backoff;
  for (;;) {
    TxnPtr txn = tm.begin();
    TxView view(tm, *txn);
    try {
      if constexpr (std::is_void_v<R>) {
        body(view);
        if (tm.try_commit(*txn)) return;
      } else {
        R result = body(view);
        if (tm.try_commit(*txn)) return result;
      }
    } catch (const TxRetrySignal&) {
      // fall through to retry
    }
    backoff.pause();
  }
}

}  // namespace oftm::core
