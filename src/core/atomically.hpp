// Convenience retry layer: the programming model the paper's introduction
// describes ("a process that wants to access a shared data structure
// executes some operations ... inside an atomic program called a
// transaction"). A forcefully aborted transaction is transparently retried
// with randomized backoff — the paper (Section 3) stresses that *restarting
// a computation is up to the application*, which is exactly what this layer
// is: application-side glue, not part of any TM implementation.
//
// Execution model (no-throw retry loop). Each attempt runs on the calling
// thread's pooled session (core::TmSession), so retries reuse one
// transaction descriptor and allocate nothing. A TM-forced abort does NOT
// throw: the TxView goes *dead* — the failing read returns 0, every
// subsequent operation no-ops, and ok() turns false — and the attempt
// resolves to TxOutcome::kRetry once the body returns. Bodies with loops
// whose bounds depend on transactional reads must check ok() (a dead
// view's poison values are not a consistent snapshot); straight-line
// bodies need no changes. TxRetrySignal remains only as the user-facing
// escape hatch from deep call stacks (TxView::retry() throws it);
// TxView::cancel() throws TxCancelled through atomically() to the caller,
// exactly as before.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "core/tm.hpp"
#include "runtime/backoff.hpp"

namespace oftm::core {

// Resolution of one transactional attempt.
enum class TxOutcome {
  kCommitted,  // C_k: the body's effects took place atomically
  kRetry,      // A_k (forced or requested): run the body again
  kCancelled,  // TxView::cancel(): abort and do NOT retry
};

// User-facing escape hatch from deep call stacks: thrown by
// TxView::retry(), caught by the attempt loop. Not derived from
// std::exception on purpose — user catch(const std::exception&) blocks
// inside transaction bodies must not swallow it. TM-forced aborts never
// throw this (they surface through TxView::ok()).
struct TxRetrySignal {};

// Thrown by TxView::cancel(): unwind and do NOT retry. atomically()
// rethrows it to the caller; atomically_once() reports kCancelled.
struct TxCancelled {};

// The handle the transaction body programs against.
class TxView {
 public:
  TxView(TransactionalMemory& tm, Transaction& txn) noexcept
      : tm_(tm), txn_(txn) {}

  // Read x. On a TM-forced abort the view goes dead: this call returns 0
  // (a poison value — not a consistent snapshot), every later operation
  // no-ops, and ok() is false. Return from the body promptly; loops
  // bounded by transactional values must check ok().
  Value read(TVarId x) {
    if (dead_) return 0;
    const auto v = tm_.read(txn_, x);
    if (!v) {
      dead_ = true;
      return 0;
    }
    return *v;
  }

  // Write v to x; a no-op once the view is dead.
  void write(TVarId x, Value v) {
    if (dead_) return;
    if (!tm_.write(txn_, x, v)) dead_ = true;
  }

  // ---- Word tier (region-capable backends only) ------------------------
  // Same dead-view discipline as read/write: a forced abort poisons the
  // view, and every later word operation no-ops. Callers gate layout
  // decisions on has_word_access(); reaching read_at/write_at/alloc on a
  // boxed backend trips the TransactionalMemory default asserts.

  bool has_word_access() const noexcept { return tm_.has_word_access(); }

  // Read the heap word at addr; 0 + dead view on a forced abort.
  Value read_at(const Value* addr) {
    if (dead_) return 0;
    const auto v = tm_.read_word(txn_, addr);
    if (!v) {
      dead_ = true;
      return 0;
    }
    return *v;
  }

  // Write v to the heap word at addr; a no-op once the view is dead.
  void write_at(Value* addr, Value v) {
    if (dead_) return;
    if (!tm_.write_word(txn_, addr, v)) dead_ = true;
  }

  // Transactionally allocate a zeroed block. nullptr on a dead view OR on
  // arena exhaustion — exhaustion is not an abort (ok() stays true), so
  // callers that must distinguish check ok() after a nullptr.
  void* alloc(std::size_t bytes) {
    if (dead_) return nullptr;
    return tm_.tx_alloc(txn_, bytes);
  }

  // Transactionally free a block (deferred to commit; forgotten on abort).
  void dealloc(void* p) {
    if (dead_ || p == nullptr) return;
    tm_.tx_free(txn_, p);
  }

  // False once the transaction was forcefully aborted (or retry() ran):
  // the attempt is doomed and the body should return.
  bool ok() const noexcept { return !dead_; }

  // Application-requested abort + retry from scratch (e.g. "retry" in
  // composable-memory-transactions style when a precondition fails).
  // Throws TxRetrySignal so deep call stacks unwind without plumbing
  // ok() everywhere.
  [[noreturn]] void retry() {
    // Attribute the abort to the application's retry request, not to a
    // plain tryA (the hint is consumed by the backend's abort accounting,
    // and restored to the default if the transaction was already dead).
    OFTM_OBS_ONLY(obs::hint_abort(obs::AbortReason::kExplicitRetry);)
    tm_.try_abort(txn_);
    OFTM_OBS_ONLY(obs::hint_abort(obs::AbortReason::kUserRequested);)
    dead_ = true;
    throw TxRetrySignal{};
  }

  // Application-requested abort without retry: atomically() rethrows
  // TxCancelled to the caller.
  [[noreturn]] void cancel() {
    tm_.try_abort(txn_);
    dead_ = true;
    throw TxCancelled{};
  }

  Transaction& transaction() noexcept { return txn_; }

 private:
  TransactionalMemory& tm_;
  Transaction& txn_;
  bool dead_ = false;
};

namespace detail {

// One transactional attempt; `sink` receives the body's result on commit
// (called at most once, with an rvalue). Kept out of the public surface so
// atomically()/atomically_once() can choose their own result storage.
template <typename F, typename Sink>
TxOutcome run_attempt(TransactionalMemory& tm, TmSession& session, F&& body,
                      Sink&& sink) {
  using R = std::invoke_result_t<F&, TxView&>;
  Transaction& txn = tm.begin(session);
  TxView view(tm, txn);
  try {
    if constexpr (std::is_void_v<R>) {
      body(view);
      if (view.ok() && tm.try_commit(txn)) return TxOutcome::kCommitted;
    } else {
      R r = body(view);
      if (view.ok() && tm.try_commit(txn)) {
        sink(std::move(r));
        return TxOutcome::kCommitted;
      }
    }
  } catch (const TxRetrySignal&) {
    // retry() already aborted; a raw user-thrown signal may not have —
    // finish the transaction either way (idempotent on a completed one).
    OFTM_OBS_ONLY(obs::hint_abort(obs::AbortReason::kExplicitRetry);)
    tm.try_abort(txn);
    OFTM_OBS_ONLY(obs::hint_abort(obs::AbortReason::kUserRequested);)
    return TxOutcome::kRetry;
  } catch (const TxCancelled&) {
    tm.try_abort(txn);
    return TxOutcome::kCancelled;
  } catch (...) {
    // Foreign exception unwinding out of the body: the pooled descriptor
    // has no RAII handle, so finish the transaction here or backend
    // resources (coarse's global lock, TL's encounter-time locks) would
    // stay held until the next begin on this session.
    tm.try_abort(txn);
    throw;
  }
  return TxOutcome::kRetry;
}

struct DiscardResult {
  template <typename T>
  void operator()(T&&) const noexcept {}
};

}  // namespace detail

// Run `body(TxView&)` once as a transaction on `session` and report the
// outcome as a status code; the body's return value (if any) is discarded.
// Never throws on TM-forced aborts; exceptions other than
// TxRetrySignal/TxCancelled propagate (after aborting the transaction).
template <typename F>
TxOutcome atomically_once(TransactionalMemory& tm, TmSession& session,
                          F&& body) {
  return detail::run_attempt(tm, session, body, detail::DiscardResult{});
}

// Same, writing the body's return value through *result on kCommitted.
// *result must be assignable from the body's return type.
template <typename F, typename Out>
TxOutcome atomically_once(TransactionalMemory& tm, TmSession& session,
                          F&& body, Out* result) {
  return detail::run_attempt(tm, session, body, [result](auto&& r) {
    *result = std::forward<decltype(r)>(r);
  });
}

// Run `body(TxView&)` as a transaction, retrying on abort (forced or
// requested) until it commits. Returns the body's return value of the
// committed execution (move-constructible suffices). Rethrows TxCancelled
// if the body cancels.
template <typename F>
auto atomically(TransactionalMemory& tm, F&& body) {
  using R = std::invoke_result_t<F&, TxView&>;
  runtime::ExponentialBackoff backoff;
  TmSession& session = tm.this_thread_session();
  for (;;) {
    if constexpr (std::is_void_v<R>) {
      switch (atomically_once(tm, session, body)) {
        case TxOutcome::kCommitted: return;
        case TxOutcome::kCancelled: throw TxCancelled{};
        case TxOutcome::kRetry: break;
      }
    } else {
      std::optional<R> result;
      const TxOutcome outcome = detail::run_attempt(
          tm, session, body, [&result](R&& r) { result.emplace(std::move(r)); });
      switch (outcome) {
        case TxOutcome::kCommitted: return std::move(*result);
        case TxOutcome::kCancelled: throw TxCancelled{};
        case TxOutcome::kRetry: break;
      }
    }
    backoff.pause();
  }
}

}  // namespace oftm::core
