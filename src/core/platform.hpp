// The Platform policy: one STM code base, two execution substrates.
//
// Every STM backend in this repo is a template over a Platform `P`, which
// supplies:
//
//   P::Atomic<T>   — std::atomic-compatible shared word. On HwPlatform this
//                    *is* std::atomic<T>. On sim::SimPlatform each access is
//                    a *step* in the paper's sense (Section 2.1): it is
//                    logged into the low-level history and is a scheduling
//                    point of the deterministic scheduler.
//   P::Reclaimer   — deferred-free facility. Hardware: epoch-based
//                    reclamation. Simulator: free-at-teardown arena (runs
//                    are finite, and sim threads may hold pointers across
//                    yields).
//   P::pause()     — contention backoff hook (a yield point in the sim).
//   P::thread_id() — dense id of the executing process.
//
// This is how the same DSTM/FOCTM source is benchmarked on real hardware
// *and* model-checked step-by-step against the paper's definitions.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "runtime/epoch.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::core {

// Reclaimer used by hardware backends: thin facade over the process-global
// epoch manager.
struct HwReclaimer {
  using Guard = runtime::EpochManager::Guard;

  template <typename T>
  static void retire(T* p) {
    runtime::EpochManager::global().retire(p);
  }
};

struct HwPlatform {
  template <typename T>
  using Atomic = std::atomic<T>;

  using Reclaimer = HwReclaimer;

  // Contention backoff policy used inside backend conflict loops.
  using Backoff = runtime::ExponentialBackoff;

  static void pause() noexcept { runtime::cpu_pause(); }
  static int thread_id() { return runtime::ThreadRegistry::current_id(); }
  static constexpr bool kIsSimulation = false;
};

// Compile-time sanity check used by backends; intentionally loose (the sim
// platform's Atomic mirrors std::atomic's API, not its type).
template <typename P>
concept PlatformLike = requires {
  typename P::template Atomic<std::uint64_t>;
  typename P::Reclaimer;
  typename P::Reclaimer::Guard;
  { P::thread_id() } -> std::convertible_to<int>;
  { P::pause() };
};

static_assert(PlatformLike<HwPlatform>);

}  // namespace oftm::core
