// The TM-as-a-shared-object interface of Section 2.2, exposed as a
// two-tier execution surface.
//
// Operations map 1:1 onto the paper's model:
//   read(Tk, x)    -> value or abort event A_k        (std::nullopt)
//   write(Tk,x,v)  -> ok or abort event A_k           (false)
//   try_commit(Tk) -> commit event C_k or abort A_k   (true / false)
//   try_abort(Tk)  -> abort event A_k                 (always)
//
// Hot tier (pooled sessions). `session(slot)` hands out one TmSession per
// thread slot; `begin(TmSession&)` resets and reuses that session's pooled
// transaction descriptor in place. Read/write-set capacity survives
// retries, so after warm-up a transaction costs zero heap allocations on
// the backends without inherently allocating protocols (NOrec, TL/TL2,
// Coarse — DSTM locators and FOCTM descriptors are part of the algorithms
// being measured and still allocate). core::atomically() and the workload
// driver run on this tier; tests/alloc_free_test.cpp pins the
// zero-allocation property.
//
// Portability tier. The virtual `TxnPtr begin()` interface is a thin
// adapter over the same per-thread pools: it checks a descriptor out of
// the calling thread's session free list and the returned handle's
// releaser checks it back in. Descriptors are recycled, never freed, so
// the steady state is also allocation-free — but every operation is a
// virtual call. The conformance harness, history recorder and checkers
// drive all backends through this tier unchanged; hot-path benches use
// workload::visit_tm to reach concrete backend types instead.
//
// The virtual-dispatch cost of the portability tier is identical across
// backends and thus cancels in every comparison this repo makes; the hot
// tier exists so the *absolute* numbers are not dominated by harness
// overhead (the methodological trap the cost-of-obstruction-freedom
// comparison must avoid).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/profile.hpp"
#include "obs/taxonomy.hpp"
#include "runtime/assert.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::core {

class TmSession;
class TransactionalMemory;
namespace detail {
class DescriptorPoolBase;
}

// Index of a per-thread session within a TM instance. Backends map their
// platform's thread id onto this; any value in [0, kMaxThreads) is valid
// (the conformance harness leases arbitrary slots).
using ThreadSlot = int;

// Backend-specific per-transaction state. Obtained from begin(); passed by
// reference to every subsequent operation of that transaction. A
// descriptor must not outlive its TM and is not thread-safe (the paper:
// transactions at any single process are never concurrent). Descriptors
// are pooled: the same object is reset and reused across transactions of
// its thread slot, so a reference is only meaningful until the next
// begin() on the same session / handle release.
class Transaction {
 public:
  virtual ~Transaction() = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  virtual TxStatus status() const = 0;
  virtual TxId id() const = 0;

 protected:
  Transaction() = default;

  // Invoked when a portability-tier handle (TxnPtr) drops this descriptor.
  // Backend overrides release protocol resources a still-active
  // transaction may hold (encounter locks, reader-table registrations),
  // then call the base, which returns a pooled descriptor to its free
  // list. The descriptor itself is never freed here.
  virtual void handle_released() noexcept;

 private:
  friend struct TxnReleaser;
  friend class detail::DescriptorPoolBase;
  detail::DescriptorPoolBase* pool_home_ = nullptr;
};

// Deleter of the portability tier's handle: recycles the descriptor
// instead of freeing it.
struct TxnReleaser {
  void operator()(Transaction* t) const noexcept {
    if (t != nullptr) t->handle_released();
  }
};

using TxnPtr = std::unique_ptr<Transaction, TxnReleaser>;

// A per-thread execution session: owns the pooled transaction
// descriptor(s) for one thread slot of one TM instance. Obtained from
// TransactionalMemory::session(); a session (and everything begun on it)
// must only be used by one thread at a time.
class TmSession {
 public:
  virtual ~TmSession() = default;
  TmSession(const TmSession&) = delete;
  TmSession& operator=(const TmSession&) = delete;

  ThreadSlot slot() const noexcept { return slot_; }

 protected:
  explicit TmSession(ThreadSlot slot) noexcept : slot_(slot) {}

 private:
  const ThreadSlot slot_;
};

namespace detail {

// Type-erased descriptor pool: owns every descriptor ever created for one
// session and keeps the portability tier's free list. Descriptors live
// until the TM is destroyed.
class DescriptorPoolBase {
 public:
  void give_back(Transaction* t) { free_.push_back(t); }

 protected:
  ~DescriptorPoolBase() = default;

  static void set_home(Transaction& t, DescriptorPoolBase* home) noexcept {
    t.pool_home_ = home;
  }

  std::vector<std::unique_ptr<Transaction>> owned_;
  std::vector<Transaction*> free_;
  Transaction* hot_ = nullptr;
};

}  // namespace detail

inline void Transaction::handle_released() noexcept {
  // give_back never reallocates here: free_ capacity is pre-reserved for
  // every descriptor the pool owns (see PooledTmSession::create).
  if (pool_home_ != nullptr) pool_home_->give_back(this);
}

// The pooled session every backend uses: one dedicated hot-tier descriptor
// (stable identity, reset in place by begin(TmSession&)) plus the
// portability tier's free list. TxnT must be default-constructible; the
// backend re-arms it via its own prepare step.
template <typename TxnT>
class PooledTmSession final : public TmSession,
                              private detail::DescriptorPoolBase {
 public:
  explicit PooledTmSession(ThreadSlot slot) : TmSession(slot) {}

  // Hot tier: the session's dedicated descriptor. Never enters the free
  // list, so its address is stable across transactions — the descriptor
  // reuse the conformance suite pins down.
  TxnT& hot() {
    if (hot_ == nullptr) hot_ = &create(/*pooled=*/false);
    return static_cast<TxnT&>(*hot_);
  }

  // Portability tier: check a descriptor out of the free list; the handle
  // releaser (Transaction::handle_released) checks it back in. Allocates
  // only when every owned descriptor is simultaneously live.
  TxnT& checkout() {
    if (free_.empty()) return static_cast<TxnT&>(create(/*pooled=*/true));
    Transaction* t = free_.back();
    free_.pop_back();
    return static_cast<TxnT&>(*t);
  }

 private:
  Transaction& create(bool pooled) {
    owned_.push_back(std::make_unique<TxnT>());
    Transaction& t = *owned_.back();
    if (pooled) set_home(t, this);
    // Keep give_back allocation-free (it runs inside a noexcept releaser).
    free_.reserve(owned_.size());
    return t;
  }
};

namespace detail {

// Lazily built slot -> session table. Creation is mutex-guarded (it
// happens once per thread per TM); lookups after that are one atomic load.
struct SessionTableState {
  std::array<std::atomic<TmSession*>, runtime::ThreadRegistry::kMaxThreads>
      cells{};
  std::mutex mu;
  std::vector<std::unique_ptr<TmSession>> owned;
};

// Fallback session used by TMs that do not override make_session (wrappers
// like the history recorder): the "pooled descriptor" is whatever the
// virtual begin() hands out, held alive until the next begin on the
// session.
struct FallbackSession final : TmSession {
  explicit FallbackSession(ThreadSlot slot) noexcept : TmSession(slot) {}
  TxnPtr held;
};

}  // namespace detail

class TransactionalMemory {
 public:
  virtual ~TransactionalMemory() = default;

  // ---- Hot tier --------------------------------------------------------

  // The calling thread's pooled session for `slot`. Created on first use;
  // the reference stays valid for the life of the TM.
  TmSession& session(ThreadSlot slot);

  // The session of the calling thread's platform slot. Virtual so
  // simulator-instantiated backends can key it by simulated process id
  // rather than host thread.
  virtual TmSession& this_thread_session();

  // Start a transaction on `session`, resetting and reusing its pooled
  // descriptor (zero allocations after warm-up). At most one transaction
  // per session may be in use at a time: beginning again finishes whatever
  // the previous transaction left behind. The returned reference is valid
  // until the next begin on the same session.
  virtual Transaction& begin(TmSession& session);

  // ---- Portability tier ------------------------------------------------

  // Start a new transaction on the calling thread. The handle's releaser
  // recycles the descriptor into the thread's session pool; handles may be
  // live concurrently on one thread (they check out distinct descriptors)
  // but must be released on the thread that began them.
  virtual TxnPtr begin() = 0;

  // Read t-variable x within txn. nullopt == abort event A_k: the
  // transaction is aborted and no further operation may be issued in it.
  virtual std::optional<Value> read(Transaction& txn, TVarId x) = 0;

  // Write v to t-variable x within txn. false == abort event A_k.
  virtual bool write(Transaction& txn, TVarId x, Value v) = 0;

  // tryC(Tk): request commit. true == C_k, false == A_k.
  virtual bool try_commit(Transaction& txn) = 0;

  // tryA(Tk): request abort; always succeeds (returns A_k).
  virtual void try_abort(Transaction& txn) = 0;

  // ---- Word tier (optional capability) ---------------------------------
  //
  // Region-backed TMs additionally transact over raw heap words: the
  // ds:: memory-model layer (core/memory_model.hpp) programs against these
  // to lay containers out as tx_alloc'd pointer-linked nodes and
  // contiguous word arrays instead of boxed TVarId arithmetic. The
  // default implementations assert: callers must gate on
  // has_word_access() first (core::RegionMemory does).

  // True iff this TM exposes the word-granular region heap below.
  virtual bool has_word_access() const { return false; }

  // Read/write the heap word at `addr` within txn. Same abort semantics
  // as the TVarId operations: nullopt / false == abort event A_k.
  virtual std::optional<Value> read_word(Transaction& txn, const Value* addr);
  virtual bool write_word(Transaction& txn, Value* addr, Value v);

  // Transactionally allocate a zeroed block (private until commit) /
  // free a block (deferred until commit; forgotten on abort). tx_alloc
  // returns nullptr on arena exhaustion — not an abort: retrying will not
  // help, the caller decides.
  virtual void* tx_alloc(Transaction& txn, std::size_t bytes);
  virtual bool tx_free(Transaction& txn, void* p);

  // Setup-time (quiescent) heap allocation for container roots and word
  // arrays; lives until the TM is destroyed.
  virtual void* alloc_quiescent(std::size_t bytes);

  // Committed value of a heap word observed outside any transaction
  // (quiescence guaranteed by the caller, as with read_quiescent).
  virtual Value read_word_quiescent(const Value* addr) const;

  // Number of t-variables this instance was created with.
  virtual std::size_t num_tvars() const = 0;

  // Committed value of x observed outside any transaction. Only meaningful
  // when the caller can guarantee quiescence (test assertions, warm-up).
  virtual Value read_quiescent(TVarId x) const = 0;

  // Human-readable backend name for reports.
  virtual std::string name() const = 0;

  // Aggregated statistics since construction (or last reset).
  virtual runtime::TxStats stats() const = 0;
  virtual void reset_stats() = 0;

 protected:
  // Backend hook behind session(): build the pooled session for one slot.
  // The default builds a FallbackSession driven through the virtual
  // begin(), so wrappers keep working without knowing about pooling.
  virtual std::unique_ptr<TmSession> make_session(ThreadSlot slot);

  // Tear down every session now (releasing any descriptor handle a
  // fallback session still holds). Wrappers whose transactions reference
  // derived-class state must call this from their own destructor — the
  // base destructor would release those handles only after that state is
  // gone. Not thread-safe; callers guarantee quiescence.
  void release_sessions() noexcept;

 private:
  detail::SessionTableState sessions_;
};

// Statistics plumbing shared by all backends: striped counters so that
// bookkeeping does not create false sharing between worker threads.
class TmStatsMixin {
 public:
  runtime::TxStats collect_stats() const {
    runtime::TxStats s;
    s.commits = commits_.read();
    s.aborts = aborts_.read();
    s.forced_aborts = forced_aborts_.read();
    s.reads = reads_.read();
    s.writes = writes_.read();
    s.cm_backoffs = cm_backoffs_.read();
    s.victim_kills = victim_kills_.read();
#if OFTM_OBS
    for (std::size_t i = 0; i < obs::kNumAbortReasons; ++i) {
      s.abort_reason[i] = obs_.reasons().read(i);
    }
    obs_.collect(s.phase_ns, s.phase_count, s.hot_vars);
#endif
    return s;
  }

  void reset_collect_stats() {
    commits_.reset();
    aborts_.reset();
    forced_aborts_.reset();
    reads_.reset();
    writes_.reset();
    cm_backoffs_.reset();
    victim_kills_.reset();
    OFTM_OBS_ONLY(obs_.reset();)
  }

 protected:
  // Abort funnels: every abort a backend counts goes through exactly one
  // of these, so the per-reason attribution can never drift from the
  // aggregate counters (TxStats::check_abort_reasons pins the sum).

  // An abort the program asked for via tryA. The reason comes from the
  // thread's pending hint: TxView::retry() stamps kExplicitRetry before
  // calling down; a bare tryA defaults to kUserRequested.
  void count_requested_abort() {
    aborts_.add();
#if OFTM_OBS
    const obs::AbortReason r = obs::take_abort_hint();
    obs_.reasons().add(r);
    obs::note_last_abort(r);
#endif
  }

  // An abort the TM forced, with its cause and — when one location is
  // blamable — the contended key (TVarId, stripe index, word key) for
  // the conflict heat map.
  void count_forced_abort(obs::AbortReason reason,
                          std::uint64_t key = obs::kNoKey) {
    static_cast<void>(reason);
    static_cast<void>(key);
    aborts_.add();
    forced_aborts_.add();
#if OFTM_OBS
    obs_.reasons().add(reason);
    obs::note_last_abort(reason);
    if (key != obs::kNoKey) obs_.cell().heat.hit(key);
#endif
  }

  // Once per begun transaction: elects (or not) this transaction for
  // phase-interval sampling. Backends call it from prepare().
  void obs_tx_begin() { OFTM_OBS_ONLY(obs::tick_tx_sample();) }

  runtime::StripedCounter commits_;
  runtime::StripedCounter aborts_;
  runtime::StripedCounter forced_aborts_;
  runtime::StripedCounter reads_;
  runtime::StripedCounter writes_;
  runtime::StripedCounter cm_backoffs_;
  runtime::StripedCounter victim_kills_;
#if OFTM_OBS
  // Phase histograms, heat map and reason counters for this TM instance.
  // Mutable: collect_stats() is const but materializes nothing; the
  // recording paths go through the protected helpers above.
  mutable obs::TmObs obs_;
#endif
};

}  // namespace oftm::core
