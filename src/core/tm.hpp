// The TM-as-a-shared-object interface of Section 2.2.
//
// Operations map 1:1 onto the paper's model:
//   read(Tk, x)    -> value or abort event A_k        (std::nullopt)
//   write(Tk,x,v)  -> ok or abort event A_k           (false)
//   try_commit(Tk) -> commit event C_k or abort A_k   (true / false)
//   try_abort(Tk)  -> abort event A_k                 (always)
//
// All backends (DSTM, FOCTM, TL, TL2, Coarse) implement this interface so
// the workload harness, the history recorder and the checkers drive them
// uniformly. The virtual-dispatch cost is identical across backends and thus
// cancels in every comparison this repo makes; hot-path benches that need
// raw numbers use the backends' concrete types directly.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "runtime/stats.hpp"

namespace oftm::core {

// Backend-specific per-transaction state. Obtained from begin(); passed by
// reference to every subsequent operation of that transaction. A handle must
// not outlive its TM and is not thread-safe (the paper: transactions at any
// single process are never concurrent).
class Transaction {
 public:
  virtual ~Transaction() = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  virtual TxStatus status() const = 0;
  virtual TxId id() const = 0;

 protected:
  Transaction() = default;
};

using TxnPtr = std::unique_ptr<Transaction>;

class TransactionalMemory {
 public:
  virtual ~TransactionalMemory() = default;

  // Start a new transaction on the calling thread.
  virtual TxnPtr begin() = 0;

  // Read t-variable x within txn. nullopt == abort event A_k: the
  // transaction is aborted and no further operation may be issued in it.
  virtual std::optional<Value> read(Transaction& txn, TVarId x) = 0;

  // Write v to t-variable x within txn. false == abort event A_k.
  virtual bool write(Transaction& txn, TVarId x, Value v) = 0;

  // tryC(Tk): request commit. true == C_k, false == A_k.
  virtual bool try_commit(Transaction& txn) = 0;

  // tryA(Tk): request abort; always succeeds (returns A_k).
  virtual void try_abort(Transaction& txn) = 0;

  // Number of t-variables this instance was created with.
  virtual std::size_t num_tvars() const = 0;

  // Committed value of x observed outside any transaction. Only meaningful
  // when the caller can guarantee quiescence (test assertions, warm-up).
  virtual Value read_quiescent(TVarId x) const = 0;

  // Human-readable backend name for reports.
  virtual std::string name() const = 0;

  // Aggregated statistics since construction (or last reset).
  virtual runtime::TxStats stats() const = 0;
  virtual void reset_stats() = 0;
};

// Statistics plumbing shared by all backends: striped counters so that
// bookkeeping does not create false sharing between worker threads.
class TmStatsMixin {
 public:
  runtime::TxStats collect_stats() const {
    runtime::TxStats s;
    s.commits = commits_.read();
    s.aborts = aborts_.read();
    s.forced_aborts = forced_aborts_.read();
    s.reads = reads_.read();
    s.writes = writes_.read();
    s.cm_backoffs = cm_backoffs_.read();
    s.victim_kills = victim_kills_.read();
    return s;
  }

  void reset_collect_stats() {
    commits_.reset();
    aborts_.reset();
    forced_aborts_.reset();
    reads_.reset();
    writes_.reset();
    cm_backoffs_.reset();
    victim_kills_.reset();
  }

 protected:
  runtime::StripedCounter commits_;
  runtime::StripedCounter aborts_;
  runtime::StripedCounter forced_aborts_;
  runtime::StripedCounter reads_;
  runtime::StripedCounter writes_;
  runtime::StripedCounter cm_backoffs_;
  runtime::StripedCounter victim_kills_;
};

}  // namespace oftm::core
