#include "core/region.hpp"

#include <bit>
#include <cstring>
#include <mutex>
#include <new>

#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::core {

RegionHeap::RegionHeap(std::size_t capacity_bytes) {
  OFTM_ASSERT_MSG(capacity_bytes >= kMinBlockBytes, "region capacity too small");
  // Round the arena itself to the large quantum so bump offsets stay
  // aligned for every class.
  capacity_ = (capacity_bytes + kLargeQuantum - 1) & ~(kLargeQuantum - 1);
  arena_.reset(static_cast<std::byte*>(::operator new(
      capacity_, std::align_val_t{runtime::kCacheLineSize})));
}

std::size_t RegionHeap::round_total(std::size_t payload_bytes) noexcept {
  const std::size_t want = payload_bytes + kHeaderBytes;
  if (want <= kLargeThreshold) {
    return std::bit_ceil(want < kMinBlockBytes ? kMinBlockBytes : want);
  }
  return (want + kLargeQuantum - 1) & ~(kLargeQuantum - 1);
}

int RegionHeap::class_of(std::size_t total) noexcept {
  // total is a power of two in [32, 65536]; class 0 == 32.
  return std::bit_width(total) - 6;
}

void* RegionHeap::pop_free(std::size_t total) {
  if (total <= kLargeThreshold) {
    FreeList& fl = classes_[class_of(total)];
    std::scoped_lock lk(fl.lock);
    if (fl.head == nullptr) return nullptr;
    std::byte* block = fl.head;
    std::memcpy(&fl.head, block + kHeaderBytes, sizeof(fl.head));
    return block;
  }
  std::scoped_lock lk(large_lock_);
  for (std::size_t i = 0; i < large_pool_.size(); ++i) {
    if (large_pool_[i].second == total) {
      std::byte* found = large_pool_[i].first;
      large_pool_[i] = large_pool_.back();
      large_pool_.pop_back();
      return found;
    }
  }
  return nullptr;
}

void RegionHeap::push_free(std::byte* block, std::size_t total) {
  if (total <= kLargeThreshold) {
    FreeList& fl = classes_[class_of(total)];
    std::scoped_lock lk(fl.lock);
    std::memcpy(block + kHeaderBytes, &fl.head, sizeof(fl.head));
    fl.head = block;
    return;
  }
  std::scoped_lock lk(large_lock_);
  large_pool_.emplace_back(block, total);
}

void* RegionHeap::bump(std::size_t total) {
  std::size_t offset = bump_.load(std::memory_order_relaxed);
  for (;;) {
    if (offset + total > capacity_) return nullptr;  // exhausted
    if (bump_.compare_exchange_weak(offset, offset + total,
                                    std::memory_order_relaxed)) {
      return arena_.get() + offset;
    }
  }
}

void* RegionHeap::alloc(std::size_t payload_bytes) {
  const std::size_t total = round_total(payload_bytes);
  void* block = pop_free(total);
  if (block == nullptr) block = bump(total);
  if (block == nullptr) return nullptr;
  auto* h = static_cast<BlockHeader*>(block);
  h->total_bytes = total;
  h->state = kStateAllocated;
  void* payload = static_cast<std::byte*>(block) + kHeaderBytes;
  // Zeroed payloads: fresh blocks are private until a commit publishes a
  // pointer to them, and recycled blocks are past their grace period, so
  // this plain memset races with nobody (see the header's reclamation
  // argument).
  std::memset(payload, 0, total - kHeaderBytes);
  allocated_bytes_.fetch_add(total, std::memory_order_relaxed);
  return payload;
}

std::size_t RegionHeap::block_bytes(const void* payload) const {
  OFTM_ASSERT(contains(payload));
  const auto* h = reinterpret_cast<const BlockHeader*>(
      static_cast<const std::byte*>(payload) - kHeaderBytes);
  OFTM_ASSERT_MSG(h->state == kStateAllocated, "block_bytes on a free block");
  return h->total_bytes - kHeaderBytes;
}

void RegionHeap::free_now(void* payload) {
  OFTM_ASSERT_MSG(contains(payload), "free of a pointer outside the region");
  BlockHeader* h = header_of(payload);
  OFTM_ASSERT_MSG(h->state == kStateAllocated, "double free in region");
  h->state = kStateFree;
  const std::size_t total = h->total_bytes;
  allocated_bytes_.fetch_sub(total, std::memory_order_relaxed);
  push_free(reinterpret_cast<std::byte*>(h), total);
}

void RegionHeap::retire(void* payload) {
  OFTM_ASSERT_MSG(contains(payload), "retire of a pointer outside the region");
  epochs_.retire(
      payload,
      [](void* p, void* ctx) { static_cast<RegionHeap*>(ctx)->free_now(p); },
      this);
}

void RegionHeap::flush_reclamation() {
  // Two epoch advances age every stamp past the grace period; bounded loop
  // in case another thread's pin briefly blocks an advance.
  for (int i = 0; i < 64 && epochs_.retired_count() > 0; ++i) {
    epochs_.reclaim();
  }
}

}  // namespace oftm::core
