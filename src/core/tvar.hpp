// Typed overlay over word-sized t-variables.
//
// The core model stores 64-bit words (transactional registers, as in the
// paper). TVar<T> gives examples and applications a typed veneer for any
// trivially-copyable T that fits in a word (ints, floats, small enums,
// indices). Section 6 of the paper shows richer object types add no
// computational power; richer *convenience* types can be layered the same
// way the paper describes (implement the object's sequential code over
// transactional registers).
#pragma once

#include <bit>
#include <cstring>
#include <type_traits>

#include "core/atomically.hpp"
#include "core/types.hpp"

namespace oftm::core {

template <typename T>
concept WordEncodable =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Value);

template <WordEncodable T>
Value encode(T v) noexcept {
  Value w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <WordEncodable T>
T decode(Value w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

// A typed t-variable: just a tagged id, cheap to copy.
template <WordEncodable T>
class TVar {
 public:
  TVar() : id_(kInvalidTVar) {}
  explicit TVar(TVarId id) : id_(id) {}

  TVarId id() const noexcept { return id_; }
  bool valid() const noexcept { return id_ != kInvalidTVar; }

  T get(TxView& tx) const { return decode<T>(tx.read(id_)); }
  void set(TxView& tx, T v) const { tx.write(id_, encode<T>(v)); }

 private:
  TVarId id_;
};

}  // namespace oftm::core
