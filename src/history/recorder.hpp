// History recording: a transparent TM wrapper that logs every operation's
// invocation and response with a globally ordered sequence number, plus the
// digestion of raw events into per-transaction records.
//
// The recorder is only active in tests and checking runs; benchmark runs
// use the backends directly (the global sequence counter is itself a shared
// hot spot — deliberately, measurement fidelity beats speed here).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tm.hpp"
#include "history/event.hpp"

namespace oftm::history {

class Recorder {
 public:
  // Thread-safe event append with a fresh global sequence number.
  std::uint64_t record(Event e);

  // Pre-size the event log. Large-history (checked-stress) runs reserve
  // up-front — workload::estimated_history_events gives the bound — so
  // recording overhead stays flat instead of paying vector regrowth (and
  // the attendant copy stalls under the recorder lock) mid-run.
  void reserve(std::size_t events);

  // Number of events recorded so far.
  std::size_t size() const;

  // High-water reserve() request (0 when never called). Checked-stress
  // tiers assert size() <= reserved() so pre-sizing drift — an estimator
  // underestimate forcing mid-run reallocation under the recorder lock —
  // fails loudly instead of silently costing copy stalls.
  std::size_t reserved() const;

  // Snapshot of all events, sorted by seq.
  std::vector<Event> events() const;

  // Digest events into per-transaction records (sorted by first_seq).
  // The static overload digests an existing snapshot — large-history
  // callers take one events() snapshot and feed it to both this and
  // check_well_formed instead of paying the full-log copy twice.
  // With threads > 1, transactions are sharded across workers by tx-id
  // hash; output is identical to the sequential overload for every thread
  // count (each record is built from its own events in seq order, and
  // first_seq values are unique, so the sorted result is one permutation).
  std::vector<TxRecord> transactions() const;
  static std::vector<TxRecord> transactions(const std::vector<Event>& events);
  static std::vector<TxRecord> transactions(const std::vector<Event>& events,
                                            int threads);

  void clear();

  // Well-formedness of the recorded history (Section 2.1): per process,
  // alternating invocation/response of matching operations. Returns an
  // empty string if well-formed, else a diagnostic. The threaded overload
  // shards by pid (each pid's event subsequence is self-contained) and
  // reports the diagnostic with the smallest seq — the same one the
  // sequential scan hits first.
  std::string check_well_formed() const;
  static std::string check_well_formed(const std::vector<Event>& events);
  static std::string check_well_formed(const std::vector<Event>& events,
                                       int threads);

  std::string format() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 1;
  std::size_t reserved_ = 0;
};

// TransactionalMemory decorator: forwards to `inner` and records a
// well-formed history of every operation.
class RecordingTm final : public core::TransactionalMemory {
 public:
  RecordingTm(core::TransactionalMemory& inner, Recorder& recorder)
      : inner_(inner), recorder_(recorder) {}

  // Keep the base's session-tier begin(TmSession&) visible alongside the
  // override below (it drives this virtual begin via fallback sessions).
  using core::TransactionalMemory::begin;
  core::TxnPtr begin() override;
  std::optional<core::Value> read(core::Transaction& txn,
                                  core::TVarId x) override;
  bool write(core::Transaction& txn, core::TVarId x, core::Value v) override;
  bool try_commit(core::Transaction& txn) override;
  void try_abort(core::Transaction& txn) override;

  // Word-tier operations forward UNRECORDED: the Event/TxRecord vocabulary
  // (and check_mvsg's unique-writes discipline) speaks TVarId, so checked
  // runs over region containers record only the scratch TVarId ops riding
  // in the same transactions and check that projection of the history.
  bool has_word_access() const override { return inner_.has_word_access(); }
  std::optional<core::Value> read_word(core::Transaction& txn,
                                       const core::Value* addr) override {
    return inner_.read_word(txn, addr);
  }
  bool write_word(core::Transaction& txn, core::Value* addr,
                  core::Value v) override {
    return inner_.write_word(txn, addr, v);
  }
  void* tx_alloc(core::Transaction& txn, std::size_t bytes) override {
    return inner_.tx_alloc(txn, bytes);
  }
  bool tx_free(core::Transaction& txn, void* p) override {
    return inner_.tx_free(txn, p);
  }
  void* alloc_quiescent(std::size_t bytes) override {
    return inner_.alloc_quiescent(bytes);
  }
  core::Value read_word_quiescent(const core::Value* addr) const override {
    return inner_.read_word_quiescent(addr);
  }

  std::size_t num_tvars() const override { return inner_.num_tvars(); }
  core::Value read_quiescent(core::TVarId x) const override {
    return inner_.read_quiescent(x);
  }
  std::string name() const override { return inner_.name() + "+rec"; }
  runtime::TxStats stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }

 private:
  core::TransactionalMemory& inner_;
  Recorder& recorder_;
};

}  // namespace oftm::history
