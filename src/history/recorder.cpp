#include "history/recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "runtime/thread_registry.hpp"

namespace oftm::history {

std::uint64_t Recorder::record(Event e) {
  std::scoped_lock lk(mu_);
  e.seq = next_seq_++;
  events_.push_back(e);
  return e.seq;
}

void Recorder::reserve(std::size_t events) {
  std::scoped_lock lk(mu_);
  events_.reserve(events);
}

std::size_t Recorder::size() const {
  std::scoped_lock lk(mu_);
  return events_.size();
}

std::vector<Event> Recorder::events() const {
  std::scoped_lock lk(mu_);
  std::vector<Event> out = events_;
  // record() assigns strictly increasing seqs under the lock, so the log is
  // already sorted; the sort below only ever pays on an already-sorted
  // input (is_sorted guard keeps the large-history path O(n)).
  if (!std::is_sorted(out.begin(), out.end(), [](const Event& a,
                                                 const Event& b) {
        return a.seq < b.seq;
      })) {
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
  }
  return out;
}

std::vector<TxRecord> Recorder::transactions() const {
  return transactions(events());
}

std::vector<TxRecord> Recorder::transactions(const std::vector<Event>& evs) {
  std::unordered_map<core::TxId, TxRecord> by_tx;
  std::unordered_map<core::TxId, Event> open_inv;  // pending invocation per tx
  by_tx.reserve(evs.size() / 8 + 16);

  for (const Event& e : evs) {
    TxRecord& rec = by_tx[e.tx];
    if (rec.ops.empty() && rec.first_seq == 0) {
      rec.id = e.tx;
      rec.pid = e.pid;
      rec.first_seq = e.seq;
    }
    rec.last_seq = e.seq;

    if (e.kind == Event::Kind::kInvoke) {
      open_inv[e.tx] = e;
      if (e.op == OpType::kTryCommit) rec.commit_pending = true;
      if (e.op == OpType::kTryAbort) rec.requested_abort = true;
    } else {
      auto it = open_inv.find(e.tx);
      TxOp op;
      op.op = e.op;
      op.tvar = e.tvar;
      op.result = e.result;
      op.aborted = e.aborted;
      op.resp_seq = e.seq;
      if (it != open_inv.end()) {
        op.arg = it->second.arg;
        op.inv_seq = it->second.seq;
        open_inv.erase(it);
      }
      rec.ops.push_back(op);
      if (e.op == OpType::kTryCommit) {
        rec.commit_pending = false;
        rec.final_status = e.aborted ? core::TxStatus::kAborted
                                     : core::TxStatus::kCommitted;
      } else if (e.aborted) {
        rec.final_status = core::TxStatus::kAborted;
      }
    }
  }

  std::vector<TxRecord> out;
  out.reserve(by_tx.size());
  for (auto& [id, rec] : by_tx) out.push_back(std::move(rec));
  std::sort(out.begin(), out.end(), [](const TxRecord& a, const TxRecord& b) {
    return a.first_seq < b.first_seq;
  });
  return out;
}

void Recorder::clear() {
  std::scoped_lock lk(mu_);
  events_.clear();
  next_seq_ = 1;
}

std::string Recorder::check_well_formed() const {
  return check_well_formed(events());
}

std::string Recorder::check_well_formed(const std::vector<Event>& evs) {
  // Per process: events strictly alternate invoke/response and responses
  // match the preceding invocation's (tx, op).
  std::map<int, const Event*> pending;
  for (const Event& e : evs) {
    auto it = pending.find(e.pid);
    if (e.kind == Event::Kind::kInvoke) {
      if (it != pending.end() && it->second != nullptr) {
        return "invocation while an operation is pending at pid " +
               std::to_string(e.pid);
      }
      pending[e.pid] = &e;
    } else {
      if (it == pending.end() || it->second == nullptr) {
        return "response without invocation at pid " + std::to_string(e.pid);
      }
      const Event& inv = *it->second;
      if (inv.tx != e.tx || inv.op != e.op) {
        return "response does not match invocation at pid " +
               std::to_string(e.pid);
      }
      pending[e.pid] = nullptr;
    }
  }
  return "";
}

std::string Recorder::format() const {
  std::string out;
  char line[192];
  for (const Event& e : events()) {
    if (e.kind == Event::Kind::kInvoke) {
      std::snprintf(line, sizeof(line),
                    "[%5" PRIu64 "] p%-2d T%-12" PRIx64 " inv  %-5s x%-4u"
                    " arg=%" PRIu64 "\n",
                    e.seq, e.pid, e.tx, to_string(e.op),
                    e.tvar == core::kInvalidTVar ? 9999u : e.tvar, e.arg);
    } else {
      std::snprintf(line, sizeof(line),
                    "[%5" PRIu64 "] p%-2d T%-12" PRIx64 " resp %-5s -> %s"
                    " (val=%" PRIu64 ")\n",
                    e.seq, e.pid, e.tx, to_string(e.op),
                    e.aborted ? "ABORT" : "ok", e.result);
    }
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// RecordingTm

namespace {
int current_pid() { return runtime::ThreadRegistry::current_id(); }
}  // namespace

core::TxnPtr RecordingTm::begin() { return inner_.begin(); }

std::optional<core::Value> RecordingTm::read(core::Transaction& txn,
                                             core::TVarId x) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kRead;
  inv.tvar = x;
  recorder_.record(inv);

  auto v = inner_.read(txn, x);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !v.has_value();
  resp.result = v.value_or(0);
  recorder_.record(resp);
  return v;
}

bool RecordingTm::write(core::Transaction& txn, core::TVarId x,
                        core::Value v) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kWrite;
  inv.tvar = x;
  inv.arg = v;
  recorder_.record(inv);

  const bool ok = inner_.write(txn, x, v);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !ok;
  recorder_.record(resp);
  return ok;
}

bool RecordingTm::try_commit(core::Transaction& txn) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kTryCommit;
  recorder_.record(inv);

  const bool ok = inner_.try_commit(txn);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !ok;
  recorder_.record(resp);
  return ok;
}

void RecordingTm::try_abort(core::Transaction& txn) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kTryAbort;
  recorder_.record(inv);

  inner_.try_abort(txn);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = true;
  recorder_.record(resp);
}

}  // namespace oftm::history
