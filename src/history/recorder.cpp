#include "history/recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "runtime/parallel.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::history {

std::uint64_t Recorder::record(Event e) {
  std::scoped_lock lk(mu_);
  e.seq = next_seq_++;
  events_.push_back(e);
  return e.seq;
}

void Recorder::reserve(std::size_t events) {
  std::scoped_lock lk(mu_);
  events_.reserve(events);
  reserved_ = std::max(reserved_, events);
}

std::size_t Recorder::size() const {
  std::scoped_lock lk(mu_);
  return events_.size();
}

std::size_t Recorder::reserved() const {
  std::scoped_lock lk(mu_);
  return reserved_;
}

std::vector<Event> Recorder::events() const {
  std::scoped_lock lk(mu_);
  std::vector<Event> out = events_;
  // record() assigns strictly increasing seqs under the lock, so the log is
  // already sorted; the sort below only ever pays on an already-sorted
  // input (is_sorted guard keeps the large-history path O(n)).
  if (!std::is_sorted(out.begin(), out.end(), [](const Event& a,
                                                 const Event& b) {
        return a.seq < b.seq;
      })) {
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
  }
  return out;
}

namespace {

// Finalizer-style hash for sharding transactions/pids across digestion
// workers. The recorder's own tx ids are (thread << 48 | counter), so a
// plain modulo would be fine, but imported histories carry arbitrary ids.
std::uint64_t shard_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

// One event's contribution to its transaction's record. Factored out so the
// sequential scan and every digestion worker run the identical state
// machine — a record's content depends only on its own events, in seq
// order, which both paths preserve.
void digest_event(const Event& e,
                  std::unordered_map<core::TxId, TxRecord>& by_tx,
                  std::unordered_map<core::TxId, Event>& open_inv) {
  TxRecord& rec = by_tx[e.tx];
  if (rec.ops.empty() && rec.first_seq == 0) {
    rec.id = e.tx;
    rec.pid = e.pid;
    rec.first_seq = e.seq;
  }
  rec.last_seq = e.seq;

  if (e.kind == Event::Kind::kInvoke) {
    open_inv[e.tx] = e;
    if (e.op == OpType::kTryCommit) rec.commit_pending = true;
    if (e.op == OpType::kTryAbort) rec.requested_abort = true;
  } else {
    auto it = open_inv.find(e.tx);
    TxOp op;
    op.op = e.op;
    op.tvar = e.tvar;
    op.result = e.result;
    op.aborted = e.aborted;
    op.resp_seq = e.seq;
    if (it != open_inv.end()) {
      op.arg = it->second.arg;
      op.inv_seq = it->second.seq;
      open_inv.erase(it);
    }
    rec.ops.push_back(op);
    if (e.op == OpType::kTryCommit) {
      rec.commit_pending = false;
      rec.final_status = e.aborted ? core::TxStatus::kAborted
                                   : core::TxStatus::kCommitted;
    } else if (e.aborted) {
      rec.final_status = core::TxStatus::kAborted;
    }
  }
}

}  // namespace

std::vector<TxRecord> Recorder::transactions() const {
  return transactions(events());
}

std::vector<TxRecord> Recorder::transactions(const std::vector<Event>& evs) {
  std::unordered_map<core::TxId, TxRecord> by_tx;
  std::unordered_map<core::TxId, Event> open_inv;  // pending invocation per tx
  by_tx.reserve(evs.size() / 8 + 16);

  for (const Event& e : evs) digest_event(e, by_tx, open_inv);

  std::vector<TxRecord> out;
  out.reserve(by_tx.size());
  for (auto& [id, rec] : by_tx) out.push_back(std::move(rec));
  std::sort(out.begin(), out.end(), [](const TxRecord& a, const TxRecord& b) {
    return a.first_seq < b.first_seq;
  });
  return out;
}

std::vector<TxRecord> Recorder::transactions(const std::vector<Event>& evs,
                                             int threads) {
  const int workers = runtime::resolve_workers(threads);
  if (workers <= 1) return transactions(evs);

  // Shard by tx id: each worker scans the whole log but digests only its
  // shard, so a transaction's events all land in one worker, in seq order.
  // The scans are read-only and cache-friendly; the per-worker maps are
  // where the sequential version spends its time.
  const std::uint64_t w64 = static_cast<std::uint64_t>(workers);
  std::vector<std::vector<TxRecord>> shards(static_cast<std::size_t>(workers));
  runtime::run_on_workers(workers, [&](int w) {
    std::unordered_map<core::TxId, TxRecord> by_tx;
    std::unordered_map<core::TxId, Event> open_inv;
    by_tx.reserve(evs.size() / (8 * w64) + 16);
    for (const Event& e : evs) {
      if (shard_hash(e.tx) % w64 != static_cast<std::uint64_t>(w)) continue;
      digest_event(e, by_tx, open_inv);
    }
    std::vector<TxRecord>& out = shards[static_cast<std::size_t>(w)];
    out.reserve(by_tx.size());
    for (auto& [id, rec] : by_tx) out.push_back(std::move(rec));
  });

  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  std::vector<TxRecord> out;
  out.reserve(total);
  for (auto& s : shards) {
    for (TxRecord& rec : s) out.push_back(std::move(rec));
  }
  // first_seq values are unique (one event owns each seq), so this total
  // order has a single sorted permutation: identical output to the
  // sequential overload regardless of shard count.
  runtime::parallel_sort(workers, out.begin(), out.end(),
                         [](const TxRecord& a, const TxRecord& b) {
                           return a.first_seq < b.first_seq;
                         });
  return out;
}

void Recorder::clear() {
  std::scoped_lock lk(mu_);
  events_.clear();
  next_seq_ = 1;
}

std::string Recorder::check_well_formed() const {
  return check_well_formed(events());
}

std::string Recorder::check_well_formed(const std::vector<Event>& evs) {
  // Per process: events strictly alternate invoke/response and responses
  // match the preceding invocation's (tx, op).
  std::map<int, const Event*> pending;
  for (const Event& e : evs) {
    auto it = pending.find(e.pid);
    if (e.kind == Event::Kind::kInvoke) {
      if (it != pending.end() && it->second != nullptr) {
        return "invocation while an operation is pending at pid " +
               std::to_string(e.pid);
      }
      pending[e.pid] = &e;
    } else {
      if (it == pending.end() || it->second == nullptr) {
        return "response without invocation at pid " + std::to_string(e.pid);
      }
      const Event& inv = *it->second;
      if (inv.tx != e.tx || inv.op != e.op) {
        return "response does not match invocation at pid " +
               std::to_string(e.pid);
      }
      pending[e.pid] = nullptr;
    }
  }
  return "";
}

std::string Recorder::check_well_formed(const std::vector<Event>& evs,
                                        int threads) {
  const int workers = runtime::resolve_workers(threads);
  if (workers <= 1) return check_well_formed(evs);

  // A pid's event subsequence is self-contained (the state machine is per
  // process), so shard by pid. Each worker scans in seq order and keeps
  // its first diagnostic; the smallest seq across workers is the same
  // event the sequential scan trips on first.
  struct FirstError {
    std::uint64_t seq = ~std::uint64_t{0};
    std::string msg;
  };
  const std::uint64_t w64 = static_cast<std::uint64_t>(workers);
  std::vector<FirstError> errors(static_cast<std::size_t>(workers));
  runtime::run_on_workers(workers, [&](int w) {
    std::map<int, const Event*> pending;
    for (const Event& e : evs) {
      if (shard_hash(static_cast<std::uint64_t>(e.pid)) % w64 !=
          static_cast<std::uint64_t>(w)) {
        continue;
      }
      auto it = pending.find(e.pid);
      if (e.kind == Event::Kind::kInvoke) {
        if (it != pending.end() && it->second != nullptr) {
          errors[static_cast<std::size_t>(w)] = FirstError{
              e.seq, "invocation while an operation is pending at pid " +
                         std::to_string(e.pid)};
          return;
        }
        pending[e.pid] = &e;
      } else {
        if (it == pending.end() || it->second == nullptr) {
          errors[static_cast<std::size_t>(w)] =
              FirstError{e.seq, "response without invocation at pid " +
                                    std::to_string(e.pid)};
          return;
        }
        const Event& inv = *it->second;
        if (inv.tx != e.tx || inv.op != e.op) {
          errors[static_cast<std::size_t>(w)] =
              FirstError{e.seq, "response does not match invocation at pid " +
                                    std::to_string(e.pid)};
          return;
        }
        pending[e.pid] = nullptr;
      }
    }
  });
  const FirstError* first = nullptr;
  for (const FirstError& err : errors) {
    if (err.seq == ~std::uint64_t{0}) continue;
    if (first == nullptr || err.seq < first->seq) first = &err;
  }
  return first != nullptr ? first->msg : "";
}

std::string Recorder::format() const {
  std::string out;
  char line[192];
  for (const Event& e : events()) {
    if (e.kind == Event::Kind::kInvoke) {
      std::snprintf(line, sizeof(line),
                    "[%5" PRIu64 "] p%-2d T%-12" PRIx64 " inv  %-5s x%-4u"
                    " arg=%" PRIu64 "\n",
                    e.seq, e.pid, e.tx, to_string(e.op),
                    e.tvar == core::kInvalidTVar ? 9999u : e.tvar, e.arg);
    } else {
      std::snprintf(line, sizeof(line),
                    "[%5" PRIu64 "] p%-2d T%-12" PRIx64 " resp %-5s -> %s"
                    " (val=%" PRIu64 ")\n",
                    e.seq, e.pid, e.tx, to_string(e.op),
                    e.aborted ? "ABORT" : "ok", e.result);
    }
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// RecordingTm

namespace {
int current_pid() { return runtime::ThreadRegistry::current_id(); }
}  // namespace

core::TxnPtr RecordingTm::begin() { return inner_.begin(); }

std::optional<core::Value> RecordingTm::read(core::Transaction& txn,
                                             core::TVarId x) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kRead;
  inv.tvar = x;
  recorder_.record(inv);

  auto v = inner_.read(txn, x);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !v.has_value();
  resp.result = v.value_or(0);
  recorder_.record(resp);
  return v;
}

bool RecordingTm::write(core::Transaction& txn, core::TVarId x,
                        core::Value v) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kWrite;
  inv.tvar = x;
  inv.arg = v;
  recorder_.record(inv);

  const bool ok = inner_.write(txn, x, v);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !ok;
  recorder_.record(resp);
  return ok;
}

bool RecordingTm::try_commit(core::Transaction& txn) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kTryCommit;
  recorder_.record(inv);

  const bool ok = inner_.try_commit(txn);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = !ok;
  recorder_.record(resp);
  return ok;
}

void RecordingTm::try_abort(core::Transaction& txn) {
  Event inv;
  inv.kind = Event::Kind::kInvoke;
  inv.tx = txn.id();
  inv.pid = current_pid();
  inv.op = OpType::kTryAbort;
  recorder_.record(inv);

  inner_.try_abort(txn);

  Event resp = inv;
  resp.kind = Event::Kind::kResponse;
  resp.aborted = true;
  recorder_.record(resp);
}

}  // namespace oftm::history
