// High-level TM histories (Section 2.2 of the paper).
//
// A history is a sequence of invocation and response events of TM
// operations. We record both raw events (for well-formedness checks and
// pretty-printing) and a digested per-transaction form (TxRecord) that the
// serializability/opacity checkers consume.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace oftm::history {

enum class OpType : std::uint8_t {
  kRead,
  kWrite,
  kTryCommit,
  kTryAbort,
};

inline const char* to_string(OpType t) noexcept {
  switch (t) {
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kTryCommit: return "tryC";
    case OpType::kTryAbort: return "tryA";
  }
  return "?";
}

struct Event {
  enum class Kind : std::uint8_t { kInvoke, kResponse };

  std::uint64_t seq = 0;  // global order (totally ordered per Section 2.1)
  Kind kind = Kind::kInvoke;
  core::TxId tx = 0;
  int pid = -1;
  OpType op = OpType::kRead;
  core::TVarId tvar = core::kInvalidTVar;
  core::Value arg = 0;     // value written (kWrite invocations)
  core::Value result = 0;  // value read (kRead responses)
  bool aborted = false;    // response was the abort event A_k
};

// One completed operation of a transaction.
struct TxOp {
  OpType op;
  core::TVarId tvar = core::kInvalidTVar;
  core::Value arg = 0;
  core::Value result = 0;
  bool aborted = false;
  std::uint64_t inv_seq = 0;
  std::uint64_t resp_seq = 0;
};

// Digest of one transaction in a history.
struct TxRecord {
  core::TxId id = 0;
  int pid = -1;
  std::vector<TxOp> ops;
  core::TxStatus final_status = core::TxStatus::kActive;
  bool requested_abort = false;  // issued tryA (not *forcefully* aborted)
  bool commit_pending = false;   // invoked tryC, no response recorded
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;

  bool committed() const noexcept {
    return final_status == core::TxStatus::kCommitted;
  }
  bool aborted() const noexcept {
    return final_status == core::TxStatus::kAborted;
  }
  // "Forcefully aborted" per the paper: aborted without having issued tryA.
  bool forcefully_aborted() const noexcept {
    return aborted() && !requested_abort;
  }
  // Real-time precedence (the paper's "Tk precedes Tm").
  bool precedes(const TxRecord& other) const noexcept {
    return final_status != core::TxStatus::kActive &&
           last_seq < other.first_seq;
  }
};

}  // namespace oftm::history
