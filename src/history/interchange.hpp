// History interchange with external transactional-consistency checkers.
//
// Two dialects, both JSON renderings of formats the dbcop/elle tool
// families consume (the field vocabulary follows dbcop's
// IS_WRITE/KEY/VALUE/SUCCESS event schema and elle's completed-op lines):
//
//  * Format::kDbcop — one JSON document:
//      {"id":0,"session_num":S,"key_num":K,"txn_num":T,"event_num":E,
//       "info":"...","sessions":[[TXN,...],...]}
//    where each TXN is {"tid":...,"pid":...,"committed":true,
//    "first_seq":...,"last_seq":...,"events":[{"is_write":false,"key":3,
//    "value":42,"success":true},...]}. Sessions group transactions by
//    recording pid. dbcop histories carry only committed transactions, so
//    this dialect's export drops aborted/live ones. Imports also accept
//    plain dbcop-shaped transactions — a bare array of event objects,
//    without our tid/pid/seq extras.
//
//  * Format::kElle — JSON lines, one *completed* Jepsen/elle rw-register
//    transaction per line:
//      {"type":"ok","f":"txn","process":2,"index":7,
//       "value":[["r",3,42],["w",3,99]],...}
//    "ok" maps to committed, "fail" to aborted, "info" to unknown outcome
//    (imported as commit-pending unless a "pending":false extra says the
//    transaction never invoked tryC). ":"-prefixed keywords (":ok", ":r")
//    are accepted on import. List-append histories (["append",...]) are
//    rejected: the checker's vocabulary is rw-register.
//
// Compatibility contract:
//  * Values are the unsigned 64-bit register values check_mvsg speaks; a
//    read of elle's `null` (nothing observed) imports as value 0, the
//    checker's default initial_value.
//  * Real time: exports embed first_seq/last_seq, so export→import→check
//    round trips preserve verdicts and witnesses exactly, including under
//    respect_real_time. External histories without them get every
//    transaction the same all-overlapping interval — sound (no fabricated
//    real-time edges) but vacuous under respect_real_time; check untimed
//    imports with it off. ImportResult::has_real_time says which case
//    applies.
//  * Only a transaction's completed, non-aborted reads/writes travel;
//    per-op sequence numbers and tryC/tryA ops do not (check_mvsg never
//    reads them).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "history/event.hpp"

namespace oftm::history::interchange {

enum class Format { kDbcop, kElle };

struct ExportOptions {
  Format format = Format::kDbcop;
  std::uint64_t history_id = 0;  // dbcop "id" field
  std::string info = "oftm";     // dbcop "info" field
};

std::string export_history(const std::vector<TxRecord>& txns,
                           const ExportOptions& options = {});

struct ImportResult {
  bool ok = false;
  std::string error;  // empty iff ok
  // Sorted by first_seq when has_real_time (the recorder's convention, so
  // node numbering — and therefore witnesses — match the original
  // history); otherwise in input order.
  std::vector<TxRecord> txns;
  // True when every imported transaction carried first_seq/last_seq.
  bool has_real_time = false;
};

ImportResult import_history(std::string_view text, Format format);

// Sniffs the dialect: a document whose first JSON value is an object with
// a "sessions" member is dbcop; anything else is treated as elle lines.
ImportResult import_history(std::string_view text);

}  // namespace oftm::history::interchange
