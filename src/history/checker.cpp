#include "history/checker.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <queue>
#include <vector>

#include "runtime/parallel.hpp"

namespace oftm::history {
namespace {

std::string tx_name(core::TxId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "T%" PRIx64, id);
  return buf;
}

std::string var_name(core::TVarId x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "x%u", x);
  return buf;
}

// Per-transaction digest: external reads (first value observed per t-var
// before any own write) and final writes (last written value per t-var).
// Flat vectors, sorted by t-var after digestion — per-transaction footprints
// are small (ops_per_tx), so linear scans during digestion beat the
// allocation churn of one std::map per transaction at stress scale.
struct VarVal {
  core::TVarId var;
  core::Value val;
};

struct Digest {
  const TxRecord* rec = nullptr;
  std::vector<VarVal> external_reads;  // sorted by var, one entry per var
  std::vector<VarVal> final_writes;    // sorted by var, one entry per var
};

VarVal* find_var(std::vector<VarVal>& v, core::TVarId x) {
  for (VarVal& e : v) {
    if (e.var == x) return &e;
  }
  return nullptr;
}

// Digest a transaction, checking its *local* consistency: reads after an own
// write return the latest own value; repeated external reads agree.
bool digest_tx(const TxRecord& rec, Digest& out, std::string& err,
               core::TVarId* bad_var) {
  out.rec = &rec;
  std::vector<VarVal> own;  // latest own write per var
  for (const TxOp& op : rec.ops) {
    if (op.aborted) continue;  // the abort response carries no value
    if (op.op == OpType::kRead) {
      if (const VarVal* ow = find_var(own, op.tvar)) {
        if (op.result != ow->val) {
          err = tx_name(rec.id) + ": read of " + var_name(op.tvar) +
                " after own write returned a foreign value";
          *bad_var = op.tvar;
          return false;
        }
        continue;  // internal read
      }
      if (const VarVal* er = find_var(out.external_reads, op.tvar)) {
        if (er->val != op.result) {
          err = tx_name(rec.id) + ": two external reads of " +
                var_name(op.tvar) + " disagree";
          *bad_var = op.tvar;
          return false;
        }
      } else {
        out.external_reads.push_back(VarVal{op.tvar, op.result});
      }
    } else if (op.op == OpType::kWrite) {
      if (VarVal* ow = find_var(own, op.tvar)) {
        ow->val = op.arg;
      } else {
        own.push_back(VarVal{op.tvar, op.arg});
      }
      if (VarVal* fw = find_var(out.final_writes, op.tvar)) {
        fw->val = op.arg;
      } else {
        out.final_writes.push_back(VarVal{op.tvar, op.arg});
      }
    }
  }
  auto by_var = [](const VarVal& a, const VarVal& b) { return a.var < b.var; };
  std::sort(out.external_reads.begin(), out.external_reads.end(), by_var);
  std::sort(out.final_writes.begin(), out.final_writes.end(), by_var);
  return true;
}

// Per-worker failure slot for a parallel checker phase. Each worker records
// only its first failure; since a worker's work items arrive in increasing
// ordinal order (block decomposition or the shared unit counter), the
// per-worker first failure is the worker's minimum, and the phase's failure
// is the minimum ordinal across workers — exactly the failure the
// sequential pass would have returned first.
struct PhaseFailure {
  std::size_t ordinal = ~std::size_t{0};
  CheckResult result;
};

CheckResult* first_phase_failure(std::vector<PhaseFailure>& fails) {
  PhaseFailure* best = nullptr;
  for (PhaseFailure& f : fails) {
    if (f.ordinal == ~std::size_t{0}) continue;
    if (best == nullptr || f.ordinal < best->ordinal) best = &f;
  }
  return best != nullptr ? &best->result : nullptr;
}

}  // namespace

const char* to_string(WitnessEdge::Kind k) noexcept {
  switch (k) {
    case WitnessEdge::Kind::kVersionOrder: return "ww";
    case WitnessEdge::Kind::kReadsFrom: return "rf";
    case WitnessEdge::Kind::kAntiDependency: return "rw";
    case WitnessEdge::Kind::kRealTime: return "rt";
    case WitnessEdge::Kind::kLocal: return "local";
  }
  return "?";
}

std::string CheckResult::witness_str() const {
  std::string out;
  for (std::size_t i = 0; i < witness.size(); ++i) {
    const WitnessEdge& e = witness[i];
    const bool chained = i > 0 && witness[i - 1].to == e.from &&
                         witness[i - 1].kind != WitnessEdge::Kind::kLocal &&
                         e.kind != WitnessEdge::Kind::kLocal;
    if (!chained) {
      if (i > 0) out += "; ";
      out += tx_name(e.from);
    }
    if (e.kind == WitnessEdge::Kind::kLocal) {
      if (e.to != e.from) {
        out += ",";
        out += tx_name(e.to);
      }
      out += " local";
      if (e.tvar != core::kInvalidTVar) {
        out += "[";
        out += var_name(e.tvar);
        out += "]";
      }
    } else {
      out += " -";
      out += to_string(e.kind);
      if (e.tvar != core::kInvalidTVar) {
        out += "[";
        out += var_name(e.tvar);
        out += "]";
      }
      out += "-> ";
      out += tx_name(e.to);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MVSG checker
//
// All per-t-var state (version chains, value lookup, reader resolution)
// lives in flat arrays sorted by t-var, built in O(A log A) for A recorded
// accesses. No per-key maps: a single hot key with 100k committed writers
// costs one sort of its write range plus one binary search per chase step,
// instead of the hash-map version-placement loop the first implementation
// used. The acyclicity pass is Kahn's algorithm with real-time edges kept
// implicit (a sorted doubly-linked list over completion times answers "is
// any unfinished transaction strictly before me" in O(1)).
//
// The pass is phase-parallel (MvsgOptions::threads): digestion and index
// fill shard over transactions, version chains and reads-from resolution
// shard over per-t-var units (independent after the global sorts), and
// large Kahn frontiers relax their out-edges concurrently. Determinism is
// structural, not incidental: every sort comparator is a total order (the
// sorted permutation is unique), per-unit output lands at offsets fixed by
// prefix sums (identical edge order), a failing phase reports the failure
// with the smallest ordinal (identical first error), and the Kahn residue
// is the least fixpoint of a monotone closure (identical for any emission
// schedule) — so verdicts and witnesses are bit-identical across thread
// counts, including the never-spawning threads == 1 default.

CheckResult check_mvsg(const std::vector<TxRecord>& txns,
                       const MvsgOptions& options) {
  using Kind = WitnessEdge::Kind;
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  constexpr std::size_t kNpos = ~std::size_t{0};

  const int workers = runtime::resolve_workers(options.threads);
  // Every flat index (node id, chain position, CSR offset) is 32 bits with
  // kNone reserved as a sentinel; refuse histories that cannot fit instead
  // of silently truncating. index_capacity is the injectable test cap.
  const std::size_t cap = options.index_capacity != 0
                              ? options.index_capacity
                              : static_cast<std::size_t>(kNone) - 1;
  auto capacity_error = [&](const char* what, std::size_t have) {
    return CheckResult::capacity("history exceeds checker index space: " +
                                 std::string(what) + " " +
                                 std::to_string(have) + " > limit " +
                                 std::to_string(cap));
  };

  // Node 0 is the virtual initializing transaction T0.
  struct Node {
    Digest digest;
    bool committed = false;
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    core::TxId id = 0;
  };

  // ---- Select and digest transactions (sharded by node) ------------------
  std::vector<const TxRecord*> included;
  included.reserve(txns.size());
  for (const TxRecord& rec : txns) {
    const bool committed =
        rec.committed() ||
        (rec.commit_pending && options.commit_pending_as_committed);
    if (!committed && !options.include_aborted_readers) continue;
    included.push_back(&rec);
  }
  if (included.size() + 1 > cap) {
    return capacity_error("transaction count", included.size() + 1);
  }

  std::vector<Node> nodes(included.size() + 1);
  nodes[0].committed = true;  // T0 precedes everything
  {
    std::vector<PhaseFailure> fails(static_cast<std::size_t>(workers));
    runtime::parallel_for_blocks(
        workers, included.size(), [&](std::size_t b, std::size_t e, int w) {
          for (std::size_t k = b; k < e; ++k) {
            const TxRecord& rec = *included[k];
            Node& nd = nodes[k + 1];
            std::string err;
            core::TVarId bad_var = core::kInvalidTVar;
            if (!digest_tx(rec, nd.digest, err, &bad_var)) {
              fails[static_cast<std::size_t>(w)] = PhaseFailure{
                  k, CheckResult::failure(
                         std::move(err),
                         {{Kind::kLocal, rec.id, rec.id, bad_var}})};
              return;  // this worker's later nodes have larger ordinals
            }
            nd.committed =
                rec.committed() ||
                (rec.commit_pending && options.commit_pending_as_committed);
            nd.first_seq = rec.first_seq;
            nd.last_seq = rec.last_seq;
            nd.id = rec.id;
          }
        });
    if (CheckResult* f = first_phase_failure(fails)) return std::move(*f);
  }
  const std::size_t n = nodes.size();

  // ---- Flat access indices, sorted by t-var ------------------------------
  struct WriteRef {
    core::TVarId var;
    std::uint32_t node;
    core::Value wval;  // final written value (the version this writer made)
    core::Value rval;  // external read of the same var (valid iff rmw)
    bool rmw;
  };
  struct ReadRef {
    core::TVarId var;
    std::uint32_t node;
    core::Value val;
  };
  // Prefix sums over per-node access counts fix every ref's slot up front,
  // so the parallel fill writes disjoint ranges in the same node-major
  // order the sequential append produced.
  std::vector<std::size_t> roff(n + 1, 0);
  std::vector<std::size_t> woff(n + 1, 0);
  for (std::size_t i = 1; i < n; ++i) {
    roff[i + 1] = roff[i] + nodes[i].digest.external_reads.size();
    woff[i + 1] =
        woff[i] +
        (nodes[i].committed ? nodes[i].digest.final_writes.size() : 0);
  }
  if (roff[n] > cap) return capacity_error("read access count", roff[n]);
  if (woff[n] > cap) return capacity_error("write access count", woff[n]);
  std::vector<WriteRef> writes(woff[n]);
  std::vector<ReadRef> reads(roff[n]);
  runtime::parallel_for_blocks(
      workers, n - 1, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t k = b; k < e; ++k) {
          const std::uint32_t i = static_cast<std::uint32_t>(k + 1);
          const Digest& d = nodes[i].digest;
          std::size_t rpos = roff[i];
          for (const VarVal& r : d.external_reads) {
            reads[rpos++] = ReadRef{r.var, i, r.val};
          }
          if (!nodes[i].committed) continue;
          // Both digest vectors are sorted by var: one merge-walk pairs
          // each final write with the external read of the same var (RMW
          // witness).
          std::size_t wpos = woff[i];
          auto rit = d.external_reads.begin();
          for (const VarVal& wv : d.final_writes) {
            while (rit != d.external_reads.end() && rit->var < wv.var) ++rit;
            const bool rmw =
                rit != d.external_reads.end() && rit->var == wv.var;
            writes[wpos++] =
                WriteRef{wv.var, i, wv.val, rmw ? rit->val : 0, rmw};
          }
        }
      });
  // (var, node) is unique per ref, so both comparators are total orders.
  runtime::parallel_sort(workers, writes.begin(), writes.end(),
                         [](const WriteRef& a, const WriteRef& b) {
                           return a.var != b.var ? a.var < b.var
                                                 : a.node < b.node;
                         });
  runtime::parallel_sort(workers, reads.begin(), reads.end(),
                         [](const ReadRef& a, const ReadRef& b) {
                           return a.var != b.var ? a.var < b.var
                                                 : a.node < b.node;
                         });

  // ---- Edge accumulation -------------------------------------------------
  struct Edge {
    std::uint32_t from;
    std::uint32_t to;
    core::TVarId var;
    Kind kind;
  };

  // ---- Version chains, one contiguous write range per t-var --------------
  //
  // Exact construction (read-modify-write discipline): when every committed
  // writer of x also externally *read* x, the chain is recovered by chasing
  // values — the writer that read the initial value produced version 1, the
  // writer that read version 1 produced version 2, and so on. A fork (two
  // committed writers read the same version) or a gap (a writer read a
  // value outside the chain) is itself a serializability violation for
  // registers and is reported as such.
  //
  // Fallback (blind writes present): order by transaction completion time.
  // This is exact for non-overlapping writers and for the fully serialized
  // backends; overlapping blind writers may be mis-ordered, so stress
  // suites use the RMW discipline (workload::run_workload does).
  //
  // Per-var units are independent after the global sort, so they run on a
  // dynamically scheduled worker pool. Each unit's chain/value slots start
  // at its write offset and its version-order edges at (offset - unit), so
  // every output position is schedule-independent.
  struct Version {
    core::Value value;
    std::uint32_t writer;  // node index
  };
  struct ValIdx {
    core::Value value;
    std::uint32_t version;  // position within the owning var's chain
  };
  struct VarChain {
    core::TVarId var;
    std::uint32_t begin;  // offset into chain_pool / value_pool
    std::uint32_t count;
  };
  std::vector<std::size_t> wunit;  // unit u spans writes[wunit[u], wunit[u+1])
  for (std::size_t i = 0; i < writes.size();) {
    wunit.push_back(i);
    const core::TVarId x = writes[i].var;
    while (i < writes.size() && writes[i].var == x) ++i;
  }
  wunit.push_back(writes.size());
  const std::size_t num_wunits = wunit.size() - 1;
  std::vector<Version> chain_pool(writes.size());
  std::vector<ValIdx> value_pool(writes.size());  // per var: sorted by value
  std::vector<VarChain> var_chains(num_wunits);
  // Each unit emits exactly count-1 version-order edges (chain neighbours
  // are distinct nodes: one WriteRef per (node, var)).
  std::vector<Edge> ww_edges(writes.size() - num_wunits);
  {
    std::vector<PhaseFailure> fails(static_cast<std::size_t>(workers));
    std::vector<std::vector<char>> placed_scratch(
        static_cast<std::size_t>(workers));
    runtime::parallel_for_units(
        workers, num_wunits, [&](std::size_t u, int w) {
          // A worker's units arrive in increasing order: after a failure,
          // nothing it could still produce can beat its recorded ordinal.
          if (fails[static_cast<std::size_t>(w)].ordinal != kNpos) return;
          auto fail = [&](CheckResult r) {
            fails[static_cast<std::size_t>(w)] = PhaseFailure{u, std::move(r)};
          };
          const std::size_t wb = wunit[u];
          const std::size_t we = wunit[u + 1];
          const core::TVarId x = writes[wb].var;
          const std::uint32_t count = static_cast<std::uint32_t>(we - wb);
          const std::uint32_t base = static_cast<std::uint32_t>(wb);
          bool all_rmw = true;
          for (std::size_t i = wb; i < we; ++i) {
            all_rmw = all_rmw && writes[i].rmw;
          }
          const auto range_begin =
              writes.begin() + static_cast<std::ptrdiff_t>(wb);
          const auto range_end =
              writes.begin() + static_cast<std::ptrdiff_t>(we);
          if (all_rmw) {
            // Per-chain sorted index over the value each writer *read*: the
            // chase is then a binary search per placement instead of a hash
            // lookup, and a fork shows up as two adjacent equal read-values.
            std::sort(range_begin, range_end,
                      [](const WriteRef& a, const WriteRef& b) {
                        return a.rval != b.rval ? a.rval < b.rval
                                                : a.node < b.node;
                      });
            std::vector<char>& placed =
                placed_scratch[static_cast<std::size_t>(w)];
            placed.assign(count, 0);
            core::Value cur = options.initial_value;
            std::uint32_t placed_count = 0;
            while (placed_count < count) {
              const auto lo = std::lower_bound(
                  range_begin, range_end, cur,
                  [](const WriteRef& wr, core::Value v) {
                    return wr.rval < v;
                  });
              const bool found =
                  lo != range_end && lo->rval == cur &&
                  !placed[static_cast<std::size_t>(lo - range_begin)];
              if (!found) {
                std::vector<WitnessEdge> wit;
                for (auto it = range_begin; it != range_end && wit.size() < 4;
                     ++it) {
                  if (!placed[static_cast<std::size_t>(it - range_begin)]) {
                    wit.push_back({Kind::kLocal, nodes[it->node].id,
                                   nodes[it->node].id, x});
                  }
                }
                fail(CheckResult::failure(
                    "version chain gap on " + var_name(x) + ": " +
                        std::to_string(count - placed_count) +
                        " committed writer(s) read a superseded value",
                    std::move(wit)));
                return;
              }
              const auto nxt = lo + 1;
              if (nxt != range_end && nxt->rval == cur) {
                fail(CheckResult::failure(
                    "version chain fork on " + var_name(x) +
                        ": two committed writers read the same version",
                    {{Kind::kLocal, nodes[lo->node].id, nodes[nxt->node].id,
                      x}}));
                return;
              }
              placed[static_cast<std::size_t>(lo - range_begin)] = 1;
              chain_pool[base + placed_count] = Version{lo->wval, lo->node};
              cur = lo->wval;
              ++placed_count;
            }
          } else {
            std::sort(range_begin, range_end,
                      [&](const WriteRef& a, const WriteRef& b) {
                        const std::uint64_t la = nodes[a.node].last_seq;
                        const std::uint64_t lb = nodes[b.node].last_seq;
                        return la != lb ? la < lb : a.node < b.node;
                      });
            for (std::uint32_t vi = 0; vi < count; ++vi) {
              chain_pool[base + vi] =
                  Version{writes[wb + vi].wval, writes[wb + vi].node};
            }
          }

          // Reads-from resolution index: (value -> version position),
          // sorted by value for binary search. Unique-writes discipline
          // makes the mapping unambiguous; duplicates are reported as a
          // checker-usage error.
          for (std::uint32_t vi = 0; vi < count; ++vi) {
            value_pool[base + vi] = ValIdx{chain_pool[base + vi].value, vi};
          }
          const auto vals_begin =
              value_pool.begin() + static_cast<std::ptrdiff_t>(base);
          const auto vals_end =
              vals_begin + static_cast<std::ptrdiff_t>(count);
          std::sort(vals_begin, vals_end,
                    [](const ValIdx& a, const ValIdx& b) {
                      return a.value != b.value ? a.value < b.value
                                                : a.version < b.version;
                    });
          for (auto it = vals_begin; it + 1 != vals_end; ++it) {
            if (it->value == (it + 1)->value) {
              fail(CheckResult::failure(
                  "unique-writes discipline violated on " + var_name(x) +
                      " (two committed writers wrote the same value)",
                  {{Kind::kLocal,
                    nodes[chain_pool[base + it->version].writer].id,
                    nodes[chain_pool[base + (it + 1)->version].writer].id,
                    x}}));
              return;
            }
          }

          // Version-order edges along the chain.
          const std::size_t wwbase = wb - u;
          for (std::uint32_t vi = 0; vi + 1 < count; ++vi) {
            ww_edges[wwbase + vi] =
                Edge{chain_pool[base + vi].writer,
                     chain_pool[base + vi + 1].writer, x, Kind::kVersionOrder};
          }
          var_chains[u] = VarChain{x, base, count};
        });
    if (CheckResult* f = first_phase_failure(fails)) return std::move(*f);
  }

  // ---- Reads-from and anti-dependency edges ------------------------------
  //
  // Per-var read units run on the same dynamically scheduled pool; each
  // unit buffers its edges locally (rf/rw emission is data-dependent) and
  // the buffers concatenate in unit order below.
  std::vector<std::size_t> runit;  // unit u spans reads[runit[u], runit[u+1])
  for (std::size_t i = 0; i < reads.size();) {
    runit.push_back(i);
    const core::TVarId x = reads[i].var;
    while (i < reads.size() && reads[i].var == x) ++i;
  }
  runit.push_back(reads.size());
  const std::size_t num_runits = runit.size() - 1;
  std::vector<std::vector<Edge>> read_edges(num_runits);
  {
    std::vector<PhaseFailure> fails(static_cast<std::size_t>(workers));
    runtime::parallel_for_units(
        workers, num_runits, [&](std::size_t u, int w) {
          if (fails[static_cast<std::size_t>(w)].ordinal != kNpos) return;
          auto fail = [&](CheckResult r) {
            fails[static_cast<std::size_t>(w)] = PhaseFailure{u, std::move(r)};
          };
          const std::size_t rb = runit[u];
          const std::size_t re = runit[u + 1];
          const core::TVarId x = reads[rb].var;
          const auto cit = std::lower_bound(
              var_chains.begin(), var_chains.end(), x,
              [](const VarChain& c, core::TVarId v) { return c.var < v; });
          const VarChain* chain =
              cit != var_chains.end() && cit->var == x ? &*cit : nullptr;
          std::vector<Edge>& out = read_edges[u];
          out.reserve(2 * (re - rb));
          auto add_edge = [&](std::uint32_t a, std::uint32_t b,
                              core::TVarId var, Kind kind) {
            if (a == b) return;
            out.push_back(Edge{a, b, var, kind});
          };
          for (std::size_t r = rb; r < re; ++r) {
            const ReadRef& rd = reads[r];
            std::uint32_t version = kNone;  // kNone == the initial version
            if (rd.val != options.initial_value) {
              if (chain == nullptr) {
                fail(CheckResult::failure(
                    tx_name(nodes[rd.node].id) + " read a value of " +
                        var_name(x) + " that no committed transaction wrote",
                    {{Kind::kLocal, nodes[rd.node].id, nodes[rd.node].id,
                      x}}));
                return;
              }
              const auto vals_begin =
                  value_pool.begin() +
                  static_cast<std::ptrdiff_t>(chain->begin);
              const auto vals_end =
                  vals_begin + static_cast<std::ptrdiff_t>(chain->count);
              const auto it = std::lower_bound(
                  vals_begin, vals_end, rd.val,
                  [](const ValIdx& a, core::Value v) { return a.value < v; });
              if (it == vals_end || it->value != rd.val) {
                fail(CheckResult::failure(
                    tx_name(nodes[rd.node].id) + " read value " +
                        std::to_string(rd.val) + " of " + var_name(x) +
                        " that no committed transaction wrote (dirty or lost "
                        "read)",
                    {{Kind::kLocal, nodes[rd.node].id, nodes[rd.node].id,
                      x}}));
                return;
              }
              version = it->version;
              add_edge(chain_pool[chain->begin + version].writer, rd.node, x,
                       Kind::kReadsFrom);
            } else {
              add_edge(0, rd.node, x, Kind::kReadsFrom);  // rf from T0
            }
            // Anti-dependency: the reader precedes the next version's
            // writer.
            if (chain != nullptr) {
              const std::uint32_t next = version + 1;  // works for kNone (0)
              if (next < chain->count) {
                add_edge(rd.node, chain_pool[chain->begin + next].writer, x,
                         Kind::kAntiDependency);
              }
            }
          }
        });
    if (CheckResult* f = first_phase_failure(fails)) return std::move(*f);
  }

  // ---- Deterministic edge concatenation ----------------------------------
  //
  // Version-order blocks in var order, then read-unit blocks in var order —
  // byte-for-byte the order the sequential appends produced, which the CSR
  // build below preserves within each from-bucket and the witness DFS
  // iterates in.
  std::vector<std::size_t> eoff(num_runits + 1);
  std::size_t total_edges = ww_edges.size();
  for (std::size_t u = 0; u < num_runits; ++u) {
    eoff[u] = total_edges;
    total_edges += read_edges[u].size();
  }
  eoff[num_runits] = total_edges;
  if (total_edges > cap) return capacity_error("edge count", total_edges);
  std::vector<Edge> edges(total_edges);
  std::copy(ww_edges.begin(), ww_edges.end(), edges.begin());
  ww_edges.clear();
  ww_edges.shrink_to_fit();
  runtime::parallel_for_units(workers, num_runits, [&](std::size_t u, int) {
    std::copy(read_edges[u].begin(), read_edges[u].end(),
              edges.begin() + static_cast<std::ptrdiff_t>(eoff[u]));
  });
  read_edges.clear();
  read_edges.shrink_to_fit();

  // ---- CSR adjacency -----------------------------------------------------
  std::vector<std::uint32_t> offs(n + 1, 0);
  std::vector<std::uint32_t> indeg(n, 0);
  for (const Edge& e : edges) {
    ++offs[e.from + 1];
    ++indeg[e.to];
  }
  for (std::size_t i = 1; i <= n; ++i) offs[i] += offs[i - 1];
  std::vector<std::uint32_t> eidx(edges.size());
  {
    std::vector<std::uint32_t> cursor(offs.begin(), offs.end() - 1);
    for (std::uint32_t i = 0; i < edges.size(); ++i) {
      eidx[cursor[edges[i].from]++] = i;
    }
  }

  // ---- Acyclicity via Kahn's algorithm -----------------------------------
  //
  // Real-time edges are handled implicitly: a node is ready only when every
  // transaction that real-time-precedes it has been emitted, avoiding the
  // O(n^2) rt edge set. The set of unfinished completion times is a doubly
  // linked list threaded through completion-time order, so "minimum
  // unfinished last_seq, excluding me" is O(1) and removal on emission is
  // O(1).
  //
  // The loop runs in frontier rounds; large frontiers relax their
  // out-edges on the worker pool (the only shared write is the atomic
  // indegree decrement, and exactly one worker observes the drop to zero).
  // The emitted set is schedule-independent: readiness is monotone in the
  // emitted set (indegrees only fall; the minimum unfinished completion
  // time only rises), so every schedule — one node at a time or whole
  // frontiers — converges to the same least fixpoint, and the rt_blocked
  // heap drain after each round (ready nodes are exactly a first_seq
  // prefix of the heap) completes the closure.
  std::vector<std::uint32_t> rt_order;      // nodes 1..n-1 by last_seq
  std::vector<std::uint32_t> rt_next, rt_prev, rt_pos;  // list plumbing
  std::uint32_t rt_head = kNone;
  if (options.respect_real_time && n > 1) {
    rt_order.resize(n - 1);
    for (std::uint32_t i = 1; i < n; ++i) rt_order[i - 1] = i;
    runtime::parallel_sort(workers, rt_order.begin(), rt_order.end(),
                           [&](std::uint32_t a, std::uint32_t b) {
                             return nodes[a].last_seq != nodes[b].last_seq
                                        ? nodes[a].last_seq < nodes[b].last_seq
                                        : a < b;
                           });
    const std::uint32_t m = static_cast<std::uint32_t>(rt_order.size());
    rt_next.resize(m);
    rt_prev.resize(m);
    rt_pos.assign(n, kNone);
    for (std::uint32_t p = 0; p < m; ++p) {
      rt_next[p] = p + 1 < m ? p + 1 : kNone;
      rt_prev[p] = p > 0 ? p - 1 : kNone;
      rt_pos[rt_order[p]] = p;
    }
    rt_head = 0;
  }
  auto rt_remove = [&](std::uint32_t i) {
    const std::uint32_t p = rt_pos[i];
    if (p == kNone) return;
    if (rt_prev[p] != kNone) rt_next[rt_prev[p]] = rt_next[p];
    if (rt_next[p] != kNone) rt_prev[rt_next[p]] = rt_prev[p];
    if (rt_head == p) rt_head = rt_next[p];
    rt_pos[i] = kNone;
  };
  // Ready iff no *other* unfinished transaction completed before this one
  // started (completion seqs are unique, so a matching minimum is ours).
  auto rt_ready = [&](std::uint32_t i) {
    if (!options.respect_real_time || i == 0) return true;
    if (rt_head == kNone) return true;
    std::uint64_t min_last = nodes[rt_order[rt_head]].last_seq;
    if (rt_order[rt_head] == i) {
      const std::uint32_t second = rt_next[rt_head];
      min_last = second == kNone ? ~std::uint64_t{0}
                                 : nodes[rt_order[second]].last_seq;
    }
    return min_last >= nodes[i].first_seq;
  };

  std::vector<std::uint32_t> ready, next_ready;
  // indeg-0 nodes waiting only on real time, keyed by start time: once the
  // oldest is unblocked, pop while ready (see rt_ready monotonicity).
  using HeapEntry = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      rt_blocked;
  auto enqueue = [&](std::uint32_t i) {
    if (rt_ready(i)) {
      next_ready.push_back(i);
    } else {
      rt_blocked.emplace(nodes[i].first_seq, i);
    }
  };

  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) enqueue(i);
  }
  std::swap(ready, next_ready);

  std::vector<char> emitted(n, 0);
  std::size_t emitted_count = 0;
  constexpr std::size_t kParallelFrontier = 4096;
  std::vector<std::vector<std::uint32_t>> zero_scratch(
      static_cast<std::size_t>(workers));
  while (!ready.empty()) {
    next_ready.clear();
    for (const std::uint32_t i : ready) {
      emitted[i] = 1;
      ++emitted_count;
      if (options.respect_real_time && i != 0) rt_remove(i);
    }
    if (workers > 1 && ready.size() >= kParallelFrontier) {
      runtime::parallel_for_blocks(
          workers, ready.size(), [&](std::size_t b, std::size_t e, int w) {
            std::vector<std::uint32_t>& zeros =
                zero_scratch[static_cast<std::size_t>(w)];
            zeros.clear();
            for (std::size_t k = b; k < e; ++k) {
              const std::uint32_t i = ready[k];
              for (std::uint32_t p = offs[i]; p < offs[i + 1]; ++p) {
                const std::uint32_t t = edges[eidx[p]].to;
                if (std::atomic_ref<std::uint32_t>(indeg[t]).fetch_sub(
                        1, std::memory_order_relaxed) == 1) {
                  zeros.push_back(t);
                }
              }
            }
          });
      for (const auto& zeros : zero_scratch) {
        for (const std::uint32_t t : zeros) enqueue(t);
      }
    } else {
      for (const std::uint32_t i : ready) {
        for (std::uint32_t p = offs[i]; p < offs[i + 1]; ++p) {
          const std::uint32_t t = edges[eidx[p]].to;
          if (--indeg[t] == 0) enqueue(t);
        }
      }
    }
    // The emissions may have raised the minimum unfinished completion
    // time: release rt-blocked nodes in start-time order.
    while (!rt_blocked.empty() && rt_ready(rt_blocked.top().second)) {
      next_ready.push_back(rt_blocked.top().second);
      rt_blocked.pop();
    }
    std::swap(ready, next_ready);
  }

  if (emitted_count == n) return CheckResult{};

  // ---- Failure: extract a concrete cycle witness -------------------------
  std::string stuck;
  int shown = 0;
  for (std::size_t i = 0; i < n && shown < 6; ++i) {
    if (!emitted[i]) {
      stuck += " " + tx_name(nodes[i].id);
      ++shown;
    }
  }

  auto make_witness = [&](std::uint32_t e) {
    const Edge& edge = edges[e];
    return WitnessEdge{edge.kind, nodes[edge.from].id, nodes[edge.to].id,
                       edge.var};
  };

  // First try: a cycle over explicit edges among the unemitted residue
  // (every residual node keeps an incoming residual edge, so if the cycle
  // does not need real-time edges this DFS finds it).
  std::vector<WitnessEdge> cycle;
  {
    struct Frame {
      std::uint32_t node;
      std::uint32_t it;       // cursor into eidx
      std::uint32_t in_edge;  // edge used to reach node (kNone for roots)
    };
    std::vector<std::uint8_t> color(n, 0);
    std::vector<Frame> stack;
    for (std::uint32_t s = 0; s < n && cycle.empty(); ++s) {
      if (emitted[s] || color[s] != 0) continue;
      stack.clear();
      stack.push_back(Frame{s, offs[s], kNone});
      color[s] = 1;
      while (!stack.empty() && cycle.empty()) {
        Frame& f = stack.back();
        if (f.it == offs[f.node + 1]) {
          color[f.node] = 2;
          stack.pop_back();
          continue;
        }
        const std::uint32_t e = eidx[f.it++];
        const std::uint32_t t = edges[e].to;
        if (emitted[t] || color[t] == 2) continue;
        if (color[t] == 1) {  // back edge: unwind the stack into a cycle
          std::size_t k = stack.size();
          while (k > 0 && stack[k - 1].node != t) --k;
          for (std::size_t j = k; j < stack.size(); ++j) {
            cycle.push_back(make_witness(stack[j].in_edge));
          }
          cycle.push_back(make_witness(e));
          break;
        }
        color[t] = 1;
        stack.push_back(Frame{t, offs[t], e});
      }
    }
  }

  // Second try: the cycle needs real-time edges. Materializing all rt
  // edges among s stuck nodes is O(s^2); instead encode rt reachability
  // with a start-time chain — stuck nodes sorted by first_seq, chain node
  // k reaching stuck node k and chain node k+1 — so "u rt-precedes every
  // node starting after u finished" is one edge into the chain.
  if (cycle.empty() && options.respect_real_time) {
    std::vector<std::uint32_t> stuck_nodes;
    for (std::uint32_t i = 1; i < n; ++i) {
      if (!emitted[i]) stuck_nodes.push_back(i);
    }
    std::sort(stuck_nodes.begin(), stuck_nodes.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return nodes[a].first_seq != nodes[b].first_seq
                           ? nodes[a].first_seq < nodes[b].first_seq
                           : a < b;
              });
    const std::uint32_t m = static_cast<std::uint32_t>(stuck_nodes.size());
    std::vector<std::uint32_t> aux_of(n, kNone);  // node -> aux id
    for (std::uint32_t k = 0; k < m; ++k) aux_of[stuck_nodes[k]] = k;
    // Aux ids: [0, m) real stuck nodes, [m, 2m) chain nodes. Aux edge tag:
    // explicit edge index, kRtTag (real -> chain), or kChainTag (virtual).
    constexpr std::uint64_t kRtTag = ~std::uint64_t{0};
    constexpr std::uint64_t kChainTag = kRtTag - 1;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> aux(
        2 * static_cast<std::size_t>(m));
    for (std::uint32_t k = 0; k < m; ++k) {
      const std::uint32_t u = stuck_nodes[k];
      for (std::uint32_t p = offs[u]; p < offs[u + 1]; ++p) {
        const std::uint32_t t = edges[eidx[p]].to;
        if (aux_of[t] != kNone) {
          aux[k].push_back({aux_of[t], eidx[p]});
        }
      }
      // rt: u precedes every stuck node whose first_seq > u's last_seq.
      const auto it = std::upper_bound(
          stuck_nodes.begin(), stuck_nodes.end(), nodes[u].last_seq,
          [&](std::uint64_t v, std::uint32_t s) {
            return v < nodes[s].first_seq;
          });
      if (it != stuck_nodes.end()) {
        aux[k].push_back(
            {m + static_cast<std::uint32_t>(it - stuck_nodes.begin()),
             kRtTag});
      }
      aux[m + k].push_back({k, kChainTag});
      if (k + 1 < m) aux[m + k].push_back({m + k + 1, kChainTag});
    }
    // DFS over the aux graph; collapse chain traversals into one rt edge.
    struct AuxFrame {
      std::uint32_t node;
      std::size_t it;
      std::uint64_t in_tag;
    };
    std::vector<std::uint8_t> color(2 * static_cast<std::size_t>(m), 0);
    std::vector<AuxFrame> stack;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> raw;  // (aux, tag)
    for (std::uint32_t s = 0; s < m && raw.empty(); ++s) {
      if (color[s] != 0) continue;
      stack.clear();
      stack.push_back(AuxFrame{s, 0, kChainTag});
      color[s] = 1;
      while (!stack.empty() && raw.empty()) {
        AuxFrame& f = stack.back();
        if (f.it == aux[f.node].size()) {
          color[f.node] = 2;
          stack.pop_back();
          continue;
        }
        const auto [t, tag] = aux[f.node][f.it++];
        if (color[t] == 2) continue;
        if (color[t] == 1) {
          std::size_t k = stack.size();
          while (k > 0 && stack[k - 1].node != t) --k;
          for (std::size_t j = k; j < stack.size(); ++j) {
            raw.push_back({stack[j].node, stack[j].in_tag});
          }
          raw.push_back({t, tag});
          // Rotate so the sequence starts at a real node (one must exist:
          // a pure chain-node cycle is impossible, the chain is acyclic).
          while (!raw.empty() && raw.front().first >= m) {
            raw.push_back(raw.front());
            raw.erase(raw.begin());
          }
          break;
        }
        color[t] = 1;
        stack.push_back(AuxFrame{t, 0, tag});
      }
    }
    // raw[j] = (aux node, tag of the edge *into* it, i.e. from raw[j-1]).
    if (!raw.empty()) {
      std::uint32_t rt_source = kNone;
      for (std::size_t j = 0; j < raw.size(); ++j) {
        const auto [a, tag_in] = raw[(j + 1) % raw.size()];
        const std::uint32_t prev_aux = raw[j].first;
        if (tag_in == kRtTag) {
          rt_source = stuck_nodes[prev_aux];  // real -> chain
        } else if (tag_in == kChainTag) {
          if (a < m && rt_source != kNone) {  // chain -> real: rt lands
            cycle.push_back(WitnessEdge{Kind::kRealTime,
                                        nodes[rt_source].id,
                                        nodes[stuck_nodes[a]].id,
                                        core::kInvalidTVar});
            rt_source = kNone;
          }
        } else {
          cycle.push_back(make_witness(static_cast<std::uint32_t>(tag_in)));
        }
      }
    }
  }

  return CheckResult::failure(
      std::string("serialization graph has a cycle") +
          (options.respect_real_time ? " (with real-time edges)" : "") +
          "; stuck transactions:" + stuck,
      std::move(cycle));
}

// ---------------------------------------------------------------------------
// Exhaustive checker (Definition 1 verbatim)

namespace {

struct SearchCtx {
  std::vector<Digest> digests;  // committed candidates
  const ExhaustiveOptions* options;
};

bool search(SearchCtx& ctx, std::vector<char>& used,
            std::map<core::TVarId, core::Value>& state, std::size_t placed) {
  if (placed == ctx.digests.size()) return true;
  for (std::size_t i = 0; i < ctx.digests.size(); ++i) {
    if (used[i]) continue;
    const Digest& d = ctx.digests[i];
    if (ctx.options->respect_real_time) {
      // Cannot place d yet if an unplaced transaction completed before d
      // started (it would have to come first in any rt-respecting order).
      bool blocked = false;
      for (std::size_t j = 0; j < ctx.digests.size() && !blocked; ++j) {
        if (j == i || used[j]) continue;
        blocked = ctx.digests[j].rec->precedes(*d.rec);
      }
      if (blocked) continue;
    }
    // Legality: external reads must match the current state.
    bool legal = true;
    for (const VarVal& r : d.external_reads) {
      auto it = state.find(r.var);
      const core::Value cur =
          it == state.end() ? ctx.options->initial_value : it->second;
      if (cur != r.val) {
        legal = false;
        break;
      }
    }
    if (!legal) continue;

    // Apply writes, remembering displaced values.
    std::vector<std::pair<core::TVarId, std::pair<bool, core::Value>>> undo;
    for (const VarVal& w : d.final_writes) {
      auto it = state.find(w.var);
      if (it == state.end()) {
        undo.push_back({w.var, {false, 0}});
        state[w.var] = w.val;
      } else {
        undo.push_back({w.var, {true, it->second}});
        it->second = w.val;
      }
    }
    used[i] = 1;
    if (search(ctx, used, state, placed + 1)) return true;
    used[i] = 0;
    for (auto rit = undo.rbegin(); rit != undo.rend(); ++rit) {
      if (rit->second.first) {
        state[rit->first] = rit->second.second;
      } else {
        state.erase(rit->first);
      }
    }
  }
  return false;
}

}  // namespace

CheckResult check_exhaustive_serializability(
    const std::vector<TxRecord>& txns, const ExhaustiveOptions& options) {
  std::vector<const TxRecord*> committed;
  std::vector<const TxRecord*> pending;
  for (const TxRecord& rec : txns) {
    if (rec.committed()) {
      committed.push_back(&rec);
    } else if (rec.commit_pending) {
      pending.push_back(&rec);
    }
  }
  if (committed.size() + pending.size() > options.max_transactions) {
    return CheckResult::failure(
        "history too large for the exhaustive checker");
  }

  // Enumerate commit-completions: every subset of commit-pending
  // transactions may have committed.
  const std::size_t subsets = std::size_t{1} << pending.size();
  std::string first_err;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    SearchCtx ctx;
    ctx.options = &options;
    bool digest_ok = true;
    std::string err;
    core::TVarId bad_var = core::kInvalidTVar;
    auto add = [&](const TxRecord* rec) {
      Digest d;
      if (!digest_tx(*rec, d, err, &bad_var)) {
        digest_ok = false;
        return;
      }
      ctx.digests.push_back(std::move(d));
    };
    for (const TxRecord* rec : committed) add(rec);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (mask & (std::size_t{1} << i)) add(pending[i]);
    }
    if (!digest_ok) return CheckResult::failure(err);

    std::vector<char> used(ctx.digests.size(), 0);
    std::map<core::TVarId, core::Value> state;
    if (search(ctx, used, state, 0)) return CheckResult{};
    if (first_err.empty()) {
      first_err = "no legal sequential order for " +
                  std::to_string(ctx.digests.size()) +
                  " committed transactions";
    }
  }
  return CheckResult::failure(first_err.empty()
                                  ? "no legal commit-completion found"
                                  : first_err);
}

}  // namespace oftm::history
