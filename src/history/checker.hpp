// Correctness checkers for TM histories.
//
// Two checkers with complementary scope:
//
// 1. check_mvsg — multiversion-serialization-graph based, scales to the
//    histories produced by stress runs (tens of thousands of transactions).
//    Requires the *unique-writes* test discipline (every written value is
//    globally unique) so reads-from edges can be inferred from values; our
//    workload generators guarantee it. With `respect_real_time` and
//    `include_aborted_readers` it checks the opacity graph of [15] as used
//    in the paper's Appendix B (real-time edges + reads-from edges +
//    anti-dependency edges, acyclicity); without them it checks plain
//    serializability against the commit-order version order.
//
// 2. check_exhaustive_serializability — a direct implementation of
//    Definition 1: search over commit-completions of the history and over
//    all serialization orders of the committed transactions for a legal
//    sequential equivalent. Exponential; used on the small histories the
//    schedule explorer generates, where it is assumption-free.
#pragma once

#include <string>
#include <vector>

#include "history/event.hpp"

namespace oftm::history {

struct CheckResult {
  bool ok = true;
  std::string error;

  static CheckResult failure(std::string msg) {
    return CheckResult{false, std::move(msg)};
  }
};

struct MvsgOptions {
  // Add real-time precedence edges (strict serializability; together with
  // aborted readers this is the opacity check).
  bool respect_real_time = false;
  // Require aborted and live transactions' reads to be consistent too
  // (opacity requirement (1): non-committed transactions observe consistent
  // states).
  bool include_aborted_readers = false;
  // Value every t-variable starts with.
  core::Value initial_value = 0;
  // Treat commit-pending transactions as committed (they may have taken
  // effect; Definition 1 allows any commit-completion — the conservative
  // stress-test setup joins all workers so this is normally irrelevant).
  bool commit_pending_as_committed = true;
};

CheckResult check_mvsg(const std::vector<TxRecord>& txns,
                       const MvsgOptions& options = {});

struct ExhaustiveOptions {
  bool respect_real_time = false;
  core::Value initial_value = 0;
  std::size_t max_transactions = 12;  // hard cap: the search is factorial
};

CheckResult check_exhaustive_serializability(
    const std::vector<TxRecord>& txns, const ExhaustiveOptions& options = {});

}  // namespace oftm::history
