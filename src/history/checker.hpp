// Correctness checkers for TM histories.
//
// Two checkers with complementary scope:
//
// 1. check_mvsg — multiversion-serialization-graph based, scales to the
//    histories produced by stress runs (hundreds of thousands of
//    transactions: all per-t-var state lives in flat sorted indices, so a
//    100k-transaction single-hot-key history checks in well under a
//    second). Requires the *unique-writes* test discipline (every written
//    value is globally unique) so reads-from edges can be inferred from
//    values; our workload generators guarantee it. With `respect_real_time`
//    and `include_aborted_readers` it checks the opacity graph of [15] as
//    used in the paper's Appendix B (real-time edges + reads-from edges +
//    anti-dependency edges, acyclicity); without them it checks plain
//    serializability against the commit-order version order.
//
// 2. check_exhaustive_serializability — a direct implementation of
//    Definition 1: search over commit-completions of the history and over
//    all serialization orders of the committed transactions for a legal
//    sequential equivalent. Exponential; used on the small histories the
//    schedule explorer generates, where it is assumption-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "history/event.hpp"

namespace oftm::history {

// One edge of a machine-readable failure witness. `from`/`to` are TxIds;
// id 0 names the virtual initializing transaction T0.
struct WitnessEdge {
  enum class Kind : std::uint8_t {
    kVersionOrder,    // ww: from's version of tvar directly precedes to's
    kReadsFrom,       // wr: to read the version of tvar that from wrote
    kAntiDependency,  // rw: from read the version of tvar that to replaced
    kRealTime,        // from completed before to started
    kLocal,           // intra-transaction or version-chain defect: the
                      // named transaction(s) and t-var, no graph edge
  };
  Kind kind = Kind::kLocal;
  core::TxId from = 0;
  core::TxId to = 0;
  core::TVarId tvar = core::kInvalidTVar;
};

const char* to_string(WitnessEdge::Kind k) noexcept;

struct CheckResult {
  bool ok = true;
  std::string error;
  // Machine-readable witness of the violation, empty on success.
  //   * Cycle failures: the offending cycle as a closed edge list —
  //     witness[i].to == witness[i+1].from, and the last edge wraps back
  //     to witness[0].from.
  //   * Local failures (dirty read, inconsistent reads, version-chain
  //     fork/gap, unique-writes violation): the offending transaction(s)
  //     and t-var — one entry for single-transaction defects, one naming
  //     both transactions for fork/duplicate defects, and up to four
  //     (one per unplaced writer) for a version-chain gap.
  std::vector<WitnessEdge> witness;
  // True when the checker refused the history because an event or edge
  // count exceeds its 32-bit index space (or the injected test cap): the
  // history was NOT judged — this is a checker-capacity error, not an
  // opacity verdict.
  bool capacity_exceeded = false;

  // "T1 -rf[x3]-> T2 -rt-> T1" — the witness rendered for humans.
  std::string witness_str() const;

  static CheckResult failure(std::string msg) {
    return CheckResult{false, std::move(msg), {}};
  }
  static CheckResult failure(std::string msg, std::vector<WitnessEdge> w) {
    return CheckResult{false, std::move(msg), std::move(w)};
  }
  static CheckResult capacity(std::string msg) {
    CheckResult r{false, std::move(msg), {}};
    r.capacity_exceeded = true;
    return r;
  }
};

struct MvsgOptions {
  // Add real-time precedence edges (strict serializability; together with
  // aborted readers this is the opacity check).
  bool respect_real_time = false;
  // Require aborted and live transactions' reads to be consistent too
  // (opacity requirement (1): non-committed transactions observe consistent
  // states).
  bool include_aborted_readers = false;
  // Value every t-variable starts with.
  core::Value initial_value = 0;
  // Treat commit-pending transactions as committed (they may have taken
  // effect; Definition 1 allows any commit-completion — the conservative
  // stress-test setup joins all workers so this is normally irrelevant).
  bool commit_pending_as_committed = true;
  // Worker threads for digestion, edge construction, and the cycle pass.
  // 1 = fully sequential (never spawns), 0 = one per hardware thread.
  // The verdict AND the witness are bit-identical for every thread count:
  // parallelism only changes scheduling, never the computed permutations
  // (all sort comparators are total orders) or the Kahn residue (a
  // schedule-independent fixpoint).
  int threads = 1;
  // Test hook: override the checker's index capacity (default: the 32-bit
  // index space its flat arrays use). Histories whose transaction, access,
  // or edge counts exceed it get a structured capacity_exceeded result
  // instead of silently truncated indices.
  std::size_t index_capacity = 0;
};

CheckResult check_mvsg(const std::vector<TxRecord>& txns,
                       const MvsgOptions& options = {});

struct ExhaustiveOptions {
  bool respect_real_time = false;
  core::Value initial_value = 0;
  std::size_t max_transactions = 12;  // hard cap: the search is factorial
};

CheckResult check_exhaustive_serializability(
    const std::vector<TxRecord>& txns, const ExhaustiveOptions& options = {});

}  // namespace oftm::history
