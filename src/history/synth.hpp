// Synthetic history generation: deterministic, serializable-by-construction
// committed histories at any scale, for calibrating and benchmarking the
// checkers themselves (tests/checker_adversarial_test.cpp seeds known
// violations into them; bench/bench_checker.cpp sweeps size and hot-key
// skew). Unlike recording a real backend, generation is O(history) with no
// threads, so a 100k-transaction single-hot-key history materializes in
// milliseconds and every run is bit-identical per seed.
//
// Shape: one sequential timeline. Transaction k runs entirely inside its
// own seq range; every op first reads its t-var and, when the op is a
// write, immediately overwrites it with a globally unique value (the
// read-modify-write discipline check_mvsg's exact chain construction
// relies on). The result passes the strict opacity check by construction —
// a failed verdict on an un-mutated synthetic history is a checker bug.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "history/event.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::history::synth {

struct SynthOptions {
  std::size_t transactions = 1000;
  std::size_t num_tvars = 64;
  // Probability an op is redirected to t-var 0 (the hot key): 0.0 keeps the
  // uniform base distribution, 1.0 makes the whole history a single-key
  // chain — the checker's version-index worst case.
  double hot_fraction = 0.0;
  int ops_per_tx = 4;
  double write_fraction = 0.5;  // probability an op is a read-modify-write
  std::uint64_t seed = 1;
};

inline std::vector<TxRecord> make_history(const SynthOptions& options) {
  runtime::Xoshiro256 rng(runtime::mix64(options.seed ^ 0x5EEDC0DE));
  std::vector<core::Value> current(options.num_tvars, 0);
  std::vector<TxRecord> txns;
  txns.reserve(options.transactions);
  std::uint64_t seq = 0;
  core::Value next_value = 0;  // unique-writes discipline: values 1, 2, ...

  for (std::size_t k = 0; k < options.transactions; ++k) {
    TxRecord rec;
    rec.id = static_cast<core::TxId>(k + 1);
    rec.pid = static_cast<int>(k % 8);
    rec.first_seq = ++seq;
    for (int o = 0; o < options.ops_per_tx; ++o) {
      const std::size_t x =
          rng.next_bool(options.hot_fraction)
              ? 0
              : static_cast<std::size_t>(rng.next_range(options.num_tvars));
      TxOp read;
      read.op = OpType::kRead;
      read.tvar = static_cast<core::TVarId>(x);
      read.result = current[x];
      read.inv_seq = ++seq;
      read.resp_seq = ++seq;
      rec.ops.push_back(read);
      if (rng.next_bool(options.write_fraction)) {
        TxOp write;
        write.op = OpType::kWrite;
        write.tvar = static_cast<core::TVarId>(x);
        write.arg = ++next_value;
        write.inv_seq = ++seq;
        write.resp_seq = ++seq;
        rec.ops.push_back(write);
        current[x] = write.arg;  // serial: the commit is immediate
      }
    }
    rec.final_status = core::TxStatus::kCommitted;
    rec.last_seq = ++seq;
    txns.push_back(std::move(rec));
  }
  return txns;
}

// ---------------------------------------------------------------------------
// Mutation builders: seed a specific violation class into a history. Shared
// by the adversarial and old-vs-new-equivalence suites so the two stay in
// lockstep on what "a dirty read" or "a real-time inversion" means.

// Overwrite every *external* read of `var` in `rec` (reads after an own
// write of the var are internal and left alone, so the transaction stays
// locally consistent and the checker's dirty-read path — not its digest
// consistency path — is what fires).
inline void poison_external_reads(TxRecord& rec, core::TVarId var,
                                  core::Value poison) {
  bool wrote = false;
  for (TxOp& op : rec.ops) {
    if (op.op == OpType::kWrite && op.tvar == var) wrote = true;
    if (op.op == OpType::kRead && op.tvar == var && !wrote) {
      op.result = poison;
    }
  }
}

// Seed the classic lost update: the later of the first two committed
// writers of `var` is rewritten to have read the same version the first
// one read, so both applied their update on top of the same snapshot — a
// version-chain fork. The two forked writer ids come back via
// *first/*second. Returns false (txns untouched) with fewer than two
// writers of `var`.
inline bool seed_lost_update(std::vector<TxRecord>& txns, core::TVarId var,
                             core::TxId* first, core::TxId* second) {
  TxRecord* w1 = nullptr;
  TxRecord* w2 = nullptr;
  core::Value w1_read = 0;
  for (TxRecord& rec : txns) {
    bool wrote = false;
    core::Value read_val = 0;
    for (const TxOp& op : rec.ops) {
      if (op.op == OpType::kRead && op.tvar == var && !wrote) {
        read_val = op.result;
      }
      if (op.op == OpType::kWrite && op.tvar == var) wrote = true;
    }
    if (!wrote) continue;
    if (w1 == nullptr) {
      w1 = &rec;
      w1_read = read_val;
    } else {
      w2 = &rec;
      break;
    }
  }
  if (w2 == nullptr) return false;
  poison_external_reads(*w2, var, w1_read);
  *first = w1->id;
  *second = w2->id;
  return true;
}

// Append a committed RMW transaction `id` on `var` that reads the current
// final value but re-writes the value of `var`'s *first* chain version — a
// unique-writes breach naming two writers of one value. The original
// writer of the duplicated value comes back via *original. Returns false
// (txns untouched) when `var` has no committed writer. Only a
// transaction's final write per var becomes a chain version, so
// intra-transaction overwrites are skipped when picking the duplicate.
inline bool append_duplicate_writer(std::vector<TxRecord>& txns,
                                    core::TVarId var, core::TxId id,
                                    core::TxId* original) {
  core::Value dup_value = 0;
  core::TxId dup_writer = 0;
  core::Value current = 0;
  std::uint64_t max_seq = 0;
  for (const TxRecord& rec : txns) {
    if (rec.last_seq > max_seq) max_seq = rec.last_seq;
    core::Value final_write = 0;
    for (const TxOp& op : rec.ops) {
      if (op.op == OpType::kWrite && op.tvar == var) final_write = op.arg;
    }
    if (final_write == 0) continue;
    if (dup_value == 0) {
      dup_value = final_write;
      dup_writer = rec.id;
    }
    current = final_write;
  }
  if (dup_value == 0) return false;

  TxRecord extra;
  extra.id = id;
  extra.pid = 0;
  extra.first_seq = max_seq + 1;
  TxOp read;
  read.op = OpType::kRead;
  read.tvar = var;
  read.result = current;
  read.inv_seq = max_seq + 2;
  read.resp_seq = max_seq + 3;
  extra.ops.push_back(read);
  TxOp write;
  write.op = OpType::kWrite;
  write.tvar = var;
  write.arg = dup_value;
  write.inv_seq = max_seq + 4;
  write.resp_seq = max_seq + 5;
  extra.ops.push_back(write);
  extra.final_status = core::TxStatus::kCommitted;
  extra.last_seq = max_seq + 6;
  txns.push_back(std::move(extra));
  *original = dup_writer;
  return true;
}

// Append a committed read-only transaction `id` that starts after every
// existing transaction completed, yet observes `var`'s *first* chain
// version: legal under plain serializability (order it early), illegal once
// real-time edges are respected. Only a transaction's final write per var
// becomes a chain version, so intra-transaction overwrites are skipped.
// Returns false (leaving txns untouched) when the var has fewer than two
// committed versions — nothing is superseded, so there is no inversion.
inline bool append_stale_reader(std::vector<TxRecord>& txns,
                                core::TVarId var, core::TxId id) {
  core::Value first_version = 0;
  int writers = 0;
  std::uint64_t max_seq = 0;
  for (const TxRecord& rec : txns) {
    if (rec.last_seq > max_seq) max_seq = rec.last_seq;
    core::Value final_write = 0;
    for (const TxOp& op : rec.ops) {
      if (op.op == OpType::kWrite && op.tvar == var) final_write = op.arg;
    }
    if (final_write == 0) continue;
    if (++writers == 1) first_version = final_write;
  }
  if (writers < 2) return false;

  TxRecord stale;
  stale.id = id;
  stale.pid = 0;
  stale.first_seq = max_seq + 1;
  TxOp read;
  read.op = OpType::kRead;
  read.tvar = var;
  read.result = first_version;
  read.inv_seq = max_seq + 2;
  read.resp_seq = max_seq + 3;
  stale.ops.push_back(read);
  stale.final_status = core::TxStatus::kCommitted;
  stale.last_seq = max_seq + 4;
  txns.push_back(std::move(stale));
  return true;
}

}  // namespace oftm::history::synth
