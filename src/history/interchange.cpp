#include "history/interchange.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <unordered_set>
#include <utility>

namespace oftm::history::interchange {
namespace {

// Imported histories without timestamps get every transaction the same
// all-overlapping interval: no pair satisfies last_seq < first_seq, so no
// real-time edge is ever fabricated.
constexpr std::uint64_t kUntimedFirst = 1;
constexpr std::uint64_t kUntimedLast = ~std::uint64_t{0} >> 1;

// ---------------------------------------------------------------------------
// Minimal JSON reader. Integers keep full uint64 precision (keys, values,
// and sequence numbers are 64-bit); other numbers parse but carry no value.

struct JValue {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };
  Type type = Type::kNull;
  bool boolean = false;
  bool is_int = false;  // integer that fit uint64 (negative flag aside)
  bool negative = false;
  std::uint64_t uint_val = 0;
  std::string str;
  std::vector<JValue> items;
  std::vector<std::pair<std::string, JValue>> members;

  const JValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse_document(JValue& out, std::string& err) {
    if (!parse_value(out, err, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail(err, "trailing characters");
    return true;
  }

 private:
  bool fail(std::string& err, const char* msg) {
    err = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool parse_value(JValue& out, std::string& err, int depth) {
    if (depth > 64) return fail(err, "nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail(err, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, err, depth);
    if (c == '[') return parse_array(out, err, depth);
    if (c == '"') {
      out.type = JValue::Type::kString;
      return parse_string(out.str, err);
    }
    if (c == 't' || c == 'f') {
      out.type = JValue::Type::kBool;
      out.boolean = c == 't';
      return expect_keyword(c == 't' ? "true" : "false", err);
    }
    if (c == 'n') {
      out.type = JValue::Type::kNull;
      return expect_keyword("null", err);
    }
    return parse_number(out, err);
  }

  bool expect_keyword(std::string_view kw, std::string& err) {
    if (text_.substr(pos_, kw.size()) != kw) {
      return fail(err, "invalid literal");
    }
    pos_ += kw.size();
    return true;
  }

  bool parse_number(JValue& out, std::string& err) {
    out.type = JValue::Type::kNumber;
    out.is_int = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      out.negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail(err, "invalid number");
    }
    std::uint64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t d = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > (~std::uint64_t{0} - d) / 10) {
        out.is_int = false;  // out of uint64 range: keep shape, drop value
      } else {
        v = v * 10 + d;
      }
      ++pos_;
    }
    out.uint_val = v;
    // Fractions/exponents parse (external dumps carry float timestamps)
    // but are not integers.
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      out.is_int = false;
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
            c == '+' || c == '-') {
          ++pos_;
        } else {
          break;
        }
      }
    }
    return true;
  }

  bool parse_string(std::string& out, std::string& err) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail(err, "bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(err, "bad \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return fail(err, "surrogate pairs unsupported");
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail(err, "bad escape");
      }
    }
    return fail(err, "unterminated string");
  }

  bool parse_array(JValue& out, std::string& err, int depth) {
    out.type = JValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out.items.emplace_back();
      if (!parse_value(out.items.back(), err, depth + 1)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail(err, "unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail(err, "expected ',' or ']'");
    }
  }

  bool parse_object(JValue& out, std::string& err, int depth) {
    out.type = JValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(err, "expected member name");
      }
      std::string key;
      if (!parse_string(key, err)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return fail(err, "expected ':'");
      }
      out.members.emplace_back(std::move(key), JValue{});
      if (!parse_value(out.members.back().second, err, depth + 1)) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size()) return fail(err, "unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail(err, "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool get_uint(const JValue* v, std::uint64_t* out) {
  if (v == nullptr || v->type != JValue::Type::kNumber || !v->is_int ||
      v->negative) {
    return false;
  }
  *out = v->uint_val;
  return true;
}

bool get_int(const JValue* v, std::int64_t* out) {
  if (v == nullptr || v->type != JValue::Type::kNumber || !v->is_int) {
    return false;
  }
  if (v->negative) {
    if (v->uint_val > static_cast<std::uint64_t>(
                          std::int64_t{1} << 62)) {  // plenty for pids
      return false;
    }
    *out = -static_cast<std::int64_t>(v->uint_val);
  } else {
    if (v->uint_val > static_cast<std::uint64_t>(~std::uint64_t{0} >> 1)) {
      return false;
    }
    *out = static_cast<std::int64_t>(v->uint_val);
  }
  return true;
}

// elle keywords arrive as "ok" or ":ok" depending on the edn->json path.
std::string_view strip_keyword(std::string_view s) {
  if (!s.empty() && s.front() == ':') s.remove_prefix(1);
  return s;
}

bool key_to_tvar(std::uint64_t key, core::TVarId* out) {
  if (key >= static_cast<std::uint64_t>(core::kInvalidTVar)) return false;
  *out = static_cast<core::TVarId>(key);
  return true;
}

// ---------------------------------------------------------------------------
// Writers

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

// The completed, non-aborted reads and writes of a record — the ops that
// travel (and the only ops check_mvsg consumes).
template <typename Fn>
void for_each_data_op(const TxRecord& rec, Fn&& fn) {
  for (const TxOp& op : rec.ops) {
    if (op.aborted) continue;
    if (op.op != OpType::kRead && op.op != OpType::kWrite) continue;
    fn(op);
  }
}

std::string export_dbcop(const std::vector<TxRecord>& txns,
                         const ExportOptions& options) {
  // dbcop sessions are per-process sequences; only committed transactions
  // exist in the format.
  std::map<int, std::vector<const TxRecord*>> sessions;
  std::unordered_set<core::TVarId> keys;
  std::size_t txn_num = 0;
  std::size_t event_num = 0;
  for (const TxRecord& rec : txns) {
    if (!rec.committed()) continue;
    sessions[rec.pid].push_back(&rec);
    ++txn_num;
    for_each_data_op(rec, [&](const TxOp& op) {
      keys.insert(op.tvar);
      ++event_num;
    });
  }

  std::string out;
  out.reserve(64 * txn_num + 256);
  out += "{\"id\":";
  append_u64(out, options.history_id);
  out += ",\"session_num\":";
  append_u64(out, sessions.size());
  out += ",\"key_num\":";
  append_u64(out, keys.size());
  out += ",\"txn_num\":";
  append_u64(out, txn_num);
  out += ",\"event_num\":";
  append_u64(out, event_num);
  out += ",\"info\":";
  append_escaped(out, options.info);
  out += ",\"sessions\":[";
  bool first_session = true;
  for (const auto& [pid, recs] : sessions) {
    if (!first_session) out += ',';
    first_session = false;
    out += '[';
    for (std::size_t t = 0; t < recs.size(); ++t) {
      const TxRecord& rec = *recs[t];
      if (t > 0) out += ',';
      out += "{\"tid\":";
      append_u64(out, rec.id);
      out += ",\"pid\":";
      out += std::to_string(pid);
      out += ",\"committed\":true,\"first_seq\":";
      append_u64(out, rec.first_seq);
      out += ",\"last_seq\":";
      append_u64(out, rec.last_seq);
      out += ",\"events\":[";
      bool first_event = true;
      for_each_data_op(rec, [&](const TxOp& op) {
        if (!first_event) out += ',';
        first_event = false;
        out += "{\"is_write\":";
        out += op.op == OpType::kWrite ? "true" : "false";
        out += ",\"key\":";
        append_u64(out, op.tvar);
        out += ",\"value\":";
        append_u64(out, op.op == OpType::kWrite ? op.arg : op.result);
        out += ",\"success\":true}";
      });
      out += "]}";
    }
    out += ']';
  }
  out += "]}";
  return out;
}

std::string export_elle(const std::vector<TxRecord>& txns) {
  std::string out;
  out.reserve(64 * txns.size() + 64);
  std::uint64_t index = 0;
  for (const TxRecord& rec : txns) {
    const char* type = rec.committed() ? "ok"
                       : rec.aborted() ? "fail"
                                       : "info";
    out += "{\"type\":\"";
    out += type;
    out += "\",\"f\":\"txn\",\"process\":";
    out += std::to_string(rec.pid);
    out += ",\"index\":";
    append_u64(out, index++);
    out += ",\"tid\":";
    append_u64(out, rec.id);
    out += ",\"first_seq\":";
    append_u64(out, rec.first_seq);
    out += ",\"last_seq\":";
    append_u64(out, rec.last_seq);
    if (!rec.committed() && !rec.aborted()) {
      // Distinguish commit-pending from never-invoked-tryC "info" lines.
      out += ",\"pending\":";
      out += rec.commit_pending ? "true" : "false";
    }
    out += ",\"value\":[";
    bool first_op = true;
    for_each_data_op(rec, [&](const TxOp& op) {
      if (!first_op) out += ',';
      first_op = false;
      out += op.op == OpType::kWrite ? "[\"w\"," : "[\"r\",";
      append_u64(out, op.tvar);
      out += ',';
      append_u64(out, op.op == OpType::kWrite ? op.arg : op.result);
      out += ']';
    });
    out += "]}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Readers

struct ImportCtx {
  std::vector<TxRecord> txns;
  bool all_timed = true;
  core::TxId next_synth_id = 1;
};

bool import_ops(const JValue& value, TxRecord& rec, std::string& err) {
  if (value.type == JValue::Type::kNull) return true;  // no ops recorded
  if (value.type != JValue::Type::kArray) {
    err = "transaction value is not an array";
    return false;
  }
  for (const JValue& entry : value.items) {
    if (entry.type != JValue::Type::kArray || entry.items.size() < 3 ||
        entry.items[0].type != JValue::Type::kString) {
      err = "op entry is not [op, key, value]";
      return false;
    }
    const std::string_view f = strip_keyword(entry.items[0].str);
    if (f == "append") {
      err = "list-append histories are not supported (rw-register only)";
      return false;
    }
    if (f != "r" && f != "w") {
      err = "unsupported op \"" + entry.items[0].str + "\"";
      return false;
    }
    TxOp op;
    std::uint64_t key = 0;
    if (!get_uint(&entry.items[1], &key) || !key_to_tvar(key, &op.tvar)) {
      err = "op key is not a valid t-var id";
      return false;
    }
    if (f == "r") {
      op.op = OpType::kRead;
      if (entry.items[2].type == JValue::Type::kNull) {
        op.result = 0;  // elle: nothing observed == the initial value
      } else if (!get_uint(&entry.items[2], &op.result)) {
        err = "read value is not an unsigned integer";
        return false;
      }
    } else {
      op.op = OpType::kWrite;
      if (!get_uint(&entry.items[2], &op.arg)) {
        err = "write value is not an unsigned integer";
        return false;
      }
    }
    rec.ops.push_back(op);
  }
  return true;
}

bool import_timing(const JValue& obj, TxRecord& rec, ImportCtx& ctx,
                   std::string& err) {
  const JValue* first = obj.find("first_seq");
  const JValue* last = obj.find("last_seq");
  if (first == nullptr && last == nullptr) {
    ctx.all_timed = false;
    return true;
  }
  if (!get_uint(first, &rec.first_seq) || !get_uint(last, &rec.last_seq) ||
      rec.last_seq < rec.first_seq) {
    err = "invalid first_seq/last_seq pair";
    return false;
  }
  return true;
}

void import_identity(const JValue& obj, TxRecord& rec, ImportCtx& ctx,
                     int default_pid) {
  std::uint64_t tid = 0;
  if (get_uint(obj.find("tid"), &tid) && tid != 0) {
    rec.id = tid;
    ctx.next_synth_id = std::max(ctx.next_synth_id, tid + 1);
  } else {
    rec.id = ctx.next_synth_id++;
  }
  std::int64_t pid = 0;
  const JValue* pv = obj.find("pid");
  if (pv == nullptr) pv = obj.find("process");
  rec.pid = get_int(pv, &pid) ? static_cast<int>(pid) : default_pid;
}

ImportResult finish_import(ImportCtx&& ctx) {
  ImportResult result;
  result.has_real_time = ctx.all_timed;
  if (!ctx.all_timed) {
    for (TxRecord& rec : ctx.txns) {
      rec.first_seq = kUntimedFirst;
      rec.last_seq = kUntimedLast;
    }
  } else {
    // The recorder's convention: records sorted by start time, so node
    // numbering (and witnesses) match the history the export came from.
    std::stable_sort(ctx.txns.begin(), ctx.txns.end(),
                     [](const TxRecord& a, const TxRecord& b) {
                       return a.first_seq < b.first_seq;
                     });
  }
  result.ok = true;
  result.txns = std::move(ctx.txns);
  return result;
}

ImportResult import_error(std::string msg) {
  ImportResult r;
  r.error = std::move(msg);
  return r;
}

ImportResult import_dbcop(const JValue& doc) {
  if (doc.type != JValue::Type::kObject) {
    return import_error("dbcop history is not a JSON object");
  }
  const JValue* sessions = doc.find("sessions");
  if (sessions == nullptr || sessions->type != JValue::Type::kArray) {
    return import_error("dbcop history has no \"sessions\" array");
  }
  ImportCtx ctx;
  for (std::size_t s = 0; s < sessions->items.size(); ++s) {
    const JValue& session = sessions->items[s];
    if (session.type != JValue::Type::kArray) {
      return import_error("session " + std::to_string(s) +
                          " is not an array");
    }
    for (std::size_t t = 0; t < session.items.size(); ++t) {
      const JValue& txn = session.items[t];
      TxRecord rec;
      std::string err;
      const auto describe = [&](const std::string& msg) {
        return import_error("session " + std::to_string(s) +
                            " transaction " + std::to_string(t) + ": " + msg);
      };
      // Two accepted shapes: our object form ({"events":[...], extras})
      // and plain dbcop (a bare array of event objects).
      const JValue* events = nullptr;
      bool committed = true;
      bool have_committed_flag = false;
      if (txn.type == JValue::Type::kObject) {
        events = txn.find("events");
        if (events == nullptr || events->type != JValue::Type::kArray) {
          return describe("missing \"events\" array");
        }
        if (const JValue* c = txn.find("committed")) {
          if (c->type != JValue::Type::kBool) {
            return describe("\"committed\" is not a bool");
          }
          committed = c->boolean;
          have_committed_flag = true;
        }
        if (!import_timing(txn, rec, ctx, err)) return describe(err);
        import_identity(txn, rec, ctx, static_cast<int>(s));
      } else if (txn.type == JValue::Type::kArray) {
        events = &txn;
        ctx.all_timed = false;
        rec.id = ctx.next_synth_id++;
        rec.pid = static_cast<int>(s);
      } else {
        return describe("not an object or array");
      }
      for (const JValue& ev : events->items) {
        if (ev.type != JValue::Type::kObject) {
          return describe("event is not an object");
        }
        const JValue* is_write = ev.find("is_write");
        if (is_write == nullptr || is_write->type != JValue::Type::kBool) {
          return describe("event has no \"is_write\" bool");
        }
        TxOp op;
        std::uint64_t key = 0;
        if (!get_uint(ev.find("key"), &key) ||
            !key_to_tvar(key, &op.tvar)) {
          return describe("event key is not a valid t-var id");
        }
        std::uint64_t value = 0;
        if (!get_uint(ev.find("value"), &value)) {
          return describe("event value is not an unsigned integer");
        }
        if (const JValue* success = ev.find("success")) {
          if (success->type != JValue::Type::kBool) {
            return describe("\"success\" is not a bool");
          }
          if (!success->boolean) {
            // A failed operation response carries no reliable value.
            op.aborted = true;
            if (!have_committed_flag) committed = false;
          }
        }
        if (is_write->boolean) {
          op.op = OpType::kWrite;
          op.arg = value;
        } else {
          op.op = OpType::kRead;
          op.result = value;
        }
        rec.ops.push_back(op);
      }
      rec.final_status =
          committed ? core::TxStatus::kCommitted : core::TxStatus::kAborted;
      ctx.txns.push_back(std::move(rec));
    }
  }
  return finish_import(std::move(ctx));
}

ImportResult import_elle(std::string_view text) {
  ImportCtx ctx;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    const auto describe = [&](const std::string& msg) {
      return import_error("line " + std::to_string(line_no) + ": " + msg);
    };
    JValue obj;
    std::string err;
    JsonParser parser(line);
    if (!parser.parse_document(obj, err)) return describe(err);
    if (obj.type != JValue::Type::kObject) {
      return describe("not a JSON object");
    }
    const JValue* type = obj.find("type");
    if (type == nullptr || type->type != JValue::Type::kString) {
      return describe("missing \"type\"");
    }
    const std::string_view t = strip_keyword(type->str);
    if (t == "invoke") continue;  // the completion line carries the results
    if (t != "ok" && t != "fail" && t != "info") {
      return describe("unsupported type \"" + type->str + "\"");
    }
    TxRecord rec;
    if (t == "ok") {
      rec.final_status = core::TxStatus::kCommitted;
    } else if (t == "fail") {
      rec.final_status = core::TxStatus::kAborted;
    } else {
      rec.final_status = core::TxStatus::kActive;
      rec.commit_pending = true;
      if (const JValue* pending = obj.find("pending")) {
        if (pending->type == JValue::Type::kBool) {
          rec.commit_pending = pending->boolean;
        }
      }
    }
    if (!import_timing(obj, rec, ctx, err)) return describe(err);
    import_identity(obj, rec, ctx, /*default_pid=*/0);
    if (const JValue* value = obj.find("value")) {
      if (!import_ops(*value, rec, err)) return describe(err);
    }
    ctx.txns.push_back(std::move(rec));
  }
  return finish_import(std::move(ctx));
}

}  // namespace

std::string export_history(const std::vector<TxRecord>& txns,
                           const ExportOptions& options) {
  return options.format == Format::kDbcop ? export_dbcop(txns, options)
                                          : export_elle(txns);
}

ImportResult import_history(std::string_view text, Format format) {
  if (format == Format::kElle) return import_elle(text);
  JValue doc;
  std::string err;
  JsonParser parser(text);
  if (!parser.parse_document(doc, err)) return import_error(err);
  return import_dbcop(doc);
}

ImportResult import_history(std::string_view text) {
  // A dbcop dump is one object with a "sessions" member; elle histories
  // are JSON lines (many documents, rarely with "sessions").
  JValue doc;
  std::string err;
  JsonParser parser(text);
  if (parser.parse_document(doc, err) &&
      doc.type == JValue::Type::kObject && doc.find("sessions") != nullptr) {
    return import_dbcop(doc);
  }
  return import_elle(text);
}

}  // namespace oftm::history::interchange
