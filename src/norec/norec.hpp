// NOrec: a progressive lock-based STM with no ownership records — one
// global sequence lock, invisible reads, commit-time *value-based*
// revalidation, and lazy write-back (Dalessandro, Spear & Scott, PPoPP'10).
//
// Why it is in this repo: the source paper argues obstruction-free TMs pay
// an inherent price; the strongest counterpoint in the literature
// ("Why Transactional Memory Should Not Be Obstruction-Free", Kuznetsov &
// Ravi; "Progressive Transactional Memory in Time and Space") is exactly a
// minimal progressive, blocking TM of this shape. NOrec guarantees:
//
//   * progressiveness — a transaction is forcefully aborted only when a
//     concurrent transaction *committed* a conflicting write since its
//     snapshot (value inequality is the conflict witness);
//   * system-wide progress (livelock freedom) — the commit CAS on the
//     sequence lock fails only because some other transaction committed;
//   * opacity — every successful read is consistent with the whole read
//     set at the transaction's current snapshot time.
//
// What it gives up is obstruction freedom: a committer that stalls while
// holding the sequence lock (odd value) blocks every other commit and
// validation. That trade is the comparison this backend anchors.
//
// Value-based validation also means the classic version-clock ABA case
// (write x:=b, then a later transaction restores x:=a) does NOT abort a
// reader that saw a — the snapshot is still semantically consistent.
// tests/norec_test.cpp pins this behaviour down against TL2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::norec {

struct NorecOptions {
  // Gate the per-read write-set lookup behind a 64-bit Bloom filter (two
  // hash bits per t-variable): a definite miss skips the probe entirely.
  // The classic NOrec hot-path optimisation; off by default so plain
  // "norec" matches the published algorithm and benches isolate the
  // filter's effect.
  bool bloom_reads = false;
};

// Small open-addressed write set: TVarId -> Value, linear probing,
// power-of-two capacity, grown geometrically. The per-read lookup here is
// the price NOrec pays for lazy write-back; bench_throughput's read-mostly
// mix measures it (and the Bloom ablation removes most of it).
class WriteSet {
 public:
  WriteSet() : table_(kInitialCapacity, Entry{core::kInvalidTVar, 0}) {}

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  // Drop every entry but keep the table's capacity: a pooled descriptor's
  // write set warms up once and then never allocates again.
  void clear() noexcept {
    if (size_ == 0) return;
    for (Entry& e : table_) e = Entry{core::kInvalidTVar, 0};
    size_ = 0;
  }

  const core::Value* find(core::TVarId x) const noexcept {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = slot_of(x, mask);; i = (i + 1) & mask) {
      const Entry& e = table_[i];
      if (e.key == x) return &e.value;
      if (e.key == core::kInvalidTVar) return nullptr;
    }
  }

  void put(core::TVarId x, core::Value v) {
    if (size_ * 2 >= table_.size()) grow();
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = slot_of(x, mask);; i = (i + 1) & mask) {
      Entry& e = table_[i];
      if (e.key == x) {
        e.value = v;
        return;
      }
      if (e.key == core::kInvalidTVar) {
        e = Entry{x, v};
        ++size_;
        return;
      }
    }
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const Entry& e : table_) {
      if (e.key != core::kInvalidTVar) f(e.key, e.value);
    }
  }

 private:
  struct Entry {
    core::TVarId key;
    core::Value value;
  };
  static constexpr std::size_t kInitialCapacity = 16;

  static std::size_t slot_of(core::TVarId x, std::size_t mask) noexcept {
    return static_cast<std::size_t>(runtime::mix64(x)) & mask;
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{core::kInvalidTVar, 0});
    const std::size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.key == core::kInvalidTVar) continue;
      for (std::size_t i = slot_of(e.key, mask);; i = (i + 1) & mask) {
        if (table_[i].key == core::kInvalidTVar) {
          table_[i] = e;
          break;
        }
      }
    }
  }

  std::vector<Entry> table_;
  std::size_t size_ = 0;
};

// Two bits in a 64-bit word per t-variable.
inline constexpr std::uint64_t bloom_mask(core::TVarId x) noexcept {
  const std::uint64_t h = runtime::mix64(static_cast<std::uint64_t>(x) + 1);
  return (std::uint64_t{1} << (h & 63)) | (std::uint64_t{1} << ((h >> 6) & 63));
}

template <typename P>
class Norec final : public core::TransactionalMemory,
                    private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   private:
    friend class Norec;
    struct ReadEntry {
      core::TVarId x;
      core::Value value;  // the value this transaction observed
    };
    core::TxId id_ = 0;
    std::uint64_t snapshot_ = 0;  // even sequence-lock value the reads are
                                  // currently validated against
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<ReadEntry> reads_;
    WriteSet writes_;
    std::uint64_t write_filter_ = 0;
  };

  using Session = core::PooledTmSession<Txn>;

  explicit Norec(std::size_t num_tvars, NorecOptions options = {})
      : options_(options), num_tvars_(num_tvars) {
    slots_ = std::make_unique<Slot[]>(num_tvars);
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;

    // Read-your-own-writes from the redo log. With the Bloom ablation a
    // definite filter miss skips the probe.
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      if (!tx.writes_.empty() &&
          (!options_.bloom_reads ||
           (tx.write_filter_ & bloom_mask(x)) == bloom_mask(x))) {
        if (const core::Value* w = tx.writes_.find(x)) return *w;
      }
    }

    // Invisible read with post-validation: the value is consistent iff the
    // sequence lock still equals our snapshot *after* the value load (no
    // commit intervened). If the clock moved, revalidate the whole read
    // set by value and adopt the newer snapshot.
    core::Value v = slots_[x].value.load(std::memory_order_seq_cst);
    while (seqlock_.value.load(std::memory_order_seq_cst) != tx.snapshot_) {
      if (!revalidate(tx)) {
        abort_forced(tx, obs::AbortReason::kReadValidation, x);
        return std::nullopt;
      }
      v = slots_[x].value.load(std::memory_order_seq_cst);
    }
    tx.reads_.push_back({x, v});
    return v;
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    OFTM_ASSERT(x < num_tvars_);
    if (tx.status_ != core::TxStatus::kActive) return false;
    tx.writes_.put(x, v);
    tx.write_filter_ |= bloom_mask(x);
    return true;
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return false;

    // Read-only fast path: every read was validated against snapshot_ at
    // read time; nothing to publish, and the global clock is not touched
    // (read-only transactions are invisible end to end).
    if (tx.writes_.empty()) {
      tx.status_ = core::TxStatus::kCommitted;
      commits_.add();
      return true;
    }

    // Acquire the sequence lock at exactly our snapshot. A failed CAS
    // means some other transaction committed (or is committing) since the
    // snapshot — the livelock-freedom witness — so revalidate by value and
    // retry from the newer snapshot.
    std::uint64_t s = tx.snapshot_;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
      while (!seqlock_.value.compare_exchange_strong(
          s, s + 1, std::memory_order_seq_cst)) {
        cm_backoffs_.add();
        core::TVarId culprit = core::kInvalidTVar;
        if (!revalidate(tx, &culprit)) {
          // The seqlock moved (a concurrent commit) and the read set no
          // longer revalidates at the newer snapshot.
          abort_forced(tx, obs::AbortReason::kSnapshotChanged,
                       culprit == core::kInvalidTVar ? obs::kNoKey
                                                     : culprit);
          return false;
        }
        s = tx.snapshot_;
      }
    }

    // Lock held (odd value): lazy write-back, then release with the next
    // even value. A stall here blocks everyone — the obstruction-freedom
    // trade this backend exists to quantify.
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      tx.writes_.for_each([&](core::TVarId x, core::Value v) {
        slots_[x].value.store(v, std::memory_order_seq_cst);
      });
    }
    seqlock_.value.store(tx.snapshot_ + 2, std::memory_order_seq_cst);
    tx.status_ = core::TxStatus::kCommitted;
    commits_.add();
    return true;
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.status_ != core::TxStatus::kActive) return;
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  std::size_t num_tvars() const override { return num_tvars_; }
  core::Value read_quiescent(core::TVarId x) const override {
    return slots_[x].value.load(std::memory_order_seq_cst);
  }
  std::string name() const override {
    return options_.bloom_reads ? "norec+bloom" : "norec";
  }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  struct alignas(runtime::kCacheLineSize) Slot {
    Atomic<core::Value> value{0};
  };

  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  // Re-arm a pooled descriptor: read/write-set capacity survives, nothing
  // allocates. An abandoned active predecessor needs no cleanup here —
  // NOrec transactions hold no protocol resources before commit.
  void prepare(Txn& tx) {
    obs_tx_begin();
    // Snapshot an even (quiescent) sequence-lock value. All shared-word
    // accesses in this backend are seq_cst: the correctness argument of the
    // sequence-lock protocol is then a statement about the single total
    // order S — and seq_cst loads cost the same as acquire loads on the
    // read hot path of every ISA we target.
    std::uint64_t s = seqlock_.value.load(std::memory_order_seq_cst);
    while (s & 1) {
      P::pause();
      s = seqlock_.value.load(std::memory_order_seq_cst);
    }
    tx.id_ = next_tx_id();
    tx.snapshot_ = s;
    tx.status_ = core::TxStatus::kActive;
    tx.reads_.clear();
    tx.writes_.clear();
    tx.write_filter_ = 0;
  }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  // Value-based revalidation: wait out any in-flight write-back, re-read
  // every read-set entry, and confirm the sequence lock did not move while
  // we looked. On success the transaction adopts the newer snapshot (its
  // reads are consistent *now*, not just at the old time); failure means a
  // conflicting write committed — the only way NOrec ever force-aborts.
  bool revalidate(Txn& tx, core::TVarId* culprit = nullptr) {
    OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
    for (;;) {
      std::uint64_t time = seqlock_.value.load(std::memory_order_seq_cst);
      if (time & 1) {
        P::pause();
        continue;
      }
      bool values_match = true;
      for (const auto& r : tx.reads_) {
        if (slots_[r.x].value.load(std::memory_order_seq_cst) != r.value) {
          if (culprit != nullptr) *culprit = r.x;
          values_match = false;
          break;
        }
      }
      if (!values_match) return false;
      if (seqlock_.value.load(std::memory_order_seq_cst) == time) {
        tx.snapshot_ = time;
        return true;
      }
      // The clock moved under us: some commit raced the scan; try again.
    }
  }

  void abort_forced(Txn& tx, obs::AbortReason reason,
                    std::uint64_t key = obs::kNoKey) {
    tx.status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
  }

  const NorecOptions options_;
  const std::size_t num_tvars_;
  std::unique_ptr<Slot[]> slots_;
  // The one and only ownership record: even = quiescent, odd = a committer
  // is writing back. Every conflict in this TM is mediated here.
  runtime::CacheAligned<Atomic<std::uint64_t>> seqlock_{0};
};

using HwNorec = Norec<core::HwPlatform>;

}  // namespace oftm::norec
