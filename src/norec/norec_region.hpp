// TmRegion tier, part 4: NOrec over raw memory.
//
// The same algorithm as src/norec/norec.hpp — one global sequence lock,
// invisible reads, commit-time value-based revalidation, lazy write-back —
// transacting over the words of a RegionHeap. NOrec needs *no* per-word
// metadata at all, which makes it the natural region baseline: the
// stripe-table design space Tl2Region sweeps collapses here to a single
// shared word, and the comparison quantifies what the stripes buy.
//
// Region mechanics (private allocations accessed in place, commit-retired
// frees, the per-transaction epoch pin) are identical to Tl2Region; the
// reclamation argument at the top of core/region.hpp covers both. One
// NOrec-specific consequence is worth naming: value-based revalidation may
// re-read words of a block that was freed and retired after this
// transaction's snapshot. The pin guarantees the block has not been
// recycled, and retire() does not write, so those loads are memory-safe
// and return the values the snapshot saw — revalidation stays sound.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/region.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/epoch.hpp"

namespace oftm::norec {

class NorecRegion final : private core::TmStatsMixin {
 public:
  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;
    core::TxStatus status() const override { return status_; }
    core::TxId id() const override { return id_; }

   protected:
    // A dropped portability-tier handle may leave the transaction active;
    // it still owns private allocations and the epoch pin.
    void handle_released() noexcept override {
      if (tm_ != nullptr && status_ == core::TxStatus::kActive) {
        tm_->rollback_abort(*this);
      }
      core::Transaction::handle_released();
    }

   private:
    friend class NorecRegion;
    struct ReadEntry {
      const core::Value* addr;
      core::Value value;  // the value this transaction observed
    };
    NorecRegion* tm_ = nullptr;
    core::TxId id_ = 0;
    std::uint64_t snapshot_ = 0;  // even sequence-lock value the reads are
                                  // currently validated against
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus status_ = core::TxStatus::kAborted;
    std::vector<ReadEntry> reads_;
    core::RegionWriteSet writes_;
    std::vector<void*> allocs_;  // private until commit
    std::vector<void*> frees_;   // retired at commit
    // Pin held for the whole active lifetime; see core/region.hpp.
    std::optional<runtime::EpochManager::Guard> guard_;

    bool owns(const void* addr, const core::RegionHeap& heap) const {
      for (void* p : allocs_) {
        const std::byte* b = static_cast<const std::byte*>(p);
        const std::byte* a = static_cast<const std::byte*>(addr);
        if (a >= b && a < b + heap.block_bytes(p)) return true;
      }
      return false;
    }
  };

  using Session = core::PooledTmSession<Txn>;

  explicit NorecRegion(const core::RegionOptions& options)
      : heap_(options.capacity_bytes) {}

  core::RegionHeap& heap() noexcept { return heap_; }

  // Re-arm a pooled descriptor, finishing an abandoned active predecessor
  // first (it owns private blocks and the epoch pin).
  void prepare(Txn& tx) {
    obs_tx_begin();
    if (tx.tm_ != nullptr && tx.status_ == core::TxStatus::kActive) {
      rollback_abort(tx);
    }
    tx.tm_ = this;
    tx.guard_.emplace(heap_.epochs());
    // Snapshot an even (quiescent) sequence-lock value; all shared-word
    // accesses here are seq_cst, as in the boxed backend.
    std::uint64_t s = seqlock_.value.load(std::memory_order_seq_cst);
    while (s & 1) {
      core::HwPlatform::pause();
      s = seqlock_.value.load(std::memory_order_seq_cst);
    }
    tx.id_ = next_tx_id();
    tx.snapshot_ = s;
    tx.status_ = core::TxStatus::kActive;
    tx.reads_.clear();
    tx.writes_.clear();
    tx.allocs_.clear();
    tx.frees_.clear();
  }

  std::optional<core::Value> read(Txn& tx, const core::Value* addr) {
    reads_.add();
    OFTM_ASSERT(heap_.contains(addr));
    if (tx.status_ != core::TxStatus::kActive) return std::nullopt;

    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      if (const core::Value* w = tx.writes_.find(addr)) return *w;
      if (tx.owns(addr, heap_)) {
        // Private block: invisible to everyone else, so no snapshot
        // discipline applies (and it must not enter the read set — its
        // values may legitimately change in place under this transaction).
        return std::atomic_ref<const core::Value>(*addr).load(
            std::memory_order_relaxed);
      }
    }

    // Invisible read with post-validation, exactly the boxed protocol.
    core::Value v = std::atomic_ref<const core::Value>(*addr).load(
        std::memory_order_seq_cst);
    while (seqlock_.value.load(std::memory_order_seq_cst) != tx.snapshot_) {
      if (!revalidate(tx)) {
        abort_forced(tx, obs::AbortReason::kReadValidation,
                     reinterpret_cast<std::uintptr_t>(addr));
        return std::nullopt;
      }
      v = std::atomic_ref<const core::Value>(*addr).load(
          std::memory_order_seq_cst);
    }
    tx.reads_.push_back({addr, v});
    return v;
  }

  bool write(Txn& tx, core::Value* addr, core::Value v) {
    writes_.add();
    OFTM_ASSERT(heap_.contains(addr));
    if (tx.status_ != core::TxStatus::kActive) return false;
    if (tx.owns(addr, heap_)) {
      std::atomic_ref<core::Value>(*addr).store(v, std::memory_order_relaxed);
      return true;
    }
    tx.writes_.put(addr, v);
    return true;
  }

  // Allocate a zeroed block inside the transaction; nullptr on exhaustion
  // (not an abort — retrying will not help).
  void* tx_alloc(Txn& tx, std::size_t bytes) {
    if (tx.status_ != core::TxStatus::kActive) return nullptr;
    void* p = heap_.alloc(bytes);
    if (p != nullptr) tx.allocs_.push_back(p);
    return p;
  }

  bool tx_free(Txn& tx, void* p) {
    OFTM_ASSERT(heap_.contains(p));
    if (tx.status_ != core::TxStatus::kActive) return false;
    tx.frees_.push_back(p);
    return true;
  }

  bool try_commit(Txn& tx) {
    if (tx.status_ != core::TxStatus::kActive) return false;

    // Read-only fast path: invisible end to end, the clock untouched.
    if (tx.writes_.empty()) {
      settle_commit(tx);
      return true;
    }

    // Acquire the sequence lock at exactly our snapshot; a failed CAS
    // witnesses a concurrent commit — revalidate by value and retry from
    // the newer snapshot.
    std::uint64_t s = tx.snapshot_;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
      while (!seqlock_.value.compare_exchange_strong(
          s, s + 1, std::memory_order_seq_cst)) {
        cm_backoffs_.add();
        std::uint64_t culprit_key = obs::kNoKey;
        if (!revalidate(tx, &culprit_key)) {
          abort_forced(tx, obs::AbortReason::kSnapshotChanged, culprit_key);
          return false;
        }
        s = tx.snapshot_;
      }
    }

    // Lock held (odd): lazy write-back, release with the next even value.
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kWriteBack);
      tx.writes_.for_each([](core::Value* addr, core::Value v) {
        std::atomic_ref<core::Value>(*addr).store(v,
                                                  std::memory_order_seq_cst);
      });
    }
    seqlock_.value.store(tx.snapshot_ + 2, std::memory_order_seq_cst);
    settle_commit(tx);
    return true;
  }

  void try_abort(Txn& tx) {
    if (tx.status_ != core::TxStatus::kActive) return;
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  core::Value read_quiescent(const core::Value* addr) const {
    return std::atomic_ref<const core::Value>(*addr).load(
        std::memory_order_seq_cst);
  }

  std::string name() const { return "norec-region"; }
  runtime::TxStats stats() const { return collect_stats(); }
  void reset_stats() { reset_collect_stats(); }

 private:
  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(core::HwPlatform::thread_id(), ++counter);
  }

  // Value-based revalidation over word addresses; identical structure to
  // the boxed backend.
  bool revalidate(Txn& tx, std::uint64_t* culprit = nullptr) {
    OFTM_OBS_PHASE(obs_, obs::Phase::kValidation);
    for (;;) {
      std::uint64_t time = seqlock_.value.load(std::memory_order_seq_cst);
      if (time & 1) {
        core::HwPlatform::pause();
        continue;
      }
      bool values_match = true;
      for (const auto& r : tx.reads_) {
        if (std::atomic_ref<const core::Value>(*r.addr).load(
                std::memory_order_seq_cst) != r.value) {
          if (culprit != nullptr) {
            *culprit = reinterpret_cast<std::uintptr_t>(r.addr);
          }
          values_match = false;
          break;
        }
      }
      if (!values_match) return false;
      if (seqlock_.value.load(std::memory_order_seq_cst) == time) {
        tx.snapshot_ = time;
        return true;
      }
      // The clock moved under us: some commit raced the scan; try again.
    }
  }

  void settle_commit(Txn& tx) {
    for (void* p : tx.frees_) {
      auto it = std::find(tx.allocs_.begin(), tx.allocs_.end(), p);
      if (it != tx.allocs_.end()) {
        *it = tx.allocs_.back();
        tx.allocs_.pop_back();
        heap_.free_now(p);  // never published
      } else {
        heap_.retire(p);
      }
    }
    tx.status_ = core::TxStatus::kCommitted;
    commits_.add();
    tx.guard_.reset();
  }

  void rollback(Txn& tx) {
    for (void* p : tx.allocs_) heap_.free_now(p);
    tx.allocs_.clear();
    tx.frees_.clear();
    tx.guard_.reset();
  }

  // Abandoned-handle / re-arm cleanup: requested by the owner's side, not
  // forced by a conflict.
  void rollback_abort(Txn& tx) {
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  void abort_forced(Txn& tx, obs::AbortReason reason,
                    std::uint64_t key = obs::kNoKey) {
    rollback(tx);
    tx.status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
  }

  core::RegionHeap heap_;
  // The one and only ownership record: even = quiescent, odd = a committer
  // is writing back.
  runtime::CacheAligned<std::atomic<std::uint64_t>> seqlock_{0};
};

}  // namespace oftm::norec
