#include "norec/norec.hpp"

#include "sim/platform.hpp"

namespace oftm::norec {

template class Norec<core::HwPlatform>;
template class Norec<sim::SimPlatform>;

}  // namespace oftm::norec
