// Sense-reversing spinning barrier for benchmark phase alignment.
//
// std::barrier parks threads in futexes; for throughput measurements we want
// every worker spinning hot at the starting line so the measured interval
// excludes wakeup latency.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::runtime {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) noexcept : parties_(parties) {}

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_->load(std::memory_order_relaxed);
    if (pending_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pending_->store(parties_, std::memory_order_relaxed);
      sense_->store(my_sense, std::memory_order_release);  // open the gate
    } else {
      while (sense_->load(std::memory_order_acquire) != my_sense) cpu_pause();
    }
  }

 private:
  const std::uint32_t parties_;
  CacheAligned<std::atomic<std::uint32_t>> pending_{parties_};
  CacheAligned<std::atomic<bool>> sense_{false};
};

}  // namespace oftm::runtime
