// Deterministic fork/join parallelism for batch jobs (checker digestion,
// recorder digestion). Not for transaction hot paths: every parallel_*
// call spawns its workers and joins them before returning, which costs
// tens of microseconds — negligible for a whole-history pass that runs
// once, unacceptable per transaction.
//
// Determinism contract: every helper here produces output that is a pure
// function of its input and the work decomposition — never of thread
// scheduling. parallel_sort additionally requires a *total* order (no two
// elements the comparator considers equal) so the sorted permutation is
// unique; all checker comparators qualify (ties are broken by node index).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace oftm::runtime {

// 0 => one worker per hardware thread; otherwise the request, floored at 1.
inline int resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Run fn(worker_index) on `workers` workers; the caller runs worker 0, so
// workers == 1 never spawns a thread (and is exactly a plain call).
template <typename Fn>
void run_on_workers(int workers, Fn&& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (std::thread& t : pool) t.join();
}

// Static block decomposition of [0, n): worker w gets [begin, end).
inline std::pair<std::size_t, std::size_t> block_range(std::size_t n,
                                                       int workers, int w) {
  const std::size_t ww = static_cast<std::size_t>(workers);
  const std::size_t wi = static_cast<std::size_t>(w);
  const std::size_t base = n / ww;
  const std::size_t extra = n % ww;
  const std::size_t begin = wi * base + std::min(wi, extra);
  return {begin, begin + base + (wi < extra ? 1 : 0)};
}

// fn(begin, end, worker) over a static block decomposition of [0, n).
template <typename Fn>
void parallel_for_blocks(int workers, std::size_t n, Fn&& fn) {
  if (workers <= 1 || n == 0) {
    fn(std::size_t{0}, n, 0);
    return;
  }
  run_on_workers(workers, [&](int w) {
    const auto [b, e] = block_range(n, workers, w);
    if (b < e) fn(b, e, w);
  });
}

// fn(unit, worker) for each unit in [0, num_units), dynamically scheduled:
// workers pull the next unit off a shared counter, so one giant unit (a
// single hot t-var owning most of the writes) does not serialize the rest
// of the batch behind it the way a static split would.
template <typename Fn>
void parallel_for_units(int workers, std::size_t num_units, Fn&& fn) {
  if (workers <= 1 || num_units <= 1) {
    for (std::size_t u = 0; u < num_units; ++u) fn(u, 0);
    return;
  }
  std::atomic<std::size_t> next{0};
  run_on_workers(workers, [&](int w) {
    for (;;) {
      const std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= num_units) return;
      fn(u, w);
    }
  });
}

// Sort [begin, end) under a strict total order `cmp` (no ties), producing
// the same permutation std::sort would: chunk-sort in parallel, then merge
// chunks pairwise (log rounds, each round merging disjoint adjacent pairs
// in parallel via std::inplace_merge). With workers <= 1 this IS std::sort.
template <typename It, typename Cmp>
void parallel_sort(int workers, It begin, It end, Cmp cmp) {
  const std::size_t n = static_cast<std::size_t>(end - begin);
  constexpr std::size_t kSerialCutoff = 1u << 14;
  if (workers <= 1 || n <= kSerialCutoff) {
    std::sort(begin, end, cmp);
    return;
  }
  const std::size_t chunks = static_cast<std::size_t>(workers);
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) {
    bounds[c] = block_range(n, workers, static_cast<int>(c)).first;
  }
  bounds[chunks] = n;
  parallel_for_units(workers, chunks, [&](std::size_t c, int) {
    std::sort(begin + static_cast<std::ptrdiff_t>(bounds[c]),
              begin + static_cast<std::ptrdiff_t>(bounds[c + 1]), cmp);
  });
  for (std::size_t stride = 1; stride < chunks; stride *= 2) {
    std::vector<std::size_t> merges;  // left chunk index of each pair
    for (std::size_t c = 0; c + stride < chunks; c += 2 * stride) {
      merges.push_back(c);
    }
    parallel_for_units(workers, merges.size(), [&](std::size_t m, int) {
      const std::size_t lo = bounds[merges[m]];
      const std::size_t mid = bounds[merges[m] + stride];
      const std::size_t hi = bounds[std::min(merges[m] + 2 * stride, chunks)];
      std::inplace_merge(begin + static_cast<std::ptrdiff_t>(lo),
                         begin + static_cast<std::ptrdiff_t>(mid),
                         begin + static_cast<std::ptrdiff_t>(hi), cmp);
    });
  }
}

}  // namespace oftm::runtime
