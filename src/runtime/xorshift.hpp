// Small fast PRNGs for workloads and backoff.
//
// We do not use <random> engines on the hot paths: mt19937_64 is ~2.5 KiB of
// state per thread and its per-call cost shows up in STM microbenchmarks.
// Xoshiro256** is the standard choice for simulation workloads.
#pragma once

#include <atomic>
#include <cstdint>

namespace oftm::runtime {

// SplitMix64: used to seed the main generator (recommended by the xoshiro
// authors) and as a cheap stateless hash.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// One-shot mixing function (stateless form of SplitMix64).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Xoshiro256** by Blackman & Vigna.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  // A fresh, process-unique stream for "don't care, just make it distinct"
  // call sites (per-thread backoff jitter, randomized contention managers).
  //
  // Seeded from a monotone global counter mixed through mix64 — never from
  // addresses: seeding off the ASLR-randomized address of a thread_local
  // made runs irreproducible across executions and could hand a recycled
  // thread (same stack slot, same TLS block) the exact stream of its
  // predecessor. Call sites that need replayability should not use this at
  // all; they take an explicit seed (see ExponentialBackoff's seed
  // parameter and the workload driver's config.seed plumbing).
  static Xoshiro256 from_thread() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return Xoshiro256(
        mix64(counter.fetch_add(1, std::memory_order_relaxed) + 1));
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). Lemire's multiply-shift reduction (no modulo); the
  // slight bias (< 2^-64 * n) is irrelevant for workloads.
  constexpr std::uint64_t next_range(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace oftm::runtime
