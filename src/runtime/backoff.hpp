// Bounded exponential backoff — the mechanism behind the paper's "Polite"
// contention management ("A contention manager might tell Tk to back off for
// some fixed time (maybe random) to give Ti a chance", Section 1).
#pragma once

#include <cstdint>

#include "runtime/xorshift.hpp"

namespace oftm::runtime {

// CPU-relax without yielding the time slice.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Randomized truncated exponential backoff.
//
// Spin counts are randomized (uniform in [0, limit)) to break the lock-step
// convoys that plain doubling produces, then the limit doubles up to
// max_spins. `reset()` is called after a successful operation.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t min_spins = 16,
                              std::uint32_t max_spins = 1u << 14) noexcept
      : min_spins_(min_spins), max_spins_(max_spins), limit_(min_spins) {}

  void pause() noexcept {
    const std::uint32_t spins =
        static_cast<std::uint32_t>(rng_.next_range(limit_)) + 1;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_pause();
    if (limit_ < max_spins_) limit_ *= 2;
  }

  void reset() noexcept { limit_ = min_spins_; }

  std::uint32_t current_limit() const noexcept { return limit_; }

 private:
  std::uint32_t min_spins_;
  std::uint32_t max_spins_;
  std::uint32_t limit_;
  Xoshiro256 rng_{Xoshiro256::from_thread()};
};

}  // namespace oftm::runtime
