// Bounded exponential backoff — the mechanism behind the paper's "Polite"
// contention management ("A contention manager might tell Tk to back off for
// some fixed time (maybe random) to give Ti a chance", Section 1).
#pragma once

#include <cstdint>

#include "runtime/xorshift.hpp"

namespace oftm::runtime {

// CPU-relax without yielding the time slice.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Randomized truncated exponential backoff.
//
// Spin counts are randomized (uniform in [0, limit)) to break the lock-step
// convoys that plain doubling produces, then the limit doubles up to
// max_spins. `reset()` is called after a successful operation.
//
// Bounds are normalized on construction: the working limit is never 0 (a 0
// draw range would pin the randomization at a single spin forever) and the
// doubling is clamped *to* max_spins rather than merely stopped below it,
// so a non-power-of-two bound is an exact ceiling instead of overshooting
// by up to 2x.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t min_spins = 16,
                              std::uint32_t max_spins = 1u << 14) noexcept
      : min_spins_(min_spins > 0 ? min_spins : 1),
        max_spins_(max_spins > min_spins_ ? max_spins : min_spins_),
        limit_(min_spins_) {}

  // Replayable variant: an explicit seed pins the jitter stream, so two
  // runs of the same schedule back off identically.
  ExponentialBackoff(std::uint32_t min_spins, std::uint32_t max_spins,
                     std::uint64_t seed) noexcept
      : ExponentialBackoff(min_spins, max_spins) {
    rng_ = Xoshiro256(seed);
  }

  void pause() noexcept {
    const std::uint32_t spins =
        static_cast<std::uint32_t>(rng_.next_range(limit_)) + 1;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_pause();
    const std::uint64_t doubled = std::uint64_t{limit_} * 2;
    limit_ = doubled < max_spins_ ? static_cast<std::uint32_t>(doubled)
                                  : max_spins_;
  }

  void reset() noexcept { limit_ = min_spins_; }

  std::uint32_t current_limit() const noexcept { return limit_; }

 private:
  std::uint32_t min_spins_;
  std::uint32_t max_spins_;
  std::uint32_t limit_;
  Xoshiro256 rng_{Xoshiro256::from_thread()};
};

}  // namespace oftm::runtime
