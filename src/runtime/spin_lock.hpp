// Test-and-test-and-set spin lock with randomized backoff.
//
// Used only by the *lock-based baselines* (TL / TL2 / Coarse) — never by the
// obstruction-free backends, whose whole point is to avoid blocking. Meets
// the BasicLockable/Lockable requirements so std::scoped_lock works (Core
// Guidelines CP.20: RAII, never plain lock()/unlock()).
#pragma once

#include <atomic>

#include "runtime/backoff.hpp"

namespace oftm::runtime {

class SpinLock {
 public:
  void lock() noexcept {
    ExponentialBackoff bo;
    for (;;) {
      if (try_lock()) return;
      // Test before TAS to spin on a shared (read-only) cache line.
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    // acquire on success: the critical section must not float above.
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
    // release: writes in the critical section become visible to the next
    // owner's acquire.
    locked_.store(false, std::memory_order_release);
  }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace oftm::runtime
