#include "runtime/epoch.hpp"

#include "runtime/assert.hpp"

namespace oftm::runtime {

EpochManager::EpochManager() = default;

EpochManager::~EpochManager() {
  // Free everything still queued. Destruction implies quiescence. Deleters
  // may retire further objects (e.g. a locator's destructor retiring its
  // transaction descriptor) — and they retire into the *calling* thread's
  // slot, which may lie before the slot currently being drained. A single
  // in-order pass therefore leaks those cascaded retirements; repeat the
  // whole sweep until a pass frees nothing (global fixed point).
  for (bool any = true; any;) {
    any = false;
    for (auto& t : threads_) {
      while (!t.retired.empty()) {
        any = true;
        std::vector<Retired> batch = std::move(t.retired);
        t.retired.clear();
        for (const Retired& r : batch) r.free();
      }
    }
  }
}

EpochManager& EpochManager::global() {
  static EpochManager mgr;  // immortal would leak retire lists; static is
                            // fine: destroyed after main, when quiescent
  return mgr;
}

void EpochManager::pin(int tid) {
  ThreadState& t = threads_[tid];
  // Publish the pin and re-check: without the re-check loop a concurrent
  // advance between our load of the global epoch and our store could free
  // objects we are about to read. seq_cst on the store orders it against
  // the subsequent global load on TSO and non-TSO alike.
  std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    t.pinned.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void EpochManager::unpin(int tid) {
  threads_[tid].pinned.store(ThreadState::kIdle, std::memory_order_release);
}

EpochManager::Guard::Guard(EpochManager& mgr)
    : mgr_(mgr), tid_(ThreadRegistry::current_id()) {
  ThreadState& t = mgr_.threads_[tid_];
  const int n = t.nesting.load(std::memory_order_relaxed);
  outermost_ = (n == 0);
  if (outermost_) mgr_.pin(tid_);
  t.nesting.store(n + 1, std::memory_order_relaxed);
}

EpochManager::Guard::~Guard() {
  ThreadState& t = mgr_.threads_[tid_];
  const int n = t.nesting.load(std::memory_order_relaxed);
  t.nesting.store(n - 1, std::memory_order_relaxed);
  if (outermost_) {
    OFTM_ASSERT(n == 1);
    mgr_.unpin(tid_);
  }
}

void EpochManager::retire(void* p, void (*deleter)(void*)) {
  // Contextless deleters ride the context slot: the trampoline recovers the
  // original function pointer from ctx. (Object<->function pointer casts
  // are conditionally-supported; every POSIX target we build on supports
  // them, and this keeps Retired at one deleter field.)
  retire(
      p,
      [](void* q, void* ctx) {
        reinterpret_cast<void (*)(void*)>(ctx)(q);
      },
      reinterpret_cast<void*>(deleter));
}

void EpochManager::retire(void* p, void (*deleter)(void*, void*), void* ctx) {
  const int tid = ThreadRegistry::current_id();
  ThreadState& t = threads_[tid];
  t.retired.push_back(
      Retired{p, deleter, ctx,
              global_epoch_.load(std::memory_order_acquire)});
  t.retired_size.store(t.retired.size(), std::memory_order_relaxed);
  if (!t.sweeping && t.retired.size() % kReclaimThreshold == 0) reclaim();
}

bool EpochManager::try_advance() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  const int hw = ThreadRegistry::high_watermark();
  for (int i = 0; i < hw; ++i) {
    const std::uint64_t p = threads_[i].pinned.load(std::memory_order_acquire);
    if (p != ThreadState::kIdle && p != e) return false;  // straggler
  }
  std::uint64_t expected = e;
  // Single winner bumps; losers raced with another advancer, which is fine.
  return global_epoch_.compare_exchange_strong(expected, e + 1,
                                               std::memory_order_acq_rel);
}

std::size_t EpochManager::sweep(int tid) {
  ThreadState& t = threads_[tid];
  if (t.sweeping) return 0;  // re-entrant call from a deleter
  t.sweeping = true;
  const std::uint64_t safe =
      global_epoch_.load(std::memory_order_acquire);  // free stamps <= safe-2
  std::size_t freed = 0;
  std::size_t keep = 0;
  // Deleters may call retire() re-entrantly (a freed locator retires its
  // descriptor), appending to t.retired mid-loop: copy entries by value and
  // index-iterate; appended entries carry the current epoch, fail the age
  // test, and are compacted into the kept prefix.
  for (std::size_t i = 0; i < t.retired.size(); ++i) {
    const Retired r = t.retired[i];
    if (r.epoch + 2 <= safe) {
      r.free();
      ++freed;
    } else {
      t.retired[keep++] = r;
    }
  }
  t.retired.resize(keep);
  t.retired_size.store(keep, std::memory_order_relaxed);
  t.sweeping = false;
  return freed;
}

std::size_t EpochManager::reclaim() {
  try_advance();
  return sweep(ThreadRegistry::current_id());
}

std::size_t EpochManager::drain_unsafe() {
  const int tid = ThreadRegistry::current_id();
  ThreadState& t = threads_[tid];
  std::size_t freed = 0;
  while (!t.retired.empty()) {
    std::vector<Retired> batch = std::move(t.retired);
    t.retired.clear();
    freed += batch.size();
    for (const Retired& r : batch) r.free();
  }
  t.retired_size.store(0, std::memory_order_relaxed);
  return freed;
}

std::size_t EpochManager::retired_count() const noexcept {
  std::size_t n = 0;
  const int hw = ThreadRegistry::high_watermark();
  for (int i = 0; i < hw; ++i) {
    n += threads_[i].retired_size.load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace oftm::runtime
