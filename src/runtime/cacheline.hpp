// Cache-line geometry and padding helpers.
//
// Every mutable shared word in the lock-free paths of this library is
// cache-line isolated through these wrappers: the paper's Section 5 is all
// about artificial sharing of memory locations ("hot spots"), so the
// *measurement* side of this repo must not introduce accidental false
// sharing of its own.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oftm::runtime {

// Destructive interference size. We hard-code 64 rather than using
// std::hardware_destructive_interference_size because the latter is an
// ABI-variance trap (GCC warns on use in headers) and every x86-64 and most
// AArch64 parts we target use 64-byte lines.
inline constexpr std::size_t kCacheLineSize = 64;

// A value of type T alone on its own cache line(s).
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value;

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(CacheAligned<char>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<char>) == kCacheLineSize);

// Explicit trailing padding for structs that want to occupy a whole line
// without alignas on the struct itself (useful inside arrays of mixed
// members).
template <std::size_t Used>
struct CachePad {
  static_assert(Used <= kCacheLineSize, "member does not fit in one line");
  char pad[kCacheLineSize - Used];
};

}  // namespace oftm::runtime
