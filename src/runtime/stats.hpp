// Low-overhead measurement primitives for the benchmark harness.
//
// Counters are striped per thread (one cache line each) so that counting
// commits/aborts does not itself create the shared hot spots this repo
// exists to measure.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::runtime {

// Per-thread striped monotonic counter.
class StripedCounter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[ThreadRegistry::current_id()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t read() const noexcept {
    std::uint64_t sum = 0;
    const int hw = ThreadRegistry::high_watermark();
    for (int i = 0; i < hw; ++i) {
      sum += cells_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[ThreadRegistry::kMaxThreads];
};

// Log2-bucketed latency histogram (single-threaded accumulation; merge
// across threads with operator+=).
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  // Bucket index for a value: bucket 0 holds {0}, bucket b >= 1 holds
  // [2^(b-1), 2^b). Values with bit 63 set (bit_width 64) are clamped into
  // the top bucket — without the clamp they would index one past the array.
  static constexpr int bucket_of(std::uint64_t v) noexcept {
    const int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
    return b < kBuckets ? b : kBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  Log2Histogram& operator+=(const Log2Histogram& o) noexcept {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    return *this;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  // Upper bound of the bucket containing quantile q (0 < q <= 1).
  std::uint64_t quantile(double q) const noexcept;

  std::string to_string() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// Aggregated per-run STM statistics, merged across worker threads.
struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;           // application-visible abort events
  std::uint64_t forced_aborts = 0;    // aborts not requested via tryA
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cm_backoffs = 0;      // contention-manager pauses
  std::uint64_t victim_kills = 0;     // times we aborted somebody else

  TxStats& operator+=(const TxStats& o) noexcept {
    commits += o.commits;
    aborts += o.aborts;
    forced_aborts += o.forced_aborts;
    reads += o.reads;
    writes += o.writes;
    cm_backoffs += o.cm_backoffs;
    victim_kills += o.victim_kills;
    return *this;
  }

  double abort_ratio() const noexcept {
    const double total = static_cast<double>(commits + aborts);
    return total == 0 ? 0.0 : static_cast<double>(aborts) / total;
  }

  std::string to_string() const;
};

}  // namespace oftm::runtime
