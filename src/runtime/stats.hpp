// Low-overhead measurement primitives for the benchmark harness.
//
// Counters are striped per thread (one cache line each) so that counting
// commits/aborts does not itself create the shared hot spots this repo
// exists to measure.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/taxonomy.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::runtime {

// Per-thread striped monotonic counter.
class StripedCounter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[ThreadRegistry::current_id()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t read() const noexcept {
    std::uint64_t sum = 0;
    const int hw = ThreadRegistry::high_watermark();
    for (int i = 0; i < hw; ++i) {
      sum += cells_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[ThreadRegistry::kMaxThreads];
};

// Log2-bucketed latency histogram (single-threaded accumulation; merge
// across threads with operator+=).
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  // Bucket index for a value: bucket 0 holds {0}, bucket b >= 1 holds
  // [2^(b-1), 2^b). Values with bit 63 set (bit_width 64) are clamped into
  // the top bucket — without the clamp they would index one past the array.
  static constexpr int bucket_of(std::uint64_t v) noexcept {
    const int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
    return b < kBuckets ? b : kBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  Log2Histogram& operator+=(const Log2Histogram& o) noexcept {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    return *this;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  // Upper bound of the bucket containing quantile q (0 < q <= 1).
  std::uint64_t quantile(double q) const noexcept;

  std::string to_string() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// Aggregated per-run STM statistics, merged across worker threads.
//
// The obs-shaped fields (abort_reason, phase_ns/phase_count, hot_vars)
// are present regardless of OFTM_OBS so report consumers see a stable
// schema; with the gate off they simply stay zero/empty. Invariant with
// the gate on: the abort_reason counts sum exactly to `aborts` — every
// backend funnels each abort through exactly one attributed counter
// (check_abort_reasons() asserts it at quiescent points).
struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;           // application-visible abort events
  std::uint64_t forced_aborts = 0;    // aborts not requested via tryA
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cm_backoffs = 0;      // contention-manager pauses
  std::uint64_t victim_kills = 0;     // times we aborted somebody else

  // Abort attribution: aborts partitioned by obs::AbortReason.
  std::uint64_t abort_reason[obs::kNumAbortReasons] = {};
  // Phase profile: sampled time (ns) and interval count per obs::Phase.
  std::uint64_t phase_ns[obs::kNumPhases] = {};
  std::uint64_t phase_count[obs::kNumPhases] = {};
  // Merged conflict heat map, heaviest first.
  std::vector<obs::HotVar> hot_vars;

  // Merge another thread's / run's view into this one. `merge` is the
  // canonical name; operator+= stays as the operator spelling existing
  // call sites use.
  TxStats& merge(const TxStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    forced_aborts += o.forced_aborts;
    reads += o.reads;
    writes += o.writes;
    cm_backoffs += o.cm_backoffs;
    victim_kills += o.victim_kills;
    for (std::size_t i = 0; i < obs::kNumAbortReasons; ++i) {
      abort_reason[i] += o.abort_reason[i];
    }
    for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
      phase_ns[i] += o.phase_ns[i];
      phase_count[i] += o.phase_count[i];
    }
    merge_hot_vars(o.hot_vars);
    return *this;
  }

  TxStats& operator+=(const TxStats& o) { return merge(o); }

  double abort_ratio() const noexcept {
    const double total = static_cast<double>(commits + aborts);
    return total == 0 ? 0.0 : static_cast<double>(aborts) / total;
  }

  // Share of aborts the TM forced (vs. requested via tryA): the
  // conflict-pressure signal, separated from programmatic retries.
  double forced_abort_ratio() const noexcept {
    return aborts == 0
               ? 0.0
               : static_cast<double>(forced_aborts) /
                     static_cast<double>(aborts);
  }

  std::uint64_t abort_reason_total() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t n : abort_reason) total += n;
    return total;
  }

  // True when the reason taxonomy reconciles with the abort counter.
  // Trivially true with OFTM_OBS off (no reasons are recorded). Only
  // meaningful at quiescent points: mid-run, a racing abort may have
  // bumped one counter but not yet the other.
  bool abort_reasons_consistent() const noexcept {
    return abort_reason_total() == (OFTM_OBS ? aborts : 0);
  }

  // OFTM_ASSERTs the reconciliation invariant (no-op when OFTM_OBS=0).
  void check_abort_reasons() const;

  std::string to_string() const;

 private:
  void merge_hot_vars(const std::vector<obs::HotVar>& other);
};

}  // namespace oftm::runtime
