#include "runtime/topology.hpp"

#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace oftm::runtime {

int available_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool pin_current_thread(int logical_index) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
  }
  if (cpus.empty()) return false;
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(cpus[static_cast<std::size_t>(logical_index) % cpus.size()],
          &target);
  return pthread_setaffinity_np(pthread_self(), sizeof(target), &target) == 0;
#else
  (void)logical_index;
  return false;
#endif
}

}  // namespace oftm::runtime
