// Always-on invariant checks.
//
// The STM algorithms in this repo are reproductions of published
// pseudo-code; silent invariant violations would invalidate the experiments,
// so invariant checks stay enabled in release builds (they are cheap: a
// predicted-true branch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace oftm::runtime::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "OFTM_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace oftm::runtime::detail

#define OFTM_ASSERT(expr)                                                   \
  (__builtin_expect(static_cast<bool>(expr), 1)                             \
       ? static_cast<void>(0)                                               \
       : ::oftm::runtime::detail::assert_fail(#expr, __FILE__, __LINE__,    \
                                              nullptr))

#define OFTM_ASSERT_MSG(expr, msg)                                          \
  (__builtin_expect(static_cast<bool>(expr), 1)                             \
       ? static_cast<void>(0)                                               \
       : ::oftm::runtime::detail::assert_fail(#expr, __FILE__, __LINE__,    \
                                              (msg)))
