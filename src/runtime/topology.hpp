// CPU topology helpers for benchmark thread placement.
#pragma once

namespace oftm::runtime {

// Number of CPUs available to this process.
int available_cpus();

// Pin the calling thread to a CPU (round-robin over the affinity mask).
// Returns false if pinning is unsupported/failed; benches then run unpinned.
bool pin_current_thread(int logical_index);

}  // namespace oftm::runtime
