#include "runtime/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "runtime/assert.hpp"

namespace oftm::runtime {

std::uint64_t Log2Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // The top bucket is clamped (it absorbs everything >= 2^63, whose
      // nominal upper bound 2^64 - 1 would overstate wildly), so answer
      // with the exact observed maximum there instead.
      if (i == 0) return 0;
      if (i == kBuckets - 1) return max_;
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return max_;
}

std::string Log2Histogram::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50<=%llu p99<=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

std::string TxStats::to_string() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "commits=%llu aborts=%llu (forced=%llu, ratio=%.3f, forced_ratio=%.3f)"
      " reads=%llu writes=%llu backoffs=%llu kills=%llu",
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts),
      static_cast<unsigned long long>(forced_aborts), abort_ratio(),
      forced_abort_ratio(), static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(cm_backoffs),
      static_cast<unsigned long long>(victim_kills));
  std::string out = buf;
  if (abort_reason_total() != 0) {
    out += " reasons={";
    bool first = true;
    for (std::size_t i = 0; i < obs::kNumAbortReasons; ++i) {
      if (abort_reason[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s%s=%llu", first ? "" : " ",
                    obs::abort_reason_name(i),
                    static_cast<unsigned long long>(abort_reason[i]));
      out += buf;
      first = false;
    }
    out += "}";
  }
  return out;
}

void TxStats::check_abort_reasons() const {
#if OFTM_OBS
  OFTM_ASSERT_MSG(abort_reasons_consistent(),
                  "abort-reason counters do not sum to TxStats::aborts");
#endif
}

void TxStats::merge_hot_vars(const std::vector<obs::HotVar>& other) {
  for (const obs::HotVar& h : other) {
    bool found = false;
    for (obs::HotVar& mine : hot_vars) {
      if (mine.key == h.key) {
        mine.hits += h.hits;
        found = true;
        break;
      }
    }
    if (!found) hot_vars.push_back(h);
  }
  std::sort(hot_vars.begin(), hot_vars.end(),
            [](const obs::HotVar& a, const obs::HotVar& b) {
              return a.hits != b.hits ? a.hits > b.hits : a.key < b.key;
            });
  if (hot_vars.size() > 8) hot_vars.resize(8);
}

}  // namespace oftm::runtime
