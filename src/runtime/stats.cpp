#include "runtime/stats.hpp"

#include <cstdio>

namespace oftm::runtime {

std::uint64_t Log2Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // The top bucket is clamped (it absorbs everything >= 2^63, whose
      // nominal upper bound 2^64 - 1 would overstate wildly), so answer
      // with the exact observed maximum there instead.
      if (i == 0) return 0;
      if (i == kBuckets - 1) return max_;
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return max_;
}

std::string Log2Histogram::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50<=%llu p99<=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

std::string TxStats::to_string() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "commits=%llu aborts=%llu (forced=%llu, ratio=%.3f) reads=%llu "
      "writes=%llu backoffs=%llu kills=%llu",
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts),
      static_cast<unsigned long long>(forced_aborts), abort_ratio(),
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(cm_backoffs),
      static_cast<unsigned long long>(victim_kills));
  return buf;
}

}  // namespace oftm::runtime
