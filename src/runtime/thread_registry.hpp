// Dense thread-id assignment.
//
// Lock-free algorithms in this library (epoch reclamation, striped
// counters, the Karma contention manager) need a small dense integer id per
// participating thread. Ids are assigned on first use and recycled when the
// thread exits, so long-running benchmark processes that spawn thread pools
// repeatedly do not leak slots.
#pragma once

#include <atomic>
#include <cstdint>

namespace oftm::runtime {

class ThreadRegistry {
 public:
  // Upper bound on simultaneously live registered threads. 4x typical core
  // counts; raising it costs kMaxThreads cache lines in each consumer.
  static constexpr int kMaxThreads = 192;

  // Dense id of the calling thread; registers it on first call.
  static int current_id();

  // True if the calling thread already holds a slot (never registers).
  static bool is_registered() noexcept;

  // Number of slots ever observed in use at this moment (scan).
  static int live_threads() noexcept;

  // Highest slot index ever handed out + 1. Consumers scanning per-thread
  // state can bound their loops by this instead of kMaxThreads.
  static int high_watermark() noexcept;

 private:
  ThreadRegistry() = delete;
};

}  // namespace oftm::runtime
