// Epoch-based memory reclamation (EBR).
//
// The DSTM backend replaces locators and transaction descriptors with CAS
// while concurrent readers may still be dereferencing the displaced
// objects. C++ has no GC, so safe reclamation is the main engineering cost
// of reproducing DSTM-style OFTMs (flagged by the reproduction notes). We
// use classic 3-epoch EBR:
//
//   * a thread *pins* the current global epoch around every lock-free
//     read-side section (RAII `Guard`);
//   * `retire(p)` stamps p with the current global epoch E;
//   * the global epoch advances E -> E+1 only when every pinned thread is
//     pinned at E, so once the global epoch reaches E+2 no thread that
//     could have observed p is still inside a read-side section;
//   * retired objects with stamp <= global-2 are freed during `reclaim()`
//     passes, which run opportunistically from `retire`.
//
// Obstruction-freedom caveat (documented honestly): epoch advance is blocked
// by a stalled *pinned* thread, so memory reclamation itself is only
// lock-free-ish; the *visible* STM operations remain obstruction-free
// because they never wait for reclamation. This matches practice in
// DSTM/RSTM, which also used deferred/GC-style reclamation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::runtime {

class EpochManager {
 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Process-wide instance used by the hardware STM backends.
  static EpochManager& global();

  // RAII read-side critical section. Re-entrant (nested guards share the
  // outermost pin).
  class Guard {
   public:
    explicit Guard(EpochManager& mgr = EpochManager::global());
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
    int tid_;
    bool outermost_;
  };

  // Hand an unlinked object to the manager; freed after a grace period.
  void retire(void* p, void (*deleter)(void*));

  // Context-carrying form, for deleters that hand the object back to an
  // owning facility rather than the global heap (the region tier retires
  // freed blocks into their RegionHeap's free lists; `ctx` is the heap).
  // The context must outlive the retirement — facilities guarantee this by
  // draining their manager before their own teardown.
  void retire(void* p, void (*deleter)(void*, void* ctx), void* ctx);

  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  // Try to advance the epoch and free everything past its grace period on
  // the calling thread's retire list. Returns number of objects freed.
  std::size_t reclaim();

  // Drain *this thread's* list unconditionally (test teardown only: caller
  // must guarantee quiescence).
  std::size_t drain_unsafe();

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Diagnostics.
  std::size_t retired_count() const noexcept;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*, void* ctx);
    void* ctx;
    std::uint64_t epoch;

    void free() const { deleter(ptr, ctx); }
  };

  struct alignas(kCacheLineSize) ThreadState {
    // kIdle when not pinned, otherwise the pinned epoch.
    static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
    std::atomic<std::uint64_t> pinned{kIdle};
    std::atomic<int> nesting{0};
    std::vector<Retired> retired;  // accessed only by the owning thread
    std::atomic<std::size_t> retired_size{0};
    bool sweeping = false;  // guards against re-entrant sweeps (deleters
                            // that retire more objects)
  };

  void pin(int tid);
  void unpin(int tid);
  bool try_advance();
  std::size_t sweep(int tid);

  // How many retirements between opportunistic reclaim passes.
  static constexpr std::size_t kReclaimThreshold = 128;

  std::atomic<std::uint64_t> global_epoch_{2};  // >= 2 so stamp-2 never wraps
  ThreadState threads_[ThreadRegistry::kMaxThreads];

  friend class Guard;
};

}  // namespace oftm::runtime
