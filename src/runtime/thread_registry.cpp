#include "runtime/thread_registry.hpp"

#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::runtime {
namespace {

struct Slots {
  // One atomic flag per slot, cache-line isolated: registration is rare but
  // live_threads() scans are not, and a scan must not bounce writer lines.
  CacheAligned<std::atomic<bool>> in_use[ThreadRegistry::kMaxThreads];
  std::atomic<int> high_watermark{0};
};

Slots& slots() {
  static Slots s;  // immortal: threads may deregister during static dtors
  return s;
}

// RAII slot holder: the destructor (thread exit) recycles the slot.
struct SlotHolder {
  int id = -1;

  SlotHolder() {
    Slots& s = slots();
    for (int i = 0; i < ThreadRegistry::kMaxThreads; ++i) {
      bool expected = false;
      // acquire/release on the flag: pairs a releasing slot with its next
      // owner so per-slot consumer state (e.g. epoch retire lists) is safe
      // to reuse.
      if (s.in_use[i]->compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        id = i;
        int hw = s.high_watermark.load(std::memory_order_relaxed);
        while (hw < i + 1 && !s.high_watermark.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_relaxed)) {
        }
        return;
      }
    }
    OFTM_ASSERT_MSG(false, "ThreadRegistry slot exhaustion");
  }

  ~SlotHolder() {
    if (id >= 0) slots().in_use[id]->store(false, std::memory_order_release);
  }
};

SlotHolder& holder() {
  thread_local SlotHolder h;
  return h;
}

thread_local bool tls_registered = false;

}  // namespace

int ThreadRegistry::current_id() {
  SlotHolder& h = holder();
  tls_registered = true;
  return h.id;
}

bool ThreadRegistry::is_registered() noexcept { return tls_registered; }

int ThreadRegistry::live_threads() noexcept {
  Slots& s = slots();
  int n = 0;
  const int hw = s.high_watermark.load(std::memory_order_acquire);
  for (int i = 0; i < hw; ++i) {
    if (s.in_use[i]->load(std::memory_order_acquire)) ++n;
  }
  return n;
}

int ThreadRegistry::high_watermark() noexcept {
  return slots().high_watermark.load(std::memory_order_acquire);
}

}  // namespace oftm::runtime
