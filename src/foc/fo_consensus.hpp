// Fail-only consensus (fo-consensus) objects — Section 4.1 of the paper.
//
// An fo-consensus object supports one operation, propose(v), returning a
// value or aborting (⊥, here std::nullopt), with:
//   fo-validity: a decided value was proposed by a propose that does not
//     abort (an aborted propose "did not take place");
//   agreement: no two processes decide differently;
//   fo-obstruction-freedom: a step-contention-free propose does not abort.
//
// Two implementations:
//
//   CasFoConsensus — one CAS word. Never aborts: the CAS winner decides its
//   own value and every loser decides the winner's. A wait-free consensus
//   object is trivially a legal fo-consensus (aborts never happen, so the
//   abort restriction is vacuous). This is the practical instantiation —
//   and it documents the paper's point that real OFTMs built on CAS carry
//   *more* power than obstruction-freedom requires.
//
//   StrictFoConsensus — CAS word plus an entry counter. A propose that
//   *observes* another process's entry during its own window aborts (when
//   the object is still undecided). The observation is itself proof of step
//   contention, so fo-obstruction-freedom holds, and aborting before the
//   CAS keeps fo-validity. This variant exercises every ⊥ path of
//   Algorithm 2 and models the abstract object's abort behaviour on real
//   hardware.
//
// Both are one-shot objects usable by any number of processes, exactly the
// "one-shot objects of consensus number 2" the paper says suffice to build
// an OFTM.
#pragma once

#include <cstdint>
#include <optional>

#include "core/platform.hpp"

namespace oftm::foc {

template <typename P, typename T, T kEmpty>
class CasFoConsensus {
  template <typename U>
  using Atomic = typename P::template Atomic<U>;

 public:
  CasFoConsensus() = default;
  CasFoConsensus(const CasFoConsensus&) = delete;
  CasFoConsensus& operator=(const CasFoConsensus&) = delete;

  std::optional<T> propose(T v) {
    T expected = kEmpty;
    // acq_rel: winner publishes everything it did before proposing (used by
    // Algorithm 2: a committed transaction's TVar writes become visible to
    // whoever decides its state); losers acquire the winner's history.
    if (cell_.compare_exchange_strong(expected, v,
                                      std::memory_order_acq_rel)) {
      return v;
    }
    return expected;  // already decided: adopt
  }

  bool decided() const {
    return cell_.load(std::memory_order_acquire) != kEmpty;
  }

  // kEmpty if undecided. Not an operation of the abstract object; used by
  // quiescent inspection only.
  T peek() const { return cell_.load(std::memory_order_acquire); }

 private:
  Atomic<T> cell_{kEmpty};
};

template <typename P, typename T, T kEmpty>
class StrictFoConsensus {
  template <typename U>
  using Atomic = typename P::template Atomic<U>;

 public:
  StrictFoConsensus() = default;
  StrictFoConsensus(const StrictFoConsensus&) = delete;
  StrictFoConsensus& operator=(const StrictFoConsensus&) = delete;

  std::optional<T> propose(T v) {
    // Entry announcement doubles as the contention probe: if anyone else
    // enters between our announcement and the re-check, we observed a step
    // of another process inside our own window.
    const std::uint64_t token =
        entries_.fetch_add(1, std::memory_order_acq_rel);
    T cur = cell_.load(std::memory_order_acquire);
    if (cur != kEmpty) return cur;  // decided: adopt (no abort necessary)
    if (entries_.load(std::memory_order_acquire) != token + 1) {
      return std::nullopt;  // observed step contention; nothing registered
    }
    T expected = kEmpty;
    if (cell_.compare_exchange_strong(expected, v,
                                      std::memory_order_acq_rel)) {
      return v;
    }
    return expected;
  }

  bool decided() const {
    return cell_.load(std::memory_order_acquire) != kEmpty;
  }
  T peek() const { return cell_.load(std::memory_order_acquire); }

 private:
  Atomic<std::uint64_t> entries_{0};
  Atomic<T> cell_{kEmpty};
};

// Policy selectors so higher layers (Algorithm 2) can be built over either
// object family.
template <typename P>
struct CasFocPolicy {
  template <typename T, T kEmpty>
  using Object = CasFoConsensus<P, T, kEmpty>;
  static constexpr const char* kName = "cas-foc";
};

template <typename P>
struct StrictFocPolicy {
  template <typename T, T kEmpty>
  using Object = StrictFoConsensus<P, T, kEmpty>;
  static constexpr const char* kName = "strict-foc";
};

}  // namespace oftm::foc
