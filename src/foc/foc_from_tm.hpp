// Algorithm 1 of the paper: implementing fo-consensus from an OFTM.
//
//   upon propose(vi) do
//     k <- k + 1
//     within transaction T_{i,k} do
//       if V = ⊥ then V <- vi else vi <- V
//     on event C_{i,k} do return vi
//     on event A_{i,k} do return ⊥
//
// "by serializability, only one committed transaction can observe that
// V = ⊥ and set V to a non-⊥ value" — agreement and fo-validity; a
// forcefully aborted transaction implies step contention, so aborting the
// propose preserves fo-obstruction-freedom (Lemma 7).
//
// Works over *any* core::TransactionalMemory — instantiated in tests over
// DSTM and over Algorithm 2 itself (closing the equivalence circle).
#pragma once

#include <optional>

#include "core/tm.hpp"

namespace oftm::foc {

class FocFromTm {
 public:
  // `v_var` is the t-variable used as V; its initial value encodes ⊥.
  FocFromTm(core::TransactionalMemory& tm, core::TVarId v_var,
            core::Value bottom = 0)
      : tm_(tm), v_var_(v_var), bottom_(bottom) {}

  // Returns the decided value, or nullopt when the propose aborts (the
  // caller may retry, per the fo-consensus contract).
  std::optional<core::Value> propose(core::Value vi) {
    core::TxnPtr txn = tm_.begin();  // T_{i,k}: fresh id per attempt
    const auto cur = tm_.read(*txn, v_var_);
    if (!cur) return std::nullopt;  // A_{i,k}
    core::Value result = vi;
    if (*cur == bottom_) {
      if (!tm_.write(*txn, v_var_, vi)) return std::nullopt;  // A_{i,k}
    } else {
      result = *cur;
    }
    if (!tm_.try_commit(*txn)) return std::nullopt;  // A_{i,k}
    return result;                                   // C_{i,k}
  }

 private:
  core::TransactionalMemory& tm_;
  const core::TVarId v_var_;
  const core::Value bottom_;
};

}  // namespace oftm::foc
