#include "foc/fo_consensus.hpp"
#include "foc/foc_from_eventual.hpp"
#include "foc/foc_from_tm.hpp"
#include "foc/two_process_consensus.hpp"
#include "sim/platform.hpp"

namespace oftm::foc {

// Anchor commonly used instantiations.
template class CasFoConsensus<core::HwPlatform, std::uint64_t, 0ull>;
template class StrictFoConsensus<core::HwPlatform, std::uint64_t, 0ull>;
template class CasFoConsensus<sim::SimPlatform, std::uint64_t, 0ull>;
template class StrictFoConsensus<sim::SimPlatform, std::uint64_t, 0ull>;

template class FocConsensus<core::HwPlatform, CasFocPolicy<core::HwPlatform>>;
template class FocConsensus<core::HwPlatform,
                            StrictFocPolicy<core::HwPlatform>>;
template class FocConsensus<sim::SimPlatform, CasFocPolicy<sim::SimPlatform>>;
template class FocConsensus<sim::SimPlatform,
                            StrictFocPolicy<sim::SimPlatform>>;

template class FocFromEventualTm<core::HwPlatform>;
template class FocFromEventualTm<sim::SimPlatform>;

}  // namespace oftm::foc
