// Consensus for two processes from one fo-consensus object and registers
// (the positive half of Corollary 11, after [6]).
//
// Protocol (process i with input v_i):
//   A[i] <- v_i                      (announce)
//   loop: if D ≠ ⊥ return D
//         r <- F.propose(i)          (propose the *identity*, not the value)
//         if r ≠ ⊥ then D <- A[r]; return A[r]
//         (else retry)
//
// Agreement: F decides one identity w once and for all; everyone exiting
// through propose returns A[w], which w wrote before its first propose and
// never changes. Validity: A[w] is w's input.
//
// Termination: every abort of F.propose implies the other process took a
// step inside the window. With the CAS-backed object, propose never aborts
// and the protocol is wait-free for any number of processes (CAS is
// universal — see fo_consensus.hpp). With the strict object, termination
// holds whenever contention is finite (a k-bounded abort adversary); the
// valency experiments (sim/valency.*) map out exactly which abstract abort
// semantics admit a wait-free 2-process solution and which do not — see
// EXPERIMENTS.md E-C11 for the full discussion of this boundary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/platform.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::foc {

template <typename P, typename FocPolicy, int kProcs = 2>
class FocConsensus {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;
  // Identities proposed to F are 1..kProcs (0 is the empty sentinel).
  using Foc = typename FocPolicy::template Object<std::uint32_t, 0u>;

 public:
  static constexpr std::uint64_t kBottom = ~std::uint64_t{0};

  FocConsensus() = default;

  // Blocking variant: retries propose until a decision is reached. Returns
  // the agreed value.
  std::uint64_t propose(int self, std::uint64_t v) {
    OFTM_ASSERT(self >= 0 && self < kProcs);
    OFTM_ASSERT(v != kBottom);
    announce_[static_cast<std::size_t>(self)]->store(
        v, std::memory_order_release);
    typename P::Backoff backoff;
    for (;;) {
      const std::uint64_t d = decision_.value.load(std::memory_order_acquire);
      if (d != kBottom) return d;
      const auto r = foc_.propose(static_cast<std::uint32_t>(self + 1));
      if (r.has_value()) {
        const int winner = static_cast<int>(*r) - 1;
        const std::uint64_t value =
            announce_[static_cast<std::size_t>(winner)]->load(
                std::memory_order_acquire);
        decision_.value.store(value, std::memory_order_release);
        return value;
      }
      backoff.pause();  // abort => the other process is active; retry
    }
  }

  // One attempt (for schedule-controlled tests): nullopt == propose aborted
  // and no decision is published yet.
  std::optional<std::uint64_t> try_propose(int self, std::uint64_t v) {
    announce_[static_cast<std::size_t>(self)]->store(
        v, std::memory_order_release);
    const std::uint64_t d = decision_.value.load(std::memory_order_acquire);
    if (d != kBottom) return d;
    const auto r = foc_.propose(static_cast<std::uint32_t>(self + 1));
    if (!r.has_value()) return std::nullopt;
    const int winner = static_cast<int>(*r) - 1;
    const std::uint64_t value =
        announce_[static_cast<std::size_t>(winner)]->load(
            std::memory_order_acquire);
    decision_.value.store(value, std::memory_order_release);
    return value;
  }

  std::uint64_t decision() const {
    return decision_.value.load(std::memory_order_acquire);
  }

 private:
  std::array<runtime::CacheAligned<Atomic<std::uint64_t>>, kProcs> announce_{};
  Foc foc_;
  runtime::CacheAligned<Atomic<std::uint64_t>> decision_{kBottom};
};

}  // namespace oftm::foc
