// Algorithm 3 (Appendix A): fo-consensus from an *eventual ic-OFTM*.
//
//   upon propose(vi) do
//     r[1..n] <- R[1..n]                       (not atomic)
//     while true do
//       d <- vi; k <- k+1
//       R[i] <- R[i] + 1
//       within transaction T_{i,k} do
//         if V = ⊥ then V <- vi else d <- V
//       on event C_k do return d
//       if ∃ m≠i : r[m] ≠ R[m] then return ⊥
//
// The activity registers R[] convert *interval*-contention aborts into
// observable *step* contention: the propose aborts only after seeing
// another process's R increment — proof of a step inside its own window —
// so fo-obstruction-freedom holds even though the underlying TM may
// forcefully abort transactions that merely overlap a (possibly long-dead)
// transaction of a crashed process. Combined with Lemma 8 this proves
// Theorem 6 (every eventual ic-OFTM can implement an OFTM).
#pragma once

#include <array>
#include <optional>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"

namespace oftm::foc {

template <typename P, int kMaxProcs = 16>
class FocFromEventualTm {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  FocFromEventualTm(core::TransactionalMemory& tm, core::TVarId v_var,
                    int nprocs, core::Value bottom = 0)
      : tm_(tm), v_var_(v_var), nprocs_(nprocs), bottom_(bottom) {
    OFTM_ASSERT(nprocs >= 1 && nprocs <= kMaxProcs);
  }

  std::optional<core::Value> propose(int self, core::Value vi) {
    OFTM_ASSERT(self >= 0 && self < nprocs_);
    std::array<std::uint64_t, kMaxProcs> r{};
    for (int m = 0; m < nprocs_; ++m) {
      r[static_cast<std::size_t>(m)] =
          regs_[static_cast<std::size_t>(m)]->load(std::memory_order_acquire);
    }
    for (;;) {
      core::Value d = vi;
      regs_[static_cast<std::size_t>(self)]->fetch_add(
          1, std::memory_order_acq_rel);

      core::TxnPtr txn = tm_.begin();
      bool committed = false;
      const auto cur = tm_.read(*txn, v_var_);
      if (cur) {
        bool ok = true;
        if (*cur == bottom_) {
          ok = tm_.write(*txn, v_var_, vi);
        } else {
          d = *cur;
        }
        if (ok && tm_.try_commit(*txn)) committed = true;
      }
      if (committed) return d;

      // Transaction aborted: legal only to give up if we can *prove* step
      // contention via someone else's activity register.
      for (int m = 0; m < nprocs_; ++m) {
        if (m == self) continue;
        if (regs_[static_cast<std::size_t>(m)]->load(
                std::memory_order_acquire) != r[static_cast<std::size_t>(m)]) {
          return std::nullopt;
        }
      }
      // No observable contention: keep restarting the computation (the
      // paper: restarting is the application's job, which this loop is).
    }
  }

 private:
  core::TransactionalMemory& tm_;
  const core::TVarId v_var_;
  const int nprocs_;
  const core::Value bottom_;
  std::array<runtime::CacheAligned<Atomic<std::uint64_t>>, kMaxProcs> regs_{};
};

}  // namespace oftm::foc
