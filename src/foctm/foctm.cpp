#include "foctm/foctm.hpp"

#include "sim/platform.hpp"

namespace oftm::foctm {

template class Foctm<core::HwPlatform, foc::CasFocPolicy<core::HwPlatform>>;
template class Foctm<core::HwPlatform,
                     foc::StrictFocPolicy<core::HwPlatform>>;
template class Foctm<sim::SimPlatform, foc::CasFocPolicy<sim::SimPlatform>>;
template class Foctm<sim::SimPlatform,
                     foc::StrictFocPolicy<sim::SimPlatform>>;

}  // namespace oftm::foctm
