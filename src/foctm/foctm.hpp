// FOCTM — Algorithm 2 of the paper: an OFTM built from fo-consensus objects
// and registers (Lemma 8; opacity proof in Appendix B).
//
// Faithful mapping of the pseudocode:
//
//   Owner[x, version]  -> per-t-variable unbounded chain of one-shot
//                         fo-consensus objects over transaction-descriptor
//                         pointers (segmented growable array — the paper's
//                         "infinite arrays" made allocatable).
//   State[Tk]          -> one fo-consensus object over {committed, aborted}
//                         embedded in Tk's descriptor. Committing is
//                         proposing `committed` to one's own State;
//                         aborting somebody is proposing `aborted` to
//                         theirs (lines 17, 31).
//   TVar[x, Tk]        -> registers inside Tk's descriptor, written only by
//                         Tk before it completes and read by others only
//                         after State[Tk] decides committed (Claim 16 makes
//                         this single-writer/after-publication safe).
//   Aborted[Tk]        -> register in the descriptor: losers learn ASAP
//                         that they lost an ownership (line 28).
//   V[x]               -> per-t-variable register stamped by each new owner
//                         (line 26); the line-21 re-check bounds the
//                         version walk and gives wait-freedom.
//
// The paper's own footnote 6 calls this construction "rather impractical"
// (unbounded memory, high time complexity): bench_foctm_overhead quantifies
// exactly that. Two modes:
//
//   faithful — every acquire restarts the version walk at 1, as written in
//     the paper: O(total versions) per open.
//   hinted   — a per-t-variable hint register caches (version v, folded
//     value of slots < v) once all owners below v have *decided* states;
//     since fo-consensus decisions are immutable, every walker folds the
//     same prefix value, so starting at the hint is safe. An ablation, not
//     a change to the protocol's decisions.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/platform.hpp"
#include "core/tm.hpp"
#include "foc/fo_consensus.hpp"
#include "runtime/assert.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::foctm {

// State[Tk] votes. kNone is the fo-consensus empty sentinel.
enum class Vote : std::uint32_t { kNone = 0, kCommitted = 1, kAborted = 2 };

struct FoctmOptions {
  bool use_hints = false;
};

template <typename P, typename FocPolicy>
class Foctm final : public core::TransactionalMemory,
                    private core::TmStatsMixin {
  template <typename T>
  using Atomic = typename P::template Atomic<T>;

 public:
  struct TxDesc;
  using StateFoc =
      typename FocPolicy::template Object<Vote, Vote::kNone>;
  using OwnerFoc =
      typename FocPolicy::template Object<TxDesc*, nullptr>;

  struct TxDesc {
    StateFoc state;                   // State[Tk]
    Atomic<bool> aborted_flag{false};  // Aborted[Tk]
    core::TxId id = 0;
    // TVar[x, Tk]: written only by the owning transaction before its State
    // decides; read by others only afterwards (Claim 16).
    std::vector<std::pair<core::TVarId, core::Value>> tvals;

    void set_tval(core::TVarId x, core::Value v) {
      for (auto& [var, val] : tvals) {
        if (var == x) {
          val = v;
          return;
        }
      }
      tvals.emplace_back(x, v);
    }

    core::Value tval(core::TVarId x) const {
      for (const auto& [var, val] : tvals) {
        if (var == x) return val;
      }
      // A committed owner has a TVar entry for every t-variable it opened.
      OFTM_ASSERT_MSG(false, "TVar[x, Tk] read from non-opening owner");
      return 0;
    }
  };

  class Txn final : public core::Transaction {
   public:
    Txn() = default;
    ~Txn() override = default;

    core::TxStatus status() const override {
      switch (desc_->state.peek()) {
        case Vote::kCommitted: return core::TxStatus::kCommitted;
        case Vote::kAborted: return core::TxStatus::kAborted;
        case Vote::kNone: break;
      }
      return local_status_;
    }
    core::TxId id() const override { return desc_->id; }

   private:
    friend class Foctm;
    TxDesc* desc_ = nullptr;
    std::vector<core::TVarId> wset_;
    // A pooled descriptor is born finished; prepare() arms it.
    core::TxStatus local_status_ = core::TxStatus::kAborted;
  };

  using Session = core::PooledTmSession<Txn>;

  Foctm(std::size_t num_tvars, FoctmOptions options = {})
      : options_(options), num_tvars_(num_tvars) {
    vars_ = std::make_unique<TVarState[]>(num_tvars);
  }

  ~Foctm() override {
    for (std::size_t i = 0; i < num_tvars_; ++i) {
      Segment* seg = vars_[i].head.next.load(std::memory_order_relaxed);
      while (seg != nullptr) {
        Segment* next = seg->next.load(std::memory_order_relaxed);
        delete seg;
        seg = next;
      }
      delete vars_[i].hint.load(std::memory_order_relaxed);
    }
  }

  core::TmSession& this_thread_session() override {
    return session(P::thread_id());
  }

  core::Transaction& begin(core::TmSession& session) override {
    Txn& tx = static_cast<Session&>(session).hot();
    prepare(tx);
    return tx;
  }

  core::TxnPtr begin() override {
    Txn& tx = static_cast<Session&>(session(P::thread_id())).checkout();
    prepare(tx);
    return core::TxnPtr(&tx);
  }

  std::optional<core::Value> read(core::Transaction& t,
                                  core::TVarId x) override {
    auto& tx = txn_cast(t);
    reads_.add();
    if (tx.local_status_ != core::TxStatus::kActive) return std::nullopt;
    return acquire(tx, x);  // line 2: return acquire(Tk, x)
  }

  bool write(core::Transaction& t, core::TVarId x, core::Value v) override {
    auto& tx = txn_cast(t);
    writes_.add();
    if (tx.local_status_ != core::TxStatus::kActive) return false;
    const auto s = acquire(tx, x);          // line 4
    if (!s.has_value()) return false;       // line 5
    tx.desc_->set_tval(x, v);               // line 6: TVar[x, Tk] <- v
    return true;                            // line 7
  }

  bool try_commit(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.local_status_ != core::TxStatus::kActive) return false;
    const auto s = tx.desc_->state.propose(Vote::kCommitted);  // line 31
    if (s.has_value() && *s == Vote::kCommitted) {             // line 32
      tx.local_status_ = core::TxStatus::kCommitted;
      commits_.add();
      return true;
    }
    // ⊥ (propose aborted under contention) or someone voted us aborted.
    tx.local_status_ = core::TxStatus::kAborted;
    count_forced_abort(obs::AbortReason::kCmKill);
    return false;  // line 33
  }

  void try_abort(core::Transaction& t) override {
    auto& tx = txn_cast(t);
    if (tx.local_status_ != core::TxStatus::kActive) return;
    // Lines 34-35: just return A_k. The undecided State is resolved to
    // `aborted` by the next transaction that meets one of our ownerships;
    // only we could ever propose `committed`, and we never will.
    tx.local_status_ = core::TxStatus::kAborted;
    count_requested_abort();
  }

  std::size_t num_tvars() const override { return num_tvars_; }

  core::Value read_quiescent(core::TVarId x) const override {
    const TVarState& var = vars_[x];
    core::Value state = 0;
    const Segment* seg = &var.head;
    for (std::size_t version = 1;; ++version) {
      const std::size_t idx = (version - 1) % kSegSize;
      if (version != 1 && idx == 0) {
        seg = seg->next.load(std::memory_order_acquire);
        if (seg == nullptr) break;
      }
      const TxDesc* owner = seg->slots[idx].peek();
      if (owner == nullptr) break;
      if (owner->state.peek() == Vote::kCommitted) state = owner->tval(x);
    }
    return state;
  }

  std::string name() const override {
    return std::string("foctm[") + FocPolicy::kName +
           (options_.use_hints ? ",hinted]" : ",faithful]");
  }
  runtime::TxStats stats() const override { return collect_stats(); }
  void reset_stats() override { reset_collect_stats(); }

  // Base-object addresses for the DAP instrumentation: a transaction's
  // State object is the shared location Theorem 13's proof pivots on.
  static const void* state_object_of(const core::Transaction& t) {
    return &static_cast<const Txn&>(t).desc_->state;
  }

 protected:
  std::unique_ptr<core::TmSession> make_session(
      core::ThreadSlot slot) override {
    return std::make_unique<Session>(slot);
  }

 private:
  static constexpr std::size_t kSegSize = 16;

  struct Segment {
    std::array<OwnerFoc, kSegSize> slots;
    Atomic<Segment*> next{nullptr};
  };

  struct HintRec {
    std::size_t version;
    core::Value value;
  };

  struct alignas(runtime::kCacheLineSize) TVarState {
    Segment head;
    Atomic<TxDesc*> v_reg{nullptr};  // V[x]
    Atomic<HintRec*> hint{nullptr};
  };

  struct DescPool {
    std::vector<std::unique_ptr<TxDesc>> descs;
  };

  static Txn& txn_cast(core::Transaction& t) { return static_cast<Txn&>(t); }

  // Re-arm a pooled descriptor. The wrapper (write-set vector) is reused;
  // the TxDesc must be fresh per transaction and lives forever — Owner
  // chains reference it indefinitely, the paper's unbounded-memory caveat
  // (footnote 6). Descriptors are owned by per-thread pools and released
  // at TM destruction.
  void prepare(Txn& tx) {
    obs_tx_begin();
    auto desc = std::make_unique<TxDesc>();
    desc->id = next_tx_id();
    tx.desc_ = desc.get();
    pools_[static_cast<std::size_t>(P::thread_id())]->descs.push_back(
        std::move(desc));
    tx.wset_.clear();
    tx.local_status_ = core::TxStatus::kActive;
  }

  static core::TxId next_tx_id() {
    thread_local std::uint64_t counter = 0;
    return core::make_tx_id(P::thread_id(), ++counter);
  }

  OwnerFoc& slot(TVarState& var, std::size_t version) {
    std::size_t idx = version - 1;
    Segment* seg = &var.head;
    while (idx >= kSegSize) {
      Segment* next = seg->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        auto* fresh = new Segment;
        Segment* expected = nullptr;
        if (seg->next.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
          next = fresh;
        } else {
          delete fresh;
          next = expected;
        }
      }
      seg = next;
      idx -= kSegSize;
    }
    return seg->slots[idx];
  }

  // Lines 8-29 of Algorithm 2.
  std::optional<core::Value> acquire(Txn& tx, core::TVarId x) {
    OFTM_ASSERT(x < num_tvars_);
    TVarState& var = vars_[x];
    core::Value state;

    bool in_wset = false;
    {
      OFTM_OBS_PHASE(obs_, obs::Phase::kReadLookup);
      for (core::TVarId w : tx.wset_) {
        if (w == x) {
          in_wset = true;
          break;
        }
      }
    }

    if (!in_wset) {                                    // line 9
      // The version walk doubles as ownership acquisition (lines 13-23):
      // attribute it to the commit-lock phase like the other backends'
      // acquire loops.
      OFTM_OBS_PHASE(obs_, obs::Phase::kCommitLock);
      std::size_t version = 1;                         // line 10
      state = 0;                                       // line 11 (initial)
      if (options_.use_hints) {
        [[maybe_unused]] typename P::Reclaimer::Guard guard;
        if (const HintRec* h = var.hint.load(std::memory_order_acquire)) {
          version = h->version;
          state = h->value;
        }
      }
      TxDesc* vcap = var.v_reg.load(std::memory_order_acquire);  // line 12
      for (;;) {                                                 // line 13
        const auto owner_opt = slot(var, version).propose(tx.desc_);
        if (!owner_opt.has_value()) {                            // line 15
          return forced_abort(tx, obs::AbortReason::kCmKill, x);
        }
        TxDesc* owner = *owner_opt;
        if (owner != tx.desc_) {                                 // line 16
          const auto s = owner->state.propose(Vote::kAborted);   // line 17
          if (!s.has_value()) {                                  // line 18
            return forced_abort(tx, obs::AbortReason::kCmKill, x);
          }
          if (*s == Vote::kCommitted) {                          // line 19
            state = owner->tval(x);
          } else {                                               // line 20
            owner->aborted_flag.store(true, std::memory_order_release);
          }
        }
        if (var.v_reg.load(std::memory_order_acquire) != vcap) { // line 21
          return forced_abort(tx, obs::AbortReason::kSnapshotChanged, x);
        }
        if (owner == tx.desc_) break;                            // line 23
        ++version;                                               // line 22
      }
      if (options_.use_hints) publish_hint(var, version, state);
      tx.wset_.push_back(x);                                     // line 24
      tx.desc_->set_tval(x, state);                              // line 25
      var.v_reg.store(tx.desc_, std::memory_order_release);      // line 26
    } else {
      state = tx.desc_->tval(x);                                 // line 27
    }

    if (tx.desc_->aborted_flag.load(std::memory_order_acquire)) {  // line 28
      return forced_abort(tx, obs::AbortReason::kCmKill, x);
    }
    return state;                                                  // line 29
  }

  std::optional<core::Value> forced_abort(Txn& tx, obs::AbortReason reason,
                                          std::uint64_t key = obs::kNoKey) {
    tx.local_status_ = core::TxStatus::kAborted;
    count_forced_abort(reason, key);
    return std::nullopt;
  }

  // Hinted mode: all Owner slots below `version` are decided and their
  // owners' States are decided, so `value` is the unique fold of that
  // prefix; cache it for future walkers.
  void publish_hint(TVarState& var, std::size_t version, core::Value value) {
    [[maybe_unused]] typename P::Reclaimer::Guard guard;
    HintRec* cur = var.hint.load(std::memory_order_acquire);
    if (cur != nullptr && cur->version >= version) return;
    auto* fresh = new HintRec{version, value};
    if (var.hint.compare_exchange_strong(cur, fresh,
                                         std::memory_order_acq_rel)) {
      if (cur != nullptr) P::Reclaimer::template retire<HintRec>(cur);
    } else {
      delete fresh;
    }
  }

  const FoctmOptions options_;
  const std::size_t num_tvars_;
  std::unique_ptr<TVarState[]> vars_;
  std::array<runtime::CacheAligned<DescPool>,
             runtime::ThreadRegistry::kMaxThreads>
      pools_{};
};

}  // namespace oftm::foctm
