// Per-TM observability state: phase histograms, abort-reason counters and
// the conflict heat map, all striped per thread.
//
// Memory discipline: the per-thread cells holding phase histograms and
// heat-map slots are allocated *lazily*, on a thread's first sampled
// phase scope (or first attributed abort) against a given TM instance.
// That keeps TM construction cheap — the sim explorer builds thousands of
// backends per test — and keeps the steady state allocation-free: the one
// cell allocation per (TM, thread) happens during warm-up, never again.
// Abort-reason counters are embedded statically (one cache line per
// thread slot — all reasons fit in one line) because they are exact, not
// sampled: the reconciliation invariant `sum(reasons) == aborts` must
// hold without a cell ever having been materialized.
//
// All cells are written with relaxed atomics by their owning thread only
// and read by collect() on quiescent paths (driver after join, tests), so
// concurrent collection is racy-but-benign *and* TSan-clean.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/phase_timer.hpp"
#include "obs/taxonomy.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_registry.hpp"

namespace oftm::obs {

#if OFTM_OBS

// Log2 histogram over relaxed atomics — same bucketing as
// runtime::Log2Histogram, but safe to read while the owner records.
// 48 buckets cover intervals up to ~2^48 ticks (>1 day); bigger values
// clamp into the top bucket.
class AtomicLog2Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t value) noexcept {
    std::size_t b =
        value == 0 ? 0
                   : static_cast<std::size_t>(64 - __builtin_clzll(value));
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// Bounded per-thread conflict heat map: top-K contended keys by forced-
// abort count, space-saving style — a miss evicts the minimum-count slot
// and inherits its count, so heavy hitters always surface while memory
// stays fixed. Single-writer (the owning thread); collect() reads
// relaxed.
class HeatMap {
 public:
  static constexpr std::size_t kSlots = 16;

  void hit(std::uint64_t key) noexcept {
    std::size_t min_i = 0;
    std::uint64_t min_n = ~std::uint64_t{0};
    for (std::size_t i = 0; i < kSlots; ++i) {
      const std::uint64_t n = hits_[i].load(std::memory_order_relaxed);
      if (n != 0 && keys_[i].load(std::memory_order_relaxed) == key) {
        hits_[i].store(n + 1, std::memory_order_relaxed);
        return;
      }
      if (n < min_n) {
        min_n = n;
        min_i = i;
      }
    }
    keys_[min_i].store(key, std::memory_order_relaxed);
    hits_[min_i].store(min_n + 1, std::memory_order_relaxed);
  }

  void collect_into(std::vector<HotVar>& out) const {
    for (std::size_t i = 0; i < kSlots; ++i) {
      const std::uint64_t n = hits_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        out.push_back({keys_[i].load(std::memory_order_relaxed), n});
      }
    }
  }

  void reset() noexcept {
    for (auto& h : hits_) h.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> keys_[kSlots] = {};
  std::atomic<std::uint64_t> hits_[kSlots] = {};
};

// The lazily allocated per-(TM, thread) cell: one histogram per phase
// plus the thread's heat map, cache-line aligned so neighbouring threads
// never share a line.
struct alignas(runtime::kCacheLineSize) ObsCell {
  AtomicLog2Histogram phase_ticks[kNumPhases];
  HeatMap heat;
};

// --- Thread-local plumbing shared by every TM's instrumentation. -------

// Phase sampling: recording a phase interval costs two rdtsc reads and a
// histogram update; doing that for every transaction measurably skews
// the release numbers the bench baselines pin. Backends tick this gate
// once per begun transaction and every scope checks the resulting flag.
// The stride comes from $OFTM_OBS_SAMPLE (default 8, minimum 1 — i.e.
// every transaction).
std::uint64_t phase_sample_stride() noexcept;

namespace detail {
struct TlsObs {
  std::uint64_t tx_counter = 0;
  bool sampled = false;
  AbortReason hint = AbortReason::kUserRequested;
  AbortReason last = AbortReason::kUserRequested;
};
inline TlsObs& tls() noexcept {
  thread_local TlsObs t;
  return t;
}
}  // namespace detail

// Called once per begun transaction (backend prepare()); decides whether
// this transaction's phase scopes record.
inline void tick_tx_sample() noexcept {
  auto& t = detail::tls();
  t.sampled = (t.tx_counter++ % phase_sample_stride()) == 0;
}

inline bool tx_sampled() noexcept { return detail::tls().sampled; }

// Abort-attribution hints: try_abort() is one entry point serving both
// "the program cancelled" and "the program asked to retry"; the caller
// that knows the difference (TxView::retry) parks the reason here and
// the backend's requested-abort counter consumes it.
inline void hint_abort(AbortReason r) noexcept { detail::tls().hint = r; }
inline AbortReason take_abort_hint() noexcept {
  auto& t = detail::tls();
  const AbortReason r = t.hint;
  t.hint = AbortReason::kUserRequested;
  return r;
}

// The reason of the calling thread's most recent counted abort, for the
// trace exporter (the driver records the span after the attempt ends).
inline void note_last_abort(AbortReason r) noexcept { detail::tls().last = r; }
inline AbortReason last_abort_reason() noexcept { return detail::tls().last; }

// --- Per-TM state, embedded in core::TmStatsMixin. ---------------------

// Exact per-reason abort counters, striped per thread. All reasons fit
// one cache line per slot, so the whole table is kMaxThreads lines.
class ReasonCounters {
 public:
  void add(AbortReason r) noexcept {
    cells_[runtime::ThreadRegistry::current_id()]
        .n[static_cast<std::size_t>(r)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t read(std::size_t reason) const noexcept {
    std::uint64_t total = 0;
    const int hw = runtime::ThreadRegistry::high_watermark();
    for (int i = 0; i < hw; ++i) {
      total += cells_[i].n[reason].load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& c : cells_) {
      for (auto& n : c.n) n.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(runtime::kCacheLineSize) Cell {
    std::atomic<std::uint64_t> n[kNumAbortReasons] = {};
  };
  static_assert(sizeof(std::atomic<std::uint64_t>) * kNumAbortReasons <=
                runtime::kCacheLineSize);
  Cell cells_[runtime::ThreadRegistry::kMaxThreads] = {};
};

// Everything one TM instance accumulates: reason counters (static),
// phase histograms and heat maps (lazy cells).
class TmObs {
 public:
  TmObs() = default;
  ~TmObs() {
    for (auto& slot : cells_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }
  TmObs(const TmObs&) = delete;
  TmObs& operator=(const TmObs&) = delete;

  ReasonCounters& reasons() noexcept { return reasons_; }
  const ReasonCounters& reasons() const noexcept { return reasons_; }

  // The calling thread's cell, materializing it on first use (warm-up
  // path; see header comment).
  ObsCell& cell() {
    auto& slot = cells_[runtime::ThreadRegistry::current_id()];
    ObsCell* c = slot.load(std::memory_order_acquire);
    if (c == nullptr) {
      auto owned = std::make_unique<ObsCell>();
      if (slot.compare_exchange_strong(c, owned.get(),
                                       std::memory_order_acq_rel)) {
        c = owned.release();
      }
      // A lost race (impossible for a per-thread slot, but cheap to
      // tolerate) keeps the winner and drops ours.
    }
    return *c;
  }

  // Aggregate phase totals (converted to ns) and the merged heat map.
  void collect(std::uint64_t (&phase_ns)[kNumPhases],
               std::uint64_t (&phase_count)[kNumPhases],
               std::vector<HotVar>& hot_vars,
               std::size_t top_k = 8) const {
    const double ratio = ns_per_tick();
    std::vector<HotVar> merged;
    const int hw = runtime::ThreadRegistry::high_watermark();
    for (int t = 0; t < hw; ++t) {
      const ObsCell* c = cells_[t].load(std::memory_order_acquire);
      if (c == nullptr) continue;
      for (std::size_t p = 0; p < kNumPhases; ++p) {
        phase_ns[p] += static_cast<std::uint64_t>(
            static_cast<double>(c->phase_ticks[p].sum()) * ratio);
        phase_count[p] += c->phase_ticks[p].count();
      }
      c->heat.collect_into(merged);
    }
    // Merge duplicate keys across threads, keep the top_k heaviest.
    std::vector<HotVar> combined;
    for (const HotVar& h : merged) {
      bool found = false;
      for (HotVar& c : combined) {
        if (c.key == h.key) {
          c.hits += h.hits;
          found = true;
          break;
        }
      }
      if (!found) combined.push_back(h);
    }
    std::sort(combined.begin(), combined.end(),
              [](const HotVar& a, const HotVar& b) {
                return a.hits != b.hits ? a.hits > b.hits : a.key < b.key;
              });
    if (combined.size() > top_k) combined.resize(top_k);
    for (const HotVar& h : combined) hot_vars.push_back(h);
  }

  void reset() noexcept {
    reasons_.reset();
    for (auto& slot : cells_) {
      if (ObsCell* c = slot.load(std::memory_order_acquire)) {
        for (auto& h : c->phase_ticks) h.reset();
        c->heat.reset();
      }
    }
  }

 private:
  ReasonCounters reasons_;
  std::atomic<ObsCell*> cells_[runtime::ThreadRegistry::kMaxThreads] = {};
};

// RAII phase interval: records ticks into the calling thread's cell of
// the given TM, only when this transaction was elected by the sampling
// gate. Safe to nest (inclusive timing, documented in taxonomy.hpp).
class ScopedPhase {
 public:
  ScopedPhase(TmObs& obs, Phase phase) noexcept
      : cell_(tx_sampled() ? &obs.cell() : nullptr),
        phase_(phase),
        start_(cell_ != nullptr ? now_ticks() : 0) {}
  ~ScopedPhase() {
    if (cell_ != nullptr) {
      cell_->phase_ticks[static_cast<std::size_t>(phase_)].record(
          now_ticks() - start_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  ObsCell* cell_;
  Phase phase_;
  std::uint64_t start_;
};

#define OFTM_OBS_CONCAT_IMPL(a, b) a##b
#define OFTM_OBS_CONCAT(a, b) OFTM_OBS_CONCAT_IMPL(a, b)
// Scope the rest of the enclosing block as the given phase.
#define OFTM_OBS_PHASE(obs_obj, phase)                        \
  ::oftm::obs::ScopedPhase OFTM_OBS_CONCAT(oftm_phase_scope_, \
                                           __LINE__)((obs_obj), (phase))

#else  // !OFTM_OBS

#define OFTM_OBS_PHASE(obs_obj, phase) static_cast<void>(0)

#endif  // OFTM_OBS

}  // namespace oftm::obs
