// PhaseTimer: cheap per-phase interval timestamps for the obs layer.
//
// Hot paths read the TSC raw (a ~10ns instruction, no serialization —
// phase intervals are statistical, not ordering-bearing) and record tick
// counts; conversion to nanoseconds happens once, at collect/export time,
// through a lazily calibrated ticks→ns ratio. Calibrating lazily on the
// *cold* side matters: the first call sleeps a few milliseconds against
// steady_clock, which must never happen inside a transaction holding
// commit locks.
//
// Threads are pinned by the workload driver, and modern x86 TSCs are
// invariant and synchronized across cores; on other architectures
// now_ticks() falls back to steady_clock nanoseconds (ratio 1.0).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "obs/taxonomy.hpp"

namespace oftm::obs {

inline std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Nanoseconds per TSC tick, calibrated once against steady_clock on
// first use (cold paths only — see header comment). Always > 0.
double ns_per_tick() noexcept;

inline std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    ns_per_tick());
}

// Calibrated wall-ish timestamp for trace spans (cold/export paths and
// sampled span boundaries; do not call per-read).
inline std::uint64_t now_ns() noexcept { return ticks_to_ns(now_ticks()); }

}  // namespace oftm::obs
