// Observability taxonomy: the abort-reason and phase vocabularies.
//
// This header is dependency-free on purpose: runtime/stats.hpp needs the
// enum sizes to shape TxStats without pulling the rest of the obs layer
// (and its runtime/ includes) into a cycle. The names here are the wire
// vocabulary — they appear verbatim as JSON keys in workload::report
// lines and as span annotations in exported traces, so changing one is a
// baseline-breaking change (re-record bench/baselines/REPORT_*.jsonl).
//
// The OFTM_OBS gate also lives here so every translation unit sees the
// same setting: 1 (default) compiles the instrumentation in, 0 compiles
// it away entirely (CMake -DOFTM_OBS=OFF). TxStats keeps its obs-shaped
// fields in both modes — they just stay zero when the gate is off — so
// the struct layout never depends on the gate (no ODR hazard between
// obs-on and obs-off objects is possible anyway, but report/consumer
// code stays identical too).
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef OFTM_OBS
#define OFTM_OBS 1
#endif

#if OFTM_OBS
#define OFTM_OBS_ONLY(...) __VA_ARGS__
#else
#define OFTM_OBS_ONLY(...)
#endif

namespace oftm::obs {

// Why a transaction aborted. Stamped at every abort site in every
// backend; per-reason counts must sum exactly to TxStats::aborts (the
// reconciliation invariant obs_test enforces across all recipes).
enum class AbortReason : std::uint8_t {
  // try_abort with no more specific cause: the program gave up on the
  // transaction (TxView::cancel, conformance-test aborts, driver
  // shutdown).
  kUserRequested = 0,
  // TxView::retry(): the program asked for a fresh attempt (condition
  // not yet true). Distinguished from kUserRequested via a thread-local
  // hint because both funnel through the same try_abort entry point.
  kExplicitRetry = 1,
  // A read (or commit-time read-set validation) observed a version,
  // value, or locator newer than the transaction's snapshot.
  kReadValidation = 2,
  // Commit-time (TL2) or encounter-time (TL) lock acquisition exhausted
  // its bounded patience against a concurrently held lock.
  kLockTimeout = 3,
  // The global snapshot moved (NOrec seqlock, FOCTM version register)
  // and value-based revalidation could not re-anchor the read set.
  kSnapshotChanged = 4,
  // Killed by or for a concurrent transaction: a contention-manager
  // kAbortSelf decision, an externally installed kAborted status
  // (DSTM kill / reader sweep), or FOCTM ownership revocation.
  kCmKill = 5,
  // Reserved: aborts forced by reclamation pressure (no backend
  // currently aborts for this; the counter exists so the report schema
  // is stable when one does).
  kEpochPressure = 6,
};

inline constexpr std::size_t kNumAbortReasons = 7;

inline constexpr const char* abort_reason_name(std::size_t i) {
  constexpr const char* kNames[kNumAbortReasons] = {
      "user_requested", "explicit_retry",   "read_validation",
      "lock_timeout",   "snapshot_changed", "cm_kill",
      "epoch_pressure",
  };
  return i < kNumAbortReasons ? kNames[i] : "?";
}

// Where a transaction spends its time. Instrumented as scoped intervals
// (inclusive timing: a backoff pause inside a commit-lock loop counts
// toward both kBackoff and kCommitLock).
enum class Phase : std::uint8_t {
  kReadLookup = 0,   // own-write / read-set probe on the read path
  kValidation = 1,   // read-set validation & value-based revalidation
  kCommitLock = 2,   // lock/ownership acquisition (commit- or encounter-time)
  kWriteBack = 3,    // redo-log write-back / undo rollback
  kBackoff = 4,      // contention pauses inside acquisition loops
};

inline constexpr std::size_t kNumPhases = 5;

inline constexpr const char* phase_name(std::size_t i) {
  constexpr const char* kNames[kNumPhases] = {
      "read_lookup", "validation", "commit_lock", "write_back", "backoff",
  };
  return i < kNumPhases ? kNames[i] : "?";
}

// One entry of the merged conflict heat map: a contended location (TVarId
// for the boxed backends, stripe index for tl2-region, address-derived
// word key for norec-region) and how many forced aborts it was blamed for.
struct HotVar {
  std::uint64_t key = 0;
  std::uint64_t hits = 0;
};

// Sentinel for "no location attributable" (e.g. a whole-read-set
// validation failure that cannot name a single culprit).
inline constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

}  // namespace oftm::obs
