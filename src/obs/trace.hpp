// TraceSink: sampled per-thread transaction-lifecycle rings, exported as
// Chrome trace_event JSON (loadable in perfetto / chrome://tracing).
//
// Activation mirrors the report layer: setting $OFTM_TRACE_FILE enables
// the sink and names the output file. When the variable is absent the
// sink is a dead branch — record() returns on one cold bool, nothing is
// allocated, so the allocation-free guarantees and bench numbers are
// untouched by merely linking this layer.
//
// Each recording thread owns a fixed-capacity ring (capacity from
// $OFTM_TRACE_RING, default 8192 events); overflow overwrites the oldest
// events and bumps a drop counter, so a long run exports its tail, never
// OOMs. Sampling is a per-ring counter stride ($OFTM_TRACE_SAMPLE,
// default 1 — every attempt): counter-based rather than random so a
// fixed-seed run retains a deterministic event set (obs_test pins this).
// Rings are recycled through a free list on thread exit, so repeated
// runs reuse memory instead of accumulating dead rings.
//
// Timestamps are raw TSC ticks at record time, converted to microseconds
// and rebased to the earliest event at flush() — perfetto gets a trace
// that starts near t=0.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/taxonomy.hpp"

namespace oftm::obs {

enum class SpanKind : std::uint8_t {
  kCommit = 0,
  kAbort = 1,
};

struct TraceEvent {
  std::uint64_t start_ticks = 0;
  std::uint64_t dur_ticks = 0;
  std::uint64_t tx_seq = 0;  // per-worker logical transaction ordinal
  std::uint32_t attempt = 0;
  std::uint16_t tid = 0;
  SpanKind kind = SpanKind::kCommit;
  AbortReason reason = AbortReason::kUserRequested;  // valid for kAbort
  const char* backend = nullptr;  // interned; may be null
};

class TraceSink {
 public:
  // Process-wide sink, configured from the environment on first use.
  static TraceSink& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Record one attempt span into the calling thread's ring (sampled;
  // no-op when disabled). Never allocates after the thread's first
  // sampled record.
  void record(const TraceEvent& e) noexcept;

  // Intern a backend name so events can carry a pointer that outlives
  // the worker threads (called once per worker, not per event).
  const char* intern(const std::string& name);

  // Merge every ring, oldest-first per ring, sorted by start time.
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t dropped() const noexcept;

  // Rewrite the configured trace file with the full current snapshot as
  // Chrome trace JSON. No-op when disabled or no path is configured.
  void flush();

  // Test hooks: (re)configure in place — enable without the env var,
  // with explicit capacity/stride and an optional output path — and
  // clear all rings.
  void configure(std::size_t ring_capacity, std::uint64_t sample_stride,
                 std::string path);
  void reset();

  struct Impl;  // public only for the thread-exit ring-recycling hook

 private:
  TraceSink();
  Impl* impl_;
  std::atomic<bool> enabled_{false};
};

}  // namespace oftm::obs
