#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "obs/phase_timer.hpp"

namespace oftm::obs {

// --- Calibration (declared in phase_timer.hpp). ------------------------

double ns_per_tick() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const double ratio = [] {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const std::uint64_t c0 = now_ticks();
    // A couple of milliseconds is plenty: TSC rates are in the GHz range,
    // so the quantization error is well under 0.1%.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t c1 = now_ticks();
    const auto t1 = clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    const double ticks = static_cast<double>(c1 - c0);
    return ticks > 0.0 && ns > 0.0 ? ns / ticks : 1.0;
  }();
  return ratio;
#else
  return 1.0;  // now_ticks() already returns nanoseconds
#endif
}

// --- Phase sampling stride (declared in profile.hpp). ------------------

static std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                             std::uint64_t min_value) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return fallback;
  return v < min_value ? min_value : static_cast<std::uint64_t>(v);
}

std::uint64_t phase_sample_stride() noexcept {
  static const std::uint64_t stride = env_u64("OFTM_OBS_SAMPLE", 8, 1);
  return stride;
}

// --- TraceSink. --------------------------------------------------------

namespace {

struct Ring {
  std::mutex m;
  std::vector<TraceEvent> buf;
  std::size_t cap = 0;
  std::size_t head = 0;       // next overwrite position once full
  std::uint64_t written = 0;  // sampled events ever written
  std::uint64_t seq = 0;      // record() calls, drives the sample stride
};

}  // namespace

struct TraceSink::Impl {
  std::mutex registry_m;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<Ring*> free_rings;  // recycled from exited threads
  std::set<std::string> interned;
  std::string path;
  // Read on the record path without the registry lock; written only by
  // configure()/the constructor (before workers exist in practice, but
  // keep them race-free regardless).
  std::atomic<std::size_t> capacity{8192};
  std::atomic<std::uint64_t> stride{1};

  Ring* acquire_ring() {
    std::lock_guard<std::mutex> lock(registry_m);
    if (!free_rings.empty()) {
      Ring* r = free_rings.back();
      free_rings.pop_back();
      return r;
    }
    rings.push_back(std::make_unique<Ring>());
    Ring* r = rings.back().get();
    r->cap = capacity.load(std::memory_order_relaxed);
    r->buf.reserve(r->cap);
    return r;
  }

  void release_ring(Ring* r) {
    std::lock_guard<std::mutex> lock(registry_m);
    // Keep the events: the ring drains at the next flush/snapshot; a new
    // thread picking it up appends after them.
    free_rings.push_back(r);
  }
};

namespace {

// Thread-exit hook returning the ring to the sink's free list.
struct RingHandle {
  TraceSink::Impl* impl = nullptr;
  Ring* ring = nullptr;
  ~RingHandle();
};

}  // namespace

RingHandle::~RingHandle() {
  if (impl != nullptr && ring != nullptr) impl->release_ring(ring);
}

namespace {
thread_local RingHandle t_ring;
}  // namespace

TraceSink::TraceSink() : impl_(new Impl) {
  if (const char* path = std::getenv("OFTM_TRACE_FILE");
      path != nullptr && *path != '\0') {
    impl_->path = path;
    impl_->capacity.store(
        static_cast<std::size_t>(env_u64("OFTM_TRACE_RING", 8192, 16)),
        std::memory_order_relaxed);
    impl_->stride.store(env_u64("OFTM_TRACE_SAMPLE", 1, 1),
                        std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
    // Belt and braces for harnesses that never reach a driver-side
    // flush: dump whatever the rings hold at process exit. impl_ is
    // deliberately leaked, so this is safe at any exit time.
    std::atexit([] { TraceSink::instance().flush(); });
  }
}

TraceSink& TraceSink::instance() {
  static TraceSink* sink = new TraceSink();  // leaked: see atexit note
  return *sink;
}

void TraceSink::record(const TraceEvent& e) noexcept {
  if (!enabled()) return;
  if (t_ring.ring == nullptr) {
    t_ring.impl = impl_;
    t_ring.ring = impl_->acquire_ring();
  }
  Ring& r = *t_ring.ring;
  std::lock_guard<std::mutex> lock(r.m);
  if (r.seq++ % impl_->stride.load(std::memory_order_relaxed) != 0) return;
  if (r.buf.size() < r.cap) {
    r.buf.push_back(e);
  } else if (r.cap != 0) {
    r.buf[r.head] = e;
    r.head = (r.head + 1) % r.cap;
  }
  ++r.written;
}

const char* TraceSink::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->registry_m);
  return impl_->interned.insert(name).first->c_str();
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> registry_lock(impl_->registry_m);
  for (const auto& rp : impl_->rings) {
    Ring& r = *rp;
    std::lock_guard<std::mutex> lock(r.m);
    if (r.written <= r.buf.size()) {
      out.insert(out.end(), r.buf.begin(), r.buf.end());
    } else {
      // Wrapped: oldest surviving event sits at head.
      out.insert(out.end(), r.buf.begin() + static_cast<std::ptrdiff_t>(
                                                r.head),
                 r.buf.end());
      out.insert(out.end(), r.buf.begin(),
                 r.buf.begin() + static_cast<std::ptrdiff_t>(r.head));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ticks < b.start_ticks;
                   });
  return out;
}

std::uint64_t TraceSink::dropped() const noexcept {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(impl_->registry_m);
  for (const auto& rp : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(rp->m);
    if (rp->written > rp->buf.size()) total += rp->written - rp->buf.size();
  }
  return total;
}

void TraceSink::flush() {
  if (!enabled() || impl_->path.empty()) return;
  const std::vector<TraceEvent> events = snapshot();
  std::FILE* f = std::fopen(impl_->path.c_str(), "w");
  if (f == nullptr) return;
  const double tick_ns = ns_per_tick();
  const std::uint64_t base =
      events.empty() ? 0 : events.front().start_ticks;
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  for (const TraceEvent& e : events) {
    const double ts_us =
        static_cast<double>(e.start_ticks - base) * tick_ns / 1000.0;
    const double dur_us = static_cast<double>(e.dur_ticks) * tick_ns / 1000.0;
    const char* name = e.kind == SpanKind::kCommit
                           ? "commit"
                           : abort_reason_name(
                                 static_cast<std::size_t>(e.reason));
    std::fprintf(
        f,
        "%s{\"name\":\"%s%s\",\"cat\":\"tx\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"tx\":%llu,"
        "\"attempt\":%u,\"backend\":\"%s\"}}",
        first ? "" : ",\n",
        e.kind == SpanKind::kCommit ? "" : "abort:", name, ts_us, dur_us,
        static_cast<unsigned>(e.tid),
        static_cast<unsigned long long>(e.tx_seq), e.attempt,
        e.backend != nullptr ? e.backend : "");
    first = false;
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
}

void TraceSink::configure(std::size_t ring_capacity,
                          std::uint64_t sample_stride, std::string path) {
  std::lock_guard<std::mutex> lock(impl_->registry_m);
  impl_->capacity.store(ring_capacity, std::memory_order_relaxed);
  impl_->stride.store(sample_stride < 1 ? 1 : sample_stride,
                      std::memory_order_relaxed);
  impl_->path = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
  for (auto& rp : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(rp->m);
    rp->buf.clear();
    rp->buf.reserve(ring_capacity);
    rp->cap = ring_capacity;
    rp->head = 0;
    rp->written = 0;
    rp->seq = 0;
  }
}

void TraceSink::reset() {
  std::lock_guard<std::mutex> lock(impl_->registry_m);
  for (auto& rp : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(rp->m);
    rp->buf.clear();
    rp->head = 0;
    rp->written = 0;
    rp->seq = 0;
  }
}

}  // namespace oftm::obs
