#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "ds/tqueue.hpp"

// Header-only container templates; this TU anchors the library target and
// force-compiles every container over both memory models so a layout
// regression breaks the library build, not the first client.

namespace oftm::ds {

template class TListSetT<core::BoxedMemory>;
template class TListSetT<core::RegionMemory>;
template class THashMapT<core::BoxedMemory>;
template class THashMapT<core::RegionMemory>;
template class TQueueT<core::BoxedMemory>;
template class TQueueT<core::RegionMemory>;

}  // namespace oftm::ds
