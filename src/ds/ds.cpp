#include "ds/thashmap.hpp"
#include "ds/tlist.hpp"
#include "ds/tqueue.hpp"

// Header-only containers; this TU anchors the library target.

namespace oftm::ds {}  // namespace oftm::ds
