// TListSet: a sorted linked-list set over transactional registers.
//
// The paper's opening example of why TM exists: "a process that wants to
// access a shared data structure executes some operations on this structure
// inside an atomic program called a transaction." Every operation takes a
// TxView, so operations compose into larger atomic programs (e.g. an atomic
// move between two sets — see examples/linked_list_set.cpp), which is the
// composability the introduction contrasts with locks [16].
//
// Layout (within the TM's t-variable space, starting at `base`):
//   base + 0        head index (0 = null, i >= 1 = node i-1)
//   base + 1        free-list head index
//   base + 2        element count
//   base + 3 + 2i   node i key
//   base + 4 + 2i   node i next-index
//
// Node storage is a transactional free list, so allocation itself is
// transactional: an aborted insert leaks nothing.
#pragma once

#include <cstdint>

#include "core/atomically.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"

namespace oftm::ds {

class TListSet {
 public:
  // Number of t-variables a set with `capacity` nodes occupies.
  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return 3 + 2 * static_cast<std::size_t>(capacity);
  }

  TListSet(core::TransactionalMemory& tm, core::TVarId base,
           std::uint32_t capacity)
      : tm_(tm), base_(base), capacity_(capacity) {
    OFTM_ASSERT(base + tvars_needed(capacity) <= tm.num_tvars());
  }

  // One-time initialization (runs its own committed transaction): threads
  // all nodes onto the free list.
  void init() {
    core::atomically(tm_, [&](core::TxView& tx) {
      tx.write(head_var(), kNull);
      tx.write(count_var(), 0);
      for (std::uint32_t i = 0; i < capacity_; ++i) {
        tx.write(next_var(i), i + 1 < capacity_ ? index_of(i + 1) : kNull);
      }
      tx.write(free_var(), capacity_ > 0 ? index_of(0) : kNull);
    });
  }

  // Inserts key; false if already present. On a TM-forced abort the view
  // goes dead (tx.ok() false) and the return value is meaningless —
  // atomically() discards the attempt and retries.
  bool insert(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    if (!tx.ok()) return false;  // doomed attempt: poison values, bail out
    if (cur != kNull && tx.read(key_var(node_of(cur))) == key) {
      return false;  // already present
    }
    const core::Value fresh = tx.read(free_var());
    if (!tx.ok()) return false;
    OFTM_ASSERT_MSG(fresh != kNull, "TListSet capacity exhausted");
    const std::uint32_t node = node_of(fresh);
    tx.write(free_var(), tx.read(next_var(node)));
    tx.write(key_var(node), key);
    tx.write(next_var(node), cur);
    link(tx, prev, fresh);
    tx.write(count_var(), tx.read(count_var()) + 1);
    return true;
  }

  // Removes key; false if absent. The node returns to the free list.
  bool erase(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    if (!tx.ok()) return false;  // doomed attempt (see insert)
    if (cur == kNull || tx.read(key_var(node_of(cur))) != key) {
      return false;
    }
    const std::uint32_t node = node_of(cur);
    link(tx, prev, tx.read(next_var(node)));
    tx.write(next_var(node), tx.read(free_var()));
    tx.write(free_var(), cur);
    tx.write(count_var(), tx.read(count_var()) - 1);
    return true;
  }

  bool contains(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    (void)prev;
    return cur != kNull && tx.read(key_var(node_of(cur))) == key;
  }

  std::uint64_t size(core::TxView& tx) { return tx.read(count_var()); }

  // Quiescent structural audit (outside transactions; caller guarantees no
  // concurrency): sortedness, count consistency, free-list integrity.
  bool audit_quiescent() const {
    std::uint64_t counted = 0;
    std::uint64_t prev_key = 0;
    bool first = true;
    core::Value cur = tm_.read_quiescent(head_var());
    while (cur != kNull) {
      if (counted > capacity_) return false;  // cycle
      const std::uint64_t k = tm_.read_quiescent(key_var(node_of(cur)));
      if (!first && k <= prev_key) return false;  // unsorted / duplicate
      prev_key = k;
      first = false;
      ++counted;
      cur = tm_.read_quiescent(next_var(node_of(cur)));
    }
    if (counted != tm_.read_quiescent(count_var())) return false;
    // Free list: remaining nodes, no overlap assumed by length check.
    std::uint64_t free_count = 0;
    cur = tm_.read_quiescent(free_var());
    while (cur != kNull) {
      if (free_count > capacity_) return false;
      ++free_count;
      cur = tm_.read_quiescent(next_var(node_of(cur)));
    }
    return counted + free_count == capacity_;
  }

 private:
  static constexpr core::Value kNull = 0;
  static constexpr core::Value index_of(std::uint32_t node) {
    return node + 1;
  }
  static constexpr std::uint32_t node_of(core::Value index) {
    return static_cast<std::uint32_t>(index - 1);
  }

  core::TVarId head_var() const { return base_; }
  core::TVarId free_var() const { return base_ + 1; }
  core::TVarId count_var() const { return base_ + 2; }
  core::TVarId key_var(std::uint32_t node) const {
    return base_ + 3 + 2 * node;
  }
  core::TVarId next_var(std::uint32_t node) const {
    return base_ + 4 + 2 * node;
  }

  // Finds the first node with key >= `key`; returns (prev index, cur
  // index), kNull prev meaning head. The traversal is bounded by
  // transactional reads, so it must stop on a dead view (poison indices
  // are not a consistent snapshot and could otherwise cycle).
  std::pair<core::Value, core::Value> locate(core::TxView& tx,
                                             std::uint64_t key) {
    core::Value prev = kNull;
    core::Value cur = tx.read(head_var());
    while (tx.ok() && cur != kNull && tx.read(key_var(node_of(cur))) < key) {
      prev = cur;
      cur = tx.read(next_var(node_of(cur)));
    }
    return {prev, cur};
  }

  void link(core::TxView& tx, core::Value prev, core::Value target) {
    if (prev == kNull) {
      tx.write(head_var(), target);
    } else {
      tx.write(next_var(node_of(prev)), target);
    }
  }

  core::TransactionalMemory& tm_;
  const core::TVarId base_;
  const std::uint32_t capacity_;
};

}  // namespace oftm::ds
