// TListSet: a sorted linked-list set, written once against the
// core::MemoryModel concept and instantiated over both layouts.
//
// The paper's opening example of why TM exists: "a process that wants to
// access a shared data structure executes some operations on this structure
// inside an atomic program called a transaction." Every operation takes a
// TxView, so operations compose into larger atomic programs (e.g. an atomic
// move between two sets — see examples/linked_list_set.cpp), which is the
// composability the introduction contrasts with locks [16].
//
// Layout: a 2-word static root {head, count} plus capacity dynamically
// allocated 2-word nodes {key, next} linked by Ref. On the boxed model the
// nodes live in the container's TVarId arena behind its transactional
// allocator; on the region model they are tx_alloc'd heap words — either
// way an aborted insert leaks nothing, because allocation itself is
// transactional.
#pragma once

#include <cstdint>
#include <utility>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"

namespace oftm::ds {

template <core::MemoryModel M>
class TListSetT {
 public:
  struct Node {
    core::Value key;
    core::Value next;  // Ref of the successor, kNullRef at the tail
  };
  static constexpr std::size_t kNodeWords =
      sizeof(Node) / sizeof(core::Value);

  // Number of words (boxed: t-variables) a set with `capacity` nodes
  // occupies, model overhead included.
  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return M::kOverheadWords + kRootWords +
           kNodeWords * static_cast<std::size_t>(capacity);
  }

  TListSetT(core::TransactionalMemory& tm, core::TVarId base,
            std::uint32_t capacity)
      : mem_(tm, base, tvars_needed(capacity)), capacity_(capacity) {
    root_ = mem_.alloc_static(kRootWords);
  }

  // One-time initialization (runs its own committed transaction).
  void init() {
    core::atomically(mem_.tm(), [&](core::TxView& tx) {
      mem_.init(tx);
      mem_.store(tx, root_, kHead, core::kNullRef);
      mem_.store(tx, root_, kCount, 0);
    });
  }

  // Inserts key; false if already present. On a TM-forced abort the view
  // goes dead (tx.ok() false) and the return value is meaningless —
  // atomically() discards the attempt and retries.
  bool insert(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    if (!tx.ok()) return false;  // doomed attempt: poison values, bail out
    if (cur && key_of(tx, cur) == key) {
      return false;  // already present
    }
    const core::Value count = mem_.load(tx, root_, kCount);
    if (!tx.ok()) return false;
    OFTM_ASSERT_MSG(count < capacity_, "TListSet capacity exhausted");
    const core::TxPtr<Node> node = core::tx_make<Node>(mem_, tx);
    if (!tx.ok()) return false;
    OFTM_ASSERT_MSG(node, "TListSet arena exhausted");
    core::tx_set(mem_, tx, node, &Node::key, key);
    core::tx_set(mem_, tx, node, &Node::next, cur.ref);
    link(tx, prev, node);
    mem_.store(tx, root_, kCount, count + 1);
    return true;
  }

  // Removes key; false if absent. The node returns to its allocator.
  bool erase(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    if (!tx.ok()) return false;  // doomed attempt (see insert)
    if (!cur || key_of(tx, cur) != key) {
      return false;
    }
    link(tx, prev, core::TxPtr<Node>{core::tx_get(mem_, tx, cur, &Node::next)});
    core::tx_destroy(mem_, tx, cur);
    mem_.store(tx, root_, kCount, mem_.load(tx, root_, kCount) - 1);
    return true;
  }

  bool contains(core::TxView& tx, std::uint64_t key) {
    auto [prev, cur] = locate(tx, key);
    (void)prev;
    return cur && key_of(tx, cur) == key;
  }

  // Visit the keys in [lo, hi) in ascending order; returns how many were
  // visited. Exploits sortedness: the traversal stops at the first key
  // >= hi, so only the [head, hi) prefix joins the read set — the ordered
  // counterpart to THashMapT's full-table scan. Returns 0 on a dead view
  // (poison refs are not a consistent snapshot).
  template <typename F>
  std::uint64_t scan_range(core::TxView& tx, std::uint64_t lo,
                           std::uint64_t hi, F&& visit) {
    std::uint64_t visited = 0;
    std::uint64_t steps = 0;
    core::TxPtr<Node> cur{mem_.load(tx, root_, kHead)};
    while (tx.ok() && cur) {
      if (++steps > capacity_) return 0;  // poisoned ref cycled; bail out
      const std::uint64_t k = key_of(tx, cur);
      if (!tx.ok() || k >= hi) break;
      if (k >= lo) {
        ++visited;
        visit(k);
      }
      cur = core::TxPtr<Node>{core::tx_get(mem_, tx, cur, &Node::next)};
    }
    return tx.ok() ? visited : 0;
  }

  std::uint64_t size(core::TxView& tx) { return mem_.load(tx, root_, kCount); }

  std::uint32_t capacity() const noexcept { return capacity_; }

  // Quiescent structural audit (outside transactions; caller guarantees no
  // concurrency): sortedness, count consistency, and — when the model can
  // count its free records (boxed) — allocator conservation.
  bool audit_quiescent() const {
    std::uint64_t counted = 0;
    std::uint64_t prev_key = 0;
    bool first = true;
    core::Ref cur = mem_.load_quiescent(root_, kHead);
    const std::size_t key_field = core::field_index(&Node::key);
    const std::size_t next_field = core::field_index(&Node::next);
    while (cur != core::kNullRef) {
      if (counted > capacity_) return false;  // cycle
      const std::uint64_t k = mem_.load_quiescent(cur, key_field);
      if (!first && k <= prev_key) return false;  // unsorted / duplicate
      prev_key = k;
      first = false;
      ++counted;
      cur = mem_.load_quiescent(cur, next_field);
    }
    if (counted != mem_.load_quiescent(root_, kCount)) return false;
    if (const auto free_records = mem_.free_capacity_quiescent(kNodeWords)) {
      return counted + *free_records == capacity_;
    }
    return true;
  }

 private:
  static constexpr std::size_t kRootWords = 2;
  static constexpr std::size_t kHead = 0;
  static constexpr std::size_t kCount = 1;

  std::uint64_t key_of(core::TxView& tx, core::TxPtr<Node> node) {
    return core::tx_get(mem_, tx, node, &Node::key);
  }

  // Finds the first node with key >= `key`; returns (prev, cur), null prev
  // meaning head. The traversal is bounded by transactional reads, so it
  // must stop on a dead view (poison refs are not a consistent snapshot
  // and could otherwise cycle).
  std::pair<core::TxPtr<Node>, core::TxPtr<Node>> locate(core::TxView& tx,
                                                         std::uint64_t key) {
    core::TxPtr<Node> prev{core::kNullRef};
    core::TxPtr<Node> cur{mem_.load(tx, root_, kHead)};
    while (tx.ok() && cur && key_of(tx, cur) < key) {
      prev = cur;
      cur = core::TxPtr<Node>{core::tx_get(mem_, tx, cur, &Node::next)};
    }
    return {prev, cur};
  }

  void link(core::TxView& tx, core::TxPtr<Node> prev,
            core::TxPtr<Node> target) {
    if (!prev) {
      mem_.store(tx, root_, kHead, target.ref);
    } else {
      core::tx_set(mem_, tx, prev, &Node::next, target.ref);
    }
  }

  M mem_;
  core::Ref root_ = core::kNullRef;
  const std::uint32_t capacity_;
};

// The boxed instantiation keeps the historical name and API.
using TListSet = TListSetT<core::BoxedMemory>;

}  // namespace oftm::ds
