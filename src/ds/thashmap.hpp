// THashMap: fixed-capacity open-addressing hash map (linear probing,
// tombstone deletion), written once against the core::MemoryModel concept
// and instantiated over both layouts.
//
// Layout: one static record of 1 + 2*capacity words —
//   field 0          live-entry count
//   field 1 + 2i     slot i key   (kEmptyKey / kTombstone sentinels)
//   field 2 + 2i     slot i value
// On the boxed model the record is TVarId arithmetic; on the region model
// it is a contiguous word array in the backend's heap — the probe table
// the region tier's cache-locality comparison is about.
//
// Tombstone hygiene, two halves:
//   insert  reuses the first tombstone seen on the probe path instead of
//           appending at the first empty slot;
//   erase   converts the trailing tombstone run back to empty whenever the
//           slot after the erased one is empty. Sound under +1 linear
//           probing: a lookup only travels past a slot because it was
//           non-empty, and no stored key has an empty slot earlier on its
//           own probe path — so a tombstone whose successor is empty is on
//           nobody's path and may revert. Together they keep probe lengths
//           stable under delete/insert churn instead of degrading forever
//           (pinned by DsConformance HashMapProbeLengthStableUnderChurn).
//
// Keys must avoid the two sentinels; capacity must be a power of two. All
// operations compose through TxView like the other ds:: containers.
#pragma once

#include <cstdint>
#include <optional>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::ds {

template <core::MemoryModel M>
class THashMapT {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0} - 1;

  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return M::kOverheadWords + 1 + 2 * static_cast<std::size_t>(capacity);
  }

  THashMapT(core::TransactionalMemory& tm, core::TVarId base,
            std::uint32_t capacity)
      : mem_(tm, base, tvars_needed(capacity)), capacity_(capacity) {
    OFTM_ASSERT((capacity & (capacity - 1)) == 0 && capacity >= 2);
    root_ = mem_.alloc_static(1 + 2 * static_cast<std::size_t>(capacity));
  }

  void init() {
    core::atomically(mem_.tm(), [&](core::TxView& tx) {
      mem_.init(tx);
      mem_.store(tx, root_, kCount, 0);
      for (std::uint32_t i = 0; i < capacity_; ++i) {
        mem_.store(tx, root_, key_field(i), kEmptyKey);
      }
    });
  }

  // Insert or overwrite; returns true if the key was newly inserted. On a
  // TM-forced abort the view goes dead (tx.ok() false) and the return
  // value is meaningless — atomically() discards the attempt and retries;
  // the probe loops bail out so poison keys cannot trip the capacity
  // assert.
  bool put(core::TxView& tx, std::uint64_t key, core::Value value) {
    OFTM_ASSERT(key != kEmptyKey && key != kTombstone);
    std::uint32_t first_tombstone = capacity_;
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = mem_.load(tx, root_, key_field(i));
      if (!tx.ok()) return false;  // doomed attempt
      if (k == key) {
        mem_.store(tx, root_, val_field(i), value);
        return false;
      }
      if (k == kTombstone && first_tombstone == capacity_) {
        first_tombstone = i;
        continue;
      }
      if (k == kEmptyKey) {
        const std::uint32_t target =
            first_tombstone != capacity_ ? first_tombstone : i;
        place(tx, target, key, value);
        return true;
      }
    }
    if (first_tombstone != capacity_) {
      place(tx, first_tombstone, key, value);
      return true;
    }
    OFTM_ASSERT_MSG(false, "THashMap capacity exhausted");
    return false;
  }

  std::optional<core::Value> get(core::TxView& tx, std::uint64_t key) {
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = mem_.load(tx, root_, key_field(i));
      if (!tx.ok()) return std::nullopt;  // doomed attempt
      if (k == key) return mem_.load(tx, root_, val_field(i));
      if (k == kEmptyKey) return std::nullopt;
    }
    return std::nullopt;
  }

  bool erase(core::TxView& tx, std::uint64_t key) {
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = mem_.load(tx, root_, key_field(i));
      if (!tx.ok()) return false;  // doomed attempt
      if (k == key) {
        mem_.store(tx, root_, key_field(i), kTombstone);
        mem_.store(tx, root_, kCount, mem_.load(tx, root_, kCount) - 1);
        trim_tombstones(tx, i);
        return true;
      }
      if (k == kEmptyKey) return false;
    }
    return false;
  }

  // Visit every live entry as visit(key, value); slot order, which callers
  // must treat as unspecified. A false return from the visitor stops the
  // scan. The whole table's key slots join the read set — that is the
  // point: a scan is an atomic snapshot, so a concurrent put/erase
  // anywhere in the table conflicts with it.
  template <typename F>
  void for_each(core::TxView& tx, F&& visit) {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      const std::uint64_t k = mem_.load(tx, root_, key_field(i));
      if (!tx.ok()) return;  // doomed attempt
      if (k == kEmptyKey || k == kTombstone) continue;
      const core::Value v = mem_.load(tx, root_, val_field(i));
      if (!tx.ok()) return;
      if (!visit(k, v)) return;
    }
  }

  // Sum of the values stored under keys in [lo, hi) — a full-table range
  // scan (open addressing has no key order to exploit). Meaningless on a
  // dead view, like every other poisoned return.
  core::Value range_sum(core::TxView& tx, std::uint64_t lo, std::uint64_t hi) {
    core::Value sum = 0;
    for_each(tx, [&](std::uint64_t k, core::Value v) {
      if (k >= lo && k < hi) sum += v;
      return true;
    });
    return sum;
  }

  std::uint64_t size(core::TxView& tx) { return mem_.load(tx, root_, kCount); }

  std::uint64_t size_quiescent() const {
    return mem_.load_quiescent(root_, kCount);
  }

  std::uint32_t capacity() const noexcept { return capacity_; }

  // Probes a lookup of `key` would take before terminating (found or hit
  // empty), observed quiescently. The churn regression test pins this.
  std::uint64_t probe_length_quiescent(std::uint64_t key) const {
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint64_t k =
          mem_.load_quiescent(root_, key_field(slot(key, probe)));
      if (k == key || k == kEmptyKey) return probe + 1;
    }
    return capacity_;
  }

 private:
  static constexpr std::size_t kCount = 0;
  std::size_t key_field(std::uint32_t i) const {
    return 1 + 2 * static_cast<std::size_t>(i);
  }
  std::size_t val_field(std::uint32_t i) const {
    return 2 + 2 * static_cast<std::size_t>(i);
  }

  std::uint32_t slot(std::uint64_t key, std::uint32_t probe) const {
    return static_cast<std::uint32_t>((runtime::mix64(key) + probe) &
                                      (capacity_ - 1));
  }

  void place(core::TxView& tx, std::uint32_t i, std::uint64_t key,
             core::Value value) {
    mem_.store(tx, root_, key_field(i), key);
    mem_.store(tx, root_, val_field(i), value);
    mem_.store(tx, root_, kCount, mem_.load(tx, root_, kCount) + 1);
  }

  // Erase-time hygiene: if the physical successor of the erased slot is
  // empty, walk backwards from the erased slot converting the contiguous
  // tombstone run to empty (see the header comment for why this is sound).
  void trim_tombstones(core::TxView& tx, std::uint32_t i) {
    const std::uint64_t after =
        mem_.load(tx, root_, key_field((i + 1) & (capacity_ - 1)));
    if (!tx.ok() || after != kEmptyKey) return;
    for (std::uint32_t n = 0; n < capacity_; ++n) {
      const std::uint64_t k = mem_.load(tx, root_, key_field(i));
      if (!tx.ok() || k != kTombstone) return;
      mem_.store(tx, root_, key_field(i), kEmptyKey);
      i = (i + capacity_ - 1) & (capacity_ - 1);
    }
  }

  M mem_;
  core::Ref root_ = core::kNullRef;
  const std::uint32_t capacity_;
};

// The boxed instantiation keeps the historical name and API.
using THashMap = THashMapT<core::BoxedMemory>;

}  // namespace oftm::ds
