// THashMap: fixed-capacity open-addressing hash map over transactional
// registers (linear probing, tombstone deletion).
//
// Layout (starting at `base`):
//   base + 0        live-entry count
//   base + 1 + 2i   slot i key   (kEmptyKey / kTombstone sentinels)
//   base + 2 + 2i   slot i value
//
// Keys must avoid the two sentinels; capacity must be a power of two. All
// operations compose through TxView like the other ds:: containers.
#pragma once

#include <cstdint>
#include <optional>

#include "core/atomically.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"
#include "runtime/xorshift.hpp"

namespace oftm::ds {

class THashMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0} - 1;

  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return 1 + 2 * static_cast<std::size_t>(capacity);
  }

  THashMap(core::TransactionalMemory& tm, core::TVarId base,
           std::uint32_t capacity)
      : tm_(tm), base_(base), capacity_(capacity) {
    OFTM_ASSERT((capacity & (capacity - 1)) == 0 && capacity >= 2);
    OFTM_ASSERT(base + tvars_needed(capacity) <= tm.num_tvars());
  }

  void init() {
    core::atomically(tm_, [&](core::TxView& tx) {
      tx.write(count_var(), 0);
      for (std::uint32_t i = 0; i < capacity_; ++i) {
        tx.write(key_var(i), kEmptyKey);
      }
    });
  }

  // Insert or overwrite; returns true if the key was newly inserted. On a
  // TM-forced abort the view goes dead (tx.ok() false) and the return
  // value is meaningless — atomically() discards the attempt and retries;
  // the probe loops bail out so poison keys cannot trip the capacity
  // assert.
  bool put(core::TxView& tx, std::uint64_t key, core::Value value) {
    OFTM_ASSERT(key != kEmptyKey && key != kTombstone);
    std::uint32_t first_tombstone = capacity_;
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = tx.read(key_var(i));
      if (!tx.ok()) return false;  // doomed attempt
      if (k == key) {
        tx.write(val_var(i), value);
        return false;
      }
      if (k == kTombstone && first_tombstone == capacity_) {
        first_tombstone = i;
        continue;
      }
      if (k == kEmptyKey) {
        const std::uint32_t target =
            first_tombstone != capacity_ ? first_tombstone : i;
        tx.write(key_var(target), key);
        tx.write(val_var(target), value);
        tx.write(count_var(), tx.read(count_var()) + 1);
        return true;
      }
    }
    if (first_tombstone != capacity_) {
      tx.write(key_var(first_tombstone), key);
      tx.write(val_var(first_tombstone), value);
      tx.write(count_var(), tx.read(count_var()) + 1);
      return true;
    }
    OFTM_ASSERT_MSG(false, "THashMap capacity exhausted");
    return false;
  }

  std::optional<core::Value> get(core::TxView& tx, std::uint64_t key) {
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = tx.read(key_var(i));
      if (!tx.ok()) return std::nullopt;  // doomed attempt
      if (k == key) return tx.read(val_var(i));
      if (k == kEmptyKey) return std::nullopt;
    }
    return std::nullopt;
  }

  bool erase(core::TxView& tx, std::uint64_t key) {
    for (std::uint32_t probe = 0; probe < capacity_; ++probe) {
      const std::uint32_t i = slot(key, probe);
      const std::uint64_t k = tx.read(key_var(i));
      if (!tx.ok()) return false;  // doomed attempt
      if (k == key) {
        tx.write(key_var(i), kTombstone);
        tx.write(count_var(), tx.read(count_var()) - 1);
        return true;
      }
      if (k == kEmptyKey) return false;
    }
    return false;
  }

  std::uint64_t size(core::TxView& tx) { return tx.read(count_var()); }

  std::uint64_t size_quiescent() const {
    return tm_.read_quiescent(count_var());
  }

 private:
  core::TVarId count_var() const { return base_; }
  core::TVarId key_var(std::uint32_t i) const { return base_ + 1 + 2 * i; }
  core::TVarId val_var(std::uint32_t i) const { return base_ + 2 + 2 * i; }

  std::uint32_t slot(std::uint64_t key, std::uint32_t probe) const {
    return static_cast<std::uint32_t>((runtime::mix64(key) + probe) &
                                      (capacity_ - 1));
  }

  core::TransactionalMemory& tm_;
  const core::TVarId base_;
  const std::uint32_t capacity_;
};

}  // namespace oftm::ds
