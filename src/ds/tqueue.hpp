// TQueue: a bounded FIFO ring buffer, written once against the
// core::MemoryModel concept and instantiated over both layouts.
//
// Layout: one static record of 2 + capacity words —
//   field 0       head position (dequeue side, monotonically increasing)
//   field 1       tail position (enqueue side, monotonically increasing)
//   field 2 + i   ring slots (position mod capacity)
//
// Monotone positions avoid the classic full/empty ambiguity; positions wrap
// only after 2^64 operations. dequeue deliberately has no ok() check
// between its two position reads: on a dead view both reads poison to 0,
// head == tail reads as empty, and the attempt resolves to a retry — the
// composition DsConformance QueueDequeueOnEmptyComposesWithPoison pins.
#pragma once

#include <cstdint>
#include <optional>

#include "core/atomically.hpp"
#include "core/memory_model.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"

namespace oftm::ds {

template <core::MemoryModel M>
class TQueueT {
 public:
  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return M::kOverheadWords + 2 + static_cast<std::size_t>(capacity);
  }

  TQueueT(core::TransactionalMemory& tm, core::TVarId base,
          std::uint32_t capacity)
      : mem_(tm, base, tvars_needed(capacity)), capacity_(capacity) {
    OFTM_ASSERT(capacity >= 1);
    root_ = mem_.alloc_static(2 + static_cast<std::size_t>(capacity));
  }

  void init() {
    core::atomically(mem_.tm(), [&](core::TxView& tx) {
      mem_.init(tx);
      mem_.store(tx, root_, kHead, 0);
      mem_.store(tx, root_, kTail, 0);
    });
  }

  // False if full (or the attempt is doomed — tx.ok() false — in which
  // case atomically() discards it and retries).
  bool enqueue(core::TxView& tx, core::Value v) {
    const std::uint64_t head = mem_.load(tx, root_, kHead);
    const std::uint64_t tail = mem_.load(tx, root_, kTail);
    if (!tx.ok()) return false;
    if (tail - head >= capacity_) return false;
    mem_.store(tx, root_, slot_field(tail), v);
    mem_.store(tx, root_, kTail, tail + 1);
    return true;
  }

  // nullopt if empty.
  std::optional<core::Value> dequeue(core::TxView& tx) {
    const std::uint64_t head = mem_.load(tx, root_, kHead);
    const std::uint64_t tail = mem_.load(tx, root_, kTail);
    if (head == tail) return std::nullopt;
    const core::Value v = mem_.load(tx, root_, slot_field(head));
    mem_.store(tx, root_, kHead, head + 1);
    return v;
  }

  std::uint64_t size(core::TxView& tx) {
    return mem_.load(tx, root_, kTail) - mem_.load(tx, root_, kHead);
  }

  std::uint64_t size_quiescent() const {
    return mem_.load_quiescent(root_, kTail) -
           mem_.load_quiescent(root_, kHead);
  }

 private:
  static constexpr std::size_t kHead = 0;
  static constexpr std::size_t kTail = 1;
  std::size_t slot_field(std::uint64_t pos) const {
    return 2 + static_cast<std::size_t>(pos % capacity_);
  }

  M mem_;
  core::Ref root_ = core::kNullRef;
  const std::uint32_t capacity_;
};

// The boxed instantiation keeps the historical name and API.
using TQueue = TQueueT<core::BoxedMemory>;

}  // namespace oftm::ds
