// TQueue: a bounded FIFO ring buffer over transactional registers.
//
// Layout (starting at `base`):
//   base + 0      head position (dequeue side, monotonically increasing)
//   base + 1      tail position (enqueue side, monotonically increasing)
//   base + 2 + i  ring slots (position mod capacity)
//
// Monotone positions avoid the classic full/empty ambiguity; positions wrap
// only after 2^64 operations.
#pragma once

#include <cstdint>
#include <optional>

#include "core/atomically.hpp"
#include "core/types.hpp"
#include "runtime/assert.hpp"

namespace oftm::ds {

class TQueue {
 public:
  static constexpr std::size_t tvars_needed(std::uint32_t capacity) {
    return 2 + static_cast<std::size_t>(capacity);
  }

  TQueue(core::TransactionalMemory& tm, core::TVarId base,
         std::uint32_t capacity)
      : tm_(tm), base_(base), capacity_(capacity) {
    OFTM_ASSERT(capacity >= 1);
    OFTM_ASSERT(base + tvars_needed(capacity) <= tm.num_tvars());
  }

  void init() {
    core::atomically(tm_, [&](core::TxView& tx) {
      tx.write(head_var(), 0);
      tx.write(tail_var(), 0);
    });
  }

  // False if full (or the attempt is doomed — tx.ok() false — in which
  // case atomically() discards it and retries).
  bool enqueue(core::TxView& tx, core::Value v) {
    const std::uint64_t head = tx.read(head_var());
    const std::uint64_t tail = tx.read(tail_var());
    if (!tx.ok()) return false;
    if (tail - head >= capacity_) return false;
    tx.write(slot_var(tail), v);
    tx.write(tail_var(), tail + 1);
    return true;
  }

  // nullopt if empty.
  std::optional<core::Value> dequeue(core::TxView& tx) {
    const std::uint64_t head = tx.read(head_var());
    const std::uint64_t tail = tx.read(tail_var());
    if (head == tail) return std::nullopt;
    const core::Value v = tx.read(slot_var(head));
    tx.write(head_var(), head + 1);
    return v;
  }

  std::uint64_t size(core::TxView& tx) {
    return tx.read(tail_var()) - tx.read(head_var());
  }

  std::uint64_t size_quiescent() const {
    return tm_.read_quiescent(tail_var()) - tm_.read_quiescent(head_var());
  }

 private:
  core::TVarId head_var() const { return base_; }
  core::TVarId tail_var() const { return base_ + 1; }
  core::TVarId slot_var(std::uint64_t pos) const {
    return base_ + 2 + static_cast<core::TVarId>(pos % capacity_);
  }

  core::TransactionalMemory& tm_;
  const core::TVarId base_;
  const std::uint32_t capacity_;
};

}  // namespace oftm::ds
