// Strict disjoint-access-parallelism analysis (Definition 12 of the paper,
// Theorem 13's measurement side).
//
// Definition 12: an STM is strictly disjoint-access-parallel if whenever two
// transactions conflict on a base object (both access it, at least one
// access modifies it), the transactions access a common t-variable.
//
// The simulator's low-level history contains every base-object step tagged
// with the transaction it was executed on behalf of (Env::set_label), so
// this module can evaluate the definition *exactly*: find all base-object
// conflicts between distinct transactions, then flag those whose
// t-variable footprints are disjoint — each such pair is a strict-DAP
// violation witness (in DSTM: the CASes on a shared transaction
// descriptor's status; in TL2: the global clock). Each pair carries the
// full conflict-graph witness: the base object (with a stable per-trace
// ordinal so reports diff across runs), both transaction ids, and both
// t-variable footprints.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/step.hpp"

namespace oftm::dap {

// T-variable footprint of each transaction, keyed by the trace label
// (Env::set_label value, conventionally the TxId).
using Footprints = std::map<std::uint64_t, std::set<core::TVarId>>;

struct ConflictPair {
  std::uint64_t tx_a = 0;
  std::uint64_t tx_b = 0;
  const void* object = nullptr;  // the shared base object
  // Stable ordinal of the object: its first-appearance rank among labeled
  // shared accesses in the trace. Unlike the raw pointer, this is
  // deterministic across runs, so witness output is diffable.
  std::size_t object_ord = 0;
  bool disjoint_tvars = false;   // true => strict-DAP violation witness
  // Full witness: both transactions' t-variable footprints (sorted; empty
  // when the label has no footprint entry).
  std::vector<core::TVarId> tvars_a;
  std::vector<core::TVarId> tvars_b;
};

struct ConflictReport {
  // Deduplicated (tx_a < tx_b, object), sorted by (object_ord, tx_a, tx_b)
  // so summaries are stable across runs.
  std::vector<ConflictPair> pairs;
  std::uint64_t violations = 0;        // pairs with disjoint footprints
  std::uint64_t benign_conflicts = 0;  // pairs sharing a t-variable

  // Human-readable witness listing. Violating pairs print the base object
  // (name if provided, else the stable "obj#<ord>" fallback), both
  // transaction ids, and both t-variable footprints.
  std::string summarize(
      const std::vector<std::pair<const void*, std::string>>& names = {})
      const;
};

// Analyze a simulated low-level history. Steps with label 0 are ignored
// (bookkeeping outside any transaction).
ConflictReport analyze(const std::vector<sim::Step>& trace,
                       const Footprints& footprints);

}  // namespace oftm::dap
