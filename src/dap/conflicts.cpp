#include "dap/conflicts.hpp"

#include <algorithm>
#include <cstdio>

namespace oftm::dap {
namespace {

struct Access {
  std::uint64_t label;
  bool modifies;
};

bool disjoint(const std::set<core::TVarId>& a,
              const std::set<core::TVarId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

ConflictReport analyze(const std::vector<sim::Step>& trace,
                       const Footprints& footprints) {
  // Group accesses per base object.
  std::map<const void*, std::vector<Access>> by_object;
  for (const sim::Step& s : trace) {
    if (!s.is_shared_access() || s.label == 0) continue;
    by_object[s.obj].push_back(Access{s.label, s.modifies()});
  }

  ConflictReport report;
  std::set<std::tuple<std::uint64_t, std::uint64_t, const void*>> seen;

  for (const auto& [obj, accesses] : by_object) {
    // Collapse to per-transaction (any access, any modifying access).
    std::map<std::uint64_t, bool> mods;  // label -> modified?
    for (const Access& a : accesses) {
      auto [it, inserted] = mods.emplace(a.label, a.modifies);
      if (!inserted) it->second = it->second || a.modifies;
    }
    for (auto i = mods.begin(); i != mods.end(); ++i) {
      for (auto j = std::next(i); j != mods.end(); ++j) {
        if (!i->second && !j->second) continue;  // both read-only
        const std::uint64_t a = i->first;
        const std::uint64_t b = j->first;
        if (!seen.emplace(a, b, obj).second) continue;
        ConflictPair pair;
        pair.tx_a = a;
        pair.tx_b = b;
        pair.object = obj;
        const auto fa = footprints.find(a);
        const auto fb = footprints.find(b);
        pair.disjoint_tvars =
            fa != footprints.end() && fb != footprints.end() &&
            disjoint(fa->second, fb->second);
        if (pair.disjoint_tvars) {
          ++report.violations;
        } else {
          ++report.benign_conflicts;
        }
        report.pairs.push_back(pair);
      }
    }
  }
  return report;
}

std::string ConflictReport::summarize(
    const std::vector<std::pair<const void*, std::string>>& names) const {
  auto name_of = [&](const void* obj) -> std::string {
    for (const auto& [p, n] : names) {
      if (p == obj) return n;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p", obj);
    return buf;
  };
  char line[192];
  std::string out;
  std::snprintf(line, sizeof(line),
                "base-object conflict pairs: %zu (strict-DAP violations: "
                "%llu, sharing a t-variable: %llu)\n",
                pairs.size(), static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(benign_conflicts));
  out += line;
  for (const ConflictPair& p : pairs) {
    std::snprintf(line, sizeof(line),
                  "  T%llx <-> T%llx on %s%s\n",
                  static_cast<unsigned long long>(p.tx_a),
                  static_cast<unsigned long long>(p.tx_b),
                  name_of(p.object).c_str(),
                  p.disjoint_tvars ? "  [DISJOINT t-vars: violation]" : "");
    out += line;
  }
  return out;
}

}  // namespace oftm::dap
