#include "dap/conflicts.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <unordered_map>

namespace oftm::dap {
namespace {

struct Access {
  std::uint64_t label;
  bool modifies;
};

bool disjoint(const std::set<core::TVarId>& a,
              const std::set<core::TVarId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

ConflictReport analyze(const std::vector<sim::Step>& trace,
                       const Footprints& footprints) {
  // Group accesses per base object, remembering each object's
  // first-appearance rank so reports stay diffable across runs (the pointer
  // itself is ASLR noise).
  struct ObjectAccesses {
    std::size_t ord = 0;
    std::vector<Access> accesses;
  };
  std::unordered_map<const void*, ObjectAccesses> by_object;
  std::size_t next_ord = 0;
  for (const sim::Step& s : trace) {
    if (!s.is_shared_access() || s.label == 0) continue;
    auto [it, inserted] = by_object.try_emplace(s.obj);
    if (inserted) it->second.ord = next_ord++;
    it->second.accesses.push_back(Access{s.label, s.modifies()});
  }

  // Per-label footprints as sorted vectors, converted once — a label that
  // shows up in k conflict pairs would otherwise pay k set->vector
  // conversions on hotspot traces.
  std::unordered_map<std::uint64_t, std::vector<core::TVarId>> fp_vec;
  fp_vec.reserve(footprints.size());
  for (const auto& [label, tvars] : footprints) {
    fp_vec.emplace(label,
                   std::vector<core::TVarId>(tvars.begin(), tvars.end()));
  }
  auto footprint_of = [&](std::uint64_t label) -> std::vector<core::TVarId> {
    const auto it = fp_vec.find(label);
    return it == fp_vec.end() ? std::vector<core::TVarId>{} : it->second;
  };

  ConflictReport report;
  std::set<std::tuple<std::uint64_t, std::uint64_t, const void*>> seen;

  for (const auto& [obj, oa] : by_object) {
    // Collapse to per-transaction (any access, any modifying access).
    std::map<std::uint64_t, bool> mods;  // label -> modified?
    for (const Access& a : oa.accesses) {
      auto [it, inserted] = mods.emplace(a.label, a.modifies);
      if (!inserted) it->second = it->second || a.modifies;
    }
    for (auto i = mods.begin(); i != mods.end(); ++i) {
      for (auto j = std::next(i); j != mods.end(); ++j) {
        if (!i->second && !j->second) continue;  // both read-only
        const std::uint64_t a = i->first;
        const std::uint64_t b = j->first;
        if (!seen.emplace(a, b, obj).second) continue;
        ConflictPair pair;
        pair.tx_a = a;
        pair.tx_b = b;
        pair.object = obj;
        pair.object_ord = oa.ord;
        const auto fa = footprints.find(a);
        const auto fb = footprints.find(b);
        pair.disjoint_tvars =
            fa != footprints.end() && fb != footprints.end() &&
            disjoint(fa->second, fb->second);
        pair.tvars_a = footprint_of(a);
        pair.tvars_b = footprint_of(b);
        if (pair.disjoint_tvars) {
          ++report.violations;
        } else {
          ++report.benign_conflicts;
        }
        report.pairs.push_back(std::move(pair));
      }
    }
  }
  // Deterministic order for diffable witness output (hash-map iteration
  // order would leak pointer entropy into the report).
  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const ConflictPair& x, const ConflictPair& y) {
              return std::tie(x.object_ord, x.tx_a, x.tx_b) <
                     std::tie(y.object_ord, y.tx_a, y.tx_b);
            });
  return report;
}

std::string ConflictReport::summarize(
    const std::vector<std::pair<const void*, std::string>>& names) const {
  auto name_of = [&](const ConflictPair& pair) -> std::string {
    for (const auto& [p, n] : names) {
      if (p == pair.object) return n;
    }
    // Stable ordinal fallback: "obj#3" diffs across runs where a raw
    // pointer would not.
    return "obj#" + std::to_string(pair.object_ord);
  };
  auto footprint_str = [](const std::vector<core::TVarId>& tvars) {
    if (tvars.empty()) return std::string("{}");
    std::string out = "{";
    for (std::size_t i = 0; i < tvars.size(); ++i) {
      if (i > 0) out += ", ";
      out += "x";
      out += std::to_string(tvars[i]);
    }
    out += "}";
    return out;
  };
  auto tx_name = [](std::uint64_t tx) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "T%llx",
                  static_cast<unsigned long long>(tx));
    return std::string(buf);
  };
  char line[128];
  std::string out;
  std::snprintf(line, sizeof(line),
                "base-object conflict pairs: %zu (strict-DAP violations: "
                "%llu, sharing a t-variable: %llu)\n",
                pairs.size(), static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(benign_conflicts));
  out += line;
  // String concatenation, not fixed buffers: object names and footprints
  // are unbounded, and a truncated witness line (losing its newline) would
  // corrupt exactly the large audits this report exists for.
  for (const ConflictPair& p : pairs) {
    out += "  " + tx_name(p.tx_a) + " <-> " + tx_name(p.tx_b) + " on " +
           name_of(p);
    if (p.disjoint_tvars) out += "  [DISJOINT t-vars: violation]";
    out += "\n";
    if (p.disjoint_tvars) {
      out += "    " + tx_name(p.tx_a) + " t-vars: " +
             footprint_str(p.tvars_a) + "\n";
      out += "    " + tx_name(p.tx_b) + " t-vars: " +
             footprint_str(p.tvars_b) + "\n";
    }
  }
  return out;
}

}  // namespace oftm::dap
