#!/usr/bin/env python3
"""Diff a fresh benchmark output file against the committed baselines.

Usage:
    bench/diff_baselines.py FRESH.json [BASELINE.json]
        [--threshold 0.10] [--metric items_per_second] [--strict]

Two input formats, auto-detected per file:

  * google-benchmark JSON (one document with a "benchmarks" array) —
    benchmarks are matched by name and compared on --metric
    (items_per_second by default, falling back to real_time).
  * the shared JSON-lines run report every bench emits via
    $OFTM_REPORT_FILE (bench/baselines/REPORT_*.jsonl) — records are
    matched by their identity fields (bench/scenario/backend plus the
    config object) and compared on result.throughput_tx_s (or the first
    *_ns mean for latency-shaped records). Records with no perf metric
    (claim matrices like E-T9/E-C11 or F2) are compared field-for-field:
    a changed claim is flagged like a regression — those records encode
    reproduction results, not machine speed.

BASELINE defaults to bench/baselines/<basename of FRESH>. Only entries
present in both files are compared; fresh-only entries are listed so a
missing baseline never reads as a pass. Exit status is 0 unless --strict
is given, in which case any flagged regression exits 1 — CI runs it
non-blocking (no --strict) and pastes the table into the job summary.

Throughput metrics regress downward; time metrics (*_time, *_ns) regress
upward — the direction is picked from the metric name.
"""

import argparse
import json
import os
import sys

# Fields that identify a JSON-lines record (everything else is a result).
# The config subobject is part of the identity wholesale.
KEY_FIELDS = (
    "bench", "scenario", "backend", "protocol", "abort_semantics",
    "procs", "depth", "semantics", "mode", "threads", "workers",
    "with_disruptor",
)

# Result fields a perf comparison reads, in priority order.
METRIC_FIELDS = (
    ("result.throughput_tx_s", False),   # higher is better
    ("throughput_tx_s", False),
    ("mean_rmw_ns", True),               # lower is better
    ("mean_op_ns", True),
    ("mean_ns", True),
)


def flatten(obj, prefix=""):
    out = {}
    for k, v in obj.items():
        path = f"{prefix}{k}"
        if isinstance(v, dict):
            out.update(flatten(v, path + "."))
        elif not isinstance(v, list):
            out[path] = v
    return out


def is_jsonl(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError:
            return True  # multiple documents -> JSON lines
    return not (isinstance(doc, dict) and "benchmarks" in doc)


def load_gbench(path):
    """Map benchmark name -> entry for every aggregate-free run."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        # Repetition entries share a name; keep the first (google-benchmark
        # orders repetitions before aggregates).
        out.setdefault(entry["name"], entry)
    return out


def load_jsonl(path):
    """Map identity key -> flattened record for every report line.

    Records are matched on their full identity (key fields + the whole
    config object); the #n suffix disambiguates only true duplicates
    (identical identity emitted more than once, e.g. an appended report
    file), so matching is insensitive to emission order and to filtered
    runs that produce a subset of the baseline's records.
    """
    out = {}
    full_counts = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # partial line from an interrupted run
            if not isinstance(rec, dict):
                continue
            flat = flatten(rec)
            short_parts = [str(flat[k]) for k in KEY_FIELDS if k in flat]
            if "config.threads" in flat and "threads" not in flat:
                short_parts.append(f"t{flat['config.threads']}")
            short = "/".join(short_parts) or "record"
            full = " ".join([short] + [
                f"{k}={flat[k]}" for k in sorted(flat)
                if k.startswith("config.")
            ])
            n = full_counts.get(full, 0) + 1
            full_counts[full] = n
            suffix = f" #{n}" if n > 1 else ""
            flat["__display"] = short + suffix
            out[full + suffix] = flat
    return out


def gbench_metric(entry, metric):
    value = entry.get(metric)
    if value is None and metric == "items_per_second":
        # Benches that never call SetItemsProcessed fall back to real_time.
        return entry.get("real_time"), "real_time"
    return value, metric


def jsonl_metric(flat):
    for name, _lower in METRIC_FIELDS:
        if flat.get(name) not in (None, 0):
            return flat[name], name
    return None, None


def is_obs_field(key):
    """Observability fields (abort attribution, phase timing) are
    informational: phase ns/counts are wall-clock-shaped and abort mixes
    are schedule-shaped, so neither belongs in a claim comparison."""
    return (".abort_reasons." in key or ".phases." in key
            or key.endswith(".forced_abort_ratio"))


def is_latency_field(key):
    """Latency histogram summaries (result.*_ns.{count,mean,p50,p90,p99,
    p999,max} and friends) and checker wall-time fields (*_seconds, e.g.
    bench_checker's check_seconds) are machine-speed-shaped. They are
    reported for context next to the throughput metric, but they never
    belong in a field-for-field claim comparison — a p999 or a check wall
    time that moved with the weather is not a changed reproduction
    result."""
    return "_ns." in key or key.endswith("_ns") or key.endswith("_seconds")


def claim_fields(flat):
    """Non-key, non-metric scalar results for metric-less records."""
    out = {}
    for k, v in flat.items():
        if k in KEY_FIELDS or k.startswith("config.") or k == "__display":
            continue
        if any(k == m for m, _ in METRIC_FIELDS):
            continue
        if is_obs_field(k) or is_latency_field(k):
            continue
        out[k] = v
    return out


def obs_summary(flat):
    """One-liner from the record's obs fields: the dominant abort reason,
    the phase with the largest time share, and any wall-time fields
    (*_seconds — informational, never compared; see is_latency_field).
    Empty when the record has none of those."""
    reasons = {}
    phase_ns = {}
    walltimes = []
    for k, v in flat.items():
        if ".abort_reasons." in k and v:
            reasons[k.rsplit(".", 1)[1]] = v
        elif ".phases." in k and k.endswith(".ns") and v:
            phase_ns[k.rsplit(".", 2)[1]] = v
        elif k.endswith("_seconds") and not k.startswith("config.") and v:
            walltimes.append(f"{k.rsplit('.', 1)[-1]} {v:.3g}s")
    parts = []
    if reasons:
        name, count = max(reasons.items(), key=lambda kv: kv[1])
        parts.append(f"{name}×{count}")
    if phase_ns:
        name, ns = max(phase_ns.items(), key=lambda kv: kv[1])
        parts.append(f"{name} {ns / sum(phase_ns.values()):.0%}")
    parts.extend(walltimes)
    return " · ".join(parts)


def lower_is_better(metric):
    return metric.endswith("_time") or metric.endswith("_ns")


def main():
    parser = argparse.ArgumentParser(
        description="Flag regressions against committed bench baselines")
    parser.add_argument("fresh", help="freshly generated benchmark output")
    parser.add_argument("baseline", nargs="?",
                        help="baseline file (default: bench/baselines/<name>)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression to flag (default 0.10)")
    parser.add_argument("--metric", default="items_per_second",
                        help="google-benchmark field to compare")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any regression exceeds the threshold")
    args = parser.parse_args()

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "baselines",
            os.path.basename(args.fresh))
    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; nothing to diff", flush=True)
        return 0

    jsonl = is_jsonl(args.fresh)
    if jsonl:
        fresh = load_jsonl(args.fresh)
        base = load_jsonl(baseline_path)
    else:
        fresh = load_gbench(args.fresh)
        base = load_gbench(baseline_path)

    common = [name for name in base if name in fresh]
    fresh_only = [name for name in fresh if name not in base]
    if not common:
        print("no common entries between baseline and fresh run")
        return 0

    rows = []
    flagged = []
    skipped = []
    claims_checked = 0
    for name in common:
        if jsonl:
            display = base[name].get("__display", name)
            base_value, base_metric = jsonl_metric(base[name])
            fresh_value, fresh_metric = jsonl_metric(fresh[name])
            if base_metric is None and fresh_metric is None:
                # Claim record: any changed result field is a finding.
                claims_checked += 1
                b, f = claim_fields(base[name]), claim_fields(fresh[name])
                changed = sorted(k for k in (set(b) | set(f))
                                 if b.get(k) != f.get(k))
                if changed:
                    for k in changed:
                        rows.append((f"{display} [{k}]", "claim",
                                     b.get(k), f.get(k), None, True, ""))
                        flagged.append(f"{display} [{k}]")
                continue
        else:
            display = name
            base_value, base_metric = gbench_metric(base[name], args.metric)
            fresh_value, fresh_metric = gbench_metric(fresh[name], args.metric)
        if base_value in (None, 0) or fresh_value is None:
            skipped.append((display, "metric missing or zero"))
            continue
        if base_metric != fresh_metric:
            skipped.append(
                (display, f"metric mismatch ({base_metric} vs {fresh_metric})"))
            continue
        delta = (fresh_value - base_value) / base_value
        regressed = (delta > args.threshold if lower_is_better(base_metric)
                     else delta < -args.threshold)
        # Informational only — an abort-mix or phase-share change is never
        # flagged; it explains a delta, it does not constitute one.
        info = obs_summary(fresh[name]) if jsonl else ""
        rows.append((display, base_metric, base_value, fresh_value, delta,
                     regressed, info))
        if regressed:
            flagged.append(display)

    claims_note = (f", {claims_checked} claim record(s) checked"
                   if claims_checked else "")
    print(f"### Bench diff vs `{os.path.basename(baseline_path)}` "
          f"({len(rows)} compared{claims_note}, "
          f"threshold {args.threshold:.0%})\n")
    print("| benchmark | metric | baseline | fresh | delta | abort/phase | |")
    print("| --- | --- | ---: | ---: | ---: | --- | --- |")
    for name, metric, base_value, fresh_value, delta, regressed, info in rows:
        mark = "🔴 regression" if regressed else ""
        if metric == "claim":
            print(f"| `{name}` | claim | {base_value} | {fresh_value} | "
                  f"changed | | 🔴 claim changed |")
            continue
        print(f"| `{name}` | {metric} | {base_value:.3g} | {fresh_value:.3g} "
              f"| {delta:+.1%} | {info} | {mark} |")
    print()
    if skipped:
        # A pair dropped from the table must not read as "no regression".
        for name, why in skipped[:10]:
            print(f"- `{name}` present in both files but **not compared**: "
                  f"{why}")
        if len(skipped) > 10:
            print(f"- … +{len(skipped) - 10} more uncompared pairs")
        print()
    if fresh_only:
        # Not comparing a benchmark is not the same as it passing — say so.
        if jsonl:
            fresh_only = [fresh[n].get("__display", n) for n in fresh_only]
        shown = ", ".join(f"`{name}`" for name in fresh_only[:5])
        more = f", … +{len(fresh_only) - 5} more" if len(fresh_only) > 5 else ""
        print(f"{len(fresh_only)} entrie(s) in the fresh run have no "
              f"baseline and were **not compared**: {shown}{more}. "
              "Re-record the baseline to cover them.\n")
    if flagged:
        print(f"**{len(flagged)} regression(s) beyond "
              f"{args.threshold:.0%}.** Baselines were recorded on the "
              "reference box; rule out machine noise before acting.")
    else:
        print("No regressions beyond the threshold.")

    return 1 if (flagged and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
