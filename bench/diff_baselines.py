#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON file against the committed baselines.

Usage:
    bench/diff_baselines.py FRESH.json [BASELINE.json]
        [--threshold 0.10] [--metric items_per_second] [--strict]

BASELINE defaults to bench/baselines/<basename of FRESH>. Benchmarks are
matched by name; only names present in both files are compared. For each
pair the script prints a markdown table row with the metric delta and flags
regressions worse than --threshold (default 10%). Exit status is 0 unless
--strict is given, in which case any flagged regression exits 1 — CI runs
it non-blocking (no --strict) and pastes the table into the job summary.

Throughput metrics (items_per_second) regress downward; time metrics
(real_time, cpu_time) regress upward — the script picks the direction from
the metric name.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """Map benchmark name -> entry for every aggregate-free run."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        # Repetition entries share a name; keep the first (google-benchmark
        # orders repetitions before aggregates).
        out.setdefault(entry["name"], entry)
    return out


def metric_of(entry, metric):
    value = entry.get(metric)
    if value is None and metric == "items_per_second":
        # Benches that never call SetItemsProcessed fall back to real_time.
        return entry.get("real_time"), "real_time"
    return value, metric


def main():
    parser = argparse.ArgumentParser(
        description="Flag throughput regressions against committed baselines")
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument("baseline", nargs="?",
                        help="baseline JSON (default: bench/baselines/<name>)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression to flag (default 0.10)")
    parser.add_argument("--metric", default="items_per_second",
                        help="benchmark field to compare")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any regression exceeds the threshold")
    args = parser.parse_args()

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "baselines",
            os.path.basename(args.fresh))
    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; nothing to diff", flush=True)
        return 0

    fresh = load_benchmarks(args.fresh)
    base = load_benchmarks(baseline_path)
    common = [name for name in base if name in fresh]
    fresh_only = [name for name in fresh if name not in base]
    if not common:
        print("no common benchmark names between baseline and fresh run")
        return 0

    rows = []
    flagged = []
    skipped = []
    for name in common:
        base_value, base_metric = metric_of(base[name], args.metric)
        fresh_value, fresh_metric = metric_of(fresh[name], args.metric)
        if base_value in (None, 0) or fresh_value is None:
            skipped.append((name, "metric missing or zero"))
            continue
        if base_metric != fresh_metric:
            skipped.append(
                (name, f"metric mismatch ({base_metric} vs {fresh_metric})"))
            continue
        delta = (fresh_value - base_value) / base_value
        # For time-like metrics, bigger is worse.
        lower_is_better = base_metric.endswith("_time")
        regressed = (delta > args.threshold if lower_is_better
                     else delta < -args.threshold)
        rows.append((name, base_metric, base_value, fresh_value, delta,
                     regressed))
        if regressed:
            flagged.append(name)

    print(f"### Bench diff vs `{os.path.basename(baseline_path)}` "
          f"({len(rows)} compared, threshold {args.threshold:.0%})\n")
    print("| benchmark | metric | baseline | fresh | delta | |")
    print("| --- | --- | ---: | ---: | ---: | --- |")
    for name, metric, base_value, fresh_value, delta, regressed in rows:
        mark = "🔴 regression" if regressed else ""
        print(f"| `{name}` | {metric} | {base_value:.3g} | {fresh_value:.3g} "
              f"| {delta:+.1%} | {mark} |")
    print()
    if skipped:
        # A pair dropped from the table must not read as "no regression".
        for name, why in skipped[:10]:
            print(f"- `{name}` present in both files but **not compared**: "
                  f"{why}")
        if len(skipped) > 10:
            print(f"- … +{len(skipped) - 10} more uncompared pairs")
        print()
    if fresh_only:
        # Not comparing a benchmark is not the same as it passing — say so.
        shown = ", ".join(f"`{name}`" for name in fresh_only[:5])
        more = f", … +{len(fresh_only) - 5} more" if len(fresh_only) > 5 else ""
        print(f"{len(fresh_only)} benchmark(s) in the fresh run have no "
              f"baseline and were **not compared**: {shown}{more}. "
              "Re-record the baseline to cover them.\n")
    if flagged:
        print(f"**{len(flagged)} regression(s) beyond "
              f"{args.threshold:.0%}.** Baselines were recorded on the "
              "reference box; rule out machine noise before acting.")
    else:
        print("No regressions beyond the threshold.")

    return 1 if (flagged and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
