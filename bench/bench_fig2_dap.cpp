// F2 — regenerates Figure 2 of the paper and evaluates Theorem 13
// (impossibility of strict disjoint-access-parallelism) on every backend.
//
// Scenario (paper, Section 5.2): T1 reads w, z and writes x, y, then its
// process is suspended; T2 reads x and writes w; T3 reads y and writes z.
// T2 and T3 access disjoint t-variable sets {x, w} and {y, z}.
//
// For each backend the report prints: whether T2/T3 made progress despite
// the suspended T1 (obstruction-freedom), and every base-object conflict
// between T2 and T3 (strict-DAP violations per Definition 12).
#include <cstdio>
#include <memory>
#include <string>

#include "cm/managers.hpp"
#include "dap/conflicts.hpp"
#include "dstm/dstm.hpp"
#include "foctm/foctm.hpp"
#include "lock/coarse.hpp"
#include "lock/tl.hpp"
#include "lock/tl2.hpp"
#include "sim/env.hpp"
#include "sim/platform.hpp"
#include "workload/report.hpp"

namespace {

using namespace oftm;

struct Outcome {
  bool t2_committed = false;
  bool t3_committed = false;
  std::uint64_t t2_t3_violations = 0;
  std::uint64_t total_violations = 0;
  std::string detail;
};

template <typename Tm>
Outcome run_figure2(Tm& tm) {
  sim::Env env(3);
  Outcome out;

  env.set_body(0, [&tm] {
    sim::Env::current()->set_label(1);  // T1
    core::TxnPtr txn = tm.begin();
    (void)tm.read(*txn, 2);   // R(w): 0
    (void)tm.read(*txn, 3);   // R(z): 0
    (void)tm.write(*txn, 0, 1);  // W(x, 1)
    (void)tm.write(*txn, 1, 1);  // W(y, 1)
    sim::Env::current()->marker("t1_acquired");
    (void)tm.try_commit(*txn);
  });
  env.set_body(1, [&tm, &out] {
    sim::Env::current()->set_label(2);  // T2
    for (int i = 0; i < 50 && !out.t2_committed; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 0).has_value()) continue;
      if (!tm.write(*txn, 2, 1)) continue;
      out.t2_committed = tm.try_commit(*txn);
    }
  });
  env.set_body(2, [&tm, &out] {
    sim::Env::current()->set_label(3);  // T3
    for (int i = 0; i < 50 && !out.t3_committed; ++i) {
      core::TxnPtr txn = tm.begin();
      if (!tm.read(*txn, 1).has_value()) continue;
      if (!tm.write(*txn, 3, 1)) continue;
      out.t3_committed = tm.try_commit(*txn);
    }
  });

  env.start();
  auto t1_acquired = [&env] {
    for (const sim::Step& s : env.trace()) {
      if (s.kind == sim::Step::Kind::kMarker && s.note != nullptr &&
          std::string(s.note) == "t1_acquired") {
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < 400 && !t1_acquired(); ++i) env.step(0);
  env.run_solo(1, 500000);  // E_{p·2}
  env.run_solo(2, 500000);  // ·s·3

  dap::Footprints fp;
  fp[1] = {0, 1, 2, 3};
  fp[2] = {0, 2};
  fp[3] = {1, 3};
  const dap::ConflictReport report = dap::analyze(env.trace(), fp);
  out.total_violations = report.violations;
  for (const dap::ConflictPair& p : report.pairs) {
    if (p.tx_a == 2 && p.tx_b == 3 && p.disjoint_tvars) {
      ++out.t2_t3_violations;
    }
  }
  out.detail = report.summarize();
  return out;
}

void print(const char* name, const Outcome& o) {
  // One shared-emitter JSON line per backend row.
  oftm::workload::report::emit(
      oftm::workload::report::Json()
          .field("bench", "F2")
          .field("scenario", "figure2_theorem13")
          .field("backend", name)
          .field("t2_committed", o.t2_committed)
          .field("t3_committed", o.t3_committed)
          .field("t2_t3_shared_base_objects", o.t2_t3_violations)
          .field("strict_dap_violated", o.t2_t3_violations > 0));
}

}  // namespace

int main() {
  std::puts("== F2: Figure 2 / Theorem 13 — strict DAP is impossible for");
  std::puts("   OFTMs ======================================================");
  std::puts("T1 writes x,y then suspends; T2 (x,w) and T3 (y,z) are");
  std::puts("t-variable-disjoint. An OFTM must let both commit, and then");
  std::puts("they necessarily meet on a common base object (T1's");
  std::puts("descriptor / State object).\n");

  int violations_seen = 0;
  {
    dstm::Dstm<sim::SimPlatform> tm(4, cm::make_manager("aggressive"));
    const Outcome o = run_figure2(tm);
    print("dstm", o);
    violations_seen += o.t2_t3_violations > 0;
  }
  {
    foctm::Foctm<sim::SimPlatform, foc::StrictFocPolicy<sim::SimPlatform>>
        tm(4);
    const Outcome o = run_figure2(tm);
    print("foctm", o);
    violations_seen += o.t2_t3_violations > 0;
  }
  {
    lock::Tl<sim::SimPlatform> tm(4, lock::TlOptions{8});
    const Outcome o = run_figure2(tm);
    print("tl (2PL)", o);
  }
  {
    lock::Tl2<sim::SimPlatform> tm(4);
    const Outcome o = run_figure2(tm);
    print("tl2 (clock)", o);
  }
  {
    lock::Coarse<sim::SimPlatform> tm(4);
    const Outcome o = run_figure2(tm);
    print("coarse", o);
  }

  std::puts("\nReading: the OFTMs (dstm, foctm) commit both unrelated");
  std::puts("transactions *and* show a T2<->T3 base-object conflict —");
  std::puts("Theorem 13. TL is strictly DAP but T2/T3 cannot commit while");
  std::puts("T1 is suspended (not obstruction-free). TL2 commits both but");
  std::puts("shares its global clock. Coarse serializes everything behind");
  std::puts("one lock.");
  return violations_seen == 2 ? 0 : 1;
}
