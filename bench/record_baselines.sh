#!/usr/bin/env bash
# Re-record every committed bench baseline on the reference box.
#
# Usage: bench/record_baselines.sh [BUILD_DIR]   (default: build/release)
#
# Produces, under bench/baselines/:
#   REPORT_<bench>.jsonl       shared JSON-lines run report, all 13 benches
#   BENCH_throughput.json      google-benchmark JSON (headline comparison)
#   BENCH_foctm_overhead.json  google-benchmark JSON
#
# Run from the repo root after a Release build of the bench targets.
set -euo pipefail

build_dir="${1:-build/release}"
out_dir="$(cd "$(dirname "$0")" && pwd)/baselines"
mkdir -p "$out_dir"

gbench_benches=(bench_checker bench_contention_managers bench_dap_hotspot
                bench_ds bench_eventual_ic bench_foc bench_foctm_overhead
                bench_reclamation bench_throughput)
standalone_benches=(bench_consensus_number bench_dap_violations
                    bench_fig1_history bench_fig2_dap bench_shard_service)

for b in "${gbench_benches[@]}" "${standalone_benches[@]}"; do
  report="$out_dir/REPORT_${b}.jsonl"
  rm -f "$report"
  echo "== $b -> $(basename "$report")"
  args=()
  case "$b" in
    bench_throughput)
      # Includes the region tier: tl2-region/norec-region rows in every B1
      # scenario plus the B1/region_scale sweep over a 16M-word heap.
      args=(--benchmark_out="$out_dir/BENCH_throughput.json"
            --benchmark_out_format=json)
      ;;
    bench_foctm_overhead)
      args=(--benchmark_out="$out_dir/BENCH_foctm_overhead.json"
            --benchmark_out_format=json)
      ;;
    bench_dap_hotspot)
      # tl+disruptor is the designed blocking pathology: workers spin out
      # 10000 attempts against held encounter locks, which is unbounded
      # wall time on small boxes. Baseline every other combination.
      args=(--benchmark_filter=-B2/hotspot_indirect/tl/disruptor)
      ;;
  esac
  OFTM_REPORT_FILE="$report" "$build_dir/$b" "${args[@]}" > /dev/null
done

echo "Baselines written to $out_dir"
