// B3 — contention-manager ablation on DSTM.
//
// Paper hook: Section 1's contention-manager contract ("back off for some
// fixed time (maybe random) to give Ti a chance, but eventually Tk must be
// able to abort Ti"). Expected shape: under high contention, Polite/Karma/
// Timestamp sustain commits with fewer wasted aborts than Aggressive;
// Suicide collapses throughput (self-sacrifice churns); under low
// contention all converge (EXPERIMENTS.md E-B3).
#include <benchmark/benchmark.h>

#include "cm/managers.hpp"
#include "workload/driver.hpp"
#include "workload/factory.hpp"
#include "workload/report.hpp"

namespace {

using oftm::workload::AccessPattern;
using oftm::workload::WorkloadConfig;

void BM_ContentionManager(benchmark::State& state, const std::string& backend,
                          bool high_contention) {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t kills = 0;
  oftm::workload::RunResult merged;
  WorkloadConfig config;
  for (auto _ : state) {
    auto tm = oftm::workload::make_tm(backend, high_contention ? 64 : 65536);
    config.threads = 8;
    config.tx_per_thread = 3000;
    config.ops_per_tx = 8;
    config.write_fraction = high_contention ? 0.8 : 0.2;
    config.pattern =
        high_contention ? AccessPattern::kZipf : AccessPattern::kUniform;
    config.seed = 7;
    const auto r = oftm::workload::run_workload(*tm, config);
    state.SetIterationTime(r.seconds);
    committed += r.committed;
    aborted += r.aborted_attempts;
    kills += r.tm_stats.victim_kills;
    merged.accumulate_run(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(committed));
  state.counters["abort_ratio"] =
      static_cast<double>(aborted) /
      static_cast<double>(committed + aborted + 1);
  state.counters["victim_kills"] = static_cast<double>(kills);
  state.counters["lat_p99_ns"] =
      static_cast<double>(merged.commit_latency_ns.quantile(0.99));
  state.SetLabel(backend);
  oftm::workload::report::emit_run(
      "B3", high_contention ? "high_contention" : "low_contention", backend,
      config, merged, /*num_tvars=*/high_contention ? 64 : 65536);
}

void register_backend(const std::string& backend) {
  benchmark::RegisterBenchmark(
      "B3/high_contention",
      [backend](benchmark::State& s) { BM_ContentionManager(s, backend, true); })
      ->UseManualTime()
      ->Iterations(2);
  benchmark::RegisterBenchmark(
      "B3/low_contention",
      [backend](benchmark::State& s) {
        BM_ContentionManager(s, backend, false);
      })
      ->UseManualTime()
      ->Iterations(2);
}

void register_all() {
  for (const std::string& cm : oftm::cm::manager_names()) {
    register_backend("dstm:" + cm);
  }
  // Progressive reference lines: NOrec resolves every conflict through its
  // global sequence lock and needs no contention manager at all — the
  // baseline each CM ablation has to beat to justify its machinery.
  register_backend("norec");
  register_backend("norec-bloom");
}

const int dummy = (register_all(), 0);

}  // namespace
